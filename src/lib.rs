//! # `mrm` — Managed-Retention Memory, end to end
//!
//! Facade crate for the MRM workspace: re-exports the simulator substrate,
//! device models, controllers, ECC, workload generators, tiering control
//! plane, and analysis layer under one roof. See `README.md` for the tour and
//! `DESIGN.md` for the paper-to-module map.

pub use mrm_analysis as analysis;
pub use mrm_control as control;
pub use mrm_controller as controller;
pub use mrm_core as core;
pub use mrm_device as device;
pub use mrm_ecc as ecc;
pub use mrm_faults as faults;
pub use mrm_sim as sim;
pub use mrm_sweep as sweep;
pub use mrm_telemetry as telemetry;
pub use mrm_tiering as tiering;
pub use mrm_workload as workload;
