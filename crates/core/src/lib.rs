//! # `mrm-core` — the Managed-Retention Memory public API
//!
//! The crate a downstream system adopts. It binds the device physics
//! (`mrm-device`), the lightweight block controller and DCM (`mrm-controller`)
//! and retention-aware ECC (`mrm-ecc`) into one coherent device abstraction:
//!
//! * [`config::MrmConfig`] — capacity, retention class ladder, ECC target,
//!   scrub margin; presets for the paper's design points.
//! * [`device::MrmDevice`] — append-only *streams* (one per KV cache, one
//!   per weight shard) over zones, with per-stream retention programmed from
//!   lifetime hints (DCM), retention-deadline queries for the control plane,
//!   software scrubbing, and ECC-qualified reads that report whether data is
//!   trustworthy, degraded, or lost.
//! * [`pool`] — a first-fit range allocator over any
//!   [`mrm_device::MemoryDevice`], the building block the tiering control
//!   plane composes into HBM/MRM/LPDDR tiers.
//!
//! # Examples
//!
//! ```
//! use mrm_core::config::MrmConfig;
//! use mrm_core::device::{MrmDevice, ReadIntegrity};
//! use mrm_sim::time::{SimDuration, SimTime};
//!
//! let mut dev = MrmDevice::new(MrmConfig::hours_class(1 << 30));
//! let now = SimTime::ZERO;
//! // A KV-cache stream expected to live ~30 minutes.
//! let stream = dev.create_stream(SimDuration::from_mins(30)).unwrap();
//! dev.append(now, stream, 2 << 20).unwrap();
//! let r = dev.read(now + SimDuration::from_mins(10), stream, 0, 2 << 20).unwrap();
//! assert_eq!(r.integrity, ReadIntegrity::Clean);
//! ```

pub mod config;
pub mod device;
pub mod pool;

pub use config::{EccConfig, MrmConfig};
pub use device::{MrmDevice, MrmError, ReadIntegrity, ReadReceipt, StreamId};
pub use pool::{Allocation, Pool, PoolError};
