//! MRM device configuration.

use mrm_device::tech::{presets, Technology};
use mrm_sim::units::MIB;
use serde::{Deserialize, Serialize};

/// ECC configuration for an MRM device: a shortened BCH code per data block
/// plus the delivered-reliability target the scrub scheduler enforces.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EccConfig {
    /// GF(2^m) field degree of the BCH code.
    pub gf_m: u32,
    /// Correctable errors per codeword.
    pub t: usize,
    /// Data bits per codeword.
    pub data_bits: usize,
    /// Maximum acceptable codeword failure probability at read time.
    pub target_cw_fail: f64,
}

impl EccConfig {
    /// The default large-block MRM code: 4 KiB data codewords with t = 8
    /// over GF(2^13) — ≈ 0.3% overhead, the §4 "larger code words and less
    /// overhead" regime.
    pub fn large_block() -> Self {
        EccConfig {
            gf_m: 13,
            t: 8,
            data_bits: 4096 * 8,
            target_cw_fail: 1e-12,
        }
    }

    /// A DRAM-style small-word baseline for comparisons: (72,64) SECDED
    /// equivalent strength expressed as t = 1 over 72-bit words.
    pub fn secded_baseline() -> Self {
        EccConfig {
            gf_m: 7,
            t: 1,
            data_bits: 64,
            target_cw_fail: 1e-12,
        }
    }

    /// Codeword length in bits (data + BCH parity ≈ m·t).
    pub fn codeword_bits(&self) -> usize {
        self.data_bits + self.gf_m as usize * self.t
    }

    /// Parity overhead fraction.
    pub fn overhead(&self) -> f64 {
        (self.gf_m as usize * self.t) as f64 / self.codeword_bits() as f64
    }
}

/// Configuration of one MRM device.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MrmConfig {
    /// The device technology (normally an MRM preset; any retention-tunable
    /// technology works).
    pub tech: Technology,
    /// Zone size, bytes.
    pub zone_bytes: u64,
    /// Whether per-write retention programming (DCM, §4) is enabled. When
    /// disabled every write uses the technology's native retention.
    pub dcm: bool,
    /// Safety margin multiplied into lifetime hints when choosing a
    /// retention class.
    pub lifetime_margin: f64,
    /// ECC configuration.
    pub ecc: EccConfig,
    /// Scrub when data age reaches this fraction of its retention target
    /// (the control plane may scrub earlier; reads past this are flagged
    /// degraded even if ECC still copes).
    pub scrub_margin: f64,
}

impl MrmConfig {
    /// An hours-class MRM device (12 h retention — the paper's KV-cache
    /// sweet spot) of the given capacity.
    pub fn hours_class(capacity_bytes: u64) -> Self {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = capacity_bytes;
        MrmConfig {
            tech,
            zone_bytes: 64 * MIB,
            dcm: true,
            lifetime_margin: 1.25,
            ecc: EccConfig::large_block(),
            scrub_margin: 0.7,
        }
    }

    /// A days-class MRM device (7 d retention — weights between
    /// deployments).
    pub fn days_class(capacity_bytes: u64) -> Self {
        let mut tech = presets::mrm_days();
        tech.capacity_bytes = capacity_bytes;
        MrmConfig {
            tech,
            ..Self::hours_class(capacity_bytes)
        }
    }

    /// A fixed-retention (non-DCM) variant of any config.
    pub fn without_dcm(mut self) -> Self {
        self.dcm = false;
        self
    }

    /// Overrides the zone size.
    pub fn with_zone_bytes(mut self, zone_bytes: u64) -> Self {
        self.zone_bytes = zone_bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::units::GIB;

    #[test]
    fn large_block_ecc_overhead_is_small() {
        let e = EccConfig::large_block();
        assert!(e.overhead() < 0.005, "overhead {}", e.overhead());
        assert_eq!(e.codeword_bits(), 4096 * 8 + 104);
    }

    #[test]
    fn secded_baseline_overhead_is_dram_like() {
        let e = EccConfig::secded_baseline();
        // 7 parity bits over 71-bit words ≈ 10%: the small-word regime.
        assert!(e.overhead() > 0.08, "overhead {}", e.overhead());
    }

    #[test]
    fn presets_build() {
        let h = MrmConfig::hours_class(GIB);
        assert_eq!(h.tech.capacity_bytes, GIB);
        assert!(h.dcm);
        assert_eq!(h.tech.retention, mrm_sim::time::SimDuration::from_hours(12));
        let d = MrmConfig::days_class(GIB);
        assert_eq!(d.tech.retention, mrm_sim::time::SimDuration::from_days(7));
        let fixed = MrmConfig::hours_class(GIB).without_dcm();
        assert!(!fixed.dcm);
        let z = MrmConfig::hours_class(GIB).with_zone_bytes(MIB);
        assert_eq!(z.zone_bytes, MIB);
    }
}
