//! The stream-oriented MRM device facade.
//!
//! [`MrmDevice`] is what an inference-serving stack programs against. Its
//! design restates the paper's §4 stack: data lives in append-only
//! **streams** (a KV cache, a weight shard) placed onto zones of the
//! lightweight block controller; every stream carries a lifetime hint that —
//! with DCM enabled — programs the write-pulse retention class; the device
//! never refreshes itself, instead exposing deadline queries and a scrub
//! verb for the software control plane; and reads come back qualified by
//! the configured ECC: *clean* (decoder guarantees the data),
//! *degraded* (correctable but the scrub margin has been crossed), or
//! *expired/uncorrectable* (recompute or refetch — acceptable, because
//! inference data is soft state).

use std::collections::BTreeMap;

use mrm_controller::dcm::RetentionClass;
use mrm_controller::mrm_block::{MrmBlockController, ZoneError, ZoneId};
use mrm_device::device::MemoryDevice;
use mrm_device::energy::EnergyBreakdown;
use mrm_ecc::analysis::codeword_failure_prob;
use mrm_sim::time::{SimDuration, SimTime};

use crate::config::MrmConfig;

/// Stream identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

/// Errors surfaced by [`MrmDevice`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MrmError {
    /// Unknown stream.
    NoSuchStream,
    /// Device capacity exhausted.
    OutOfSpace,
    /// Read range beyond what the stream has appended.
    ReadBeyondEnd,
    /// Underlying controller error.
    Zone(ZoneError),
}

impl std::fmt::Display for MrmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrmError::NoSuchStream => write!(f, "no such stream"),
            MrmError::OutOfSpace => write!(f, "device out of space"),
            MrmError::ReadBeyondEnd => write!(f, "read beyond end of stream"),
            MrmError::Zone(e) => write!(f, "controller error: {e}"),
        }
    }
}

impl std::error::Error for MrmError {}

impl From<ZoneError> for MrmError {
    fn from(e: ZoneError) -> Self {
        match e {
            ZoneError::NoEmptyZones => MrmError::OutOfSpace,
            other => MrmError::Zone(other),
        }
    }
}

/// ECC-qualified integrity of a completed read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadIntegrity {
    /// Within the scrub margin and the decoder meets the reliability
    /// target: data is trustworthy.
    Clean,
    /// Past the scrub margin but the decoder still meets the target: data
    /// is usable, scrub overdue.
    Degraded,
    /// Past the retention deadline or the decoder cannot meet the target:
    /// treat as lost; recompute or refetch (§4 — soft state).
    Expired,
}

/// The result of a read.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadReceipt {
    /// Device service time for the transfer.
    pub service_time: SimDuration,
    /// Raw bit error rate the decoder faced.
    pub rber: f64,
    /// Probability a codeword in this read fails to decode.
    pub cw_fail_prob: f64,
    /// Qualified integrity.
    pub integrity: ReadIntegrity,
}

/// The result of an append.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppendReceipt {
    /// Device service time for the program operation.
    pub service_time: SimDuration,
    /// Retention class the data was programmed at.
    pub class: RetentionClass,
}

#[derive(Clone, Debug)]
struct StreamState {
    zones: Vec<ZoneId>,
    len: u64,
    retention: SimDuration,
    class: RetentionClass,
}

/// Aggregate device statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MrmStats {
    /// Capacity, bytes.
    pub capacity_bytes: u64,
    /// Bytes held by live streams.
    pub live_bytes: u64,
    /// Live streams.
    pub streams: u64,
    /// Energy breakdown so far.
    pub energy: EnergyBreakdown,
    /// Maximum wear fraction across the device.
    pub max_wear: f64,
    /// Scrub operations performed.
    pub scrubs: u64,
}

/// A Managed-Retention Memory device.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Debug)]
pub struct MrmDevice {
    cfg: MrmConfig,
    ctrl: MrmBlockController,
    streams: BTreeMap<StreamId, StreamState>,
    next_stream: u64,
    scrubs: u64,
}

impl MrmDevice {
    /// Builds a device from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zone size zero or larger
    /// than capacity).
    pub fn new(cfg: MrmConfig) -> Self {
        let device = MemoryDevice::new(cfg.tech.clone());
        let ctrl = MrmBlockController::new(device, cfg.zone_bytes);
        MrmDevice {
            cfg,
            ctrl,
            streams: BTreeMap::new(),
            next_stream: 0,
            scrubs: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MrmConfig {
        &self.cfg
    }

    /// Creates an append-only stream whose data is expected to live
    /// `lifetime_hint`. With DCM enabled the retention class is chosen per
    /// the hint; otherwise the native class is used.
    pub fn create_stream(&mut self, lifetime_hint: SimDuration) -> Result<StreamId, MrmError> {
        let class = if self.cfg.dcm {
            RetentionClass::for_lifetime(lifetime_hint, self.cfg.lifetime_margin)
        } else {
            RetentionClass::for_lifetime(self.cfg.tech.retention, 1.0)
        };
        let retention = class
            .duration()
            .min(self.cfg.tech.retention.max(class.duration()));
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        self.streams.insert(
            id,
            StreamState {
                zones: Vec::new(),
                len: 0,
                retention,
                class,
            },
        );
        Ok(id)
    }

    /// Appends `bytes` to a stream, allocating zones as needed (wear-aware).
    pub fn append(
        &mut self,
        now: SimTime,
        id: StreamId,
        bytes: u64,
    ) -> Result<AppendReceipt, MrmError> {
        let zone_bytes = self.ctrl.zone_bytes();
        let (retention, class) = {
            let s = self.streams.get(&id).ok_or(MrmError::NoSuchStream)?;
            (s.retention, s.class)
        };
        let mut remaining = bytes;
        let mut service = SimDuration::ZERO;
        while remaining > 0 {
            // Room left in the stream's tail zone.
            let tail_room = {
                let s = &self.streams[&id];
                match s.zones.last() {
                    Some(&z) => {
                        let wp = self.ctrl.write_pointer(z).map_err(MrmError::from)?;
                        zone_bytes - wp
                    }
                    None => 0,
                }
            };
            if tail_room == 0 {
                let z = self.ctrl.open_zone_least_worn().map_err(MrmError::from)?;
                self.streams
                    .get_mut(&id)
                    .expect("stream id validated at entry to append")
                    .zones
                    .push(z);
                continue;
            }
            let chunk = remaining.min(tail_room);
            let z = *self.streams[&id]
                .zones
                .last()
                .expect("tail_room > 0 implies the stream has an open tail zone");
            let res = self.ctrl.append(now, z, chunk, retention)?;
            service += res.service_time;
            self.streams
                .get_mut(&id)
                .expect("stream id validated at entry to append")
                .len += chunk;
            remaining -= chunk;
        }
        Ok(AppendReceipt {
            service_time: service,
            class,
        })
    }

    /// Bytes appended to a stream so far.
    pub fn stream_len(&self, id: StreamId) -> Result<u64, MrmError> {
        Ok(self.streams.get(&id).ok_or(MrmError::NoSuchStream)?.len)
    }

    /// The retention class a stream was programmed at.
    pub fn stream_class(&self, id: StreamId) -> Result<RetentionClass, MrmError> {
        Ok(self.streams.get(&id).ok_or(MrmError::NoSuchStream)?.class)
    }

    /// Reads `[offset, offset + len)` of a stream and qualifies the result
    /// against the configured ECC and scrub margin.
    pub fn read(
        &mut self,
        now: SimTime,
        id: StreamId,
        offset: u64,
        len: u64,
    ) -> Result<ReadReceipt, MrmError> {
        let zone_bytes = self.ctrl.zone_bytes();
        let (zones, stream_len, retention) = {
            let s = self.streams.get(&id).ok_or(MrmError::NoSuchStream)?;
            (s.zones.clone(), s.len, s.retention)
        };
        if offset + len > stream_len {
            return Err(MrmError::ReadBeyondEnd);
        }
        let mut service = SimDuration::ZERO;
        let mut rber: f64 = 0.0;
        let mut expired = false;
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let zi = (pos / zone_bytes) as usize;
            let in_zone = pos % zone_bytes;
            let chunk = (zone_bytes - in_zone).min(end - pos);
            let res = self.ctrl.read(now, zones[zi], in_zone, chunk)?;
            service += res.service_time;
            rber = rber.max(res.rber);
            expired |= res.expired;
            pos += chunk;
        }
        let ecc = &self.cfg.ecc;
        let cw_fail = codeword_failure_prob(ecc.codeword_bits() as u64, ecc.t as u64, rber);
        let over_margin = {
            // Age relative to retention: approximate via the zone deadline
            // registry — degraded once past scrub_margin of retention.
            let earliest = zones
                .iter()
                .filter_map(|&z| self.ctrl.deadline(z).ok())
                .min()
                .unwrap_or(SimTime::MAX);
            if earliest == SimTime::MAX {
                false
            } else {
                let margin_lead = retention.mul_f64(1.0 - self.cfg.scrub_margin);
                now.saturating_add(margin_lead) > earliest
            }
        };
        let integrity = if expired || cw_fail > 1e-3 {
            ReadIntegrity::Expired
        } else if over_margin || cw_fail > ecc.target_cw_fail {
            ReadIntegrity::Degraded
        } else {
            ReadIntegrity::Clean
        };
        Ok(ReadReceipt {
            service_time: service,
            rber,
            cw_fail_prob: cw_fail,
            integrity,
        })
    }

    /// Streams whose retention deadline falls before `horizon`, via the
    /// controller's registry.
    pub fn streams_expiring_before(&self, horizon: SimTime) -> Vec<(StreamId, SimTime)> {
        let mut out = Vec::new();
        for (&id, s) in &self.streams {
            let earliest = s
                .zones
                .iter()
                .filter_map(|&z| self.ctrl.deadline(z).ok())
                .min()
                .unwrap_or(SimTime::MAX);
            if earliest <= horizon {
                out.push((id, earliest));
            }
        }
        out.sort_by_key(|&(_, d)| d);
        out
    }

    /// Scrubs every zone of a stream, re-arming its retention. Returns
    /// bytes rewritten.
    pub fn scrub_stream(&mut self, now: SimTime, id: StreamId) -> Result<u64, MrmError> {
        let (zones, retention) = {
            let s = self.streams.get(&id).ok_or(MrmError::NoSuchStream)?;
            (s.zones.clone(), s.retention)
        };
        let mut total = 0;
        for z in zones {
            total += self.ctrl.scrub_zone(now, z, retention)?;
        }
        self.scrubs += 1;
        Ok(total)
    }

    /// Drops a stream, resetting its zones (soft state: no erase needed,
    /// the cells simply get reused).
    pub fn delete_stream(&mut self, id: StreamId) -> Result<(), MrmError> {
        let s = self.streams.remove(&id).ok_or(MrmError::NoSuchStream)?;
        for z in s.zones {
            self.ctrl.reset_zone(z)?;
        }
        Ok(())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MrmStats {
        MrmStats {
            capacity_bytes: self.ctrl.device().capacity_bytes(),
            live_bytes: self.streams.values().map(|s| s.len).sum(),
            streams: self.streams.len() as u64,
            energy: self.ctrl.energy(),
            max_wear: self.ctrl.device().max_wear_fraction(),
            scrubs: self.scrubs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MrmConfig;
    use mrm_sim::units::{GIB, MIB};

    fn dev() -> MrmDevice {
        MrmDevice::new(MrmConfig::hours_class(GIB).with_zone_bytes(4 * MIB))
    }

    #[test]
    fn stream_append_read_roundtrip() {
        let mut d = dev();
        let s = d.create_stream(SimDuration::from_mins(30)).unwrap();
        d.append(SimTime::ZERO, s, MIB).unwrap();
        assert_eq!(d.stream_len(s).unwrap(), MIB);
        let r = d
            .read(SimTime::ZERO + SimDuration::from_mins(5), s, 0, MIB)
            .unwrap();
        assert_eq!(r.integrity, ReadIntegrity::Clean);
        assert!(r.service_time > SimDuration::ZERO);
        assert!(r.cw_fail_prob < 1e-12);
    }

    #[test]
    fn dcm_picks_class_from_hint() {
        let mut d = dev();
        let short = d.create_stream(SimDuration::from_secs(10)).unwrap();
        let long = d.create_stream(SimDuration::from_hours(6)).unwrap();
        assert_eq!(d.stream_class(short).unwrap(), RetentionClass::Seconds30);
        assert_eq!(d.stream_class(long).unwrap(), RetentionClass::Hours12);
    }

    #[test]
    fn non_dcm_uses_native_class() {
        let mut d = MrmDevice::new(
            MrmConfig::hours_class(GIB)
                .with_zone_bytes(4 * MIB)
                .without_dcm(),
        );
        let s = d.create_stream(SimDuration::from_secs(1)).unwrap();
        // Native 12 h retention regardless of the 1 s hint.
        assert_eq!(d.stream_class(s).unwrap(), RetentionClass::Hours12);
    }

    #[test]
    fn streams_span_zones() {
        let mut d = dev();
        let s = d.create_stream(SimDuration::from_hours(1)).unwrap();
        d.append(SimTime::ZERO, s, 10 * MIB).unwrap(); // > 2 zones of 4 MiB
        assert_eq!(d.stream_len(s).unwrap(), 10 * MIB);
        let r = d.read(SimTime::ZERO, s, 3 * MIB, 4 * MIB).unwrap(); // crosses zones
        assert_eq!(r.integrity, ReadIntegrity::Clean);
    }

    #[test]
    fn read_beyond_end_rejected() {
        let mut d = dev();
        let s = d.create_stream(SimDuration::from_hours(1)).unwrap();
        d.append(SimTime::ZERO, s, 1000).unwrap();
        assert_eq!(
            d.read(SimTime::ZERO, s, 500, 1000).unwrap_err(),
            MrmError::ReadBeyondEnd
        );
    }

    #[test]
    fn unknown_stream_rejected() {
        let mut d = dev();
        assert_eq!(
            d.append(SimTime::ZERO, StreamId(99), 1).unwrap_err(),
            MrmError::NoSuchStream
        );
        assert_eq!(
            d.stream_len(StreamId(99)).unwrap_err(),
            MrmError::NoSuchStream
        );
    }

    #[test]
    fn expiry_and_scrub_cycle() {
        let mut d = dev();
        let s = d.create_stream(SimDuration::from_mins(8)).unwrap(); // 10m class
        let t0 = SimTime::ZERO;
        d.append(t0, s, MIB).unwrap();

        // Visible in the expiring list before its deadline.
        let horizon = t0 + SimDuration::from_mins(15);
        let expiring = d.streams_expiring_before(horizon);
        assert_eq!(expiring.len(), 1);
        assert_eq!(expiring[0].0, s);

        // Reading well past the deadline: expired.
        let late = t0 + SimDuration::from_mins(25);
        let r = d.read(late, s, 0, MIB).unwrap();
        assert_eq!(r.integrity, ReadIntegrity::Expired);

        // Scrub re-arms.
        let t1 = t0 + SimDuration::from_mins(7);
        let bytes = d.scrub_stream(t1, s).unwrap();
        assert!(bytes >= MIB);
        let r = d.read(t1 + SimDuration::from_mins(5), s, 0, MIB).unwrap();
        assert_ne!(r.integrity, ReadIntegrity::Expired);
        assert_eq!(d.stats().scrubs, 1);
    }

    #[test]
    fn degraded_before_expired() {
        let mut d = dev();
        let s = d.create_stream(SimDuration::from_mins(8)).unwrap(); // 10m class
        let t0 = SimTime::ZERO;
        d.append(t0, s, MIB).unwrap();
        // At 8 of 10 minutes (past the 70% scrub margin) but not expired.
        let r = d.read(t0 + SimDuration::from_mins(8), s, 0, MIB).unwrap();
        assert_eq!(r.integrity, ReadIntegrity::Degraded);
    }

    #[test]
    fn delete_frees_zones_for_reuse() {
        let mut d = MrmDevice::new(MrmConfig::hours_class(16 * MIB).with_zone_bytes(4 * MIB));
        let s1 = d.create_stream(SimDuration::from_hours(1)).unwrap();
        d.append(SimTime::ZERO, s1, 16 * MIB).unwrap(); // whole device
        let s2 = d.create_stream(SimDuration::from_hours(1)).unwrap();
        assert_eq!(
            d.append(SimTime::ZERO, s2, MIB).unwrap_err(),
            MrmError::OutOfSpace
        );
        d.delete_stream(s1).unwrap();
        d.append(SimTime::ZERO, s2, MIB).unwrap();
        assert_eq!(d.stats().streams, 1);
    }

    #[test]
    fn stats_track_live_bytes_and_energy() {
        let mut d = dev();
        let s = d.create_stream(SimDuration::from_hours(1)).unwrap();
        d.append(SimTime::ZERO, s, 2 * MIB).unwrap();
        let st = d.stats();
        assert_eq!(st.live_bytes, 2 * MIB);
        assert!(st.energy.write_j > 0.0);
        assert!(
            st.energy.housekeeping_j.abs() < f64::EPSILON,
            "no device-side housekeeping"
        );
        assert_eq!(st.capacity_bytes, GIB);
    }

    #[test]
    fn wear_levelling_spreads_zone_reuse() {
        let mut d = MrmDevice::new(MrmConfig::hours_class(32 * MIB).with_zone_bytes(4 * MIB));
        // Churn: create/delete streams repeatedly; least-worn allocation
        // must rotate across zones rather than hammering zone 0.
        for _ in 0..16 {
            let s = d.create_stream(SimDuration::from_mins(5)).unwrap();
            d.append(SimTime::ZERO, s, 4 * MIB).unwrap();
            d.delete_stream(s).unwrap();
        }
        let cycles = d.ctrl.device().block_cycles();
        let used_blocks = cycles.iter().filter(|&&c| c > 0).count();
        // 16 zone-writes over 8 zones: reuse must have spread.
        assert!(
            used_blocks > cycles.len() / 4,
            "only {used_blocks} blocks used"
        );
    }
}
