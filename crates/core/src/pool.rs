//! A first-fit range allocator over a [`MemoryDevice`].
//!
//! The tiering control plane composes one [`Pool`] per memory tier (HBM,
//! MRM, LPDDR) and places data structures by lifetime and access pattern
//! (§4, "Retention-aware data placement and scheduling"). The pool keeps a
//! coalescing free list, tracks occupancy, and forwards timed reads/writes
//! (with retention hints) to the device.

use mrm_device::device::{DeviceError, MemoryDevice, OpResult};
use mrm_device::energy::EnergyBreakdown;
use mrm_sim::time::{SimDuration, SimTime};

/// A live allocation: base address and length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// Base byte address in the pool's device.
    pub addr: u64,
    /// Length, bytes.
    pub len: u64,
}

/// Pool errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// Not enough contiguous free space.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Total free bytes (may be fragmented).
        free: u64,
    },
    /// The freed range was not an active allocation.
    InvalidFree,
    /// Zero-byte allocation.
    ZeroSize,
    /// Underlying device error.
    Device(DeviceError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::OutOfMemory { requested, free } => {
                write!(f, "out of memory: requested {requested}, free {free}")
            }
            PoolError::InvalidFree => write!(f, "invalid free"),
            PoolError::ZeroSize => write!(f, "zero-size allocation"),
            PoolError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<DeviceError> for PoolError {
    fn from(e: DeviceError) -> Self {
        PoolError::Device(e)
    }
}

/// A first-fit, coalescing range allocator over a device.
///
/// # Examples
///
/// ```
/// use mrm_core::pool::Pool;
/// use mrm_device::device::MemoryDevice;
/// use mrm_device::tech::presets;
///
/// let mut pool = Pool::new(MemoryDevice::new(presets::hbm3e()));
/// let a = pool.alloc(1 << 20).unwrap();
/// assert_eq!(pool.used_bytes(), 1 << 20);
/// pool.free(a).unwrap();
/// assert_eq!(pool.used_bytes(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Pool {
    device: MemoryDevice,
    /// Sorted, disjoint, coalesced free ranges `(addr, len)`.
    free: Vec<(u64, u64)>,
    /// Active allocations (sorted by addr) for free() validation.
    live: Vec<Allocation>,
    used: u64,
}

impl Pool {
    /// Creates a pool spanning the whole device.
    pub fn new(device: MemoryDevice) -> Self {
        let cap = device.capacity_bytes();
        Pool {
            device,
            free: vec![(0, cap)],
            live: Vec::new(),
            used: 0,
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &MemoryDevice {
        &self.device
    }

    /// Pool capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.device.capacity_bytes()
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes() - self.used
    }

    /// Occupancy fraction.
    pub fn occupancy(&self) -> f64 {
        self.used as f64 / self.capacity_bytes().max(1) as f64
    }

    /// Energy consumed by the pool's device.
    pub fn energy(&self) -> EnergyBreakdown {
        self.device.energy()
    }

    /// Allocates `len` contiguous bytes (first fit).
    pub fn alloc(&mut self, len: u64) -> Result<Allocation, PoolError> {
        if len == 0 {
            return Err(PoolError::ZeroSize);
        }
        let slot = self.free.iter().position(|&(_, flen)| flen >= len);
        match slot {
            None => Err(PoolError::OutOfMemory {
                requested: len,
                free: self.free_bytes(),
            }),
            Some(i) => {
                let (addr, flen) = self.free[i];
                if flen == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = (addr + len, flen - len);
                }
                let a = Allocation { addr, len };
                let pos = self.live.partition_point(|x| x.addr < addr);
                self.live.insert(pos, a);
                self.used += len;
                Ok(a)
            }
        }
    }

    /// Frees an allocation, coalescing adjacent free ranges.
    pub fn free(&mut self, a: Allocation) -> Result<(), PoolError> {
        let pos = self.live.binary_search_by_key(&a.addr, |x| x.addr);
        let Ok(pos) = pos else {
            return Err(PoolError::InvalidFree);
        };
        if self.live[pos] != a {
            return Err(PoolError::InvalidFree);
        }
        self.live.remove(pos);
        self.used -= a.len;
        // Insert into the free list and coalesce neighbours.
        let i = self.free.partition_point(|&(addr, _)| addr < a.addr);
        self.free.insert(i, (a.addr, a.len));
        // Coalesce with next.
        if i + 1 < self.free.len() {
            let (naddr, nlen) = self.free[i + 1];
            if a.addr + a.len == naddr {
                self.free[i].1 += nlen;
                self.free.remove(i + 1);
            }
        }
        // Coalesce with previous.
        if i > 0 {
            let (paddr, plen) = self.free[i - 1];
            if paddr + plen == self.free[i].0 {
                self.free[i - 1].1 += self.free[i].1;
                self.free.remove(i);
            }
        }
        Ok(())
    }

    /// Timed read of an allocation (or a sub-range via `offset`/`len`).
    pub fn read(
        &mut self,
        now: SimTime,
        a: &Allocation,
        offset: u64,
        len: u64,
    ) -> Result<OpResult, PoolError> {
        assert!(offset + len <= a.len, "read outside allocation");
        Ok(self.device.read(now, a.addr + offset, len)?)
    }

    /// Timed write of an allocation sub-range with a retention hint.
    pub fn write(
        &mut self,
        now: SimTime,
        a: &Allocation,
        offset: u64,
        len: u64,
        retention: SimDuration,
    ) -> Result<OpResult, PoolError> {
        assert!(offset + len <= a.len, "write outside allocation");
        Ok(self
            .device
            .write_with_retention(now, a.addr + offset, len, retention)?)
    }

    /// Number of fragments in the free list (fragmentation metric).
    pub fn free_fragments(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_device::tech::presets;
    use mrm_sim::units::MIB;

    fn pool() -> Pool {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = 64 * MIB;
        Pool::new(MemoryDevice::new(tech))
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut p = pool();
        let a = p.alloc(MIB).unwrap();
        let b = p.alloc(2 * MIB).unwrap();
        assert_eq!(p.used_bytes(), 3 * MIB);
        assert_ne!(a.addr, b.addr);
        p.free(a).unwrap();
        p.free(b).unwrap();
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.free_fragments(), 1, "must coalesce back to one range");
    }

    #[test]
    fn first_fit_reuses_holes() {
        let mut p = pool();
        let a = p.alloc(MIB).unwrap();
        let _b = p.alloc(MIB).unwrap();
        p.free(a).unwrap();
        let c = p.alloc(MIB / 2).unwrap();
        assert_eq!(c.addr, a.addr, "first fit should land in the hole");
    }

    #[test]
    fn out_of_memory_reports_free() {
        let mut p = pool();
        let _a = p.alloc(60 * MIB).unwrap();
        match p.alloc(8 * MIB) {
            Err(PoolError::OutOfMemory { requested, free }) => {
                assert_eq!(requested, 8 * MIB);
                assert_eq!(free, 4 * MIB);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn fragmentation_then_coalesce() {
        let mut p = pool();
        let allocs: Vec<Allocation> = (0..8).map(|_| p.alloc(MIB).unwrap()).collect();
        // Free every other one: fragments.
        for a in allocs.iter().step_by(2) {
            p.free(*a).unwrap();
        }
        assert!(p.free_fragments() >= 4);
        // Free the rest: everything coalesces.
        for a in allocs.iter().skip(1).step_by(2) {
            p.free(*a).unwrap();
        }
        assert_eq!(p.free_fragments(), 1);
        assert_eq!(p.used_bytes(), 0);
    }

    #[test]
    fn double_free_rejected() {
        let mut p = pool();
        let a = p.alloc(MIB).unwrap();
        p.free(a).unwrap();
        assert_eq!(p.free(a).unwrap_err(), PoolError::InvalidFree);
    }

    #[test]
    fn bogus_free_rejected() {
        let mut p = pool();
        let _a = p.alloc(MIB).unwrap();
        assert_eq!(
            p.free(Allocation {
                addr: 12345,
                len: 10
            })
            .unwrap_err(),
            PoolError::InvalidFree
        );
    }

    #[test]
    fn zero_alloc_rejected() {
        assert_eq!(pool().alloc(0).unwrap_err(), PoolError::ZeroSize);
    }

    #[test]
    fn timed_io_goes_through() {
        let mut p = pool();
        let a = p.alloc(MIB).unwrap();
        let w = p
            .write(SimTime::ZERO, &a, 0, MIB, SimDuration::from_hours(1))
            .unwrap();
        let r = p.read(SimTime::ZERO, &a, 0, MIB).unwrap();
        assert!(w.service_time > SimDuration::ZERO);
        assert!(r.service_time > SimDuration::ZERO);
        assert!(p.energy().write_j > 0.0);
        assert!(p.energy().read_j > 0.0);
    }

    #[test]
    fn occupancy() {
        let mut p = pool();
        assert!(p.occupancy().abs() < f64::EPSILON);
        let _ = p.alloc(32 * MIB).unwrap();
        assert!((p.occupancy() - 0.5).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mrm_device::tech::presets;
    use mrm_sim::units::MIB;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn allocations_never_overlap_and_accounting_balances(
            ops in proptest::collection::vec((1u64..512, prop::bool::ANY), 1..200)
        ) {
            let mut tech = presets::mrm_hours();
            tech.capacity_bytes = MIB;
            let mut p = Pool::new(mrm_device::device::MemoryDevice::new(tech));
            let mut live: Vec<Allocation> = Vec::new();
            for (size, do_free) in ops {
                if do_free && !live.is_empty() {
                    let a = live.swap_remove(0);
                    p.free(a).unwrap();
                } else if let Ok(a) = p.alloc(size * 1024) {
                    live.push(a);
                }
                // No two live allocations overlap.
                let mut sorted = live.clone();
                sorted.sort_by_key(|a| a.addr);
                for w in sorted.windows(2) {
                    prop_assert!(w[0].addr + w[0].len <= w[1].addr);
                }
                let used: u64 = live.iter().map(|a| a.len).sum();
                prop_assert_eq!(p.used_bytes(), used);
            }
        }
    }
}
