//! A first-fit range allocator over a [`MemoryDevice`].
//!
//! The tiering control plane composes one [`Pool`] per memory tier (HBM,
//! MRM, LPDDR) and places data structures by lifetime and access pattern
//! (§4, "Retention-aware data placement and scheduling"). The pool keeps a
//! coalescing free list, tracks occupancy, and forwards timed reads/writes
//! (with retention hints) to the device.
//!
//! # Complexity
//!
//! Placement decisions run on every KV allocation, eviction and migration,
//! so the allocator is on the simulator's hottest path. Free ranges live in
//! an address-ordered treap ([`FreeTree`]) augmented with the maximum free
//! length per subtree: `alloc` descends left-first, so it finds the
//! *lowest-address* range that fits — exactly the classic first-fit scan —
//! in O(log n) instead of O(n). Live allocations are validated through a
//! deterministic open-addressing index ([`LiveMap`]) instead of a sorted
//! `Vec`, making `free` (lookup + coalesce) O(log n) instead of O(n)
//! `Vec::insert`/`remove` shuffles. The behaviour is byte-identical to the
//! original flat-`Vec` allocator (kept as [`LegacyVecPool`], the oracle for
//! the model-based property tests and the baseline for the `perf_suite`
//! pool-churn scenario).

use mrm_device::device::{DeviceError, MemoryDevice, OpResult};
use mrm_device::energy::EnergyBreakdown;
use mrm_sim::time::{SimDuration, SimTime};

/// A live allocation: base address and length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// Base byte address in the pool's device.
    pub addr: u64,
    /// Length, bytes.
    pub len: u64,
}

/// Pool errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// Not enough contiguous free space.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Total free bytes (may be fragmented).
        free: u64,
    },
    /// The freed range was not an active allocation.
    InvalidFree,
    /// Zero-byte allocation.
    ZeroSize,
    /// Underlying device error.
    Device(DeviceError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::OutOfMemory { requested, free } => {
                write!(f, "out of memory: requested {requested}, free {free}")
            }
            PoolError::InvalidFree => write!(f, "invalid free"),
            PoolError::ZeroSize => write!(f, "zero-size allocation"),
            PoolError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<DeviceError> for PoolError {
    fn from(e: DeviceError) -> Self {
        PoolError::Device(e)
    }
}

/// Sentinel arena index for "no child".
const NIL: u32 = u32::MAX;

/// One free range in the [`FreeTree`] arena.
#[derive(Clone, Copy, Debug)]
struct FreeNode {
    /// Range base address (the BST key).
    addr: u64,
    /// Range length, bytes.
    len: u64,
    /// Maximum `len` in this node's subtree (first-fit augmentation).
    max_len: u64,
    /// Heap priority: a deterministic hash of the address at insert time.
    prio: u64,
    left: u32,
    right: u32,
}

/// An address-ordered treap of disjoint free ranges, augmented with the
/// max free length per subtree.
///
/// Nodes live in an index-based arena (`Vec<FreeNode>` plus a recycled-slot
/// list), so the tree is `Clone`, cache-friendly, and can pre-reserve from a
/// capacity hint. Priorities come from a fixed splitmix64 of the inserted
/// address: deterministic (no ambient entropy — D3), and effectively random
/// so expected depth stays O(log n). First-fit never depends on tree shape
/// (lowest address with `len >= want` is a property of the range *set*), so
/// results are identical to a linear scan.
#[derive(Clone, Debug)]
struct FreeTree {
    nodes: Vec<FreeNode>,
    /// Recycled arena slots.
    spare: Vec<u32>,
    root: u32,
    /// Number of ranges in the tree.
    count: usize,
}

/// splitmix64: a fixed, seedless mixing function — deterministic priorities.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FreeTree {
    fn new() -> Self {
        FreeTree {
            nodes: Vec::new(),
            spare: Vec::new(),
            root: NIL,
            count: 0,
        }
    }

    fn with_capacity(n: usize) -> Self {
        let mut t = FreeTree::new();
        t.nodes.reserve(n);
        t
    }

    /// Number of free ranges.
    fn len(&self) -> usize {
        self.count
    }

    /// The largest single free range, or 0 when empty (O(1): the root's
    /// augmentation).
    fn max_free(&self) -> u64 {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].max_len
        }
    }

    fn new_node(&mut self, addr: u64, len: u64) -> u32 {
        let node = FreeNode {
            addr,
            len,
            max_len: len,
            prio: mix64(addr),
            left: NIL,
            right: NIL,
        };
        match self.spare.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn release(&mut self, i: u32) {
        self.spare.push(i);
    }

    /// Recomputes `max_len` from a node's own length and its children.
    fn pull(&mut self, t: u32) {
        let (l, r, len) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right, n.len)
        };
        let mut m = len;
        if l != NIL {
            m = m.max(self.nodes[l as usize].max_len);
        }
        if r != NIL {
            m = m.max(self.nodes[r as usize].max_len);
        }
        self.nodes[t as usize].max_len = m;
    }

    /// Splits subtree `t` into `(keys < key, keys >= key)`.
    fn split(&mut self, t: u32, key: u64) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].addr < key {
            let (a, b) = self.split(self.nodes[t as usize].right, key);
            self.nodes[t as usize].right = a;
            self.pull(t);
            (t, b)
        } else {
            let (a, b) = self.split(self.nodes[t as usize].left, key);
            self.nodes[t as usize].left = b;
            self.pull(t);
            (a, t)
        }
    }

    /// Merges subtrees `a` and `b`; every key in `a` is below every key in
    /// `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let r = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = r;
            self.pull(a);
            a
        } else {
            let l = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = l;
            self.pull(b);
            b
        }
    }

    /// Inserts a range. The caller guarantees `addr` is not already present
    /// and the range is disjoint from (and non-adjacent to) its neighbours.
    ///
    /// Standard treap insert: descend by key until the new node's priority
    /// wins, split only that subtree — one descent, not a root-level
    /// split + two merges.
    fn insert(&mut self, addr: u64, len: u64) {
        let n = self.new_node(addr, len);
        self.root = self.insert_rec(self.root, n);
        self.count += 1;
    }

    fn insert_rec(&mut self, t: u32, n: u32) -> u32 {
        if t == NIL {
            return n;
        }
        if self.nodes[n as usize].prio > self.nodes[t as usize].prio {
            let (l, r) = self.split(t, self.nodes[n as usize].addr);
            self.nodes[n as usize].left = l;
            self.nodes[n as usize].right = r;
            self.pull(n);
            return n;
        }
        if self.nodes[n as usize].addr < self.nodes[t as usize].addr {
            let nl = self.insert_rec(self.nodes[t as usize].left, n);
            self.nodes[t as usize].left = nl;
        } else {
            let nr = self.insert_rec(self.nodes[t as usize].right, n);
            self.nodes[t as usize].right = nr;
        }
        self.pull(t);
        t
    }

    /// Removes the range starting exactly at `addr`, returning its length.
    ///
    /// A targeted descent: a miss costs a pure key search (no restructuring
    /// at all — the probe for a non-adjacent successor is the common case
    /// in `free`), a hit merges the found node's children in place.
    fn remove(&mut self, addr: u64) -> Option<u64> {
        let (root, removed) = self.remove_rec(self.root, addr);
        self.root = root;
        if removed.is_some() {
            self.count -= 1;
        }
        removed
    }

    fn remove_rec(&mut self, t: u32, addr: u64) -> (u32, Option<u64>) {
        if t == NIL {
            return (NIL, None);
        }
        let naddr = self.nodes[t as usize].addr;
        if addr == naddr {
            let len = self.nodes[t as usize].len;
            let m = self.merge(self.nodes[t as usize].left, self.nodes[t as usize].right);
            self.release(t);
            return (m, Some(len));
        }
        if addr < naddr {
            let (nl, res) = self.remove_rec(self.nodes[t as usize].left, addr);
            self.nodes[t as usize].left = nl;
            if res.is_some() {
                self.pull(t);
            }
            (t, res)
        } else {
            let (nr, res) = self.remove_rec(self.nodes[t as usize].right, addr);
            self.nodes[t as usize].right = nr;
            if res.is_some() {
                self.pull(t);
            }
            (t, res)
        }
    }

    /// Grows the range keyed `addr` by `extra` bytes (coalescing into an
    /// existing predecessor): the key is unchanged, so this is a single
    /// descent updating `len` and re-pulling `max_len` on the way out — no
    /// structural change.
    fn extend_at(&mut self, addr: u64, extra: u64) {
        let root = self.root;
        self.extend_rec(root, addr, extra);
    }

    fn extend_rec(&mut self, t: u32, addr: u64, extra: u64) {
        debug_assert!(t != NIL, "extend_at: range not present");
        let naddr = self.nodes[t as usize].addr;
        if addr == naddr {
            self.nodes[t as usize].len += extra;
        } else if addr < naddr {
            let l = self.nodes[t as usize].left;
            self.extend_rec(l, addr, extra);
        } else {
            let r = self.nodes[t as usize].right;
            self.extend_rec(r, addr, extra);
        }
        self.pull(t);
    }

    /// Coalesces the freed range `[addr, addr + len)` with an adjacent
    /// successor, if one exists: the successor node at key `addr + len` is
    /// re-keyed down to `addr` and grown in place. Legal because no free
    /// range can begin inside the just-freed span, so the new key still
    /// sorts directly after the same predecessor; the node's priority is
    /// untouched (priorities only need to be heap-ordered, and first-fit
    /// results never depend on tree shape). Returns false when no
    /// successor starts exactly at `addr + len` (pure descent, no writes).
    fn absorb_successor(&mut self, addr: u64, len: u64) -> bool {
        let root = self.root;
        self.absorb_rec(root, addr, len)
    }

    fn absorb_rec(&mut self, t: u32, addr: u64, len: u64) -> bool {
        if t == NIL {
            return false;
        }
        let key = addr + len;
        let naddr = self.nodes[t as usize].addr;
        let hit = if key == naddr {
            let n = &mut self.nodes[t as usize];
            n.addr = addr;
            n.len += len;
            true
        } else if key < naddr {
            let l = self.nodes[t as usize].left;
            self.absorb_rec(l, addr, len)
        } else {
            let r = self.nodes[t as usize].right;
            self.absorb_rec(r, addr, len)
        };
        if hit {
            self.pull(t);
        }
        hit
    }

    /// The range with the greatest base address strictly below `addr`.
    fn pred(&self, addr: u64) -> Option<(u64, u64)> {
        let mut t = self.root;
        let mut best = None;
        while t != NIL {
            let n = &self.nodes[t as usize];
            if n.addr < addr {
                best = Some((n.addr, n.len));
                t = n.right;
            } else {
                t = n.left;
            }
        }
        best
    }

    /// Carves `want` bytes from the lowest-address range with
    /// `len >= want` (first fit), returning the carved base address.
    ///
    /// An exact-length match removes the range; otherwise the range keeps
    /// its node and shifts its base in place (`addr + want` still sorts
    /// before the next range, so the BST order is untouched and no
    /// rebalancing is needed).
    fn take_first_fit(&mut self, want: u64) -> Option<u64> {
        if self.root == NIL || self.nodes[self.root as usize].max_len < want {
            return None;
        }
        let (root, addr) = self.take_rec(self.root, want);
        self.root = root;
        Some(addr)
    }

    fn take_rec(&mut self, t: u32, want: u64) -> (u32, u64) {
        let left = self.nodes[t as usize].left;
        // Lowest address first: any fit in the left subtree wins.
        if left != NIL && self.nodes[left as usize].max_len >= want {
            let (nl, addr) = self.take_rec(left, want);
            self.nodes[t as usize].left = nl;
            self.pull(t);
            return (t, addr);
        }
        if self.nodes[t as usize].len >= want {
            let addr = self.nodes[t as usize].addr;
            if self.nodes[t as usize].len == want {
                let right = self.nodes[t as usize].right;
                let m = self.merge(left, right);
                self.release(t);
                self.count -= 1;
                return (m, addr);
            }
            self.nodes[t as usize].addr = addr + want;
            self.nodes[t as usize].len -= want;
            self.pull(t);
            return (t, addr);
        }
        // Invariant: this subtree's max_len >= want, and neither the left
        // subtree nor this node fits, so the right subtree must.
        let right = self.nodes[t as usize].right;
        debug_assert!(
            right != NIL && self.nodes[right as usize].max_len >= want,
            "max_len augmentation out of sync"
        );
        let (nr, addr) = self.take_rec(right, want);
        self.nodes[t as usize].right = nr;
        self.pull(t);
        (t, addr)
    }

    /// All ranges in address order (diagnostic / test use; O(n)).
    fn ranges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.count);
        // Explicit stack: no recursion-depth concern for diagnostics.
        let mut stack = Vec::new();
        let mut t = self.root;
        while t != NIL || !stack.is_empty() {
            while t != NIL {
                stack.push(t);
                t = self.nodes[t as usize].left;
            }
            let top = stack.pop().expect("stack non-empty by loop condition");
            let n = &self.nodes[top as usize];
            out.push((n.addr, n.len));
            t = n.right;
        }
        out
    }
}

/// Deterministic open-addressing index `addr -> len` for live-allocation
/// validation (double-free / wrong-length detection in `Pool::free`).
///
/// Hashing is a fixed splitmix64 of the address — no ambient entropy (the
/// workspace's D3 discipline) and no iteration anywhere, so it cannot
/// influence observable results; it exists purely because the validation
/// lookup sits on the alloc/free hot path. Linear probing with
/// backward-shift deletion (no tombstones); `len == 0` marks an empty slot,
/// which is unambiguous because zero-length allocations are rejected before
/// they reach the index.
#[derive(Clone, Debug)]
struct LiveMap {
    /// `(addr, len)` slots; `len == 0` means empty.
    slots: Vec<(u64, u64)>,
    occupied: usize,
    mask: usize,
}

impl LiveMap {
    fn with_capacity(n: usize) -> Self {
        let cap = (n.max(8) * 2).next_power_of_two();
        LiveMap {
            slots: vec![(0, 0); cap],
            occupied: 0,
            mask: cap - 1,
        }
    }

    fn home(&self, addr: u64) -> usize {
        (mix64(addr) as usize) & self.mask
    }

    fn insert(&mut self, addr: u64, len: u64) {
        debug_assert!(len > 0, "LiveMap uses len == 0 as the empty marker");
        if (self.occupied + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.home(addr);
        loop {
            if self.slots[i].1 == 0 {
                self.slots[i] = (addr, len);
                self.occupied += 1;
                return;
            }
            debug_assert_ne!(self.slots[i].0, addr, "duplicate live address");
            i = (i + 1) & self.mask;
        }
    }

    fn get(&self, addr: u64) -> Option<u64> {
        let mut i = self.home(addr);
        loop {
            let (a, l) = self.slots[i];
            if l == 0 {
                return None;
            }
            if a == addr {
                return Some(l);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn remove(&mut self, addr: u64) -> Option<u64> {
        let mut i = self.home(addr);
        loop {
            let (a, l) = self.slots[i];
            if l == 0 {
                return None;
            }
            if a == addr {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let removed = self.slots[i].1;
        self.occupied -= 1;
        // Backward-shift deletion: walk the probe chain after the gap and
        // pull back any entry whose home position lies cyclically at or
        // before the gap, so every surviving entry stays reachable.
        let mut gap = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            if self.slots[j].1 == 0 {
                break;
            }
            let h = self.home(self.slots[j].0);
            let fits = if h <= j {
                (h..j).contains(&gap)
            } else {
                gap >= h || gap < j
            };
            if fits {
                self.slots[gap] = self.slots[j];
                gap = j;
            }
        }
        self.slots[gap] = (0, 0);
        Some(removed)
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); doubled]);
        self.mask = self.slots.len() - 1;
        self.occupied = 0;
        for (addr, len) in old {
            if len > 0 {
                self.insert(addr, len);
            }
        }
    }
}

/// A first-fit, coalescing range allocator over a device.
///
/// # Examples
///
/// ```
/// use mrm_core::pool::Pool;
/// use mrm_device::device::MemoryDevice;
/// use mrm_device::tech::presets;
///
/// let mut pool = Pool::new(MemoryDevice::new(presets::hbm3e()));
/// let a = pool.alloc(1 << 20).unwrap();
/// assert_eq!(pool.used_bytes(), 1 << 20);
/// pool.free(a).unwrap();
/// assert_eq!(pool.used_bytes(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Pool {
    device: MemoryDevice,
    /// Disjoint, coalesced free ranges, address-ordered with max-free-len
    /// augmentation (first fit in O(log n)).
    free: FreeTree,
    /// Active allocations (`addr -> len`) for `free()` validation.
    live: LiveMap,
    used: u64,
}

impl Pool {
    /// Creates a pool spanning the whole device.
    pub fn new(device: MemoryDevice) -> Self {
        Pool::with_capacity_hint(device, 0)
    }

    /// Creates a pool spanning the whole device, pre-reserving internal
    /// structures for about `expected_live` concurrent allocations (free
    /// fragments never exceed live allocations + 1). Purely a wall-clock
    /// hint: behaviour is identical to [`Pool::new`].
    pub fn with_capacity_hint(device: MemoryDevice, expected_live: usize) -> Self {
        let cap = device.capacity_bytes();
        let mut free = FreeTree::with_capacity(expected_live.saturating_add(1));
        free.insert(0, cap);
        Pool {
            device,
            free,
            live: LiveMap::with_capacity(expected_live),
            used: 0,
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &MemoryDevice {
        &self.device
    }

    /// Pool capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.device.capacity_bytes()
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes() - self.used
    }

    /// The largest contiguous free range, bytes (O(1)).
    pub fn largest_free_bytes(&self) -> u64 {
        self.free.max_free()
    }

    /// Occupancy fraction.
    pub fn occupancy(&self) -> f64 {
        self.used as f64 / self.capacity_bytes().max(1) as f64
    }

    /// Energy consumed by the pool's device.
    pub fn energy(&self) -> EnergyBreakdown {
        self.device.energy()
    }

    /// Allocates `len` contiguous bytes (first fit, lowest address).
    pub fn alloc(&mut self, len: u64) -> Result<Allocation, PoolError> {
        if len == 0 {
            return Err(PoolError::ZeroSize);
        }
        match self.free.take_first_fit(len) {
            None => Err(PoolError::OutOfMemory {
                requested: len,
                free: self.free_bytes(),
            }),
            Some(addr) => {
                self.live.insert(addr, len);
                self.used += len;
                Ok(Allocation { addr, len })
            }
        }
    }

    /// Frees an allocation, coalescing adjacent free ranges.
    pub fn free(&mut self, a: Allocation) -> Result<(), PoolError> {
        if self.live.get(a.addr) != Some(a.len) {
            return Err(PoolError::InvalidFree);
        }
        self.live.remove(a.addr);
        self.used -= a.len;
        // Coalesce with the previous range if it ends exactly at `a.addr`.
        if let Some((paddr, plen)) = self.free.pred(a.addr) {
            if paddr + plen == a.addr {
                // The predecessor keeps its node and key: absorb the freed
                // span (and an adjacent successor, if any) into it.
                let nlen = self.free.remove(a.addr + a.len).unwrap_or(0);
                self.free.extend_at(paddr, a.len + nlen);
                return Ok(());
            }
        }
        // No predecessor to grow: either re-key an adjacent successor down
        // onto the freed span, or insert a fresh range.
        if !self.free.absorb_successor(a.addr, a.len) {
            self.free.insert(a.addr, a.len);
        }
        Ok(())
    }

    /// Timed read of an allocation (or a sub-range via `offset`/`len`).
    pub fn read(
        &mut self,
        now: SimTime,
        a: &Allocation,
        offset: u64,
        len: u64,
    ) -> Result<OpResult, PoolError> {
        assert!(offset + len <= a.len, "read outside allocation");
        Ok(self.device.read(now, a.addr + offset, len)?)
    }

    /// Timed write of an allocation sub-range with a retention hint.
    pub fn write(
        &mut self,
        now: SimTime,
        a: &Allocation,
        offset: u64,
        len: u64,
        retention: SimDuration,
    ) -> Result<OpResult, PoolError> {
        assert!(offset + len <= a.len, "write outside allocation");
        Ok(self
            .device
            .write_with_retention(now, a.addr + offset, len, retention)?)
    }

    /// Number of fragments in the free list (fragmentation metric).
    pub fn free_fragments(&self) -> usize {
        self.free.len()
    }

    /// The free ranges in address order (diagnostic; O(n)).
    pub fn free_ranges(&self) -> Vec<(u64, u64)> {
        self.free.ranges()
    }
}

/// The original flat-`Vec` first-fit allocator, device-free.
///
/// Retained verbatim (linear first-fit scan per `alloc`, sorted
/// `Vec::insert`/`remove` per `free`) as the **oracle** for the model-based
/// property tests — the treap-backed [`Pool`] must produce byte-identical
/// addresses, fragment lists and errors for any operation sequence — and as
/// the **baseline** the `perf_suite` pool-churn scenario measures the
/// O(log n) allocator against. Not intended for production use.
#[derive(Clone, Debug)]
pub struct LegacyVecPool {
    capacity: u64,
    /// Sorted, disjoint, coalesced free ranges `(addr, len)`.
    free: Vec<(u64, u64)>,
    /// Active allocations (sorted by addr) for free() validation.
    live: Vec<Allocation>,
    used: u64,
}

impl LegacyVecPool {
    /// Creates an allocator over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LegacyVecPool {
            capacity,
            free: vec![(0, capacity)],
            live: Vec::new(),
            used: 0,
        }
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Allocates `len` contiguous bytes (first fit, linear scan).
    pub fn alloc(&mut self, len: u64) -> Result<Allocation, PoolError> {
        if len == 0 {
            return Err(PoolError::ZeroSize);
        }
        let slot = self.free.iter().position(|&(_, flen)| flen >= len);
        match slot {
            None => Err(PoolError::OutOfMemory {
                requested: len,
                free: self.free_bytes(),
            }),
            Some(i) => {
                let (addr, flen) = self.free[i];
                if flen == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = (addr + len, flen - len);
                }
                let a = Allocation { addr, len };
                let pos = self.live.partition_point(|x| x.addr < addr);
                self.live.insert(pos, a);
                self.used += len;
                Ok(a)
            }
        }
    }

    /// Frees an allocation, coalescing adjacent free ranges.
    pub fn free(&mut self, a: Allocation) -> Result<(), PoolError> {
        let pos = self.live.binary_search_by_key(&a.addr, |x| x.addr);
        let Ok(pos) = pos else {
            return Err(PoolError::InvalidFree);
        };
        if self.live[pos] != a {
            return Err(PoolError::InvalidFree);
        }
        self.live.remove(pos);
        self.used -= a.len;
        // Insert into the free list and coalesce neighbours.
        let i = self.free.partition_point(|&(addr, _)| addr < a.addr);
        self.free.insert(i, (a.addr, a.len));
        // Coalesce with next.
        if i + 1 < self.free.len() {
            let (naddr, nlen) = self.free[i + 1];
            if a.addr + a.len == naddr {
                self.free[i].1 += nlen;
                self.free.remove(i + 1);
            }
        }
        // Coalesce with previous.
        if i > 0 {
            let (paddr, plen) = self.free[i - 1];
            if paddr + plen == self.free[i].0 {
                self.free[i - 1].1 += self.free[i].1;
                self.free.remove(i);
            }
        }
        Ok(())
    }

    /// Number of fragments in the free list.
    pub fn free_fragments(&self) -> usize {
        self.free.len()
    }

    /// The free ranges in address order.
    pub fn free_ranges(&self) -> Vec<(u64, u64)> {
        self.free.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_device::tech::presets;
    use mrm_sim::units::MIB;

    fn pool() -> Pool {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = 64 * MIB;
        Pool::new(MemoryDevice::new(tech))
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut p = pool();
        let a = p.alloc(MIB).unwrap();
        let b = p.alloc(2 * MIB).unwrap();
        assert_eq!(p.used_bytes(), 3 * MIB);
        assert_ne!(a.addr, b.addr);
        p.free(a).unwrap();
        p.free(b).unwrap();
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.free_fragments(), 1, "must coalesce back to one range");
    }

    #[test]
    fn first_fit_reuses_holes() {
        let mut p = pool();
        let a = p.alloc(MIB).unwrap();
        let _b = p.alloc(MIB).unwrap();
        p.free(a).unwrap();
        let c = p.alloc(MIB / 2).unwrap();
        assert_eq!(c.addr, a.addr, "first fit should land in the hole");
    }

    #[test]
    fn first_fit_prefers_lowest_address_hole() {
        // Three holes of equal size at increasing addresses: first fit must
        // take the lowest one every time, regardless of tree shape.
        let mut p = pool();
        let allocs: Vec<Allocation> = (0..8).map(|_| p.alloc(MIB).unwrap()).collect();
        p.free(allocs[5]).unwrap();
        p.free(allocs[1]).unwrap();
        p.free(allocs[3]).unwrap();
        let got = p.alloc(MIB).unwrap();
        assert_eq!(got.addr, allocs[1].addr, "lowest-address hole wins");
        let got2 = p.alloc(MIB).unwrap();
        assert_eq!(got2.addr, allocs[3].addr);
    }

    #[test]
    fn out_of_memory_reports_free() {
        let mut p = pool();
        let _a = p.alloc(60 * MIB).unwrap();
        match p.alloc(8 * MIB) {
            Err(PoolError::OutOfMemory { requested, free }) => {
                assert_eq!(requested, 8 * MIB);
                assert_eq!(free, 4 * MIB);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn fragmentation_then_coalesce() {
        let mut p = pool();
        let allocs: Vec<Allocation> = (0..8).map(|_| p.alloc(MIB).unwrap()).collect();
        // Free every other one: fragments.
        for a in allocs.iter().step_by(2) {
            p.free(*a).unwrap();
        }
        assert!(p.free_fragments() >= 4);
        // Free the rest: everything coalesces.
        for a in allocs.iter().skip(1).step_by(2) {
            p.free(*a).unwrap();
        }
        assert_eq!(p.free_fragments(), 1);
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.free_ranges(), vec![(0, 64 * MIB)]);
    }

    #[test]
    fn largest_free_tracks_fragmentation() {
        let mut p = pool();
        assert_eq!(p.largest_free_bytes(), 64 * MIB);
        let a = p.alloc(MIB).unwrap();
        let _b = p.alloc(MIB).unwrap();
        assert_eq!(p.largest_free_bytes(), 62 * MIB);
        p.free(a).unwrap();
        // Two fragments: the 1 MiB hole and the 62 MiB tail.
        assert_eq!(p.free_fragments(), 2);
        assert_eq!(p.largest_free_bytes(), 62 * MIB);
    }

    #[test]
    fn double_free_rejected() {
        let mut p = pool();
        let a = p.alloc(MIB).unwrap();
        p.free(a).unwrap();
        assert_eq!(p.free(a).unwrap_err(), PoolError::InvalidFree);
    }

    #[test]
    fn bogus_free_rejected() {
        let mut p = pool();
        let _a = p.alloc(MIB).unwrap();
        assert_eq!(
            p.free(Allocation {
                addr: 12345,
                len: 10
            })
            .unwrap_err(),
            PoolError::InvalidFree
        );
    }

    #[test]
    fn free_with_wrong_len_rejected() {
        let mut p = pool();
        let a = p.alloc(MIB).unwrap();
        assert_eq!(
            p.free(Allocation {
                addr: a.addr,
                len: a.len - 1
            })
            .unwrap_err(),
            PoolError::InvalidFree
        );
        // The allocation is still live and can be freed correctly.
        p.free(a).unwrap();
        assert_eq!(p.used_bytes(), 0);
    }

    #[test]
    fn zero_alloc_rejected() {
        assert_eq!(pool().alloc(0).unwrap_err(), PoolError::ZeroSize);
    }

    #[test]
    fn timed_io_goes_through() {
        let mut p = pool();
        let a = p.alloc(MIB).unwrap();
        let w = p
            .write(SimTime::ZERO, &a, 0, MIB, SimDuration::from_hours(1))
            .unwrap();
        let r = p.read(SimTime::ZERO, &a, 0, MIB).unwrap();
        assert!(w.service_time > SimDuration::ZERO);
        assert!(r.service_time > SimDuration::ZERO);
        assert!(p.energy().write_j > 0.0);
        assert!(p.energy().read_j > 0.0);
    }

    #[test]
    fn occupancy() {
        let mut p = pool();
        assert!(p.occupancy().abs() < f64::EPSILON);
        let _ = p.alloc(32 * MIB).unwrap();
        assert!((p.occupancy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_hint_changes_nothing_observable() {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = 64 * MIB;
        let mut a = Pool::new(MemoryDevice::new(tech.clone()));
        let mut b = Pool::with_capacity_hint(MemoryDevice::new(tech), 10_000);
        for i in 1..64 {
            let x = a.alloc(i * 1024).unwrap();
            let y = b.alloc(i * 1024).unwrap();
            assert_eq!(x, y);
        }
        assert_eq!(a.free_ranges(), b.free_ranges());
    }

    #[test]
    fn deep_churn_stays_consistent() {
        // A few thousand deterministic alloc/free cycles: accounting,
        // coalescing and the max_len augmentation must all stay in sync.
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = 256 * MIB;
        let mut p = Pool::new(MemoryDevice::new(tech));
        let mut live: Vec<Allocation> = Vec::new();
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..4000 {
            let r = next();
            if r % 3 != 0 || live.is_empty() {
                let len = (next() % 255 + 1) * 1024;
                if let Ok(a) = p.alloc(len) {
                    live.push(a);
                }
            } else {
                let idx = (next() as usize) % live.len();
                let a = live.swap_remove(idx);
                p.free(a).unwrap();
            }
            let used: u64 = live.iter().map(|a| a.len).sum();
            assert_eq!(p.used_bytes(), used);
            assert!(p.free_fragments() <= live.len() + 1);
        }
        for a in live.drain(..) {
            p.free(a).unwrap();
        }
        assert_eq!(p.free_fragments(), 1);
        assert_eq!(p.largest_free_bytes(), 256 * MIB);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mrm_device::tech::presets;
    use mrm_sim::units::MIB;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn allocations_never_overlap_and_accounting_balances(
            ops in proptest::collection::vec((1u64..512, prop::bool::ANY), 1..200)
        ) {
            let mut tech = presets::mrm_hours();
            tech.capacity_bytes = MIB;
            let mut p = Pool::new(mrm_device::device::MemoryDevice::new(tech));
            let mut live: Vec<Allocation> = Vec::new();
            for (size, do_free) in ops {
                if do_free && !live.is_empty() {
                    let a = live.swap_remove(0);
                    p.free(a).unwrap();
                } else if let Ok(a) = p.alloc(size * 1024) {
                    live.push(a);
                }
                // No two live allocations overlap.
                let mut sorted = live.clone();
                sorted.sort_by_key(|a| a.addr);
                for w in sorted.windows(2) {
                    prop_assert!(w[0].addr + w[0].len <= w[1].addr);
                }
                let used: u64 = live.iter().map(|a| a.len).sum();
                prop_assert_eq!(p.used_bytes(), used);
            }
        }

        /// Model-based check: the treap-backed pool must be observationally
        /// identical to the retained first-fit `Vec` oracle for arbitrary
        /// alloc/free sequences — same addresses, same fragment lists, same
        /// errors. This is the contract that lets the allocator swap change
        /// no simulated result, only wall-clock.
        #[test]
        fn treap_pool_matches_vec_oracle(
            ops in proptest::collection::vec(
                (0u64..600, prop::bool::ANY, 0usize..64),
                1..300,
            )
        ) {
            let mut tech = presets::mrm_hours();
            tech.capacity_bytes = MIB;
            let mut p = Pool::new(mrm_device::device::MemoryDevice::new(tech));
            let mut oracle = LegacyVecPool::new(MIB);
            let mut live: Vec<Allocation> = Vec::new();
            for (size, do_free, pick) in ops {
                if do_free && !live.is_empty() {
                    let a = live.remove(pick % live.len());
                    prop_assert_eq!(p.free(a), oracle.free(a));
                    // Double frees must be rejected identically too.
                    prop_assert_eq!(p.free(a), oracle.free(a));
                    prop_assert_eq!(p.free(a).unwrap_err(), PoolError::InvalidFree);
                } else {
                    // size == 0 exercises the ZeroSize error path.
                    let got = p.alloc(size * 1024);
                    let want = oracle.alloc(size * 1024);
                    prop_assert_eq!(got, want);
                    if let Ok(a) = got {
                        live.push(a);
                    }
                }
                prop_assert_eq!(p.used_bytes(), oracle.used_bytes());
                prop_assert_eq!(p.free_bytes(), oracle.free_bytes());
                prop_assert_eq!(p.free_fragments(), oracle.free_fragments());
                prop_assert_eq!(p.free_ranges(), oracle.free_ranges());
            }
        }
    }

    #[test]
    fn zero_capacity_pool_is_inert_and_matches_the_oracle() {
        // Degenerate geometry (found worth pinning by the `mrm-fuzz pool`
        // corpus): a zero-byte device must build, report empty accounting,
        // and refuse every allocation the same way the oracle does.
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = 0;
        let mut p = Pool::new(MemoryDevice::new(tech));
        let mut oracle = LegacyVecPool::new(0);
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.free_bytes(), oracle.free_bytes());
        assert_eq!(p.free_fragments(), oracle.free_fragments());
        assert_eq!(p.free_ranges(), oracle.free_ranges());
        assert!(matches!(p.alloc(1), Err(PoolError::OutOfMemory { .. })));
        assert!(matches!(
            oracle.alloc(1),
            Err(PoolError::OutOfMemory { .. })
        ));
        assert!(matches!(p.alloc(0), Err(PoolError::ZeroSize)));
        assert!(matches!(oracle.alloc(0), Err(PoolError::ZeroSize)));
    }

    #[test]
    fn one_byte_pool_full_lifecycle() {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = 1;
        let mut p = Pool::new(MemoryDevice::new(tech));
        let mut oracle = LegacyVecPool::new(1);
        let a = p.alloc(1).unwrap();
        let b = oracle.alloc(1).unwrap();
        assert_eq!((a.addr, a.len), (b.addr, b.len));
        assert_eq!(p.free_bytes(), 0);
        assert!(matches!(p.alloc(1), Err(PoolError::OutOfMemory { .. })));
        assert!(matches!(
            oracle.alloc(1),
            Err(PoolError::OutOfMemory { .. })
        ));
        p.free(a).unwrap();
        oracle.free(b).unwrap();
        assert_eq!(p.free_ranges(), oracle.free_ranges());
        // The single byte is reusable after the free.
        let c = p.alloc(1).unwrap();
        assert_eq!(c.addr, 0);
        assert!(matches!(p.alloc(2), Err(PoolError::OutOfMemory { .. })));
    }
}
