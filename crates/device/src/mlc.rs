//! Multi-level-cell (MLC) encoding for MRM.
//!
//! §3: "STT-MRAM and RRAM cells have already demonstrated potential for
//! multi-level encoding \[10\]" — storing 2–3 bits per cell multiplies
//! density (and divides $/GB) at the cost of tighter resistance margins:
//! slower, more careful program-verify writes, lower endurance, a higher
//! error floor, and effectively shorter retention for the same thermal
//! stability (the margins between adjacent levels shrink).
//!
//! [`apply_mlc`] derives an MLC variant of any retention-tunable
//! [`Technology`]; the scaling factors follow the NAND MLC/TLC precedent
//! (each extra bit/cell costs roughly an order of magnitude of endurance
//! and a 2–4× program-time penalty) adapted to resistive cells.

use crate::tech::Technology;

/// Bits stored per cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellLevels {
    /// Single-level cell: 1 bit (the baseline all presets use).
    Slc,
    /// Multi-level cell: 2 bits.
    Mlc,
    /// Triple-level cell: 3 bits.
    Tlc,
}

impl CellLevels {
    /// Bits per cell.
    pub fn bits(self) -> u32 {
        match self {
            CellLevels::Slc => 1,
            CellLevels::Mlc => 2,
            CellLevels::Tlc => 3,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CellLevels::Slc => "SLC",
            CellLevels::Mlc => "MLC",
            CellLevels::Tlc => "TLC",
        }
    }

    /// All levels, densest last.
    pub fn all() -> [CellLevels; 3] {
        [CellLevels::Slc, CellLevels::Mlc, CellLevels::Tlc]
    }
}

/// Derives the MLC variant of a technology.
///
/// Scaling per extra bit beyond SLC (calibrated to the NAND
/// SLC→MLC→TLC progression and resistive-MLC demonstrations \[10\]):
///
/// * capacity ×2 (that is the point);
/// * cost/GB ÷2 at equal die cost;
/// * write latency ×2.5 (program-verify over 2× the levels);
/// * write energy ×1.6 (verify passes);
/// * read latency ×1.3 and read energy ×1.2 (finer sensing);
/// * endurance ÷12 (margin loss dominates wear budget);
/// * retention ÷4 (the same drift crosses a narrower level gap sooner);
/// * write bandwidth ÷2 (program time dominates).
pub fn apply_mlc(base: &Technology, levels: CellLevels) -> Technology {
    let extra = (levels.bits() - 1) as i32;
    if extra == 0 {
        let mut t = base.clone();
        t.name = format!("{} [SLC]", base.name);
        return t;
    }
    let f = |x: f64, per_bit: f64| x * per_bit.powi(extra);
    let mut t = base.clone();
    t.name = format!("{} [{}]", base.name, levels.label());
    t.capacity_bytes = base.capacity_bytes * u64::from(levels.bits());
    t.cost_per_gb_rel = base.cost_per_gb_rel / f64::from(levels.bits());
    t.write_latency_ns = f(base.write_latency_ns, 2.5);
    t.write_energy_pj_bit = f(base.write_energy_pj_bit, 1.6);
    t.read_latency_ns = f(base.read_latency_ns, 1.3);
    t.read_energy_pj_bit = f(base.read_energy_pj_bit, 1.2);
    t.endurance = base.endurance / 12f64.powi(extra);
    t.retention = base.retention.mul_f64(0.25f64.powi(extra));
    t.write_bw = base.write_bw / 2f64.powi(extra);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::presets;

    #[test]
    fn slc_is_identity_except_label() {
        let base = presets::mrm_hours();
        let slc = apply_mlc(&base, CellLevels::Slc);
        assert_eq!(slc.capacity_bytes, base.capacity_bytes);
        assert_eq!(slc.endurance.to_bits(), base.endurance.to_bits());
        assert!(slc.name.contains("[SLC]"));
    }

    #[test]
    fn density_and_cost_scale_with_bits() {
        let base = presets::mrm_hours();
        let mlc = apply_mlc(&base, CellLevels::Mlc);
        let tlc = apply_mlc(&base, CellLevels::Tlc);
        assert_eq!(mlc.capacity_bytes, 2 * base.capacity_bytes);
        assert_eq!(tlc.capacity_bytes, 3 * base.capacity_bytes);
        assert!((mlc.cost_per_gb_rel - base.cost_per_gb_rel / 2.0).abs() < 1e-12);
        assert!((tlc.cost_per_gb_rel - base.cost_per_gb_rel / 3.0).abs() < 1e-12);
    }

    #[test]
    fn every_penalty_moves_the_right_way() {
        let base = presets::mrm_hours();
        let mlc = apply_mlc(&base, CellLevels::Mlc);
        assert!(mlc.write_latency_ns > base.write_latency_ns);
        assert!(mlc.write_energy_pj_bit > base.write_energy_pj_bit);
        assert!(mlc.read_latency_ns > base.read_latency_ns);
        assert!(mlc.read_energy_pj_bit > base.read_energy_pj_bit);
        assert!(mlc.endurance < base.endurance);
        assert!(mlc.retention < base.retention);
        assert!(mlc.write_bw < base.write_bw);
        // Reads stay cheap in absolute terms: still below HBM's 3.9 pJ/bit.
        assert!(mlc.read_energy_pj_bit < 3.9);
    }

    #[test]
    fn tlc_compounds_mlc() {
        let base = presets::mrm_hours();
        let mlc = apply_mlc(&base, CellLevels::Mlc);
        let tlc = apply_mlc(&base, CellLevels::Tlc);
        assert!(tlc.endurance < mlc.endurance);
        assert!(tlc.retention < mlc.retention);
        assert!((tlc.endurance - base.endurance / 144.0).abs() < base.endurance * 1e-9);
    }

    #[test]
    fn mlc_mrm_still_meets_kv_endurance() {
        // The §3 claim that MLC is *potential*, not fantasy: a 2-bit MRM
        // at the STT ceiling still clears the KV requirement band (~1e8
        // with headroom and per-second weights).
        let base = presets::mrm_hours();
        let mlc = apply_mlc(&base, CellLevels::Mlc);
        assert!(mlc.endurance > 1e9, "MLC endurance {}", mlc.endurance);
    }

    #[test]
    fn retention_shrink_interacts_with_dcm_ladder() {
        // A 12 h SLC class becomes a 3 h MLC class: still hours-scale,
        // still covering typical KV lifetimes.
        let base = presets::mrm_hours();
        let mlc = apply_mlc(&base, CellLevels::Mlc);
        assert_eq!(mlc.retention, mrm_sim::time::SimDuration::from_hours(3));
    }
}
