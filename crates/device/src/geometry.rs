//! Device geometry: how capacity is organized into channels, banks, rows and
//! pages, and how physical addresses decompose onto that organization.
//!
//! Controllers need geometry for two things: parallelism (independent banks
//! and channels overlap operations) and access granularity (row/page size
//! bounds the burst a single activation can serve).

use serde::{Deserialize, Serialize};

/// Physical organization of one memory device or stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceGeometry {
    /// Independent channels (or pseudo-channels for HBM).
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u32,
}

/// A decomposed physical address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Channel index.
    pub channel: u32,
    /// Bank index within the channel.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Byte offset within the row.
    pub offset: u32,
}

impl DeviceGeometry {
    /// HBM3e-like geometry: 16 pseudo-channels × 16 banks, 1 KiB rows.
    pub fn hbm_like(capacity_bytes: u64) -> Self {
        Self::fit(capacity_bytes, 16, 16, 1024)
    }

    /// DDR5-like geometry: 2 channels × 32 banks, 8 KiB rows.
    pub fn dimm_like(capacity_bytes: u64) -> Self {
        Self::fit(capacity_bytes, 2, 32, 8192)
    }

    /// Block-device-like geometry for MRM/Flash: channels act as planes,
    /// one "row" is one program page.
    pub fn block_like(capacity_bytes: u64, page_bytes: u32) -> Self {
        Self::fit(capacity_bytes, 8, 4, page_bytes)
    }

    /// Builds a geometry with the given shape whose row count is sized to
    /// cover `capacity_bytes` (rounded up to a whole row per bank).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the capacity doesn't fit `u32`
    /// rows per bank.
    pub fn fit(capacity_bytes: u64, channels: u32, banks_per_channel: u32, row_bytes: u32) -> Self {
        assert!(channels > 0 && banks_per_channel > 0 && row_bytes > 0);
        let banks_total = u64::from(channels) * u64::from(banks_per_channel);
        let per_bank = capacity_bytes.div_ceil(banks_total);
        let rows = per_bank.div_ceil(u64::from(row_bytes));
        assert!(rows <= u64::from(u32::MAX), "too many rows per bank");
        DeviceGeometry {
            channels,
            banks_per_channel,
            rows_per_bank: rows.max(1) as u32,
            row_bytes,
        }
    }

    /// Total addressable capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.banks_per_channel)
            * u64::from(self.rows_per_bank)
            * u64::from(self.row_bytes)
    }

    /// Total number of banks across all channels.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.banks_per_channel
    }

    /// Total number of rows across the device.
    pub fn total_rows(&self) -> u64 {
        u64::from(self.total_banks()) * u64::from(self.rows_per_bank)
    }

    /// Decodes a byte address. Layout interleaves consecutive rows across
    /// channels then banks (row-interleaved striping), which is what makes
    /// large sequential reads engage every bank in parallel — the access
    /// pattern §2.2 says dominates inference.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        assert!(addr < self.capacity_bytes(), "address out of range");
        let offset = (addr % u64::from(self.row_bytes)) as u32;
        let row_index = addr / u64::from(self.row_bytes); // global row number
        let channel = (row_index % u64::from(self.channels)) as u32;
        let per_channel = row_index / u64::from(self.channels);
        let bank = (per_channel % u64::from(self.banks_per_channel)) as u32;
        let row = (per_channel / u64::from(self.banks_per_channel)) as u32;
        DecodedAddr {
            channel,
            bank,
            row,
            offset,
        }
    }

    /// Re-encodes a decoded address back to a byte address.
    pub fn encode(&self, d: DecodedAddr) -> u64 {
        let per_channel = u64::from(d.row) * u64::from(self.banks_per_channel) + u64::from(d.bank);
        let row_index = per_channel * u64::from(self.channels) + u64::from(d.channel);
        row_index * u64::from(self.row_bytes) + u64::from(d.offset)
    }

    /// Number of distinct rows an access of `len` bytes starting at `addr`
    /// touches.
    pub fn rows_spanned(&self, addr: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = addr / u64::from(self.row_bytes);
        let last = (addr + len - 1) / u64::from(self.row_bytes);
        last - first + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::units::{GB, MIB};

    #[test]
    fn fit_covers_capacity() {
        let g = DeviceGeometry::hbm_like(24 * GB);
        assert!(g.capacity_bytes() >= 24 * GB);
        // Over-provisioning from rounding stays under one row per bank.
        assert!(
            g.capacity_bytes() - 24 * GB <= u64::from(g.total_banks()) * u64::from(g.row_bytes)
        );
    }

    #[test]
    fn decode_encode_roundtrip() {
        let g = DeviceGeometry::fit(GB, 4, 8, 2048);
        for addr in [0u64, 1, 2047, 2048, 123_456_789, g.capacity_bytes() - 1] {
            let d = g.decode(addr);
            assert_eq!(g.encode(d), addr, "addr {addr}");
        }
    }

    #[test]
    fn sequential_rows_stripe_across_channels() {
        let g = DeviceGeometry::fit(GB, 4, 8, 1024);
        let d0 = g.decode(0);
        let d1 = g.decode(1024);
        let d2 = g.decode(2048);
        assert_eq!(d0.channel, 0);
        assert_eq!(d1.channel, 1);
        assert_eq!(d2.channel, 2);
        assert_eq!(d0.row, d1.row);
    }

    #[test]
    fn rows_spanned_counts() {
        let g = DeviceGeometry::fit(GB, 2, 2, 1024);
        assert_eq!(g.rows_spanned(0, 0), 0);
        assert_eq!(g.rows_spanned(0, 1), 1);
        assert_eq!(g.rows_spanned(0, 1024), 1);
        assert_eq!(g.rows_spanned(0, 1025), 2);
        assert_eq!(g.rows_spanned(1000, 100), 2);
        assert_eq!(g.rows_spanned(0, 10 * 1024), 10);
    }

    #[test]
    fn total_counters() {
        let g = DeviceGeometry {
            channels: 4,
            banks_per_channel: 8,
            rows_per_bank: 100,
            row_bytes: 1024,
        };
        assert_eq!(g.total_banks(), 32);
        assert_eq!(g.total_rows(), 3200);
        assert_eq!(g.capacity_bytes(), 3200 * 1024);
    }

    #[test]
    #[should_panic(expected = "address out of range")]
    fn decode_out_of_range_panics() {
        let g = DeviceGeometry::fit(MIB, 2, 2, 1024);
        g.decode(g.capacity_bytes());
    }
}
