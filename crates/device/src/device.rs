//! A generic timed, energy-metered, wear-tracked memory device.
//!
//! [`MemoryDevice`] binds a [`Technology`] parameter set to concrete state:
//! per-block write counts (wear), per-block write timestamps and retention
//! targets (data age), and an [`EnergyMeter`]. Controllers layer semantics
//! (mapping, refresh policy, zones) on top; the device itself answers the
//! physical questions — how long does this access take, what does it cost in
//! energy, what is the expected raw bit error rate of what you just read,
//! and did you exceed the endurance budget.

use serde::{Deserialize, Serialize};

use mrm_sim::time::{SimDuration, SimTime};

use crate::cell::WearState;
use crate::energy::{EnergyBreakdown, EnergyMeter};
use crate::geometry::DeviceGeometry;
use crate::tech::{TechFamily, Technology};

/// Default number of wear/retention tracking blocks per device.
const DEFAULT_TRACKING_BLOCKS: u64 = 4096;

/// Baseline raw bit error rate of a freshly written cell.
pub const FRESH_RBER: f64 = 1e-9;

/// Errors surfaced by device operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// The access range falls outside device capacity.
    OutOfRange {
        /// Requested end offset.
        end: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// A zero-length access was requested.
    EmptyAccess,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfRange { end, capacity } => {
                write!(f, "access end {end} exceeds device capacity {capacity}")
            }
            DeviceError::EmptyAccess => write!(f, "zero-length access"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Kind of demand operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Demand read.
    Read,
    /// Demand write.
    Write,
}

/// The outcome of a timed device operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpResult {
    /// Time the operation occupies the device (latency + transfer).
    pub service_time: SimDuration,
    /// Expected raw bit error rate of the data read (0 for writes).
    pub rber: f64,
    /// True if any touched block's data age exceeded its retention target.
    pub expired: bool,
    /// True if any touched block is past its rated endurance.
    pub worn_out: bool,
}

/// Per-block tracking state.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
struct BlockState {
    wear: WearState,
    /// When the block was last written, if ever.
    written_at: Option<SimTime>,
    /// Retention target the last write was programmed for.
    retention: SimDuration,
}

/// A timed, energy-metered, wear-tracked memory device.
///
/// # Examples
///
/// ```
/// use mrm_device::device::MemoryDevice;
/// use mrm_device::tech::presets;
/// use mrm_sim::time::SimTime;
///
/// let mut dev = MemoryDevice::new(presets::hbm3e());
/// let now = SimTime::ZERO;
/// let w = dev.write(now, 0, 1 << 20).unwrap();
/// let r = dev.read(now, 0, 1 << 20).unwrap();
/// assert!(r.service_time > w.service_time / 2);
/// assert!(!r.expired);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryDevice {
    tech: Technology,
    geometry: DeviceGeometry,
    meter: EnergyMeter,
    blocks: Vec<BlockState>,
    block_bytes: u64,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
    last_idle_mark: SimTime,
}

impl MemoryDevice {
    /// Creates a device from a technology parameter set with a geometry
    /// appropriate for its family.
    pub fn new(tech: Technology) -> Self {
        let geometry = match tech.family {
            TechFamily::Hbm => DeviceGeometry::hbm_like(tech.capacity_bytes),
            TechFamily::Dram | TechFamily::Lpddr => DeviceGeometry::dimm_like(tech.capacity_bytes),
            _ => DeviceGeometry::block_like(
                tech.capacity_bytes,
                tech.access_unit_bytes.max(512).min(u64::from(u32::MAX)) as u32,
            ),
        };
        let capacity = tech.capacity_bytes;
        let block_bytes = (capacity / DEFAULT_TRACKING_BLOCKS)
            .max(tech.access_unit_bytes)
            .max(1);
        let n_blocks = capacity.div_ceil(block_bytes) as usize;
        let meter = EnergyMeter::new(
            tech.read_energy_pj_bit,
            tech.write_energy_pj_bit,
            tech.idle_power_w(),
        );
        MemoryDevice {
            tech,
            geometry,
            meter,
            blocks: vec![BlockState::default(); n_blocks],
            block_bytes,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
            last_idle_mark: SimTime::ZERO,
        }
    }

    /// The technology parameter set this device was built from.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    /// Device capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.tech.capacity_bytes
    }

    /// Wear/retention tracking granularity, bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Totals: `(reads, writes, bytes_read, bytes_written)`.
    pub fn op_counts(&self) -> (u64, u64, u64, u64) {
        (self.reads, self.writes, self.bytes_read, self.bytes_written)
    }

    /// Accumulated energy breakdown.
    pub fn energy(&self) -> EnergyBreakdown {
        self.meter.breakdown()
    }

    fn check_range(&self, addr: u64, len: u64) -> Result<(), DeviceError> {
        if len == 0 {
            return Err(DeviceError::EmptyAccess);
        }
        let end = addr.checked_add(len).ok_or(DeviceError::OutOfRange {
            end: u64::MAX,
            capacity: self.tech.capacity_bytes,
        })?;
        if end > self.tech.capacity_bytes {
            return Err(DeviceError::OutOfRange {
                end,
                capacity: self.tech.capacity_bytes,
            });
        }
        Ok(())
    }

    fn block_range(&self, addr: u64, len: u64) -> std::ops::Range<usize> {
        let first = (addr / self.block_bytes) as usize;
        let last = ((addr + len - 1) / self.block_bytes) as usize;
        first..last + 1
    }

    fn transfer_time(&self, len: u64, bw: f64) -> SimDuration {
        SimDuration::from_secs_f64(len as f64 / bw)
    }

    /// Reads `len` bytes at `addr` at simulation time `now`.
    ///
    /// Service time is array latency plus transfer at the rated sequential
    /// read bandwidth. The returned RBER reflects the oldest touched block's
    /// data age against its programmed retention, amplified by wear.
    pub fn read(&mut self, now: SimTime, addr: u64, len: u64) -> Result<OpResult, DeviceError> {
        self.check_range(addr, len)?;
        self.meter.read(len);
        self.reads += 1;
        self.bytes_read += len;

        let tradeoff = self.tech.tradeoff();
        let mut rber: f64 = 0.0;
        let mut expired = false;
        let mut worn_out = false;
        for i in self.block_range(addr, len) {
            let b = &self.blocks[i];
            let endurance = self.tech.endurance;
            if b.wear.is_worn_out(endurance) {
                worn_out = true;
            }
            if let Some(written) = b.written_at {
                let age = now.duration_since(written);
                if age > b.retention {
                    expired = true;
                }
                let base = tradeoff.rber_at_age(b.retention, age, FRESH_RBER);
                let r = (base * b.wear.rber_multiplier(endurance)).min(0.5);
                rber = rber.max(r);
            }
        }

        let service_time = SimDuration::from_secs_f64(self.tech.read_latency_ns * 1e-9)
            + self.transfer_time(len, self.tech.read_bw);
        Ok(OpResult {
            service_time,
            rber,
            expired,
            worn_out,
        })
    }

    /// Writes `len` bytes at `addr` at time `now`, programming the touched
    /// blocks for the device's native retention target.
    pub fn write(&mut self, now: SimTime, addr: u64, len: u64) -> Result<OpResult, DeviceError> {
        self.write_with_retention(now, addr, len, self.tech.retention)
    }

    /// Writes with an explicit retention target (the DCM primitive, §4):
    /// blocks are stamped with `retention`, and the energy charged scales
    /// with the retention-dependent write energy of the cell trade-off.
    pub fn write_with_retention(
        &mut self,
        now: SimTime,
        addr: u64,
        len: u64,
        retention: SimDuration,
    ) -> Result<OpResult, DeviceError> {
        self.check_range(addr, len)?;
        let point = self.tech.tradeoff().at(retention);
        // Charge at the retention-scaled energy, not the datasheet anchor.
        let scale =
            point.write_energy_pj_bit / self.tech.write_energy_pj_bit.max(f64::MIN_POSITIVE);
        self.meter.write((len as f64 * scale) as u64);
        self.writes += 1;
        self.bytes_written += len;

        let mut worn_out = false;
        for i in self.block_range(addr, len) {
            let b = &mut self.blocks[i];
            b.wear.record_writes(1);
            b.written_at = Some(now);
            b.retention = point.retention;
            if b.wear.is_worn_out(point.endurance) {
                worn_out = true;
            }
        }

        let latency = SimDuration::from_secs_f64(point.write_latency_ns * 1e-9);
        let service_time = latency + self.transfer_time(len, self.tech.write_bw);
        Ok(OpResult {
            service_time,
            rber: 0.0,
            expired: false,
            worn_out,
        })
    }

    /// Refreshes (rewrites in place) the blocks overlapping `[addr, addr+len)`,
    /// charged as housekeeping. Returns the number of bytes rewritten.
    pub fn refresh_range(&mut self, now: SimTime, addr: u64, len: u64) -> Result<u64, DeviceError> {
        self.check_range(addr, len)?;
        let range = self.block_range(addr, len);
        let bytes = (range.len() as u64) * self.block_bytes;
        self.meter.housekeeping_rmw(bytes);
        for i in range {
            let b = &mut self.blocks[i];
            if b.written_at.is_some() {
                b.wear.record_writes(1);
                b.written_at = Some(now);
            }
        }
        Ok(bytes)
    }

    /// Accounts idle power from the last idle mark to `now`.
    pub fn elapse_idle(&mut self, now: SimTime) {
        if now > self.last_idle_mark {
            self.meter.idle(now.duration_since(self.last_idle_mark));
            self.last_idle_mark = now;
        }
    }

    /// Accounts one full background refresh pass (all capacity rewritten at
    /// the technology's internal refresh energy), as DRAM self-refresh does
    /// every `refresh_interval`. No-op for refresh-free technologies.
    pub fn background_refresh_pass(&mut self) {
        if self.tech.refresh_interval.is_some() {
            let joules =
                self.tech.capacity_bytes as f64 * 8.0 * self.tech.refresh_energy_pj_bit * 1e-12;
            self.meter.housekeeping_j(joules);
        }
    }

    /// Maximum wear fraction across blocks (1.0 = rated endurance reached).
    pub fn max_wear_fraction(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.wear.wear_fraction(self.tech.endurance))
            .fold(0.0, f64::max)
    }

    /// Mean wear fraction across blocks.
    pub fn mean_wear_fraction(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks
            .iter()
            .map(|b| b.wear.wear_fraction(self.tech.endurance))
            .sum::<f64>()
            / self.blocks.len() as f64
    }

    /// Per-block write-cycle counts (for wear-levelling policies).
    pub fn block_cycles(&self) -> Vec<u64> {
        self.blocks.iter().map(|b| b.wear.cycles).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::presets;
    use mrm_sim::units::{GIB, MIB};

    fn now() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn read_times_match_bandwidth() {
        let mut dev = MemoryDevice::new(presets::hbm3e());
        let r = dev.read(now(), 0, GIB).unwrap();
        // 1 GiB at 1 TB/s ≈ 1.07 ms plus 110 ns latency.
        let ms = r.service_time.as_secs_f64() * 1e3;
        assert!((ms - 1.073).abs() < 0.01, "read time {ms} ms");
    }

    #[test]
    fn write_slower_than_read_on_mrm() {
        let mut dev = MemoryDevice::new(presets::mrm_hours());
        let r = dev.read(now(), 0, MIB).unwrap();
        let w = dev.write(now(), 0, MIB).unwrap();
        assert!(
            w.service_time > r.service_time,
            "MRM trades write performance"
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dev = MemoryDevice::new(presets::hbm3e());
        let cap = dev.capacity_bytes();
        assert_eq!(
            dev.read(now(), cap - 10, 20),
            Err(DeviceError::OutOfRange {
                end: cap + 10,
                capacity: cap
            })
        );
        assert_eq!(dev.write(now(), 0, 0), Err(DeviceError::EmptyAccess));
        assert!(dev.read(now(), u64::MAX, 2).is_err());
    }

    #[test]
    fn fresh_read_has_floor_rber() {
        let mut dev = MemoryDevice::new(presets::mrm_hours());
        dev.write(now(), 0, MIB).unwrap();
        let r = dev.read(now() + SimDuration::from_secs(1), 0, MIB).unwrap();
        assert!(r.rber < 1e-6, "rber {}", r.rber);
        assert!(!r.expired);
    }

    #[test]
    fn expired_read_is_flagged() {
        let mut dev = MemoryDevice::new(presets::mrm_hours());
        dev.write(now(), 0, MIB).unwrap();
        let later = now() + SimDuration::from_hours(13); // past 12h retention
        let r = dev.read(later, 0, MIB).unwrap();
        assert!(r.expired);
        assert!(r.rber > 1e-4, "decayed rber {}", r.rber);
    }

    #[test]
    fn unwritten_blocks_never_expire() {
        let mut dev = MemoryDevice::new(presets::mrm_hours());
        let r = dev
            .read(now() + SimDuration::from_days(30), 0, MIB)
            .unwrap();
        assert!(!r.expired);
        assert!(r.rber.abs() < f64::EPSILON);
    }

    #[test]
    fn dcm_write_with_shorter_retention_costs_less_energy() {
        let mut a = MemoryDevice::new(presets::mrm_days());
        let mut b = MemoryDevice::new(presets::mrm_days());
        a.write_with_retention(now(), 0, 64 * MIB, SimDuration::from_days(7))
            .unwrap();
        b.write_with_retention(now(), 0, 64 * MIB, SimDuration::from_mins(10))
            .unwrap();
        assert!(b.energy().write_j < a.energy().write_j);
    }

    #[test]
    fn dcm_retention_stamp_is_respected() {
        let mut dev = MemoryDevice::new(presets::mrm_days());
        dev.write_with_retention(now(), 0, MIB, SimDuration::from_mins(10))
            .unwrap();
        let r = dev
            .read(now() + SimDuration::from_mins(30), 0, MIB)
            .unwrap();
        assert!(
            r.expired,
            "10-minute-retention write must expire after 30 minutes"
        );
    }

    #[test]
    fn wear_accumulates_and_flags() {
        let mut tech = presets::rram_product();
        tech.endurance = 10.0; // tiny budget for the test
        let mut dev = MemoryDevice::new(tech);
        let mut worn = false;
        for _ in 0..12 {
            worn = dev.write(now(), 0, 1024).unwrap().worn_out;
        }
        assert!(worn);
        assert!(dev.max_wear_fraction() > 1.0);
        assert!(dev.mean_wear_fraction() < dev.max_wear_fraction());
    }

    #[test]
    fn refresh_range_is_housekeeping() {
        let mut dev = MemoryDevice::new(presets::mrm_hours());
        dev.write(now(), 0, MIB).unwrap();
        let before = dev.energy();
        let bytes = dev
            .refresh_range(now() + SimDuration::from_hours(6), 0, MIB)
            .unwrap();
        assert!(bytes >= MIB);
        let after = dev.energy();
        assert!(after.housekeeping_j > before.housekeeping_j);
        assert_eq!(after.write_j.to_bits(), before.write_j.to_bits());
        // Refreshed data no longer expires at the original deadline.
        let r = dev
            .read(now() + SimDuration::from_hours(13), 0, MIB)
            .unwrap();
        assert!(!r.expired);
    }

    #[test]
    fn background_refresh_only_for_dram() {
        let mut hbm = MemoryDevice::new(presets::hbm3e());
        hbm.background_refresh_pass();
        assert!(hbm.energy().housekeeping_j > 0.0);

        let mut mrm = MemoryDevice::new(presets::mrm_hours());
        mrm.background_refresh_pass();
        assert!(mrm.energy().housekeeping_j.abs() < f64::EPSILON);
    }

    #[test]
    fn idle_energy_accrues_once() {
        let mut dev = MemoryDevice::new(presets::hbm3e());
        dev.elapse_idle(SimTime::from_secs(10));
        let first = dev.energy().idle_j;
        assert!(first > 0.0);
        dev.elapse_idle(SimTime::from_secs(10)); // same instant: no double count
        assert_eq!(dev.energy().idle_j.to_bits(), first.to_bits());
        dev.elapse_idle(SimTime::from_secs(20));
        assert!((dev.energy().idle_j - 2.0 * first).abs() < 1e-9);
    }

    #[test]
    fn op_counters() {
        let mut dev = MemoryDevice::new(presets::hbm3e());
        dev.read(now(), 0, 100).unwrap();
        dev.read(now(), 0, 100).unwrap();
        dev.write(now(), 0, 50).unwrap();
        assert_eq!(dev.op_counts(), (2, 1, 200, 50));
    }

    #[test]
    fn block_cycles_reflect_writes() {
        let mut dev = MemoryDevice::new(presets::mrm_hours());
        let bb = dev.block_bytes();
        dev.write(now(), 0, bb).unwrap();
        dev.write(now(), 0, bb).unwrap();
        dev.write(now(), bb * 2, bb).unwrap();
        let cycles = dev.block_cycles();
        assert_eq!(cycles[0], 2);
        assert_eq!(cycles[2], 1);
        assert_eq!(cycles[1], 0);
    }
}
