//! Energy accounting.
//!
//! The paper's §2.1 observation — "approximately a third of the energy usage
//! for an AI accelerator is the memory" — and §3's "power efficiency is
//! perhaps the most important metric" make energy a first-class output of
//! every simulation. [`EnergyMeter`] decomposes consumption into the four
//! components the paper argues about: useful reads, useful writes,
//! housekeeping (refresh / wear-levelling / GC traffic), and idle leakage.

use serde::{Deserialize, Serialize};

use mrm_sim::time::SimDuration;

/// Decomposed energy totals, joules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy spent on demand reads.
    pub read_j: f64,
    /// Energy spent on demand writes.
    pub write_j: f64,
    /// Energy spent on housekeeping: refresh, wear-levelling moves, GC
    /// rewrites, scrubbing — everything §3 calls "housekeeping operations
    /// internal to the memory device".
    pub housekeeping_j: f64,
    /// Standby/leakage energy.
    pub idle_j: f64,
}

impl EnergyBreakdown {
    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.read_j + self.write_j + self.housekeeping_j + self.idle_j
    }

    /// Fraction of total energy that did useful data movement.
    ///
    /// Returns 1.0 for a zero-energy breakdown (nothing was wasted).
    pub fn useful_fraction(&self) -> f64 {
        let total = self.total_j();
        if total <= 0.0 {
            return 1.0;
        }
        (self.read_j + self.write_j) / total
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            read_j: self.read_j + other.read_j,
            write_j: self.write_j + other.write_j,
            housekeeping_j: self.housekeeping_j + other.housekeeping_j,
            idle_j: self.idle_j + other.idle_j,
        }
    }
}

/// A mutable energy accumulator with per-bit rates baked in.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    read_energy_j_per_byte: f64,
    write_energy_j_per_byte: f64,
    idle_w: f64,
    totals: EnergyBreakdown,
}

impl EnergyMeter {
    /// Creates a meter with the given per-bit access energies (pJ/bit) and
    /// idle power (watts).
    pub fn new(read_pj_bit: f64, write_pj_bit: f64, idle_w: f64) -> Self {
        EnergyMeter {
            read_energy_j_per_byte: read_pj_bit * 1e-12 * 8.0,
            write_energy_j_per_byte: write_pj_bit * 1e-12 * 8.0,
            idle_w,
            totals: EnergyBreakdown::default(),
        }
    }

    /// Accounts a demand read of `bytes`.
    pub fn read(&mut self, bytes: u64) {
        self.totals.read_j += bytes as f64 * self.read_energy_j_per_byte;
    }

    /// Accounts a demand write of `bytes`.
    pub fn write(&mut self, bytes: u64) {
        self.totals.write_j += bytes as f64 * self.write_energy_j_per_byte;
    }

    /// Accounts a housekeeping read-modify-write of `bytes` (refresh, GC
    /// move, scrub rewrite): charged at read + write cost.
    pub fn housekeeping_rmw(&mut self, bytes: u64) {
        self.totals.housekeeping_j +=
            bytes as f64 * (self.read_energy_j_per_byte + self.write_energy_j_per_byte);
    }

    /// Accounts raw housekeeping energy, joules (e.g. DRAM refresh charged
    /// at its own lower per-bit rate).
    pub fn housekeeping_j(&mut self, joules: f64) {
        self.totals.housekeeping_j += joules;
    }

    /// Accounts standby energy over an elapsed span.
    pub fn idle(&mut self, elapsed: SimDuration) {
        self.totals.idle_j += self.idle_w * elapsed.as_secs_f64();
    }

    /// The accumulated breakdown.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.totals
    }

    /// Resets accumulated totals to zero (rates are kept).
    pub fn reset(&mut self) {
        self.totals = EnergyBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::units::GB;

    #[test]
    fn read_write_accounting() {
        let mut m = EnergyMeter::new(4.0, 8.0, 0.0);
        m.read(GB);
        m.write(GB);
        let b = m.breakdown();
        // 1 GB = 8e9 bits; 4 pJ/bit → 32 mJ; 8 pJ/bit → 64 mJ.
        assert!((b.read_j - 0.032).abs() < 1e-6);
        assert!((b.write_j - 0.064).abs() < 1e-6);
        assert!(b.housekeeping_j.abs() < f64::EPSILON);
    }

    #[test]
    fn housekeeping_rmw_charges_both_directions() {
        let mut m = EnergyMeter::new(4.0, 8.0, 0.0);
        m.housekeeping_rmw(GB);
        let b = m.breakdown();
        assert!((b.housekeeping_j - 0.096).abs() < 1e-6);
        assert!(b.read_j.abs() < f64::EPSILON);
    }

    #[test]
    fn idle_integrates_power() {
        let mut m = EnergyMeter::new(0.0, 0.0, 2.0);
        m.idle(SimDuration::from_secs(10));
        assert!((m.breakdown().idle_j - 20.0).abs() < 1e-9);
    }

    #[test]
    fn useful_fraction() {
        let mut m = EnergyMeter::new(1.0, 1.0, 0.0);
        m.read(GB);
        m.housekeeping_rmw(GB / 2);
        let f = m.breakdown().useful_fraction();
        assert!(f > 0.49 && f < 0.51, "useful fraction {f}");
        assert!((EnergyBreakdown::default().useful_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn merged_and_reset() {
        let mut a = EnergyMeter::new(1.0, 1.0, 1.0);
        a.read(GB);
        let mut b = EnergyMeter::new(2.0, 2.0, 1.0);
        b.write(GB);
        let merged = a.breakdown().merged(&b.breakdown());
        assert!(merged.read_j > 0.0 && merged.write_j > 0.0);
        assert!(
            (merged.total_j() - (a.breakdown().total_j() + b.breakdown().total_j())).abs() < 1e-12
        );
        a.reset();
        assert_eq!(a.breakdown(), EnergyBreakdown::default());
    }
}
