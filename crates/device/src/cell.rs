//! Cell-level physics: the retention ↔ write-cost ↔ endurance continuum.
//!
//! The MRM paper's core observation (§1, §3) is that "non-volatile" is a
//! misleading binary: every memory cell has a *retention time*, from
//! microseconds (DRAM capacitors) to decades (Flash floating gates), and the
//! retention target a technology is engineered for determines its write
//! energy, write latency, and endurance.
//!
//! This module encodes that continuum with models distilled from the
//! literature the paper cites:
//!
//! * **Retention is thermally activated.** For the resistive technologies
//!   (STT-MRAM explicitly, PCM/RRAM approximately), the retention time of a
//!   cell is `t_ret ≈ t0 · exp(Δ)` where `t0 ≈ 1 ns` is the thermal attempt
//!   time and `Δ` is the thermal-stability factor. Ten-year retention needs
//!   `Δ ≈ ln(10y/1ns) ≈ 40`; one-hour retention needs only `Δ ≈ 29` — a
//!   quarter of the barrier gone. (Smullen et al. HPCA'11 \[43\]; Jog et al. DAC'12 \[18\];
//!   Sun et al. MICRO'11 \[48\].)
//! * **Write cost scales with the barrier.** The energy (and, to first
//!   order, the current × pulse-width product) needed to flip a cell scales
//!   roughly linearly with `Δ`: relaxed-retention STT-MRAM designs report
//!   write energy and latency reductions tracking the Δ reduction
//!   (Smullen et al. \[43\] report ~70% write-energy reduction when dropping
//!   retention from years to seconds).
//! * **Endurance improves as write stress drops.** For RRAM and PCM,
//!   endurance and retention trade off on a log-log line: each decade of
//!   retention given up buys roughly a fixed factor of endurance, because
//!   gentler SET/RESET pulses stress the filament/phase-change volume less
//!   (Ielmini et al. IRPS'10 \[15\]; Nail et al. IEDM'16 \[34\]; Lammie et al.
//!   \[23\] fit `endurance ∝ retention^(−γ)` with γ near 0.5–1).
//!
//! The [`RetentionTradeoff`] type packages these as calibrated, clamped
//! curves anchored at each technology's *as-shipped* operating point, so the
//! rest of the workspace can ask "what does this cell look like if I only
//! need 12 hours of retention?" — the question MRM exists to ask.

use mrm_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Thermal attempt time `t0` for thermally-activated retention (seconds).
pub const THERMAL_ATTEMPT_TIME_S: f64 = 1e-9;

/// Raw bit error rate at the retention target: retention time is specified
/// as the age at which raw BER reaches this ECC design point (a typical
/// storage-class spec level).
pub const RBER_AT_RETENTION_TARGET: f64 = 1e-4;

/// The broad physics family a cell belongs to.
///
/// The family selects the exponents of the trade-off curves: DRAM-family
/// cells (capacitor-based) cannot trade retention for anything — their
/// retention is fixed by leakage — while the resistive families can.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellFamily {
    /// Capacitor-based DRAM (incl. HBM and LPDDR dies): fixed ~ms retention.
    Dram,
    /// Charge-trap / floating-gate Flash (NAND or NOR).
    Flash,
    /// Phase-change memory (GST amorphous/crystalline resistance contrast).
    Pcm,
    /// Filamentary resistive RAM (HfOx and friends).
    Rram,
    /// Spin-transfer-torque magnetic RAM.
    SttMram,
}

impl CellFamily {
    /// Whether the family supports trading retention for write cost and
    /// endurance (the MRM enabler). DRAM cannot (leakage-limited); Flash can
    /// in principle but only coarsely (program-verify levels); the resistive
    /// families can continuously.
    pub fn retention_tunable(self) -> bool {
        !matches!(self, CellFamily::Dram)
    }

    /// The endurance–retention power-law exponent γ for the family
    /// (`endurance ∝ retention^(−γ)` when relaxing retention).
    ///
    /// Calibrated against the paper's cited trade-off studies: RRAM shows
    /// the steepest, best-documented trade (Nail et al. \[34\]), PCM a
    /// moderate one, STT-MRAM gains mostly via lower write stress.
    pub fn endurance_retention_gamma(self) -> f64 {
        match self {
            CellFamily::Dram => 0.0,
            CellFamily::Flash => 0.25,
            CellFamily::Pcm => 0.45,
            CellFamily::Rram => 0.60,
            CellFamily::SttMram => 0.35,
        }
    }

    /// Fraction of write energy attributable to overcoming the retention
    /// barrier (vs. fixed peripheral/array overheads). Determines how much
    /// write energy relaxed retention can recover.
    pub fn barrier_energy_fraction(self) -> f64 {
        match self {
            CellFamily::Dram => 0.0,
            CellFamily::Flash => 0.55,
            CellFamily::Pcm => 0.70,
            CellFamily::Rram => 0.65,
            CellFamily::SttMram => 0.80,
        }
    }
}

/// The thermal-stability factor Δ required for a retention target.
///
/// `Δ = ln(t_ret / t0)`. Returns 0 for sub-`t0` targets.
///
/// # Examples
///
/// ```
/// use mrm_device::cell::delta_for_retention;
/// use mrm_sim::time::SimDuration;
///
/// let ten_years = delta_for_retention(SimDuration::from_years(10));
/// let one_hour = delta_for_retention(SimDuration::from_hours(1));
/// assert!(ten_years > 40.0 && ten_years < 41.0);
/// assert!(one_hour > 28.0 && one_hour < 30.0);
/// ```
pub fn delta_for_retention(retention: SimDuration) -> f64 {
    let secs = retention.as_secs_f64();
    if secs <= THERMAL_ATTEMPT_TIME_S {
        return 0.0;
    }
    (secs / THERMAL_ATTEMPT_TIME_S).ln()
}

/// The retention time implied by a thermal-stability factor Δ.
pub fn retention_for_delta(delta: f64) -> SimDuration {
    SimDuration::from_secs_f64(THERMAL_ATTEMPT_TIME_S * delta.exp())
}

/// A calibrated retention trade-off curve for one technology.
///
/// Anchored at the technology's shipped operating point
/// (`ref_retention`, `ref_write_energy_pj_bit`, `ref_write_latency_ns`,
/// `ref_endurance`); evaluation at any other retention target rescales
/// those anchors along the family's curves, clamped to physically plausible
/// bounds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RetentionTradeoff {
    /// Cell physics family (selects curve exponents).
    pub family: CellFamily,
    /// Retention at the anchor (as-shipped) operating point.
    pub ref_retention: SimDuration,
    /// Write energy at the anchor point, pJ/bit.
    pub ref_write_energy_pj_bit: f64,
    /// Write latency at the anchor point, ns.
    pub ref_write_latency_ns: f64,
    /// Endurance (write cycles/cell) at the anchor point.
    pub ref_endurance: f64,
    /// Endurance ceiling for the family — gentler writes cannot push
    /// endurance past intrinsic wear-out mechanisms (dielectric breakdown,
    /// electrode degradation).
    pub endurance_ceiling: f64,
}

/// The cell parameters realized at a particular retention target.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellOperatingPoint {
    /// Retention target this point was derived for.
    pub retention: SimDuration,
    /// Write energy, pJ/bit.
    pub write_energy_pj_bit: f64,
    /// Write latency, ns.
    pub write_latency_ns: f64,
    /// Endurance, write cycles per cell.
    pub endurance: f64,
    /// Thermal stability factor at this point.
    pub delta: f64,
}

impl RetentionTradeoff {
    /// Evaluates the cell parameters at `retention`.
    ///
    /// For non-tunable families (DRAM) the anchor point is returned
    /// unchanged regardless of the requested retention.
    pub fn at(&self, retention: SimDuration) -> CellOperatingPoint {
        let delta = delta_for_retention(retention);
        if !self.family.retention_tunable() || retention == self.ref_retention {
            return CellOperatingPoint {
                retention: self.ref_retention,
                write_energy_pj_bit: self.ref_write_energy_pj_bit,
                write_latency_ns: self.ref_write_latency_ns,
                endurance: self.ref_endurance,
                delta: delta_for_retention(self.ref_retention),
            };
        }

        let ref_delta = delta_for_retention(self.ref_retention).max(1.0);
        let delta_ratio = (delta / ref_delta).clamp(0.05, 4.0);

        // Write energy: the barrier-proportional share scales with Δ; the
        // peripheral share is fixed.
        let f = self.family.barrier_energy_fraction();
        let energy = self.ref_write_energy_pj_bit * ((1.0 - f) + f * delta_ratio);

        // Write latency: pulse width tracks the barrier similarly, but with
        // a weaker exponent (drivers are current-limited, not energy-limited).
        let latency = self.ref_write_latency_ns * ((1.0 - f) + f * delta_ratio.powf(0.7));

        // Endurance: power law in the retention ratio, clamped to the
        // family ceiling (and never *below* the anchor when relaxing).
        let gamma = self.family.endurance_retention_gamma();
        let ret_ratio = (self.ref_retention.as_secs_f64().max(1e-9)
            / retention.as_secs_f64().max(1e-9))
        .max(1e-12);
        let endurance = (self.ref_endurance * ret_ratio.powf(gamma)).min(self.endurance_ceiling);

        CellOperatingPoint {
            retention,
            write_energy_pj_bit: energy,
            write_latency_ns: latency,
            endurance,
            delta,
        }
    }

    /// The raw bit error probability of a cell read `age` after it was
    /// written with retention target `retention`, before wear effects.
    ///
    /// Retention loss is a Weibull failure process with shape β = 3
    /// (wear-out-like onset: negligible failures early, accelerating
    /// steeply). The *retention target* is defined the way datasheets
    /// define it: the age at which raw BER reaches the ECC design point
    /// [`RBER_AT_RETENTION_TARGET`] — not the age at which cells have
    /// half-decayed. The Weibull characteristic life τ is therefore placed
    /// well beyond the target: `0.5·(1 − exp(−(ret/τ)^β)) =` spec.
    ///
    /// `RBER(age) = floor + 0.5 · (1 − exp(−(k·age/ret)^β))` with
    /// `k = (2·spec)^(1/β)`; the `0.5` ceiling reflects that a fully
    /// decayed cell reads a random value, so only half the decayed bits
    /// differ from the written data.
    pub fn rber_at_age(&self, retention: SimDuration, age: SimDuration, rber_floor: f64) -> f64 {
        const BETA: f64 = 3.0;
        let k = (2.0 * RBER_AT_RETENTION_TARGET).powf(1.0 / BETA);
        let ret = retention.as_secs_f64().max(1e-12);
        let t = age.as_secs_f64();
        let x = (k * t / ret).powf(BETA);
        let decayed = 1.0 - (-x).exp();
        (rber_floor + 0.5 * decayed).min(0.5)
    }
}

/// Wear accounting for a block/region of cells.
///
/// Tracks cumulative writes against the endurance budget and derives the
/// wear-induced RBER multiplier. Endurance failure is not a cliff: RBER
/// degrades smoothly as cycles approach the rated endurance, which is how
/// real devices (and their ECC budgets) die.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct WearState {
    /// Cumulative write cycles seen by this region.
    pub cycles: u64,
}

impl WearState {
    /// Creates a fresh (unworn) state.
    pub fn new() -> Self {
        WearState { cycles: 0 }
    }

    /// Records `n` write cycles.
    pub fn record_writes(&mut self, n: u64) {
        self.cycles = self.cycles.saturating_add(n);
    }

    /// Fraction of the endurance budget consumed (may exceed 1).
    pub fn wear_fraction(&self, endurance: f64) -> f64 {
        if endurance <= 0.0 {
            return f64::INFINITY;
        }
        self.cycles as f64 / endurance
    }

    /// Whether the region has exceeded its rated endurance.
    pub fn is_worn_out(&self, endurance: f64) -> bool {
        self.wear_fraction(endurance) >= 1.0
    }

    /// Wear multiplier on RBER: 1× when fresh, rising superlinearly past
    /// ~80% of rated endurance, 10× at 100%, unbounded beyond.
    pub fn rber_multiplier(&self, endurance: f64) -> f64 {
        let w = self.wear_fraction(endurance);
        if w <= 0.8 {
            1.0 + 0.5 * w
        } else {
            // Smoothly continues from 1.4 at w=0.8 through 10 at w=1.0.
            1.4 * (w / 0.8).powf(8.8)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stt_tradeoff() -> RetentionTradeoff {
        // Anchor: a 10-year-retention STT-MRAM product part.
        RetentionTradeoff {
            family: CellFamily::SttMram,
            ref_retention: SimDuration::from_years(10),
            ref_write_energy_pj_bit: 2.5,
            ref_write_latency_ns: 10.0,
            ref_endurance: 1e10,
            endurance_ceiling: 1e15,
        }
    }

    fn rram_tradeoff() -> RetentionTradeoff {
        RetentionTradeoff {
            family: CellFamily::Rram,
            ref_retention: SimDuration::from_years(10),
            ref_write_energy_pj_bit: 10.0,
            ref_write_latency_ns: 100.0,
            ref_endurance: 1e6,
            endurance_ceiling: 1e12,
        }
    }

    #[test]
    fn delta_matches_known_anchors() {
        // 10 years over a 1 ns attempt time: ln(3.15e17) ≈ 40.3... with
        // SECS_PER_YEAR=365d, 10y = 3.154e8 s → ln(3.154e17) ≈ 40.3.
        let d10y = delta_for_retention(SimDuration::from_years(10));
        assert!((40.0..41.0).contains(&d10y), "Δ(10y) = {d10y}");
        let d1h = delta_for_retention(SimDuration::from_hours(1));
        assert!((28.0..30.0).contains(&d1h), "Δ(1h) = {d1h}");
        let d64ms = delta_for_retention(SimDuration::from_millis(64));
        assert!((17.0..19.0).contains(&d64ms), "Δ(64ms) = {d64ms}");
    }

    #[test]
    fn delta_retention_roundtrip() {
        for secs in [1.0, 3600.0, 86400.0, 3.15e8] {
            let d = delta_for_retention(SimDuration::from_secs_f64(secs));
            let back = retention_for_delta(d).as_secs_f64();
            assert!((back / secs - 1.0).abs() < 1e-6, "{secs} -> {back}");
        }
    }

    #[test]
    fn relaxing_retention_cuts_write_energy() {
        let t = stt_tradeoff();
        let ten_years = t.at(SimDuration::from_years(10));
        let one_day = t.at(SimDuration::from_days(1));
        let ten_secs = t.at(SimDuration::from_secs(10));
        assert!(one_day.write_energy_pj_bit < ten_years.write_energy_pj_bit);
        assert!(ten_secs.write_energy_pj_bit < one_day.write_energy_pj_bit);
        // Smullen-style magnitude: seconds-scale retention saves > 30%.
        assert!(ten_secs.write_energy_pj_bit < 0.7 * ten_years.write_energy_pj_bit);
    }

    #[test]
    fn relaxing_retention_cuts_write_latency() {
        let t = stt_tradeoff();
        let anchor = t.at(SimDuration::from_years(10));
        let relaxed = t.at(SimDuration::from_hours(12));
        assert!(relaxed.write_latency_ns < anchor.write_latency_ns);
    }

    #[test]
    fn relaxing_retention_raises_endurance() {
        let t = rram_tradeoff();
        let anchor = t.at(SimDuration::from_years(10));
        let relaxed = t.at(SimDuration::from_hours(12));
        assert!(relaxed.endurance > anchor.endurance * 100.0);
        assert!(relaxed.endurance <= t.endurance_ceiling);
    }

    #[test]
    fn endurance_respects_ceiling() {
        let t = rram_tradeoff();
        let extreme = t.at(SimDuration::from_micros(1));
        assert_eq!(extreme.endurance.to_bits(), t.endurance_ceiling.to_bits());
    }

    #[test]
    fn tightening_retention_costs_endurance() {
        let mut t = rram_tradeoff();
        t.ref_retention = SimDuration::from_hours(1);
        let tighter = t.at(SimDuration::from_years(10));
        assert!(tighter.endurance < t.ref_endurance);
    }

    #[test]
    fn dram_family_is_not_tunable() {
        let t = RetentionTradeoff {
            family: CellFamily::Dram,
            ref_retention: SimDuration::from_millis(64),
            ref_write_energy_pj_bit: 4.0,
            ref_write_latency_ns: 15.0,
            ref_endurance: 1e16,
            endurance_ceiling: 1e16,
        };
        let p = t.at(SimDuration::from_days(7));
        assert_eq!(p.retention, SimDuration::from_millis(64));
        // Clamped exactly at the ceiling, so bit equality holds.
        assert_eq!(p.write_energy_pj_bit.to_bits(), 4.0f64.to_bits());
        assert_eq!(p.endurance.to_bits(), 1e16f64.to_bits());
    }

    #[test]
    fn anchor_point_is_identity() {
        let t = stt_tradeoff();
        let p = t.at(SimDuration::from_years(10));
        // At the anchor the scaling exponent is zero, so the reference
        // values come back bit-identical.
        assert_eq!(
            p.write_energy_pj_bit.to_bits(),
            t.ref_write_energy_pj_bit.to_bits()
        );
        assert_eq!(
            p.write_latency_ns.to_bits(),
            t.ref_write_latency_ns.to_bits()
        );
        assert_eq!(p.endurance.to_bits(), t.ref_endurance.to_bits());
    }

    #[test]
    fn energy_monotone_in_retention() {
        let t = rram_tradeoff();
        let mut last = 0.0;
        for hours in [1u64, 12, 24, 24 * 30, 24 * 365, 24 * 3650] {
            let p = t.at(SimDuration::from_hours(hours));
            assert!(
                p.write_energy_pj_bit >= last,
                "energy not monotone at {hours}h: {} < {last}",
                p.write_energy_pj_bit
            );
            last = p.write_energy_pj_bit;
        }
    }

    #[test]
    fn rber_grows_with_age() {
        let t = stt_tradeoff();
        let ret = SimDuration::from_hours(12);
        let floor = 1e-9;
        let fresh = t.rber_at_age(ret, SimDuration::from_secs(1), floor);
        let mid = t.rber_at_age(ret, SimDuration::from_hours(6), floor);
        let at_target = t.rber_at_age(ret, ret, floor);
        let past = t.rber_at_age(ret, SimDuration::from_hours(48), floor);
        assert!(fresh < 1e-8, "fresh {fresh}");
        assert!(mid > fresh && mid < at_target);
        // The retention target is the RBER spec point by definition.
        assert!(
            (at_target / RBER_AT_RETENTION_TARGET - 1.0).abs() < 0.05,
            "at_target {at_target}"
        );
        assert!(past > at_target && past <= 0.5);
    }

    #[test]
    fn rber_within_retention_window_is_small() {
        // Data read at 10% of its retention target: RBER must stay within
        // typical ECC-correctable range (< 1e-2 for 1% of lifetime).
        let t = rram_tradeoff();
        let ret = SimDuration::from_days(1);
        let r = t.rber_at_age(ret, SimDuration::from_hours(2), 1e-9);
        assert!(r < 1e-6, "rber {r}");
    }

    #[test]
    fn wear_state_progression() {
        let mut w = WearState::new();
        assert!(w.wear_fraction(1e6).abs() < f64::EPSILON);
        assert!(!w.is_worn_out(1e6));
        w.record_writes(500_000);
        assert!((w.wear_fraction(1e6) - 0.5).abs() < 1e-12);
        assert!((w.rber_multiplier(1e6) - 1.25).abs() < 1e-12);
        w.record_writes(500_000);
        assert!(w.is_worn_out(1e6));
        let m = w.rber_multiplier(1e6);
        assert!((9.0..11.0).contains(&m), "multiplier at wear-out {m}");
    }

    #[test]
    fn wear_multiplier_is_monotone_and_continuous_at_knee() {
        let e = 1e6;
        let mut w = WearState::new();
        let mut last = 0.0;
        for k in 0..200 {
            w.cycles = k * 10_000;
            let m = w.rber_multiplier(e);
            assert!(m >= last, "multiplier not monotone at {k}");
            last = m;
        }
        // Continuity at the 0.8 knee.
        let below = WearState { cycles: 799_999 }.rber_multiplier(e);
        let above = WearState { cycles: 800_001 }.rber_multiplier(e);
        assert!((below - above).abs() < 0.01, "{below} vs {above}");
    }

    #[test]
    fn zero_endurance_is_immediately_worn() {
        let w = WearState { cycles: 1 };
        assert!(w.is_worn_out(0.0));
    }
}
