//! The memory-technology database.
//!
//! One [`Technology`] value per technology the paper discusses, with the
//! datasheet-level parameters the analysis needs: latency, bandwidth, energy
//! per bit, refresh behaviour, retention, endurance, density and relative
//! cost. Endurance carries a [`Maturity`] tag because Figure 1 of the paper
//! distinguishes *product* endurance (what shipped devices are rated for)
//! from *technology potential* (what cells have demonstrated in the lab) —
//! the gap between the two is the paper's argument that SCM devices were
//! mis-targeted, not that the cells are incapable.
//!
//! Sources for the numbers are given per preset; they follow the paper's own
//! citations where it has them (Optane endurance from \[5\], Weebit RRAM from
//! \[32\], Everspin STT-MRAM from \[39\], technology surveys \[30, 47\], HBM
//! figures from \[50, 51\]).

use mrm_sim::time::SimDuration;
use mrm_sim::units::{gb_per_s, tb_per_s, GB, TB};
use serde::{Deserialize, Serialize};

use crate::cell::{CellFamily, RetentionTradeoff};

/// Whether a parameter set describes a shipped product or demonstrated
/// technology potential.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Maturity {
    /// Rated figures from a shipping device's datasheet.
    Product,
    /// Best demonstrated capability of the underlying cell technology.
    Potential,
    /// A design point proposed in this work (MRM), derived from potentials.
    Proposed,
}

impl Maturity {
    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Maturity::Product => "product",
            Maturity::Potential => "potential",
            Maturity::Proposed => "proposed",
        }
    }
}

/// Coarse technology family, used for grouping in reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechFamily {
    /// Commodity DDR DRAM.
    Dram,
    /// High Bandwidth Memory (stacked DRAM on interposer).
    Hbm,
    /// Low-power DDR DRAM.
    Lpddr,
    /// NAND Flash.
    Nand,
    /// NOR Flash.
    Nor,
    /// Phase-change memory.
    Pcm,
    /// Resistive RAM.
    Rram,
    /// Spin-transfer-torque MRAM.
    SttMram,
    /// Managed-Retention Memory (this paper's proposal).
    Mrm,
}

impl TechFamily {
    /// The cell physics family underlying this device family.
    pub fn cell_family(self) -> CellFamily {
        match self {
            TechFamily::Dram | TechFamily::Hbm | TechFamily::Lpddr => CellFamily::Dram,
            TechFamily::Nand | TechFamily::Nor => CellFamily::Flash,
            TechFamily::Pcm => CellFamily::Pcm,
            TechFamily::Rram => CellFamily::Rram,
            // MRM design points in this workspace are derived from the
            // STT-MRAM/RRAM potential envelope; STT exponents are used.
            TechFamily::SttMram | TechFamily::Mrm => CellFamily::SttMram,
        }
    }
}

/// A complete technology parameter set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Technology {
    /// Human-readable name, e.g. `"HBM3e"` or `"RRAM (Weebit, product)"`.
    pub name: String,
    /// Device family.
    pub family: TechFamily,
    /// Product datasheet vs. demonstrated potential vs. proposed point.
    pub maturity: Maturity,
    /// Array read latency for a random access, ns.
    pub read_latency_ns: f64,
    /// Array write/program latency, ns.
    pub write_latency_ns: f64,
    /// Sustained sequential read bandwidth per device/stack, bytes/s.
    pub read_bw: f64,
    /// Sustained write bandwidth per device/stack, bytes/s.
    pub write_bw: f64,
    /// Read energy, pJ/bit, at the device interface.
    pub read_energy_pj_bit: f64,
    /// Write energy, pJ/bit.
    pub write_energy_pj_bit: f64,
    /// Static/idle power per GB, mW/GB (refresh excluded; see below).
    pub idle_mw_per_gb: f64,
    /// Cell retention time (time to first refresh / data loss).
    pub retention: SimDuration,
    /// Refresh: `Some(interval)` if the device must refresh all cells every
    /// `interval` to retain data (DRAM family), `None` otherwise.
    pub refresh_interval: Option<SimDuration>,
    /// Energy to refresh one bit once, pJ (internal RMW on the die).
    pub refresh_energy_pj_bit: f64,
    /// Rated endurance, program/erase or write cycles per cell.
    pub endurance: f64,
    /// Capacity per device/stack/package, bytes.
    pub capacity_bytes: u64,
    /// Stacked dies per package (1 for planar).
    pub layers: u32,
    /// Relative cost per GB (DDR5 DRAM ≡ 1.0).
    pub cost_per_gb_rel: f64,
    /// Whether the device exposes efficient random byte/cache-line access.
    pub byte_addressable: bool,
    /// Smallest efficient access unit, bytes (cache line for DRAM, page for
    /// NAND, block for MRM's block-oriented interface).
    pub access_unit_bytes: u64,
}

impl Technology {
    /// The retention trade-off curve anchored at this technology's shipped
    /// operating point.
    pub fn tradeoff(&self) -> RetentionTradeoff {
        let family = self.family.cell_family();
        let ceiling = match family {
            CellFamily::Dram => 1e16,
            CellFamily::Flash => 1e6,
            CellFamily::Pcm => 1e9,
            CellFamily::Rram => 1e12,
            CellFamily::SttMram => 1e15,
        };
        RetentionTradeoff {
            family,
            ref_retention: self.retention,
            ref_write_energy_pj_bit: self.write_energy_pj_bit,
            ref_write_latency_ns: self.write_latency_ns,
            ref_endurance: self.endurance,
            endurance_ceiling: ceiling,
        }
    }

    /// Average refresh power for the whole device, watts: every bit is
    /// rewritten once per refresh interval.
    ///
    /// Returns 0 for refresh-free technologies — the quantity the paper's
    /// §3 "retention becomes a cornerstone of device power management"
    /// argument is about.
    pub fn refresh_power_w(&self) -> f64 {
        match self.refresh_interval {
            None => 0.0,
            Some(interval) => {
                let bits = self.capacity_bytes as f64 * 8.0;
                let joules_per_cycle = bits * self.refresh_energy_pj_bit * 1e-12;
                joules_per_cycle / interval.as_secs_f64()
            }
        }
    }

    /// Idle (non-refresh) standby power, watts.
    pub fn idle_power_w(&self) -> f64 {
        self.idle_mw_per_gb * 1e-3 * (self.capacity_bytes as f64 / GB as f64)
    }

    /// Time to stream the entire device contents once at the rated read
    /// bandwidth — the per-token working-set read the decode loop performs.
    pub fn full_read_time(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.capacity_bytes as f64 / self.read_bw)
    }

    /// Energy to read `bytes` sequentially, joules.
    pub fn read_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.read_energy_pj_bit * 1e-12
    }

    /// Energy to write `bytes`, joules.
    pub fn write_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.write_energy_pj_bit * 1e-12
    }
}

/// Builders for every technology in the paper's Figure 1 and §3 discussion.
pub mod presets {
    use super::*;

    /// Commodity DDR5 DRAM DIMM (64 GB RDIMM class).
    ///
    /// Latency ~15 ns array, ~20 pJ/bit at the DIMM interface (off-package
    /// signalling dominates), 64 ms retention / 7.8 µs tREFI refresh cadence,
    /// effectively unlimited endurance. Cost is the 1.0 reference.
    pub fn ddr5() -> Technology {
        Technology {
            name: "DDR5 DRAM".into(),
            family: TechFamily::Dram,
            maturity: Maturity::Product,
            read_latency_ns: 15.0,
            write_latency_ns: 15.0,
            read_bw: gb_per_s(51.2), // two channels of DDR5-6400 ≈ 51 GB/s/DIMM
            write_bw: gb_per_s(51.2),
            read_energy_pj_bit: 20.0,
            write_energy_pj_bit: 20.0,
            idle_mw_per_gb: 2.0,
            retention: SimDuration::from_millis(64),
            refresh_interval: Some(SimDuration::from_millis(64)),
            refresh_energy_pj_bit: 0.15,
            endurance: 1e16,
            capacity_bytes: 64 * GB,
            layers: 1,
            cost_per_gb_rel: 1.0,
            byte_addressable: true,
            access_unit_bytes: 64,
        }
    }

    /// HBM3e stack, B200-class (§2.1: 8 stacks × 24 GB = 192 GB, 8 TB/s
    /// aggregate → 1 TB/s per stack \[51\]; 12-high stacking \[50\]).
    ///
    /// On-interposer signalling brings interface energy down to ~3.9 pJ/bit
    /// (industry figures for HBM3-class PHYs); DRAM-array refresh still
    /// applies (tens-to-hundreds of ms, §2.1).
    pub fn hbm3e() -> Technology {
        Technology {
            name: "HBM3e".into(),
            family: TechFamily::Hbm,
            maturity: Maturity::Product,
            read_latency_ns: 110.0,
            write_latency_ns: 110.0,
            read_bw: tb_per_s(1.0),
            write_bw: tb_per_s(1.0),
            read_energy_pj_bit: 3.9,
            write_energy_pj_bit: 3.9,
            idle_mw_per_gb: 6.0,
            retention: SimDuration::from_millis(32),
            refresh_interval: Some(SimDuration::from_millis(32)),
            refresh_energy_pj_bit: 0.15,
            endurance: 1e16,
            capacity_bytes: 24 * GB,
            layers: 12,
            cost_per_gb_rel: 3.0,
            byte_addressable: true,
            access_unit_bytes: 64,
        }
    }

    /// HBM4 projection: +30% capacity per layer vs. HBM3e (§2.1 / \[50\]),
    /// 16-high ceiling, ~1.6 TB/s per stack, slightly better pJ/bit.
    pub fn hbm4() -> Technology {
        let mut t = hbm3e();
        t.name = "HBM4 (projected)".into();
        t.capacity_bytes = (24.0 * 1.3 * 16.0 / 12.0 * GB as f64) as u64; // ≈ 41.6 GB
        t.layers = 16;
        t.read_bw = tb_per_s(1.6);
        t.write_bw = tb_per_s(1.6);
        t.read_energy_pj_bit = 3.5;
        t.write_energy_pj_bit = 3.5;
        t.cost_per_gb_rel = 3.5; // stacking complexity grows with height
        t
    }

    /// LPDDR5X package, GB200-superchip-class slower tier (§5 / \[35\]).
    pub fn lpddr5x() -> Technology {
        Technology {
            name: "LPDDR5X".into(),
            family: TechFamily::Lpddr,
            maturity: Maturity::Product,
            read_latency_ns: 25.0,
            write_latency_ns: 25.0,
            read_bw: gb_per_s(68.0), // x64 package at 8533 MT/s
            write_bw: gb_per_s(68.0),
            read_energy_pj_bit: 6.0,
            write_energy_pj_bit: 6.0,
            idle_mw_per_gb: 1.0,
            retention: SimDuration::from_millis(64),
            refresh_interval: Some(SimDuration::from_millis(64)),
            refresh_energy_pj_bit: 0.12,
            endurance: 1e16,
            capacity_bytes: 32 * GB,
            layers: 1,
            cost_per_gb_rel: 0.7,
            byte_addressable: true,
            access_unit_bytes: 64,
        }
    }

    /// Single-level-cell NAND Flash die (fast SLC mode).
    ///
    /// The §3 argument: even SLC endurance (~1e5 P/E \[7\]) is orders of
    /// magnitude short, and page program latency (~200 µs) cannot sustain
    /// KV-cache append rates in-package.
    pub fn nand_slc() -> Technology {
        Technology {
            name: "NAND Flash (SLC)".into(),
            family: TechFamily::Nand,
            maturity: Maturity::Product,
            read_latency_ns: 25_000.0,
            write_latency_ns: 200_000.0,
            read_bw: gb_per_s(1.2),
            write_bw: gb_per_s(0.4),
            read_energy_pj_bit: 8.0,
            write_energy_pj_bit: 60.0,
            idle_mw_per_gb: 0.05,
            retention: SimDuration::from_years(10),
            refresh_interval: None,
            refresh_energy_pj_bit: 0.0,
            endurance: 1e5,
            capacity_bytes: 64 * GB,
            layers: 1,
            cost_per_gb_rel: 0.08,
            byte_addressable: false,
            access_unit_bytes: 16 * 1024,
        }
    }

    /// Triple-level-cell NAND Flash die (density-optimized).
    pub fn nand_tlc() -> Technology {
        let mut t = nand_slc();
        t.name = "NAND Flash (TLC)".into();
        t.read_latency_ns = 60_000.0;
        t.write_latency_ns = 600_000.0;
        t.write_bw = gb_per_s(0.15);
        t.endurance = 3e3;
        t.capacity_bytes = 192 * GB;
        t.cost_per_gb_rel = 0.03;
        t
    }

    /// NOR Flash (byte-addressable reads, slow block erase/program).
    pub fn nor_flash() -> Technology {
        Technology {
            name: "NOR Flash".into(),
            family: TechFamily::Nor,
            maturity: Maturity::Product,
            read_latency_ns: 100.0,
            write_latency_ns: 10_000_000.0, // word program + erase amortized
            read_bw: gb_per_s(0.4),
            write_bw: gb_per_s(0.001),
            read_energy_pj_bit: 6.0,
            write_energy_pj_bit: 500.0,
            idle_mw_per_gb: 0.05,
            retention: SimDuration::from_years(20),
            refresh_interval: None,
            refresh_energy_pj_bit: 0.0,
            endurance: 1e5,
            capacity_bytes: 2 * GB,
            layers: 1,
            cost_per_gb_rel: 2.0,
            byte_addressable: true,
            access_unit_bytes: 64,
        }
    }

    /// PCM as shipped in Intel Optane DC PMM (paper ref \[5\]).
    ///
    /// Endurance derived from the 350 PBW / 128 GB / 5-year warranty point
    /// discussed in \[5\]: ≈ 3e6 rated cycles. Read ~170 ns, write ~500 ns.
    pub fn pcm_optane_product() -> Technology {
        Technology {
            name: "PCM (Optane, product)".into(),
            family: TechFamily::Pcm,
            maturity: Maturity::Product,
            read_latency_ns: 170.0,
            write_latency_ns: 500.0,
            read_bw: gb_per_s(6.8),
            write_bw: gb_per_s(2.3),
            read_energy_pj_bit: 10.0,
            write_energy_pj_bit: 120.0,
            idle_mw_per_gb: 0.8,
            retention: SimDuration::from_years(10),
            refresh_interval: None,
            refresh_energy_pj_bit: 0.0,
            endurance: 3e6,
            capacity_bytes: 128 * GB,
            layers: 1,
            cost_per_gb_rel: 0.5,
            byte_addressable: true,
            access_unit_bytes: 256,
        }
    }

    /// PCM technology potential (Lee et al. \[24\]; surveys \[30, 47\]):
    /// sub-100 ns access demonstrated, ~1e9 endurance in research cells.
    pub fn pcm_potential() -> Technology {
        let mut t = pcm_optane_product();
        t.name = "PCM (potential)".into();
        t.maturity = Maturity::Potential;
        t.read_latency_ns = 60.0;
        t.write_latency_ns = 150.0;
        t.read_bw = gb_per_s(400.0); // array-limited, wide-IO organization
        t.write_bw = gb_per_s(100.0);
        t.read_energy_pj_bit = 2.0;
        t.write_energy_pj_bit = 30.0;
        t.endurance = 1e9;
        t.cost_per_gb_rel = 0.4;
        t
    }

    /// RRAM as shipped in embedded products (Weebit-class, paper ref \[32\]):
    /// ~1e5–1e6 cycles at 10-year automotive retention.
    pub fn rram_product() -> Technology {
        Technology {
            name: "RRAM (Weebit, product)".into(),
            family: TechFamily::Rram,
            maturity: Maturity::Product,
            read_latency_ns: 100.0,
            write_latency_ns: 1_000.0,
            read_bw: gb_per_s(1.0),
            write_bw: gb_per_s(0.1),
            read_energy_pj_bit: 5.0,
            write_energy_pj_bit: 50.0,
            idle_mw_per_gb: 0.1,
            retention: SimDuration::from_years(10),
            refresh_interval: None,
            refresh_energy_pj_bit: 0.0,
            endurance: 1e5,
            capacity_bytes: GB / 8, // embedded macro scale
            layers: 1,
            cost_per_gb_rel: 4.0,
            byte_addressable: true,
            access_unit_bytes: 64,
        }
    }

    /// RRAM technology potential: sub-ns switching and >1e10 endurance
    /// demonstrated for HfOx cells (Lee et al. IEDM'10 \[25\]); crossbar
    /// densities competitive with DRAM (Xu et al. HPCA'15 \[56\]).
    pub fn rram_potential() -> Technology {
        let mut t = rram_product();
        t.name = "RRAM (potential)".into();
        t.maturity = Maturity::Potential;
        t.read_latency_ns = 30.0;
        t.write_latency_ns = 50.0;
        t.read_bw = gb_per_s(800.0);
        t.write_bw = gb_per_s(200.0);
        t.read_energy_pj_bit = 1.5;
        t.write_energy_pj_bit = 10.0;
        t.endurance = 1e10;
        t.capacity_bytes = 48 * GB;
        t.layers = 4; // transistor-less crossbar stacking [56]
        t.cost_per_gb_rel = 0.8;
        t
    }

    /// STT-MRAM as shipped (Everspin-class, paper ref \[39\]): ~1e10 cycles,
    /// DDR-like interfaces at modest density.
    pub fn stt_mram_product() -> Technology {
        Technology {
            name: "STT-MRAM (Everspin, product)".into(),
            family: TechFamily::SttMram,
            maturity: Maturity::Product,
            read_latency_ns: 35.0,
            write_latency_ns: 50.0,
            read_bw: gb_per_s(3.2),
            write_bw: gb_per_s(1.6),
            read_energy_pj_bit: 3.0,
            write_energy_pj_bit: 25.0,
            idle_mw_per_gb: 0.3,
            retention: SimDuration::from_years(10),
            refresh_interval: None,
            refresh_energy_pj_bit: 0.0,
            endurance: 1e10,
            capacity_bytes: GB,
            layers: 1,
            cost_per_gb_rel: 20.0,
            byte_addressable: true,
            access_unit_bytes: 64,
        }
    }

    /// STT-MRAM technology potential: SRAM-class read performance and
    /// effectively unlimited endurance at relaxed retention (Marinelli et
    /// al. \[28\]; surveys \[30, 47\]).
    pub fn stt_mram_potential() -> Technology {
        let mut t = stt_mram_product();
        t.name = "STT-MRAM (potential)".into();
        t.maturity = Maturity::Potential;
        t.read_latency_ns = 10.0;
        t.write_latency_ns = 15.0;
        t.read_bw = gb_per_s(1_000.0);
        t.write_bw = gb_per_s(400.0);
        t.read_energy_pj_bit = 1.0;
        t.write_energy_pj_bit = 8.0;
        t.endurance = 1e15;
        t.capacity_bytes = 16 * GB;
        t.layers = 2;
        t.cost_per_gb_rel = 2.5;
        t
    }

    /// An MRM design point at the given retention target (the paper's
    /// proposal, §3): derived from the resistive-technology potential
    /// envelope with retention relaxed from 10 years to `retention`.
    ///
    /// Reads: on par or better than HBM per bit (the technologies "have
    /// read performance and energy on par or better than DRAM or even
    /// SRAM" \[28\]); density: crossbar stacking without DRAM's tall
    /// capacitors \[40, 56\] gives ~2× HBM3e per-stack capacity at lower
    /// cost; writes: slower than HBM (the accepted trade); endurance and
    /// write energy: from the [`RetentionTradeoff`] curve at `retention`.
    pub fn mrm(retention: SimDuration) -> Technology {
        let envelope = stt_mram_potential();
        let point = envelope.tradeoff().at(retention);
        Technology {
            name: format!("MRM ({retention})"),
            family: TechFamily::Mrm,
            maturity: Maturity::Proposed,
            read_latency_ns: 50.0,
            write_latency_ns: point.write_latency_ns.max(20.0),
            read_bw: tb_per_s(1.2), // per stack; wide internal IO, no refresh stalls
            write_bw: gb_per_s(120.0),
            read_energy_pj_bit: 1.5, // < HBM3e's 3.9 pJ/bit
            write_energy_pj_bit: point.write_energy_pj_bit,
            idle_mw_per_gb: 0.05, // no refresh, no cell leakage to first order
            retention,
            refresh_interval: None, // retention is managed by software, §4
            refresh_energy_pj_bit: 0.0,
            endurance: point.endurance,
            capacity_bytes: 48 * GB, // ~2× HBM3e stack capacity
            layers: 8,
            cost_per_gb_rel: 1.5,    // simpler process than 12-high stacked DRAM
            byte_addressable: false, // block-level controller interface, §4
            access_unit_bytes: 4096,
        }
    }

    /// The paper's sweet-spot MRM class: hours of retention, matching KV
    /// cache + weight-epoch lifetimes ("retention can be relaxed to days or
    /// hours", §1).
    pub fn mrm_hours() -> Technology {
        mrm(SimDuration::from_hours(12))
    }

    /// A days-retention MRM class for weights and reusable KV prefixes.
    pub fn mrm_days() -> Technology {
        mrm(SimDuration::from_days(7))
    }

    /// A minutes-retention MRM class for short-lived contexts.
    pub fn mrm_minutes() -> Technology {
        mrm(SimDuration::from_mins(10))
    }

    /// Every technology in the database, product and potential variants,
    /// in Figure-1 display order.
    pub fn all() -> Vec<Technology> {
        vec![
            ddr5(),
            hbm3e(),
            hbm4(),
            lpddr5x(),
            nand_slc(),
            nand_tlc(),
            nor_flash(),
            pcm_optane_product(),
            pcm_potential(),
            rram_product(),
            rram_potential(),
            stt_mram_product(),
            stt_mram_potential(),
            mrm_minutes(),
            mrm_hours(),
            mrm_days(),
        ]
    }

    /// A B200-class accelerator memory system: 8 HBM3e stacks, 192 GB,
    /// 8 TB/s (§2.1 / \[51\]). Returned as (stack technology, stack count).
    pub fn b200_hbm_system() -> (Technology, u32) {
        (hbm3e(), 8)
    }

    /// Total capacity of `n` devices of technology `t`, bytes.
    pub fn system_capacity(t: &Technology, n: u32) -> u64 {
        t.capacity_bytes * u64::from(n)
    }

    /// A sanity helper: one terabyte expressed in this module's units.
    pub const ONE_TB: u64 = TB;
}

#[cfg(test)]
mod tests {
    use super::presets::*;
    use super::*;

    #[test]
    fn b200_system_matches_paper() {
        let (stack, n) = b200_hbm_system();
        let cap = system_capacity(&stack, n);
        assert_eq!(cap, 192 * GB, "§2.1: 192 GB per B200 package");
        let bw = stack.read_bw * f64::from(n);
        assert!((bw / 8e12 - 1.0).abs() < 0.01, "§2.1: 8 TB/s, got {bw}");
        assert_eq!(stack.layers, 12, "current HBM products have 8-12 layers");
    }

    #[test]
    fn hbm4_capacity_gain_is_thirty_percent_per_layer() {
        let h3 = hbm3e();
        let h4 = hbm4();
        let per_layer_3 = h3.capacity_bytes as f64 / f64::from(h3.layers);
        let per_layer_4 = h4.capacity_bytes as f64 / f64::from(h4.layers);
        let gain = per_layer_4 / per_layer_3;
        assert!((gain - 1.3).abs() < 0.01, "§2.1: +30%/layer, got {gain}");
        assert!(
            h4.layers <= 16,
            "§2.1: not expected to scale beyond 16 layers"
        );
    }

    #[test]
    fn refresh_power_only_for_dram_family() {
        assert!(ddr5().refresh_power_w() > 0.0);
        assert!(hbm3e().refresh_power_w() > 0.0);
        assert!(lpddr5x().refresh_power_w() > 0.0);
        assert!(nand_slc().refresh_power_w().abs() < f64::EPSILON);
        assert!(pcm_optane_product().refresh_power_w().abs() < f64::EPSILON);
        assert!(mrm_hours().refresh_power_w().abs() < f64::EPSILON);
    }

    #[test]
    fn hbm_refresh_power_is_significant() {
        // A 24 GB stack refreshing every 32 ms at 0.15 pJ/bit: ~0.9 W —
        // consistent with the §2.1 "consuming power even when idle" claim.
        let p = hbm3e().refresh_power_w();
        assert!(p > 0.3 && p < 3.0, "refresh power {p} W");
    }

    #[test]
    fn endurance_ordering_matches_figure_1() {
        // Figure 1's qualitative ordering.
        let e = |t: Technology| t.endurance;
        assert!(e(ddr5()) >= 1e15, "DRAM/HBM vastly overprovisioned");
        assert!(e(hbm3e()) >= 1e15);
        assert!(e(nand_tlc()) < e(nand_slc()));
        assert!(e(nand_slc()) <= 1e5);
        assert!(e(pcm_optane_product()) < e(pcm_potential()));
        assert!(e(rram_product()) < e(rram_potential()));
        assert!(e(stt_mram_product()) < e(stt_mram_potential()));
    }

    #[test]
    fn mrm_read_energy_beats_hbm() {
        // §3: "read performance and energy on par or better than DRAM".
        assert!(mrm_hours().read_energy_pj_bit < hbm3e().read_energy_pj_bit);
        assert!(mrm_hours().read_bw >= hbm3e().read_bw);
    }

    #[test]
    fn mrm_capacity_and_cost_beat_hbm() {
        let m = mrm_hours();
        let h = hbm3e();
        assert!(m.capacity_bytes >= 2 * h.capacity_bytes);
        assert!(m.cost_per_gb_rel < h.cost_per_gb_rel);
    }

    #[test]
    fn mrm_trades_write_performance() {
        // The accepted trade: MRM writes are slower than HBM writes.
        let m = mrm_hours();
        let h = hbm3e();
        assert!(m.write_bw < h.write_bw);
    }

    #[test]
    fn mrm_endurance_grows_as_retention_relaxes() {
        let days = mrm(SimDuration::from_days(7)).endurance;
        let hours = mrm(SimDuration::from_hours(1)).endurance;
        let mins = mrm(SimDuration::from_mins(1)).endurance;
        assert!(hours >= days);
        assert!(mins >= hours);
    }

    #[test]
    fn mrm_write_energy_below_scm_anchor() {
        // Relaxed retention must cost less write energy than the 10-year
        // potential anchor it derives from.
        let anchor = stt_mram_potential().write_energy_pj_bit;
        assert!(mrm_hours().write_energy_pj_bit < anchor);
    }

    #[test]
    fn scm_products_fail_endurance_but_potentials_pass() {
        // §3's key observation, quantified roughly: a KV-cache workload
        // needs ~1e6-1e8 writes/cell over 5 years (computed precisely in
        // mrm-analysis). Products sit below or at the edge; potentials above.
        let kv_requirement = 1e7;
        assert!(pcm_optane_product().endurance < kv_requirement);
        assert!(rram_product().endurance < kv_requirement);
        assert!(pcm_potential().endurance > kv_requirement);
        assert!(rram_potential().endurance > kv_requirement);
        assert!(stt_mram_potential().endurance > kv_requirement);
    }

    #[test]
    fn full_read_time_hbm() {
        // 24 GB at 1 TB/s: 24 ms per full sweep.
        let t = hbm3e().full_read_time();
        assert!((t.as_millis() as i64 - 24).abs() <= 1, "{t}");
    }

    #[test]
    fn energy_helpers() {
        let h = hbm3e();
        let j = h.read_energy_j(GB);
        // 1 GB = 8e9 bits at 3.9 pJ/bit ≈ 31.2 mJ.
        assert!((j - 0.0312).abs() < 0.001, "read energy {j} J");
        assert!(h.write_energy_j(GB) > 0.0);
    }

    #[test]
    fn all_presets_are_self_consistent() {
        for t in all() {
            assert!(t.read_latency_ns > 0.0, "{}", t.name);
            assert!(t.write_latency_ns > 0.0, "{}", t.name);
            assert!(t.read_bw > 0.0, "{}", t.name);
            assert!(t.write_bw > 0.0, "{}", t.name);
            assert!(
                t.read_bw >= t.write_bw,
                "{}: reads slower than writes",
                t.name
            );
            assert!(t.endurance > 0.0, "{}", t.name);
            assert!(t.capacity_bytes > 0, "{}", t.name);
            assert!(t.cost_per_gb_rel > 0.0, "{}", t.name);
            assert!(t.access_unit_bytes.is_power_of_two(), "{}", t.name);
            if let Some(interval) = t.refresh_interval {
                assert!(t.refresh_energy_pj_bit > 0.0, "{}", t.name);
                assert_eq!(interval, t.retention, "{}", t.name);
            }
        }
    }

    #[test]
    fn tradeoff_anchors_at_datasheet() {
        for t in all() {
            let point = t.tradeoff().at(t.retention);
            // Datasheet anchor: the tradeoff returns the stored values
            // bit-identically.
            assert_eq!(
                point.write_energy_pj_bit.to_bits(),
                t.write_energy_pj_bit.to_bits(),
                "{}",
                t.name
            );
            assert_eq!(
                point.endurance.to_bits(),
                t.endurance.to_bits(),
                "{}",
                t.name
            );
        }
    }

    #[test]
    fn maturity_labels() {
        assert_eq!(Maturity::Product.label(), "product");
        assert_eq!(Maturity::Potential.label(), "potential");
        assert_eq!(Maturity::Proposed.label(), "proposed");
    }
}
