//! A timed DRAM-style bank state machine.
//!
//! The controller crate schedules commands against banks; each bank tracks
//! the open row and the earliest time the next command may issue, using the
//! classic timing parameters (tRCD, tCAS, tRP, tRAS, tRFC). The model is
//! deliberately at "architecture simulator" fidelity: enough to show row
//! locality and refresh interference effects, not a DDR PHY model.

use serde::{Deserialize, Serialize};

use mrm_sim::time::{SimDuration, SimTime};

/// Bank timing parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BankTiming {
    /// Activate-to-read/write delay.
    pub t_rcd: SimDuration,
    /// Read/write command to data (CAS latency).
    pub t_cas: SimDuration,
    /// Precharge time.
    pub t_rp: SimDuration,
    /// Minimum row-open time (activate to precharge).
    pub t_ras: SimDuration,
    /// Refresh cycle time (bank unavailable during refresh).
    pub t_rfc: SimDuration,
    /// Data burst transfer time per column access.
    pub t_burst: SimDuration,
}

impl BankTiming {
    /// HBM3-class timings (ns-scale, per pseudo-channel).
    pub fn hbm3_like() -> Self {
        BankTiming {
            t_rcd: SimDuration::from_nanos(14),
            t_cas: SimDuration::from_nanos(14),
            t_rp: SimDuration::from_nanos(14),
            t_ras: SimDuration::from_nanos(33),
            t_rfc: SimDuration::from_nanos(260),
            t_burst: SimDuration::from_nanos(2),
        }
    }

    /// DDR5-class timings.
    pub fn ddr5_like() -> Self {
        BankTiming {
            t_rcd: SimDuration::from_nanos(16),
            t_cas: SimDuration::from_nanos(16),
            t_rp: SimDuration::from_nanos(16),
            t_ras: SimDuration::from_nanos(32),
            t_rfc: SimDuration::from_nanos(295),
            t_burst: SimDuration::from_nanos(3),
        }
    }
}

/// Row-buffer outcome of an access, for hit-rate statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The target row was already open.
    Hit,
    /// No row was open; a plain activate was needed.
    Miss,
    /// A different row was open; precharge + activate were needed.
    Conflict,
}

/// One bank's state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bank {
    timing: BankTiming,
    open_row: Option<u32>,
    /// Earliest time the next command may start.
    ready_at: SimTime,
    /// Time the current row was activated (for tRAS).
    activated_at: SimTime,
    hits: u64,
    misses: u64,
    conflicts: u64,
    refreshes: u64,
}

/// The result of scheduling an access on a bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// When the first data beat is available (read) or accepted (write).
    pub data_at: SimTime,
    /// When the bank can accept another command.
    pub bank_free_at: SimTime,
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
}

impl Bank {
    /// Creates an idle bank.
    pub fn new(timing: BankTiming) -> Self {
        Bank {
            timing,
            open_row: None,
            ready_at: SimTime::ZERO,
            activated_at: SimTime::ZERO,
            hits: 0,
            misses: 0,
            conflicts: 0,
            refreshes: 0,
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Earliest time the bank can accept a new command.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// Row-buffer statistics as `(hits, misses, conflicts)`.
    pub fn row_stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.conflicts)
    }

    /// Number of refresh operations performed.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// Schedules a column access to `row` of `bursts` consecutive bursts,
    /// arriving at time `at`. Returns the completion schedule.
    pub fn access(&mut self, at: SimTime, row: u32, bursts: u32) -> AccessResult {
        let start = at.max(self.ready_at);
        let t = self.timing;
        let (cmd_done, outcome) = match self.open_row {
            Some(open) if open == row => (start, RowOutcome::Hit),
            Some(_) => {
                // Precharge (respecting tRAS) + activate.
                let can_precharge = start.max(self.activated_at + t.t_ras);
                let activated = can_precharge + t.t_rp;
                self.activated_at = activated;
                (activated + t.t_rcd, RowOutcome::Conflict)
            }
            None => {
                self.activated_at = start;
                (start + t.t_rcd, RowOutcome::Miss)
            }
        };
        match outcome {
            RowOutcome::Hit => self.hits += 1,
            RowOutcome::Miss => self.misses += 1,
            RowOutcome::Conflict => self.conflicts += 1,
        }
        self.open_row = Some(row);
        let data_at = cmd_done + t.t_cas;
        let transfer = t.t_burst.saturating_mul(u64::from(bursts.max(1)));
        let bank_free_at = data_at + transfer;
        self.ready_at = bank_free_at;
        AccessResult {
            data_at,
            bank_free_at,
            outcome,
        }
    }

    /// Performs a refresh starting no earlier than `at`; the bank is closed
    /// afterwards. Returns when the bank becomes available again.
    pub fn refresh(&mut self, at: SimTime) -> SimTime {
        let start = at.max(self.ready_at);
        // Close any open row first.
        let start = if self.open_row.is_some() {
            start.max(self.activated_at + self.timing.t_ras) + self.timing.t_rp
        } else {
            start
        };
        self.open_row = None;
        self.ready_at = start + self.timing.t_rfc;
        self.refreshes += 1;
        self.ready_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Bank {
        Bank::new(BankTiming::hbm3_like())
    }

    #[test]
    fn first_access_is_a_miss() {
        let mut b = bank();
        let r = b.access(SimTime::ZERO, 5, 1);
        assert_eq!(r.outcome, RowOutcome::Miss);
        // tRCD + tCAS before data.
        assert_eq!(r.data_at, SimTime::from_nanos(28));
    }

    #[test]
    fn same_row_hits_are_faster() {
        let mut b = bank();
        let miss = b.access(SimTime::ZERO, 5, 1);
        let t1 = miss.bank_free_at;
        let hit = b.access(t1, 5, 1);
        assert_eq!(hit.outcome, RowOutcome::Hit);
        let hit_latency = hit.data_at - t1;
        let miss_latency = miss.data_at - SimTime::ZERO;
        assert!(hit_latency < miss_latency);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut b = bank();
        let first = b.access(SimTime::ZERO, 1, 1);
        let conflict = b.access(first.bank_free_at, 2, 1);
        assert_eq!(conflict.outcome, RowOutcome::Conflict);
        let hit_path = BankTiming::hbm3_like().t_cas;
        assert!(conflict.data_at - first.bank_free_at > hit_path);
    }

    #[test]
    fn sequential_bursts_stream() {
        let mut b = bank();
        let r = b.access(SimTime::ZERO, 0, 64);
        // 64 bursts at 2 ns each = 128 ns of transfer after data_at.
        assert_eq!(r.bank_free_at - r.data_at, SimDuration::from_nanos(128));
    }

    #[test]
    fn refresh_closes_row_and_blocks() {
        let mut b = bank();
        let r = b.access(SimTime::ZERO, 7, 1);
        let free = b.refresh(r.bank_free_at);
        assert!(b.open_row().is_none());
        assert!(free > r.bank_free_at + BankTiming::hbm3_like().t_rfc);
        assert_eq!(b.refresh_count(), 1);
        // Next access is a miss again and waits for the refresh.
        let after = b.access(SimTime::ZERO, 7, 1);
        assert_eq!(after.outcome, RowOutcome::Miss);
        assert!(after.data_at > free);
    }

    #[test]
    fn stats_accumulate() {
        let mut b = bank();
        let mut t = SimTime::ZERO;
        for (row, _) in [(0u32, 0), (0, 0), (1, 0), (1, 0), (0, 0)] {
            t = b.access(t, row, 1).bank_free_at;
        }
        let (h, m, c) = b.row_stats();
        assert_eq!((h, m, c), (2, 1, 2));
    }

    #[test]
    fn back_to_back_commands_queue() {
        let mut b = bank();
        let r1 = b.access(SimTime::ZERO, 0, 1);
        // Arrives "in the past" relative to bank readiness: starts when free.
        let r2 = b.access(SimTime::ZERO, 0, 1);
        assert!(r2.data_at >= r1.bank_free_at);
    }
}
