//! HBM stack modelling: capacity scaling, stacking yield, thermals, refresh.
//!
//! §2.1 of the paper lists HBM's fundamental challenges: per-layer density
//! scaling is slowing (HBM4 ≈ +30% per layer), 3D stacking reduces yield and
//! is not expected beyond 16 layers, heat dissipation worsens with stacking,
//! and refresh burns power even when idle. This module quantifies each claim
//! so the analysis crate can print them.

use serde::{Deserialize, Serialize};

use mrm_sim::time::SimDuration;
use mrm_sim::units::GB;

/// Parameters of an HBM stack design.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HbmStackModel {
    /// DRAM layers in the stack.
    pub layers: u32,
    /// Capacity per layer, bytes.
    pub layer_capacity_bytes: u64,
    /// Per-die yield of a single DRAM layer after test (fraction).
    pub layer_yield: f64,
    /// Yield of each bonding step in the stacking process (fraction).
    /// Stacking is the "extremely complex" step §2.1 calls out: every
    /// additional layer multiplies in another bonding-yield factor.
    pub bond_yield_per_layer: f64,
    /// Refresh interval the stack must sustain.
    pub refresh_interval: SimDuration,
    /// Refresh energy, pJ/bit per refresh pass.
    pub refresh_energy_pj_bit: f64,
    /// Thermal resistance growth per layer (K/W, relative units): deeper
    /// layers are harder to cool when co-packaged with an accelerator die.
    pub thermal_resistance_per_layer: f64,
}

impl HbmStackModel {
    /// HBM3e-like stack: 12 layers of 2 GB (24 Gb) dies.
    pub fn hbm3e() -> Self {
        HbmStackModel {
            layers: 12,
            layer_capacity_bytes: 2 * GB,
            layer_yield: 0.92,
            bond_yield_per_layer: 0.985,
            refresh_interval: SimDuration::from_millis(32),
            refresh_energy_pj_bit: 0.15,
            thermal_resistance_per_layer: 0.35,
        }
    }

    /// HBM4 projection: +30% capacity per layer (§2.1 / \[50\]), up to the
    /// 16-layer industry ceiling.
    pub fn hbm4(layers: u32) -> Self {
        let mut m = Self::hbm3e();
        m.layers = layers.min(16);
        m.layer_capacity_bytes = (m.layer_capacity_bytes as f64 * 1.3) as u64;
        m
    }

    /// Total stack capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.layers) * self.layer_capacity_bytes
    }

    /// Compound manufacturing yield of the assembled stack: every layer
    /// must be good and every bond must take. This is the §2.1
    /// "3D-stacking ... significantly reduces the yield" effect; it decays
    /// geometrically in the layer count.
    pub fn stack_yield(&self) -> f64 {
        let layer_part = self.layer_yield.powi(self.layers as i32);
        // n layers need n-1 bonding steps plus base-die attach ≈ n bonds.
        let bond_part = self.bond_yield_per_layer.powi(self.layers as i32);
        layer_part * bond_part
    }

    /// Effective cost multiplier from yield loss alone: 1/yield good stacks
    /// must be started per good stack shipped.
    pub fn yield_cost_multiplier(&self) -> f64 {
        1.0 / self.stack_yield()
    }

    /// Average refresh power for the stack, watts.
    pub fn refresh_power_w(&self) -> f64 {
        let bits = self.capacity_bytes() as f64 * 8.0;
        bits * self.refresh_energy_pj_bit * 1e-12 / self.refresh_interval.as_secs_f64()
    }

    /// Relative thermal resistance of the full stack (K/W-ish units):
    /// grows with stacking height, capping practical power density.
    pub fn thermal_resistance(&self) -> f64 {
        1.0 + self.thermal_resistance_per_layer * f64::from(self.layers)
    }

    /// Capacity per good (yielded) wafer-normalized unit — the quantity
    /// that actually sets $/GB. Returns bytes scaled by yield.
    pub fn yielded_capacity_bytes(&self) -> f64 {
        self.capacity_bytes() as f64 * self.stack_yield()
    }
}

/// Sweeps stack height and reports the §2.1 scaling story.
///
/// Returns `(layers, capacity_bytes, stack_yield, cost_multiplier,
/// refresh_w, thermal_resistance)` per height.
pub fn layer_sweep(base: &HbmStackModel, max_layers: u32) -> Vec<(u32, u64, f64, f64, f64, f64)> {
    (4..=max_layers)
        .map(|layers| {
            let m = HbmStackModel { layers, ..*base };
            (
                layers,
                m.capacity_bytes(),
                m.stack_yield(),
                m.yield_cost_multiplier(),
                m.refresh_power_w(),
                m.thermal_resistance(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm3e_capacity_matches_product() {
        let m = HbmStackModel::hbm3e();
        assert_eq!(m.capacity_bytes(), 24 * GB);
    }

    #[test]
    fn yield_decays_with_layers() {
        let base = HbmStackModel::hbm3e();
        let y8 = HbmStackModel { layers: 8, ..base }.stack_yield();
        let y12 = HbmStackModel { layers: 12, ..base }.stack_yield();
        let y16 = HbmStackModel { layers: 16, ..base }.stack_yield();
        assert!(y8 > y12 && y12 > y16);
        // 12-high stacking should already show a visible yield hit.
        assert!(y12 < 0.55, "stack yield {y12}");
        assert!(y12 > 0.15, "stack yield {y12}");
    }

    #[test]
    fn cost_multiplier_inverse_of_yield() {
        let m = HbmStackModel::hbm3e();
        let prod = m.stack_yield() * m.yield_cost_multiplier();
        assert!((prod - 1.0).abs() < 1e-12);
        assert!(m.yield_cost_multiplier() > 1.0);
    }

    #[test]
    fn hbm4_layer_gain() {
        let h3 = HbmStackModel::hbm3e();
        let h4 = HbmStackModel::hbm4(16);
        let gain = h4.layer_capacity_bytes as f64 / h3.layer_capacity_bytes as f64;
        assert!((gain - 1.3).abs() < 0.01, "per-layer gain {gain}");
        assert_eq!(
            HbmStackModel::hbm4(32).layers,
            16,
            "16-layer industry ceiling"
        );
    }

    #[test]
    fn refresh_power_scales_with_capacity() {
        let h12 = HbmStackModel::hbm3e();
        let h6 = HbmStackModel { layers: 6, ..h12 };
        let ratio = h12.refresh_power_w() / h6.refresh_power_w();
        assert!((ratio - 2.0).abs() < 1e-9);
        assert!(
            h12.refresh_power_w() > 0.5,
            "idle refresh burn is real: {} W",
            h12.refresh_power_w()
        );
    }

    #[test]
    fn thermal_resistance_grows() {
        let base = HbmStackModel::hbm3e();
        let t8 = HbmStackModel { layers: 8, ..base }.thermal_resistance();
        let t16 = HbmStackModel { layers: 16, ..base }.thermal_resistance();
        assert!(t16 > t8);
    }

    #[test]
    fn sweep_is_monotone_in_the_right_directions() {
        let rows = layer_sweep(&HbmStackModel::hbm3e(), 16);
        assert_eq!(rows.len(), 13);
        for w in rows.windows(2) {
            let (_, cap_a, yield_a, cost_a, refresh_a, therm_a) = w[0];
            let (_, cap_b, yield_b, cost_b, refresh_b, therm_b) = w[1];
            assert!(cap_b > cap_a);
            assert!(yield_b < yield_a);
            assert!(cost_b > cost_a);
            assert!(refresh_b > refresh_a);
            assert!(therm_b > therm_a);
        }
    }

    #[test]
    fn yielded_capacity_peaks_then_falls() {
        // With multiplicative yield loss, yielded capacity per start
        // eventually grows slower than linearly; with aggressive bond loss
        // it can peak. Check it at least grows sublinearly 8→16.
        let base = HbmStackModel::hbm3e();
        let y8 = HbmStackModel { layers: 8, ..base }.yielded_capacity_bytes();
        let y16 = HbmStackModel { layers: 16, ..base }.yielded_capacity_bytes();
        assert!(
            y16 < 2.0 * y8,
            "doubling layers must not double yielded capacity"
        );
    }
}
