//! # `mrm-device` — memory cell physics and device models
//!
//! Models the memory-technology landscape the MRM paper reasons about
//! (HotOS'25, "Storage Class Memory is Dead, All Hail Managed-Retention
//! Memory"): DRAM in its HBM/LPDDR forms, NAND/NOR Flash, and the resistive
//! technologies originally proposed for Storage Class Memory — PCM, RRAM and
//! STT-MRAM — plus the paper's proposed **Managed-Retention Memory** design
//! points derived from them.
//!
//! The central idea of the paper is encoded in [`cell::RetentionTradeoff`]:
//! at the cell level, *retention time is a continuum*, and demanding ten-year
//! retention (as SCM did) costs write energy, write latency, and endurance.
//! Relaxing retention to hours or days — matching the lifetime of inference
//! data — recovers those metrics. Everything else in the workspace (the
//! controllers, the tiering control plane, the Figure-1 endurance analysis)
//! consumes the curves and datasheet parameters defined here.
//!
//! Module map:
//!
//! * [`cell`] — retention / write-energy / endurance / error-rate physics.
//! * [`tech`] — the technology database ([`tech::Technology`]) with presets
//!   for every technology the paper cites, product and potential variants.
//! * [`geometry`] — channels / banks / rows / pages / stacked layers.
//! * [`energy`] — energy metering (read/write/refresh/idle decomposition).
//! * [`bank`] — the timed bank state machine used by controllers.
//! * [`hbm`] — HBM stack capacity/yield/refresh modelling (§2.1 claims).
//! * [`mlc`] — multi-level-cell variants (§3's density upside \[10\]).
//! * [`crossbar`] — transistor-less crossbar constraints (§3 / \[56\]).
//! * [`device`] — a generic timed, energy-metered, wear-tracked device.

pub mod bank;
pub mod cell;
pub mod crossbar;
pub mod device;
pub mod energy;
pub mod geometry;
pub mod hbm;
pub mod mlc;
pub mod tech;

pub use cell::{CellFamily, RetentionTradeoff, WearState};
pub use device::{DeviceError, MemoryDevice, OpKind};
pub use energy::{EnergyBreakdown, EnergyMeter};
pub use geometry::DeviceGeometry;
pub use mlc::{apply_mlc, CellLevels};
pub use tech::{Maturity, TechFamily, Technology};
