//! Transistor-less crossbar array modelling.
//!
//! §3: resistive cells "can be organized into high-density, transistor-less
//! crossbar layouts \[56\]" — that is where MRM's density advantage over
//! capacitor-DRAM comes from. But crossbars are not free: Xu et al.
//! (HPCA'15, the paper's \[56\]) catalogue the two constraints that bound
//! array size, and with it how much periphery the density win must
//! amortize:
//!
//! * **Sneak currents.** Reading one cell half-selects every other cell on
//!   the same row/column; their leakage adds a background current that
//!   grows with array size `n` and is suppressed only by the selector's
//!   nonlinearity `K` (on/off ratio at half bias). Read margin ∝ `K / n`,
//!   and the wasted sneak energy adds a `n / K` term per read.
//! * **IR drop.** Wire resistance accumulates along rows/columns; the
//!   worst-corner cell sees its write voltage reduced by a term ∝
//!   `n · r_wire / R_cell`, capping the array size that still switches
//!   reliably.
//!
//! Bigger arrays amortize the peripheral drivers/sense-amps better
//! (density ↑) until the sneak/IR walls, so there is an optimal `n` — and
//! better selectors move it outward. [`CrossbarModel::sweep`] exposes that
//! trade for the analysis layer.

use serde::{Deserialize, Serialize};

/// Electrical parameters of a crossbar design.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CrossbarModel {
    /// Selector nonlinearity: half-bias on/off ratio (10²–10⁶ in practice).
    pub selector_nonlinearity: f64,
    /// Wire resistance per cell pitch, ohms.
    pub wire_ohm_per_cell: f64,
    /// Low-resistance-state cell resistance, ohms.
    pub cell_lrs_ohm: f64,
    /// Peripheral (driver + sense amp) area per row/column, in units of
    /// cell areas.
    pub periphery_cells_per_line: f64,
    /// Minimum acceptable read margin (signal / sneak background).
    pub min_read_margin: f64,
    /// Maximum acceptable worst-corner IR drop as a fraction of the write
    /// voltage.
    pub max_ir_drop: f64,
}

impl CrossbarModel {
    /// A conservative HfOx-RRAM-with-selector design point.
    pub fn rram_with_selector() -> Self {
        CrossbarModel {
            selector_nonlinearity: 1e4,
            wire_ohm_per_cell: 2.5,
            cell_lrs_ohm: 1e5,
            periphery_cells_per_line: 20.0,
            min_read_margin: 10.0,
            max_ir_drop: 0.10,
        }
    }

    /// A selector-less (cell-nonlinearity-only) design point.
    pub fn selectorless() -> Self {
        CrossbarModel {
            selector_nonlinearity: 50.0,
            ..Self::rram_with_selector()
        }
    }

    /// Read margin for an `n × n` array: selector nonlinearity over the
    /// sneak-path count.
    pub fn read_margin(&self, n: u32) -> f64 {
        self.selector_nonlinearity / f64::from(n.max(1))
    }

    /// Energy multiplier on reads from sneak leakage: `1 + n/K`.
    pub fn sneak_energy_factor(&self, n: u32) -> f64 {
        1.0 + f64::from(n) / self.selector_nonlinearity
    }

    /// Worst-corner IR drop fraction for an `n × n` array: to first order
    /// the selected line carries `≈ V/R_lrs`, dropping
    /// `n · r_wire · I / V = n · r_wire / R_lrs` over its length (row and
    /// column each contribute half at the worst corner).
    pub fn ir_drop_fraction(&self, n: u32) -> f64 {
        f64::from(n) * self.wire_ohm_per_cell / self.cell_lrs_ohm
    }

    /// Array-level area efficiency: cell area over cell + periphery area.
    /// Grows with `n` (periphery is per-line, cells are per-line²).
    pub fn area_efficiency(&self, n: u32) -> f64 {
        let n = f64::from(n);
        let cells = n * n;
        let periphery = 2.0 * n * self.periphery_cells_per_line;
        cells / (cells + periphery)
    }

    /// Whether an `n × n` array meets both reliability constraints.
    pub fn feasible(&self, n: u32) -> bool {
        self.read_margin(n) >= self.min_read_margin && self.ir_drop_fraction(n) <= self.max_ir_drop
    }

    /// The largest feasible power-of-two array size (0 if none).
    pub fn max_array_size(&self) -> u32 {
        let mut best = 0;
        let mut n = 8u32;
        while n <= 1 << 16 {
            if self.feasible(n) {
                best = n;
            }
            n *= 2;
        }
        best
    }

    /// Effective density score of the best feasible array: area efficiency
    /// at [`CrossbarModel::max_array_size`] (0 if nothing is feasible).
    pub fn best_density(&self) -> f64 {
        match self.max_array_size() {
            0 => 0.0,
            n => self.area_efficiency(n),
        }
    }

    /// Sweeps power-of-two array sizes; returns
    /// `(n, margin, sneak_factor, ir_drop, area_eff, feasible)` rows.
    pub fn sweep(&self, max_n: u32) -> Vec<(u32, f64, f64, f64, f64, bool)> {
        let mut rows = Vec::new();
        let mut n = 8u32;
        while n <= max_n {
            rows.push((
                n,
                self.read_margin(n),
                self.sneak_energy_factor(n),
                self.ir_drop_fraction(n),
                self.area_efficiency(n),
                self.feasible(n),
            ));
            n *= 2;
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_move_the_right_way() {
        let m = CrossbarModel::rram_with_selector();
        assert!(m.read_margin(64) > m.read_margin(1024));
        assert!(m.sneak_energy_factor(64) < m.sneak_energy_factor(1024));
        assert!(m.ir_drop_fraction(64) < m.ir_drop_fraction(1024));
        assert!(m.area_efficiency(64) < m.area_efficiency(1024));
    }

    #[test]
    fn good_selector_allows_useful_arrays() {
        let m = CrossbarModel::rram_with_selector();
        let n = m.max_array_size();
        assert!(n >= 256, "selector design should reach >=256x256, got {n}");
        assert!(n <= 2048, "sneak/IR walls must bind somewhere, got {n}");
        assert!(
            m.area_efficiency(n) > 0.8,
            "periphery must be well amortized"
        );
    }

    #[test]
    fn selectorless_arrays_are_tiny() {
        // [56]'s core finding: without a selector the sneak paths cap the
        // array at sizes whose periphery swamps the density win.
        let weak = CrossbarModel::selectorless();
        let good = CrossbarModel::rram_with_selector();
        assert!(weak.max_array_size() < good.max_array_size() / 32);
        assert!(weak.best_density() < good.best_density());
    }

    #[test]
    fn ir_drop_binds_even_with_perfect_selectors() {
        let mut m = CrossbarModel::rram_with_selector();
        m.selector_nonlinearity = 1e12; // margin never binds
        let n = m.max_array_size();
        assert!(
            m.ir_drop_fraction(n * 2) > m.max_ir_drop,
            "IR drop must be the active wall"
        );
    }

    #[test]
    fn sweep_is_consistent_with_predicates() {
        let m = CrossbarModel::rram_with_selector();
        for (n, margin, sneak, ir, eff, feasible) in m.sweep(1 << 14) {
            // The sweep re-evaluates the same pure functions, so the
            // tuples are bit-identical.
            assert_eq!(margin.to_bits(), m.read_margin(n).to_bits());
            assert_eq!(sneak.to_bits(), m.sneak_energy_factor(n).to_bits());
            assert_eq!(ir.to_bits(), m.ir_drop_fraction(n).to_bits());
            assert_eq!(eff.to_bits(), m.area_efficiency(n).to_bits());
            assert_eq!(feasible, m.feasible(n));
        }
    }

    #[test]
    fn density_optimum_exists_under_constraints() {
        // Among feasible sizes, the largest is densest (monotone area
        // efficiency), so best_density is achieved at max_array_size.
        let m = CrossbarModel::rram_with_selector();
        let n = m.max_array_size();
        for (sz, _, _, _, eff, feasible) in m.sweep(n) {
            if feasible {
                assert!(eff <= m.best_density() + 1e-12, "n={sz}");
            }
        }
    }
}
