//! A Flash translation layer: the long-retention housekeeping tax.
//!
//! §3: "Flash retention is too long, which is achieved at the expense of
//! endurance, requiring FTL mechanisms (wear levelling, garbage
//! collection). ... housekeeping leverages the write path, and is typically
//! energy-intensive." This page-mapped, log-structured FTL makes that tax
//! measurable as **write amplification**: every host write eventually drags
//! `WA − 1` additional device writes behind it, costing both energy and
//! endurance.

use std::collections::VecDeque;

use mrm_faults::{FaultModel, FaultStats, ReadFaults, RecoveryAction};
use mrm_telemetry::TelemetrySink;

/// Wear-levelling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WearLeveling {
    /// No wear levelling: GC picks the emptiest victim only.
    None,
    /// Dynamic: GC victim selection penalizes high-erase blocks.
    Dynamic,
    /// Static: additionally rotate cold blocks into service when the
    /// erase-count spread exceeds the threshold.
    Static {
        /// Maximum allowed difference between max and min erase counts.
        threshold: u64,
    },
}

/// FTL geometry and policy.
#[derive(Clone, Copy, Debug)]
pub struct FtlConfig {
    /// Physical blocks on the device.
    pub blocks: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Page size, bytes.
    pub page_bytes: u32,
    /// Fraction of physical space exported as logical space (the rest is
    /// over-provisioning for GC headroom). Must be in `(0, 1)`.
    pub logical_fraction: f64,
    /// GC triggers when free blocks drop to this count.
    pub gc_threshold_blocks: u32,
    /// Wear-levelling policy.
    pub wear_leveling: WearLeveling,
    /// Uncorrectable events on one block before it is retired (grown bad
    /// block). Zero retires on the first event.
    pub ue_retire_threshold: u32,
}

impl FtlConfig {
    /// A small SSD-like default: 256 blocks × 64 pages × 16 KiB, 87.5%
    /// exported (12.5% OP), greedy GC at 4 free blocks.
    pub fn small() -> Self {
        FtlConfig {
            blocks: 256,
            pages_per_block: 64,
            page_bytes: 16 * 1024,
            logical_fraction: 0.875,
            gc_threshold_blocks: 4,
            wear_leveling: WearLeveling::Dynamic,
            ue_retire_threshold: 2,
        }
    }

    /// Logical pages exported to the host.
    pub fn logical_pages(&self) -> u64 {
        let physical = u64::from(self.blocks) * u64::from(self.pages_per_block);
        (physical as f64 * self.logical_fraction) as u64
    }
}

/// FTL statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Pages written by the host.
    pub host_writes: u64,
    /// Pages moved by garbage collection.
    pub gc_moves: u64,
    /// Pages moved by static wear levelling.
    pub wl_moves: u64,
    /// Block erases performed.
    pub erases: u64,
    /// Pages rewritten by UE-recovery remaps (including valid pages
    /// evacuated from retiring blocks).
    pub remap_moves: u64,
    /// Checked reads that needed a retry.
    pub read_retries: u64,
    /// Blocks retired as grown bad blocks.
    pub blocks_retired: u64,
}

impl FtlStats {
    /// Write amplification: device page writes per host page write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 1.0;
        }
        (self.host_writes + self.gc_moves + self.wl_moves + self.remap_moves) as f64
            / self.host_writes as f64
    }
}

#[derive(Clone, Debug)]
struct Block {
    /// Physical page → logical page (None = invalid/unwritten).
    rmap: Vec<Option<u64>>,
    /// Next free page slot.
    write_ptr: u32,
    valid: u32,
    erase_count: u64,
    /// Uncorrectable-error events recorded against this block.
    ue_events: u32,
    /// Grown bad block: permanently out of rotation.
    retired: bool,
}

impl Block {
    fn new(pages: u32) -> Self {
        Block {
            rmap: vec![None; pages as usize],
            write_ptr: 0,
            valid: 0,
            erase_count: 0,
            ue_events: 0,
            retired: false,
        }
    }

    fn is_full(&self, pages: u32) -> bool {
        self.write_ptr >= pages
    }
}

/// A page-mapped, log-structured Flash translation layer.
///
/// # Examples
///
/// ```
/// use mrm_controller::ftl::{Ftl, FtlConfig};
///
/// let mut ftl = Ftl::new(FtlConfig::small());
/// ftl.write(42).unwrap();
/// assert!(ftl.read(42).is_some());
/// assert!(ftl.read(43).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct Ftl {
    cfg: FtlConfig,
    /// Logical page → (block, page).
    map: Vec<Option<(u32, u32)>>,
    blocks: Vec<Block>,
    free: VecDeque<u32>,
    open: u32,
    stats: FtlStats,
    /// Optional fault-injection layer for checked reads.
    faults: Option<FaultModel>,
}

/// Result of an [`Ftl::read_checked`] recovery sequence.
#[derive(Clone, Copy, Debug)]
pub struct FtlCheckedRead {
    /// Physical location the data ended up at (post-remap if recovery
    /// relocated it).
    pub loc: (u32, u32),
    /// Fault outcomes merged across every attempt.
    pub faults: ReadFaults,
    /// Deepest recovery step reached. For the FTL, `Scrubbed` means the
    /// page was remapped (rewritten elsewhere) and `Retired` additionally
    /// retired the source block as a grown bad block — in both cases the
    /// data itself was recovered.
    pub action: RecoveryAction,
}

/// FTL errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtlError {
    /// Logical page number beyond the exported space.
    OutOfRange,
    /// Device out of writable space (should not happen with sane OP/GC).
    NoSpace,
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::OutOfRange => write!(f, "logical page out of range"),
            FtlError::NoSpace => write!(f, "no writable space"),
        }
    }
}

impl std::error::Error for FtlError {}

impl Ftl {
    /// Creates an FTL with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (no over-provisioning, fewer
    /// blocks than the GC threshold + 2).
    pub fn new(cfg: FtlConfig) -> Self {
        assert!(cfg.logical_fraction > 0.0 && cfg.logical_fraction < 1.0);
        assert!(cfg.blocks > cfg.gc_threshold_blocks + 2, "too few blocks");
        let blocks: Vec<Block> = (0..cfg.blocks)
            .map(|_| Block::new(cfg.pages_per_block))
            .collect();
        let free: VecDeque<u32> = (1..cfg.blocks).collect();
        let open = 0;
        Ftl {
            map: vec![None; cfg.logical_pages() as usize],
            blocks,
            free,
            open,
            cfg,
            stats: FtlStats::default(),
            faults: None,
        }
    }

    /// Attaches a fault-injection layer; [`Ftl::read_checked`] runs every
    /// read through it and drives remap/retire recovery on uncorrectables.
    pub fn attach_faults(&mut self, model: FaultModel) {
        self.faults = Some(model);
    }

    /// Cumulative fault-layer totals, if a layer is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// The configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Per-block erase counts.
    pub fn erase_counts(&self) -> Vec<u64> {
        self.blocks.iter().map(|b| b.erase_count).collect()
    }

    /// Spread between the most- and least-erased in-service block.
    /// Retired blocks are excluded: their counts are frozen and would pin
    /// the minimum forever.
    pub fn erase_spread(&self) -> u64 {
        let mut max = 0u64;
        let mut min = u64::MAX;
        for b in self.blocks.iter().filter(|b| !b.retired) {
            max = max.max(b.erase_count);
            min = min.min(b.erase_count);
        }
        if min == u64::MAX {
            0
        } else {
            max - min
        }
    }

    /// Looks up the physical location of a logical page.
    pub fn read(&self, lpn: u64) -> Option<(u32, u32)> {
        self.map.get(lpn as usize).copied().flatten()
    }

    /// Reads a logical page through the fault layer at raw bit error rate
    /// `rber` (supplied by the device/age model above this layer) and, on
    /// an uncorrectable outcome, runs the FTL recovery machinery:
    ///
    /// 1. **retry** — a second decode attempt (transient UEs clear);
    /// 2. **remap** — rewrite the recovered page at a fresh location
    ///    (log-structured relocation) and charge a UE event against the
    ///    source block;
    /// 3. **retire** — once a block's UE events reach
    ///    [`FtlConfig::ue_retire_threshold`], evacuate its remaining valid
    ///    pages and take it out of rotation as a grown bad block.
    ///
    /// Returns `Ok(None)` for an unmapped page. Without an attached fault
    /// layer this is exactly [`Ftl::read`] (plus the `Ok` wrapper).
    pub fn read_checked(
        &mut self,
        lpn: u64,
        rber: f64,
    ) -> Result<Option<FtlCheckedRead>, FtlError> {
        if lpn as usize >= self.map.len() {
            return Err(FtlError::OutOfRange);
        }
        let Some(loc) = self.read(lpn) else {
            return Ok(None);
        };
        let page_bytes = u64::from(self.cfg.page_bytes);
        let Some(model) = self.faults.as_mut() else {
            return Ok(Some(FtlCheckedRead {
                loc,
                faults: ReadFaults::default(),
                action: RecoveryAction::None,
            }));
        };
        let mut faults = model.inject_read(page_bytes, rber);
        if !faults.uncorrectable() {
            return Ok(Some(FtlCheckedRead {
                loc,
                faults,
                action: RecoveryAction::None,
            }));
        }
        // Step 1: retry.
        self.stats.read_retries += 1;
        let again = self
            .faults
            .as_mut()
            .expect("fault layer attached")
            .inject_read(page_bytes, rber);
        let cleared = !again.uncorrectable();
        faults.merge(&again);
        if cleared {
            return Ok(Some(FtlCheckedRead {
                loc,
                faults,
                action: RecoveryAction::Retried,
            }));
        }
        // Step 2: remap — the outer code recovered the data (or the host
        // re-supplied it); rewrite it somewhere healthier and charge a UE
        // event to the source block.
        let (src, _) = loc;
        self.stats.remap_moves += 1;
        self.program(lpn)?;
        self.blocks[src as usize].ue_events += 1;
        // Step 3: grown-bad-block retirement at the configured threshold.
        let action = if self.blocks[src as usize].ue_events >= self.cfg.ue_retire_threshold.max(1) {
            self.retire_block(src)?;
            RecoveryAction::Retired
        } else {
            RecoveryAction::Scrubbed
        };
        self.maybe_gc()?;
        let loc = self.read(lpn).expect("page was just programmed");
        Ok(Some(FtlCheckedRead {
            loc,
            faults,
            action,
        }))
    }

    /// Retires `block` as a grown bad block: evacuates its remaining valid
    /// pages, then permanently removes it from rotation (never erased,
    /// never re-enters the free pool, invisible to GC and wear levelling).
    pub fn retire_block(&mut self, block: u32) -> Result<(), FtlError> {
        if block as usize >= self.blocks.len() || self.blocks[block as usize].retired {
            return Ok(());
        }
        // Never retire the open block in place: roll the write frontier
        // to a fresh block first so evacuation has somewhere to go.
        if block == self.open {
            let next = self.free.pop_front().ok_or(FtlError::NoSpace)?;
            self.open = next;
        }
        let lpns: Vec<u64> = self.blocks[block as usize]
            .rmap
            .iter()
            .flatten()
            .copied()
            .collect();
        for lpn in lpns {
            self.stats.remap_moves += 1;
            self.program(lpn)?;
        }
        let b = &mut self.blocks[block as usize];
        debug_assert_eq!(b.valid, 0, "retiring block with valid pages");
        b.retired = true;
        // Park the write pointer at the end so the block never looks open.
        b.write_ptr = self.cfg.pages_per_block;
        // The block may be sitting in the free pool (retired while empty):
        // pull it out so it can never be popped as the write frontier.
        self.free.retain(|&f| f != block);
        self.stats.blocks_retired += 1;
        self.maybe_gc()
    }

    /// Blocks retired as grown bad blocks so far.
    pub fn blocks_retired(&self) -> u64 {
        self.stats.blocks_retired
    }

    /// Writes (or overwrites) a logical page.
    pub fn write(&mut self, lpn: u64) -> Result<(), FtlError> {
        if lpn as usize >= self.map.len() {
            return Err(FtlError::OutOfRange);
        }
        self.stats.host_writes += 1;
        self.program(lpn)?;
        self.maybe_gc()?;
        self.maybe_static_wl()?;
        Ok(())
    }

    /// Invalidates (TRIMs) a logical page.
    pub fn trim(&mut self, lpn: u64) -> Result<(), FtlError> {
        if lpn as usize >= self.map.len() {
            return Err(FtlError::OutOfRange);
        }
        self.invalidate(lpn);
        Ok(())
    }

    fn invalidate(&mut self, lpn: u64) {
        if let Some((b, p)) = self.map[lpn as usize].take() {
            let blk = &mut self.blocks[b as usize];
            debug_assert_eq!(blk.rmap[p as usize], Some(lpn));
            blk.rmap[p as usize] = None;
            blk.valid -= 1;
        }
    }

    /// Appends `lpn` to the open block, rolling to a fresh block when full.
    fn program(&mut self, lpn: u64) -> Result<(), FtlError> {
        self.invalidate(lpn);
        if self.blocks[self.open as usize].is_full(self.cfg.pages_per_block) {
            let next = self.free.pop_front().ok_or(FtlError::NoSpace)?;
            self.open = next;
        }
        let open = self.open as usize;
        let blk = &mut self.blocks[open];
        let p = blk.write_ptr;
        blk.rmap[p as usize] = Some(lpn);
        blk.write_ptr += 1;
        blk.valid += 1;
        self.map[lpn as usize] = Some((self.open, p));
        Ok(())
    }

    /// Runs garbage collection until the free pool is above threshold.
    fn maybe_gc(&mut self) -> Result<(), FtlError> {
        let mut guard = 0;
        while (self.free.len() as u32) < self.cfg.gc_threshold_blocks {
            guard += 1;
            if guard > self.cfg.blocks {
                return Err(FtlError::NoSpace);
            }
            let victim = match self.pick_victim() {
                Some(v) => v,
                None => return Ok(()), // nothing reclaimable yet
            };
            self.collect(victim)?;
        }
        Ok(())
    }

    /// Greedy (or wear-aware) victim selection among full blocks.
    fn pick_victim(&self) -> Option<u32> {
        let max_erase = self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0);
        let mut best: Option<(f64, u32)> = None;
        #[allow(clippy::manual_find)] // scoring + filtering reads better imperatively
        for (i, b) in self.blocks.iter().enumerate() {
            let i = i as u32;
            if i == self.open || b.retired || !b.is_full(self.cfg.pages_per_block) {
                continue;
            }
            if b.valid == self.cfg.pages_per_block {
                continue; // nothing to reclaim
            }
            let score = match self.cfg.wear_leveling {
                WearLeveling::None => f64::from(b.valid),
                // Penalize hot blocks: effective score grows with wear.
                WearLeveling::Dynamic | WearLeveling::Static { .. } => {
                    f64::from(b.valid) + (b.erase_count as f64 - max_erase as f64).abs() * 0.5
                }
            };
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Moves a victim's valid pages to the open block and erases it.
    fn collect(&mut self, victim: u32) -> Result<(), FtlError> {
        let lpns: Vec<u64> = self.blocks[victim as usize]
            .rmap
            .iter()
            .flatten()
            .copied()
            .collect();
        for lpn in lpns {
            self.stats.gc_moves += 1;
            self.program(lpn)?;
        }
        self.erase(victim);
        Ok(())
    }

    fn erase(&mut self, block: u32) {
        let b = &mut self.blocks[block as usize];
        debug_assert_eq!(b.valid, 0, "erasing block with valid pages");
        debug_assert!(!b.retired, "erasing a retired block");
        let pages = self.cfg.pages_per_block;
        *b = Block {
            erase_count: b.erase_count + 1,
            // UE history survives erase: grown bad blocks are grown.
            ue_events: b.ue_events,
            ..Block::new(pages)
        };
        self.stats.erases += 1;
        self.free.push_back(block);
    }

    /// Static wear levelling: when the erase spread exceeds the threshold,
    /// force the coldest full block into rotation.
    fn maybe_static_wl(&mut self) -> Result<(), FtlError> {
        let WearLeveling::Static { threshold } = self.cfg.wear_leveling else {
            return Ok(());
        };
        for _ in 0..16 {
            if self.erase_spread() <= threshold {
                return Ok(());
            }
            // Coldest full block (not open). If the globally coldest block
            // is free or open it will rotate into service by itself, so
            // only full blocks are migration candidates.
            let global_min = self
                .blocks
                .iter()
                .filter(|b| !b.retired)
                .map(|b| b.erase_count)
                .min()
                .unwrap_or(0);
            let coldest = self
                .blocks
                .iter()
                .enumerate()
                .filter(|(i, b)| {
                    *i as u32 != self.open && !b.retired && b.is_full(self.cfg.pages_per_block)
                })
                .min_by_key(|(_, b)| b.erase_count)
                .map(|(i, _)| (i as u32, self.blocks[i].erase_count));
            match coldest {
                Some((c, e)) if e <= global_min + 1 => {
                    let lpns: Vec<u64> = self.blocks[c as usize]
                        .rmap
                        .iter()
                        .flatten()
                        .copied()
                        .collect();
                    for lpn in lpns {
                        self.stats.wl_moves += 1;
                        self.program(lpn)?;
                    }
                    self.erase(c);
                }
                _ => return Ok(()),
            }
        }
        Ok(())
    }

    /// Publishes the FTL's housekeeping ledger into `sink`: host writes,
    /// GC/WL page moves, erases, and the derived write-amplification and
    /// erase-spread gauges — the §3 "housekeeping leverages the write
    /// path" tax as a time series.
    ///
    /// Pull-style and idempotent (totals via [`TelemetrySink::count_to`]),
    /// so call it once per snapshot interval.
    pub fn emit_telemetry(&self, sink: &mut dyn TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        sink.count_to("ftl_host_writes", self.stats.host_writes);
        sink.count_to("ftl_gc_moves", self.stats.gc_moves);
        sink.count_to("ftl_wl_moves", self.stats.wl_moves);
        sink.count_to("ftl_erases", self.stats.erases);
        sink.count_to("ftl_remap_moves", self.stats.remap_moves);
        sink.count_to("ftl_read_retries", self.stats.read_retries);
        sink.count_to("ftl_blocks_retired", self.stats.blocks_retired);
        if let Some(fs) = self.fault_stats() {
            sink.count_to("ftl_fault_raw_flips", fs.raw_flips);
            sink.count_to("ftl_fault_corrected", fs.corrected);
            sink.count_to("ftl_fault_detected_ue", fs.detected_ue);
            sink.count_to("ftl_fault_miscorrected", fs.miscorrected);
            sink.count_to("ftl_fault_silent", fs.silent);
            sink.gauge("ftl_fault_raw_ber", fs.raw_ber());
        }
        sink.gauge("ftl_write_amplification", self.stats.write_amplification());
        sink.gauge("ftl_erase_spread", self.erase_spread() as f64);
        sink.gauge("ftl_free_blocks", self.free.len() as f64);
    }

    /// Observes every block's erase count into the `ftl_erase_cycles`
    /// histogram — the wear distribution at a point in time. One-shot:
    /// call once at end of run (or per report), not per interval, since
    /// histogram observations accumulate.
    pub fn emit_wear_histogram(&self, sink: &mut dyn TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        for b in &self.blocks {
            sink.observe("ftl_erase_cycles", b.erase_count as f64);
        }
    }

    /// Internal consistency check: the forward and reverse maps agree and
    /// valid counters match. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (lpn, loc) in self.map.iter().enumerate() {
            if let Some((b, p)) = loc {
                let back = self.blocks[*b as usize].rmap[*p as usize];
                if back != Some(lpn as u64) {
                    return Err(format!("map/rmap mismatch at lpn {lpn}"));
                }
            }
        }
        for (lpn, loc) in self.map.iter().enumerate() {
            if let Some((b, _)) = loc {
                if self.blocks[*b as usize].retired {
                    return Err(format!("live lpn {lpn} points at retired block {b}"));
                }
            }
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let count = b.rmap.iter().flatten().count() as u32;
            if count != b.valid {
                return Err(format!("valid counter mismatch in block {i}"));
            }
            if b.retired && b.valid != 0 {
                return Err(format!("retired block {i} still holds valid pages"));
            }
            for (p, lpn) in b.rmap.iter().enumerate() {
                if let Some(lpn) = lpn {
                    if self.map[*lpn as usize] != Some((i as u32, p as u32)) {
                        return Err(format!("stale rmap entry block {i} page {p}"));
                    }
                }
            }
        }
        if self.free.iter().any(|&b| self.blocks[b as usize].retired) {
            return Err("retired block in the free pool".to_string());
        }
        if self.blocks[self.open as usize].retired {
            return Err("open block is retired".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut f = Ftl::new(FtlConfig::small());
        f.write(0).unwrap();
        f.write(7).unwrap();
        assert!(f.read(0).is_some());
        assert!(f.read(7).is_some());
        assert!(f.read(8).is_none());
        f.check_invariants().unwrap();
    }

    #[test]
    fn overwrite_moves_page() {
        let mut f = Ftl::new(FtlConfig::small());
        f.write(5).unwrap();
        let first = f.read(5).unwrap();
        f.write(5).unwrap();
        let second = f.read(5).unwrap();
        assert_ne!(first, second, "log-structured writes relocate");
        f.check_invariants().unwrap();
    }

    #[test]
    fn trim_invalidates() {
        let mut f = Ftl::new(FtlConfig::small());
        f.write(3).unwrap();
        f.trim(3).unwrap();
        assert!(f.read(3).is_none());
        f.check_invariants().unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let mut f = Ftl::new(FtlConfig::small());
        let lp = f.config().logical_pages();
        assert_eq!(f.write(lp), Err(FtlError::OutOfRange));
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_wa() {
        let mut f = Ftl::new(FtlConfig::small());
        let lp = f.config().logical_pages();
        // Fill logical space twice over: forces GC.
        for i in 0..lp * 3 {
            f.write(i % lp).unwrap();
        }
        let s = f.stats();
        assert!(s.erases > 0, "GC must have erased blocks");
        assert!(s.gc_moves > 0 || s.write_amplification() >= 1.0);
        assert!(s.write_amplification() >= 1.0);
        f.check_invariants().unwrap();
        // All logical pages still readable.
        for i in 0..lp {
            assert!(f.read(i).is_some(), "lost lpn {i}");
        }
    }

    #[test]
    fn hot_cold_skew_amplifies_writes() {
        // Hot/cold split: cold data pins blocks, hot overwrites churn —
        // write amplification exceeds the uniform case.
        let mk = |wl| {
            let mut cfg = FtlConfig::small();
            cfg.wear_leveling = wl;
            let mut f = Ftl::new(cfg);
            let lp = f.config().logical_pages();
            // Write everything once (cold baseline).
            for i in 0..lp {
                f.write(i).unwrap();
            }
            // Hammer the first 5%, with occasional cold rewrites mixed in
            // so blocks hold mixed-age data (the WA-generating pattern).
            let hot = lp / 20;
            for k in 0..lp * 4 {
                if k % 7 == 0 {
                    f.write((k * 2_654_435_761) % lp).unwrap();
                } else {
                    f.write(k % hot.max(1)).unwrap();
                }
            }
            f
        };
        let f = mk(WearLeveling::Dynamic);
        assert!(
            f.stats().write_amplification() > 1.02,
            "wa {}",
            f.stats().write_amplification()
        );
        f.check_invariants().unwrap();
    }

    #[test]
    fn static_wl_bounds_erase_spread() {
        let mut cfg = FtlConfig::small();
        cfg.wear_leveling = WearLeveling::Static { threshold: 8 };
        let mut f = Ftl::new(cfg);
        let lp = f.config().logical_pages();
        for i in 0..lp {
            f.write(i).unwrap();
        }
        let hot = lp / 20;
        for k in 0..lp * 6 {
            f.write(k % hot.max(1)).unwrap();
        }
        f.check_invariants().unwrap();
        // Spread stays near the threshold (slack for blocks parked in the
        // free pool, which the migrator cannot touch).
        assert!(f.erase_spread() <= 8 + 8, "spread {}", f.erase_spread());
        assert!(f.stats().wl_moves > 0, "static WL must have moved data");
    }

    #[test]
    fn no_wl_lets_spread_grow() {
        let mut cfg = FtlConfig::small();
        cfg.wear_leveling = WearLeveling::None;
        let mut f = Ftl::new(cfg);
        let lp = f.config().logical_pages();
        for i in 0..lp {
            f.write(i).unwrap();
        }
        let hot = lp / 20;
        for k in 0..lp * 6 {
            f.write(k % hot.max(1)).unwrap();
        }
        let no_wl_spread = f.erase_spread();

        let mut cfg = FtlConfig::small();
        cfg.wear_leveling = WearLeveling::Static { threshold: 8 };
        let mut g = Ftl::new(cfg);
        for i in 0..lp {
            g.write(i).unwrap();
        }
        for k in 0..lp * 6 {
            g.write(k % hot.max(1)).unwrap();
        }
        assert!(
            no_wl_spread > g.erase_spread(),
            "no-WL spread {} must exceed static-WL spread {}",
            no_wl_spread,
            g.erase_spread()
        );
    }

    #[test]
    fn read_checked_clean_path_leaves_map_alone() {
        use mrm_faults::{FaultConfig, FaultModel};
        let mut f = Ftl::new(FtlConfig::small());
        f.attach_faults(FaultModel::new(FaultConfig::mrm(), 3));
        f.write(9).unwrap();
        let before = f.read(9).unwrap();
        // Fresh-data RBER: nothing to recover.
        let r = f.read_checked(9, 1e-9).unwrap().unwrap();
        assert_eq!(r.action, RecoveryAction::None);
        assert_eq!(r.loc, before);
        assert!(f.read_checked(10, 1e-9).unwrap().is_none());
        assert_eq!(f.stats().read_retries, 0);
        f.check_invariants().unwrap();
    }

    #[test]
    fn ue_storm_remaps_then_retires_grown_bad_block() {
        use mrm_faults::{FaultConfig, FaultModel, RecoveryAction};
        let mut f = Ftl::new(FtlConfig::small());
        f.attach_faults(FaultModel::new(FaultConfig::mrm(), 5));
        let lp = f.config().logical_pages();
        for i in 0..lp {
            f.write(i).unwrap();
        }
        // An RBER far beyond the t=2 budget on a 16 KiB page: every
        // checked read is uncorrectable, so the ladder must walk
        // retry → remap → retire deterministically.
        let mut actions = Vec::new();
        for lpn in 0..64 {
            if let Some(r) = f.read_checked(lpn, 1e-2).unwrap() {
                assert!(r.faults.uncorrectable());
                actions.push(r.action);
                // Post-remap the page lives on a healthy block.
                assert!(!matches!(r.action, RecoveryAction::None));
            }
            f.check_invariants().unwrap();
        }
        let s = f.stats();
        assert!(s.read_retries > 0);
        assert!(s.remap_moves > 0);
        assert!(
            actions.contains(&RecoveryAction::Retired),
            "threshold 2 must retire under a UE storm: {actions:?}"
        );
        assert!(s.blocks_retired > 0);
        assert!(s.write_amplification() > 1.0, "remaps are device writes");
        // Every logical page is still mapped: recovery never loses data.
        for lpn in 0..lp {
            assert!(f.read(lpn).is_some(), "lost lpn {lpn}");
        }
    }

    #[test]
    fn retired_blocks_leave_rotation_for_good() {
        use mrm_faults::{FaultConfig, FaultModel};
        let mut cfg = FtlConfig::small();
        cfg.ue_retire_threshold = 1; // retire on first UE event
        let mut f = Ftl::new(cfg);
        f.attach_faults(FaultModel::new(FaultConfig::mrm(), 9));
        let lp = f.config().logical_pages();
        for i in 0..lp {
            f.write(i).unwrap();
        }
        let (src, _) = f.read(0).unwrap();
        let r = f.read_checked(0, 1e-2).unwrap().unwrap();
        assert_eq!(r.action, RecoveryAction::Retired);
        assert_eq!(f.blocks_retired(), 1);
        f.check_invariants().unwrap();
        // Churn hard: the retired block must never host data again.
        for k in 0..lp * 3 {
            f.write(k % lp).unwrap();
        }
        f.check_invariants().unwrap();
        for lpn in 0..lp {
            let (b, _) = f.read(lpn).unwrap();
            assert_ne!(b, src, "retired block re-entered rotation");
        }
    }

    #[test]
    fn telemetry_publishes_gc_ledger_and_wear() {
        use mrm_sim::time::SimDuration;
        use mrm_telemetry::SimTelemetry;
        let mut f = Ftl::new(FtlConfig::small());
        let lp = f.config().logical_pages();
        for i in 0..lp * 3 {
            f.write(i % lp).unwrap();
        }
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        f.emit_telemetry(&mut t);
        f.emit_telemetry(&mut t); // idempotent republish
        let r = t.registry();
        assert_eq!(r.counter_value("ftl_host_writes"), Some(lp * 3));
        assert_eq!(r.counter_value("ftl_erases"), Some(f.stats().erases));
        let wa = r.gauge_value("ftl_write_amplification").unwrap();
        assert!((wa - f.stats().write_amplification()).abs() < 1e-12);
        f.emit_wear_histogram(&mut t);
        let h = t.registry().histogram_by_name("ftl_erase_cycles").unwrap();
        assert_eq!(h.count(), u64::from(f.config().blocks));
    }

    #[test]
    fn wa_is_the_housekeeping_tax() {
        // The §3 energy story: device writes = host writes × WA, so the FTL
        // burns (WA−1)× extra write energy. Verify WA grows when OP shrinks.
        let run = |logical_fraction: f64| {
            let mut cfg = FtlConfig::small();
            cfg.logical_fraction = logical_fraction;
            let mut f = Ftl::new(cfg);
            let lp = f.config().logical_pages();
            let mut rng = mrm_sim::rng::SimRng::seed_from(42);
            for i in 0..lp {
                f.write(i).unwrap();
            }
            // Uniform-random overwrites: the canonical WA-generating load.
            for _ in 0..lp * 3 {
                f.write(rng.gen_range_u64(lp)).unwrap();
            }
            f.check_invariants().unwrap();
            f.stats().write_amplification()
        };
        let tight = run(0.95);
        let roomy = run(0.6);
        assert!(
            tight > 1.2,
            "tight-OP uniform-random WA must be material, got {tight}"
        );
        assert!(
            tight > roomy,
            "tight-OP WA {tight} must exceed roomy-OP WA {roomy}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn never_loses_live_data(
            ops in proptest::collection::vec((0u64..512, prop::bool::ANY), 1..2000)
        ) {
            let mut cfg = FtlConfig::small();
            cfg.blocks = 32;
            cfg.pages_per_block = 32;
            cfg.logical_fraction = 0.6;
            let mut f = Ftl::new(cfg);
            let lp = f.config().logical_pages();
            let mut live = std::collections::BTreeSet::new();
            for (lpn, is_trim) in ops {
                let lpn = lpn % lp;
                if is_trim {
                    f.trim(lpn).unwrap();
                    live.remove(&lpn);
                } else {
                    f.write(lpn).unwrap();
                    live.insert(lpn);
                }
            }
            f.check_invariants().unwrap();
            for lpn in 0..lp {
                prop_assert_eq!(f.read(lpn).is_some(), live.contains(&lpn), "lpn {}", lpn);
            }
            prop_assert!(f.stats().write_amplification() >= 1.0);
        }
    }
}
