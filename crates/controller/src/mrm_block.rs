//! The paper's lightweight MRM block controller.
//!
//! §4, "Lightweight memory controllers": "The lack of random access
//! requirements opens up a unique prospect of a block-level access memory
//! controller ... Much of the functionality that is typically handled on the
//! device, such as refresh and wear-levelling can be left up to a software
//! control plane higher up in the stack ... akin to zoned storage interfaces
//! for Flash."
//!
//! [`MrmBlockController`] therefore exposes:
//!
//! * zones with strictly append-only write pointers (KV caches are
//!   append-only; weights are bulk-sequential) — no random writes, no
//!   device-side mapping;
//! * a **retention-deadline registry**: every append is stamped with its
//!   retention target, and the controller reports which zones are
//!   approaching expiry so the *software* control plane can decide to
//!   scrub, migrate, or drop (§4 "Retention-aware data placement");
//! * software-visible per-zone write-cycle counters for control-plane wear
//!   levelling;
//! * **no** internal refresh, GC, or wear-levelling machinery at all —
//!   that absence is the point, and the energy ledger shows it.

use mrm_device::device::{DeviceError, MemoryDevice, OpResult};
use mrm_device::energy::EnergyBreakdown;
use mrm_faults::{FaultModel, FaultStats, ReadFaults, RecoveryAction};
use mrm_sim::time::{SimDuration, SimTime};
use mrm_telemetry::TelemetrySink;

/// Zone identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneId(pub u32);

/// Zone lifecycle state (zoned-storage style).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZoneState {
    /// Unwritten and available.
    Empty,
    /// Open for appends.
    Open,
    /// Finished: read-only until reset.
    Full,
    /// Retired by the recovery machinery: permanently out of service.
    Retired,
}

/// Errors from the block controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZoneError {
    /// No such zone.
    InvalidZone,
    /// Operation requires an open zone.
    NotOpen,
    /// Append would exceed the zone capacity.
    ZoneOverflow,
    /// Read beyond the write pointer.
    ReadBeyondWritePointer,
    /// No empty zone available.
    NoEmptyZones,
    /// The zone has been retired and cannot be used again.
    ZoneRetired,
    /// Underlying device error.
    Device(DeviceError),
}

impl std::fmt::Display for ZoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoneError::InvalidZone => write!(f, "invalid zone id"),
            ZoneError::NotOpen => write!(f, "zone is not open"),
            ZoneError::ZoneOverflow => write!(f, "append exceeds zone capacity"),
            ZoneError::ReadBeyondWritePointer => write!(f, "read beyond write pointer"),
            ZoneError::NoEmptyZones => write!(f, "no empty zones available"),
            ZoneError::ZoneRetired => write!(f, "zone is retired"),
            ZoneError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for ZoneError {}

impl From<DeviceError> for ZoneError {
    fn from(e: DeviceError) -> Self {
        ZoneError::Device(e)
    }
}

#[derive(Clone, Debug)]
struct Zone {
    state: ZoneState,
    /// Bytes appended so far.
    write_ptr: u64,
    /// Earliest retention deadline across the zone's appends.
    deadline: SimTime,
    /// Software-visible cumulative full-zone write cycles.
    write_cycles: u64,
}

impl Zone {
    fn new() -> Self {
        Zone {
            state: ZoneState::Empty,
            write_ptr: 0,
            deadline: SimTime::MAX,
            write_cycles: 0,
        }
    }
}

/// The lightweight block-level MRM controller.
///
/// # Examples
///
/// ```
/// use mrm_controller::mrm_block::MrmBlockController;
/// use mrm_device::device::MemoryDevice;
/// use mrm_device::tech::presets;
/// use mrm_sim::time::{SimDuration, SimTime};
///
/// let dev = MemoryDevice::new(presets::mrm_hours());
/// let mut ctrl = MrmBlockController::new(dev, 256 * 1024 * 1024);
/// let z = ctrl.open_zone().unwrap();
/// ctrl.append(SimTime::ZERO, z, 4096, SimDuration::from_hours(12)).unwrap();
/// let res = ctrl.read(SimTime::ZERO, z, 0, 4096).unwrap();
/// assert!(!res.expired);
/// ```
#[derive(Clone, Debug)]
pub struct MrmBlockController {
    device: MemoryDevice,
    zone_bytes: u64,
    zones: Vec<Zone>,
    /// Software-initiated scrub (in-place rewrite) operations completed.
    scrub_ops: u64,
    /// Bytes rewritten by scrubs.
    scrub_bytes: u64,
    /// Optional fault-injection layer for checked reads.
    faults: Option<FaultModel>,
    /// Checked reads that needed a retry re-read.
    read_retries: u64,
    /// Checked reads that escalated to an inline scrub.
    scrub_escalations: u64,
    /// Zones permanently retired by the recovery machinery.
    zones_retired: u64,
}

/// Result of a [`MrmBlockController::read_checked`] recovery sequence.
#[derive(Clone, Copy, Debug)]
pub struct CheckedRead {
    /// The device-level result of the *final* read attempt (timing and
    /// reliability of the data actually returned to the caller).
    pub op: OpResult,
    /// Fault outcomes merged across every attempt in the sequence.
    pub faults: ReadFaults,
    /// The deepest recovery step the sequence reached.
    pub action: RecoveryAction,
}

impl CheckedRead {
    /// Whether the data handed back is good (clean, corrected, or
    /// recovered). `false` means the zone was retired and the caller must
    /// re-fetch from a colder tier or recompute.
    pub fn recovered(&self) -> bool {
        self.action != RecoveryAction::Retired
    }
}

impl MrmBlockController {
    /// Creates a controller dividing `device` into zones of `zone_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `zone_bytes` is zero or larger than the device.
    pub fn new(device: MemoryDevice, zone_bytes: u64) -> Self {
        assert!(zone_bytes > 0, "zone size must be positive");
        let n = device.capacity_bytes() / zone_bytes;
        assert!(n > 0, "zone larger than device");
        MrmBlockController {
            device,
            zone_bytes,
            zones: (0..n).map(|_| Zone::new()).collect(),
            scrub_ops: 0,
            scrub_bytes: 0,
            faults: None,
            read_retries: 0,
            scrub_escalations: 0,
            zones_retired: 0,
        }
    }

    /// Attaches a fault-injection layer; [`MrmBlockController::read_checked`]
    /// runs every read through it and drives recovery on uncorrectables.
    pub fn attach_faults(&mut self, model: FaultModel) {
        self.faults = Some(model);
    }

    /// Cumulative fault-layer totals, if a layer is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// Checked reads that needed a retry re-read.
    pub fn read_retries(&self) -> u64 {
        self.read_retries
    }

    /// Checked reads that escalated to an inline scrub.
    pub fn scrub_escalations(&self) -> u64 {
        self.scrub_escalations
    }

    /// Zones permanently retired by the recovery machinery.
    pub fn zones_retired(&self) -> u64 {
        self.zones_retired
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Zone capacity, bytes.
    pub fn zone_bytes(&self) -> u64 {
        self.zone_bytes
    }

    /// The underlying device (for energy/wear inspection).
    pub fn device(&self) -> &MemoryDevice {
        &self.device
    }

    /// Accumulated device energy.
    pub fn energy(&self) -> EnergyBreakdown {
        self.device.energy()
    }

    /// The state of a zone.
    pub fn zone_state(&self, z: ZoneId) -> Result<ZoneState, ZoneError> {
        Ok(self.zone(z)?.state)
    }

    /// The write pointer of a zone.
    pub fn write_pointer(&self, z: ZoneId) -> Result<u64, ZoneError> {
        Ok(self.zone(z)?.write_ptr)
    }

    /// The earliest retention deadline of data in the zone
    /// ([`SimTime::MAX`] if empty).
    pub fn deadline(&self, z: ZoneId) -> Result<SimTime, ZoneError> {
        Ok(self.zone(z)?.deadline)
    }

    /// Software-visible write-cycle count of the zone.
    pub fn write_cycles(&self, z: ZoneId) -> Result<u64, ZoneError> {
        Ok(self.zone(z)?.write_cycles)
    }

    fn zone(&self, z: ZoneId) -> Result<&Zone, ZoneError> {
        self.zones.get(z.0 as usize).ok_or(ZoneError::InvalidZone)
    }

    fn zone_mut(&mut self, z: ZoneId) -> Result<&mut Zone, ZoneError> {
        self.zones
            .get_mut(z.0 as usize)
            .ok_or(ZoneError::InvalidZone)
    }

    fn base(&self, z: ZoneId) -> u64 {
        u64::from(z.0) * self.zone_bytes
    }

    /// Opens the lowest-numbered empty zone. Control-plane wear levelling
    /// should prefer [`MrmBlockController::open_zone_least_worn`].
    pub fn open_zone(&mut self) -> Result<ZoneId, ZoneError> {
        let idx = self
            .zones
            .iter()
            .position(|zn| zn.state == ZoneState::Empty)
            .ok_or(ZoneError::NoEmptyZones)?;
        self.zones[idx].state = ZoneState::Open;
        Ok(ZoneId(idx as u32))
    }

    /// Opens the empty zone with the fewest write cycles — the software
    /// wear-levelling primitive (§4: wear-levelling "left up to a software
    /// control plane").
    pub fn open_zone_least_worn(&mut self) -> Result<ZoneId, ZoneError> {
        let idx = self
            .zones
            .iter()
            .enumerate()
            .filter(|(_, zn)| zn.state == ZoneState::Empty)
            .min_by_key(|(_, zn)| zn.write_cycles)
            .map(|(i, _)| i)
            .ok_or(ZoneError::NoEmptyZones)?;
        self.zones[idx].state = ZoneState::Open;
        Ok(ZoneId(idx as u32))
    }

    /// Appends `bytes` to an open zone, programming the cells for
    /// `retention`. Returns the device-level timing/reliability result.
    pub fn append(
        &mut self,
        now: SimTime,
        z: ZoneId,
        bytes: u64,
        retention: SimDuration,
    ) -> Result<OpResult, ZoneError> {
        let zone_bytes = self.zone_bytes;
        let base = self.base(z);
        let zone = self.zone_mut(z)?;
        if zone.state == ZoneState::Retired {
            return Err(ZoneError::ZoneRetired);
        }
        if zone.state != ZoneState::Open {
            return Err(ZoneError::NotOpen);
        }
        if zone.write_ptr + bytes > zone_bytes {
            return Err(ZoneError::ZoneOverflow);
        }
        let addr = base + zone.write_ptr;
        let deadline = now.saturating_add(retention);
        let res = self
            .device
            .write_with_retention(now, addr, bytes, retention)?;
        let zone = self.zone_mut(z)?;
        zone.write_ptr += bytes;
        zone.deadline = zone.deadline.min(deadline);
        if zone.write_ptr == zone_bytes {
            zone.state = ZoneState::Full;
        }
        Ok(res)
    }

    /// Reads `[offset, offset+len)` of a zone. Fails if the range is beyond
    /// the write pointer. The returned [`OpResult`] carries the expected
    /// RBER/expiry of the data.
    pub fn read(
        &mut self,
        now: SimTime,
        z: ZoneId,
        offset: u64,
        len: u64,
    ) -> Result<OpResult, ZoneError> {
        let base = self.base(z);
        let zone = self.zone(z)?;
        if zone.state == ZoneState::Retired {
            return Err(ZoneError::ZoneRetired);
        }
        if zone.state == ZoneState::Empty {
            return Err(ZoneError::NotOpen);
        }
        if offset + len > zone.write_ptr {
            return Err(ZoneError::ReadBeyondWritePointer);
        }
        Ok(self.device.read(now, base + offset, len)?)
    }

    /// Reads a zone range through the fault layer and, on an uncorrectable
    /// outcome, runs the recovery state machine (DESIGN.md §9):
    ///
    /// 1. **retry** — re-read the range (transient decode failures clear);
    /// 2. **scrub escalation** — rewrite the zone in place for
    ///    `scrub_retention`, then re-read at the refreshed error rate;
    /// 3. **retirement** — if the scrubbed re-read still fails (or the
    ///    device reports the region worn out), the zone is permanently
    ///    retired and the caller must restore the data from elsewhere.
    ///
    /// Without an attached fault layer this is exactly
    /// [`MrmBlockController::read`].
    pub fn read_checked(
        &mut self,
        now: SimTime,
        z: ZoneId,
        offset: u64,
        len: u64,
        scrub_retention: SimDuration,
    ) -> Result<CheckedRead, ZoneError> {
        let mut op = self.read(now, z, offset, len)?;
        let Some(model) = self.faults.as_mut() else {
            return Ok(CheckedRead {
                op,
                faults: ReadFaults::default(),
                action: RecoveryAction::None,
            });
        };
        let mut faults = model.inject_read(len, op.rber);
        if !faults.uncorrectable() && !op.worn_out {
            return Ok(CheckedRead {
                op,
                faults,
                action: RecoveryAction::None,
            });
        }
        // Step 1: retry. The re-read costs real device time/energy and the
        // injection re-samples — a transient UE clears here.
        let mut action = RecoveryAction::Retired;
        if !op.worn_out {
            self.read_retries += 1;
            op = self.read(now, z, offset, len)?;
            let model = self.faults.as_mut().expect("fault layer attached");
            let again = model.inject_read(len, op.rber);
            let clean = !again.uncorrectable();
            faults.merge(&again);
            if clean && !op.worn_out {
                action = RecoveryAction::Retried;
            }
        }
        // Step 2: scrub escalation — rewrite in place, then re-read at the
        // refreshed (fresh-write) error rate.
        if action == RecoveryAction::Retired && !op.worn_out {
            self.scrub_escalations += 1;
            self.scrub_zone(now, z, scrub_retention)?;
            op = self.read(now, z, offset, len)?;
            let model = self.faults.as_mut().expect("fault layer attached");
            let again = model.inject_read(len, op.rber);
            let clean = !again.uncorrectable();
            faults.merge(&again);
            if clean && !op.worn_out {
                action = RecoveryAction::Scrubbed;
            }
        }
        // Step 3: retirement.
        if action == RecoveryAction::Retired {
            self.retire_zone(z)?;
        }
        Ok(CheckedRead { op, faults, action })
    }

    /// Permanently takes a zone out of service. Retired zones reject every
    /// operation and are excluded from zone selection and expiry scans.
    pub fn retire_zone(&mut self, z: ZoneId) -> Result<(), ZoneError> {
        let zone = self.zone_mut(z)?;
        if zone.state == ZoneState::Retired {
            return Ok(());
        }
        zone.state = ZoneState::Retired;
        zone.deadline = SimTime::MAX;
        self.zones_retired += 1;
        Ok(())
    }

    /// Marks an open zone full (no further appends).
    pub fn finish_zone(&mut self, z: ZoneId) -> Result<(), ZoneError> {
        let zone = self.zone_mut(z)?;
        if zone.state != ZoneState::Open {
            return Err(ZoneError::NotOpen);
        }
        zone.state = ZoneState::Full;
        Ok(())
    }

    /// Resets a zone to empty (data dropped — fine for soft state, §4).
    /// A reset of a written zone completes one reuse cycle, which is what
    /// the software wear-leveller counts.
    pub fn reset_zone(&mut self, z: ZoneId) -> Result<(), ZoneError> {
        let zone = self.zone_mut(z)?;
        if zone.state == ZoneState::Retired {
            return Err(ZoneError::ZoneRetired);
        }
        if zone.write_ptr > 0 {
            zone.write_cycles += 1;
        }
        zone.state = ZoneState::Empty;
        zone.write_ptr = 0;
        zone.deadline = SimTime::MAX;
        Ok(())
    }

    /// Zones whose earliest retention deadline falls before `horizon`,
    /// soonest first — the control plane's scrub/migrate/drop work list.
    pub fn zones_expiring_before(&self, horizon: SimTime) -> Vec<(ZoneId, SimTime)> {
        let mut v: Vec<(ZoneId, SimTime)> = self
            .zones
            .iter()
            .enumerate()
            .filter(|(_, zn)| {
                !matches!(zn.state, ZoneState::Empty | ZoneState::Retired) && zn.deadline <= horizon
            })
            .map(|(i, zn)| (ZoneId(i as u32), zn.deadline))
            .collect();
        v.sort_by_key(|&(_, d)| d);
        v
    }

    /// Scrubs a zone: rewrites its contents in place with a fresh
    /// `retention` target, charged as housekeeping on the device ledger.
    /// This is the *software-initiated* refresh the paper moves out of the
    /// device.
    pub fn scrub_zone(
        &mut self,
        now: SimTime,
        z: ZoneId,
        retention: SimDuration,
    ) -> Result<u64, ZoneError> {
        let base = self.base(z);
        let (written, state) = {
            let zone = self.zone(z)?;
            (zone.write_ptr, zone.state)
        };
        if state == ZoneState::Retired {
            return Err(ZoneError::ZoneRetired);
        }
        if state == ZoneState::Empty {
            return Err(ZoneError::NotOpen);
        }
        if written == 0 {
            return Ok(0);
        }
        let bytes = self.device.refresh_range(now, base, written)?;
        let zone = self.zone_mut(z)?;
        zone.deadline = now.saturating_add(retention);
        zone.write_cycles += 1;
        self.scrub_ops += 1;
        self.scrub_bytes += bytes;
        Ok(bytes)
    }

    /// Scrub (software-refresh rewrite) operations completed so far.
    pub fn scrub_ops(&self) -> u64 {
        self.scrub_ops
    }

    /// Bytes rewritten by scrubs so far.
    pub fn scrub_bytes(&self) -> u64 {
        self.scrub_bytes
    }

    /// Publishes the controller's ledger into `sink`: scrub (rewrite)
    /// totals plus zone-state and wear gauges. With no device-side
    /// refresh/GC, scrub rewrites are the *only* housekeeping an MRM
    /// device performs — exactly the signal the paper's §4 argument needs
    /// on a timeline.
    ///
    /// Pull-style and idempotent (totals via [`TelemetrySink::count_to`]).
    pub fn emit_telemetry(&self, sink: &mut dyn TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        sink.count_to("mrm_scrub_ops", self.scrub_ops);
        sink.count_to("mrm_scrub_bytes", self.scrub_bytes);
        sink.count_to("mrm_read_retries", self.read_retries);
        sink.count_to("mrm_scrub_escalations", self.scrub_escalations);
        sink.count_to("mrm_zones_retired", self.zones_retired);
        if let Some(fs) = self.fault_stats() {
            sink.count_to("mrm_fault_raw_flips", fs.raw_flips);
            sink.count_to("mrm_fault_corrected", fs.corrected);
            sink.count_to("mrm_fault_detected_ue", fs.detected_ue);
            sink.count_to("mrm_fault_miscorrected", fs.miscorrected);
            sink.count_to("mrm_fault_silent", fs.silent);
            sink.gauge("mrm_fault_raw_ber", fs.raw_ber());
        }
        let (mut empty, mut open, mut full, mut retired) = (0u64, 0u64, 0u64, 0u64);
        let mut max_cycles = 0u64;
        let mut sum_cycles = 0u64;
        for zn in &self.zones {
            match zn.state {
                ZoneState::Empty => empty += 1,
                ZoneState::Open => open += 1,
                ZoneState::Full => full += 1,
                ZoneState::Retired => retired += 1,
            }
            max_cycles = max_cycles.max(zn.write_cycles);
            sum_cycles += zn.write_cycles;
        }
        sink.gauge("mrm_zones_empty", empty as f64);
        sink.gauge("mrm_zones_open", open as f64);
        sink.gauge("mrm_zones_full", full as f64);
        sink.gauge("mrm_zones_retired_now", retired as f64);
        sink.gauge("mrm_zone_cycles_max", max_cycles as f64);
        sink.gauge(
            "mrm_zone_cycles_mean",
            sum_cycles as f64 / self.zones.len() as f64,
        );
    }

    /// Observes every zone's write-cycle count into the
    /// `zone_write_cycles` histogram — the wear distribution the software
    /// wear-leveller is trying to flatten. One-shot: call at end of run,
    /// not per interval, since histogram observations accumulate.
    pub fn emit_wear_histogram(&self, sink: &mut dyn TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        for zn in &self.zones {
            sink.observe("zone_write_cycles", zn.write_cycles as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_device::tech::presets;
    use mrm_sim::units::MIB;

    fn ctrl() -> MrmBlockController {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = 64 * MIB; // small for tests
        MrmBlockController::new(MemoryDevice::new(tech), 4 * MIB)
    }

    #[test]
    fn zone_lifecycle() {
        let mut c = ctrl();
        assert_eq!(c.zone_count(), 16);
        let z = c.open_zone().unwrap();
        assert_eq!(c.zone_state(z).unwrap(), ZoneState::Open);
        c.append(SimTime::ZERO, z, MIB, SimDuration::from_hours(12))
            .unwrap();
        assert_eq!(c.write_pointer(z).unwrap(), MIB);
        c.finish_zone(z).unwrap();
        assert_eq!(c.zone_state(z).unwrap(), ZoneState::Full);
        c.reset_zone(z).unwrap();
        assert_eq!(c.zone_state(z).unwrap(), ZoneState::Empty);
        assert_eq!(c.write_pointer(z).unwrap(), 0);
    }

    #[test]
    fn appends_are_strictly_sequential() {
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, 1000, SimDuration::from_hours(1))
            .unwrap();
        c.append(SimTime::ZERO, z, 1000, SimDuration::from_hours(1))
            .unwrap();
        assert_eq!(c.write_pointer(z).unwrap(), 2000);
        // Reads below the pointer succeed; beyond it fail.
        assert!(c.read(SimTime::ZERO, z, 0, 2000).is_ok());
        assert_eq!(
            c.read(SimTime::ZERO, z, 1000, 1001).unwrap_err(),
            ZoneError::ReadBeyondWritePointer
        );
    }

    #[test]
    fn zone_overflow_rejected() {
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        assert_eq!(
            c.append(SimTime::ZERO, z, 5 * MIB, SimDuration::from_hours(1))
                .unwrap_err(),
            ZoneError::ZoneOverflow
        );
    }

    #[test]
    fn full_zone_rejects_appends() {
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, 4 * MIB, SimDuration::from_hours(1))
            .unwrap();
        assert_eq!(c.zone_state(z).unwrap(), ZoneState::Full);
        assert_eq!(
            c.append(SimTime::ZERO, z, 1, SimDuration::from_hours(1))
                .unwrap_err(),
            ZoneError::NotOpen
        );
    }

    #[test]
    fn deadline_registry_tracks_earliest() {
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        let t0 = SimTime::ZERO;
        c.append(t0, z, 1000, SimDuration::from_hours(12)).unwrap();
        c.append(t0, z, 1000, SimDuration::from_hours(1)).unwrap(); // earlier deadline
        let d = c.deadline(z).unwrap();
        assert_eq!(d, t0 + SimDuration::from_hours(1));
        let expiring = c.zones_expiring_before(t0 + SimDuration::from_hours(2));
        assert_eq!(expiring, vec![(z, d)]);
        assert!(c
            .zones_expiring_before(t0 + SimDuration::from_mins(30))
            .is_empty());
    }

    #[test]
    fn scrub_extends_deadline_and_is_housekeeping() {
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        let t0 = SimTime::ZERO;
        c.append(t0, z, MIB, SimDuration::from_hours(1)).unwrap();
        let t1 = t0 + SimDuration::from_mins(50);
        let bytes = c.scrub_zone(t1, z, SimDuration::from_hours(1)).unwrap();
        assert!(bytes >= MIB);
        assert_eq!(c.deadline(z).unwrap(), t1 + SimDuration::from_hours(1));
        assert!(c.energy().housekeeping_j > 0.0);
        assert_eq!(c.write_cycles(z).unwrap(), 1);
        // Data read after the original deadline is now fine.
        let r = c.read(t0 + SimDuration::from_mins(70), z, 0, MIB).unwrap();
        assert!(!r.expired);
    }

    #[test]
    fn expired_zone_read_is_flagged() {
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, MIB, SimDuration::from_mins(10))
            .unwrap();
        let r = c
            .read(SimTime::ZERO + SimDuration::from_mins(30), z, 0, MIB)
            .unwrap();
        assert!(
            r.expired,
            "reads past the retention deadline must be flagged"
        );
    }

    #[test]
    fn least_worn_zone_selection() {
        let mut c = ctrl();
        let z0 = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z0, MIB, SimDuration::from_hours(1))
            .unwrap();
        // Wear z0 via scrubs, then free it.
        for _ in 0..5 {
            c.scrub_zone(SimTime::ZERO, z0, SimDuration::from_hours(1))
                .unwrap();
        }
        c.reset_zone(z0).unwrap();
        // Least-worn must now avoid z0.
        let z = c.open_zone_least_worn().unwrap();
        assert_ne!(z, z0);
        // Plain open_zone (lowest-numbered) would have picked z0 again.
        let mut c2 = ctrl();
        let a = c2.open_zone().unwrap();
        c2.reset_zone(a).unwrap();
        assert_eq!(c2.open_zone().unwrap(), a);
    }

    #[test]
    fn no_empty_zones_error() {
        let mut c = ctrl();
        for _ in 0..16 {
            c.open_zone().unwrap();
        }
        assert_eq!(c.open_zone().unwrap_err(), ZoneError::NoEmptyZones);
    }

    #[test]
    fn invalid_zone_id() {
        let mut c = ctrl();
        assert_eq!(
            c.zone_state(ZoneId(999)).unwrap_err(),
            ZoneError::InvalidZone
        );
        assert_eq!(
            c.append(SimTime::ZERO, ZoneId(999), 1, SimDuration::from_secs(1))
                .unwrap_err(),
            ZoneError::InvalidZone
        );
    }

    #[test]
    fn telemetry_publishes_scrub_ledger_and_zone_wear() {
        use mrm_telemetry::SimTelemetry;
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, MIB, SimDuration::from_hours(1))
            .unwrap();
        let scrubbed = c
            .scrub_zone(SimTime::ZERO, z, SimDuration::from_hours(1))
            .unwrap();
        assert_eq!(c.scrub_ops(), 1);
        assert_eq!(c.scrub_bytes(), scrubbed);
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        c.emit_telemetry(&mut t);
        c.emit_telemetry(&mut t); // idempotent republish
        let r = t.registry();
        assert_eq!(r.counter_value("mrm_scrub_ops"), Some(1));
        assert_eq!(r.counter_value("mrm_scrub_bytes"), Some(scrubbed));
        assert_eq!(r.gauge_value("mrm_zones_open"), Some(1.0));
        assert_eq!(r.gauge_value("mrm_zones_empty"), Some(15.0));
        assert_eq!(r.gauge_value("mrm_zone_cycles_max"), Some(1.0));
        c.emit_wear_histogram(&mut t);
        let h = t.registry().histogram_by_name("zone_write_cycles").unwrap();
        assert_eq!(h.count(), c.zone_count() as u64);
    }

    #[test]
    fn read_checked_without_fault_layer_is_plain_read() {
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, MIB, SimDuration::from_hours(1))
            .unwrap();
        let r = c
            .read_checked(SimTime::ZERO, z, 0, MIB, SimDuration::from_hours(1))
            .unwrap();
        assert_eq!(r.action, mrm_faults::RecoveryAction::None);
        assert_eq!(r.faults, mrm_faults::ReadFaults::default());
        assert!(r.recovered());
        assert_eq!(c.read_retries(), 0);
        assert_eq!(c.fault_stats(), None);
    }

    #[test]
    fn fresh_data_reads_clean_through_fault_layer() {
        use mrm_faults::{FaultConfig, FaultModel};
        let mut c = ctrl();
        c.attach_faults(FaultModel::new(FaultConfig::mrm(), 42));
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, MIB, SimDuration::from_hours(12))
            .unwrap();
        // Minutes into a 12-hour retention: RBER is far below the t=2
        // correction budget, so no recovery engages.
        let r = c
            .read_checked(
                SimTime::ZERO + SimDuration::from_mins(5),
                z,
                0,
                MIB,
                SimDuration::from_hours(12),
            )
            .unwrap();
        assert_eq!(r.action, mrm_faults::RecoveryAction::None);
        assert_eq!(
            c.read_retries() + c.scrub_escalations() + c.zones_retired(),
            0
        );
    }

    #[test]
    fn expired_read_escalates_and_scrub_recovers() {
        use mrm_faults::{FaultConfig, FaultModel, RecoveryAction};
        let mut c = ctrl();
        c.attach_faults(FaultModel::new(FaultConfig::mrm(), 7));
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, 4 * MIB, SimDuration::from_mins(10))
            .unwrap();
        // Far past the deadline the RBER saturates well above what t=2
        // absorbs over 4 MiB; the recovery ladder must engage, and the
        // scrub rewrite restores a fresh error rate.
        let late = SimTime::ZERO + SimDuration::from_mins(60);
        let r = c
            .read_checked(late, z, 0, 4 * MIB, SimDuration::from_hours(1))
            .unwrap();
        assert!(r.faults.uncorrectable(), "{:?}", r.faults);
        assert_eq!(r.action, RecoveryAction::Scrubbed, "{:?}", r);
        assert!(r.recovered());
        assert_eq!(c.read_retries(), 1);
        assert_eq!(c.scrub_escalations(), 1);
        assert_eq!(c.zones_retired(), 0);
        // The scrubbed zone now reads clean.
        let again = c
            .read_checked(late, z, 0, 4 * MIB, SimDuration::from_hours(1))
            .unwrap();
        assert_eq!(again.action, RecoveryAction::None);
    }

    #[test]
    fn retired_zone_rejects_everything_and_leaves_selection() {
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, MIB, SimDuration::from_mins(10))
            .unwrap();
        c.retire_zone(z).unwrap();
        assert_eq!(c.zone_state(z).unwrap(), ZoneState::Retired);
        assert_eq!(c.zones_retired(), 1);
        // Idempotent.
        c.retire_zone(z).unwrap();
        assert_eq!(c.zones_retired(), 1);
        assert_eq!(
            c.read(SimTime::ZERO, z, 0, 1).unwrap_err(),
            ZoneError::ZoneRetired
        );
        assert_eq!(
            c.append(SimTime::ZERO, z, 1, SimDuration::from_secs(1))
                .unwrap_err(),
            ZoneError::ZoneRetired
        );
        assert_eq!(c.reset_zone(z).unwrap_err(), ZoneError::ZoneRetired);
        assert_eq!(
            c.scrub_zone(SimTime::ZERO, z, SimDuration::from_hours(1))
                .unwrap_err(),
            ZoneError::ZoneRetired
        );
        // Gone from the expiry work list and from zone selection.
        assert!(c.zones_expiring_before(SimTime::MAX).is_empty());
        for _ in 0..15 {
            let opened = c.open_zone_least_worn().unwrap();
            assert_ne!(opened, z);
        }
        assert_eq!(c.open_zone().unwrap_err(), ZoneError::NoEmptyZones);
    }

    #[test]
    fn recovery_telemetry_is_published() {
        use mrm_faults::{FaultConfig, FaultModel};
        use mrm_telemetry::SimTelemetry;
        let mut c = ctrl();
        c.attach_faults(FaultModel::new(FaultConfig::mrm(), 7));
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, 4 * MIB, SimDuration::from_mins(10))
            .unwrap();
        let late = SimTime::ZERO + SimDuration::from_mins(60);
        c.read_checked(late, z, 0, 4 * MIB, SimDuration::from_hours(1))
            .unwrap();
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        c.emit_telemetry(&mut t);
        let r = t.registry();
        assert_eq!(r.counter_value("mrm_read_retries"), Some(c.read_retries()));
        assert_eq!(
            r.counter_value("mrm_scrub_escalations"),
            Some(c.scrub_escalations())
        );
        let fs = *c.fault_stats().unwrap();
        assert_eq!(r.counter_value("mrm_fault_raw_flips"), Some(fs.raw_flips));
        assert_eq!(
            r.counter_value("mrm_fault_detected_ue"),
            Some(fs.detected_ue)
        );
        assert!(r.gauge_value("mrm_fault_raw_ber").unwrap() > 0.0);
        assert_eq!(r.gauge_value("mrm_zones_retired_now"), Some(0.0));
    }

    #[test]
    fn no_device_side_housekeeping_when_idle() {
        // The controller performs zero internal refresh/GC: an idle
        // controller accrues no housekeeping energy.
        let mut c = ctrl();
        let z = c.open_zone().unwrap();
        c.append(SimTime::ZERO, z, MIB, SimDuration::from_hours(12))
            .unwrap();
        let before = c.energy().housekeeping_j;
        // A day of "idle" — nothing happens unless software asks.
        let r = c
            .read(SimTime::ZERO + SimDuration::from_hours(6), z, 0, MIB)
            .unwrap();
        assert!(!r.expired);
        // Idle means *no* accounting at all, so bit equality is exact.
        assert_eq!(c.energy().housekeeping_j.to_bits(), before.to_bits());
    }
}
