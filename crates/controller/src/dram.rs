//! DRAM/HBM controller: bank scheduling plus mandatory refresh.
//!
//! The §2.1/§3 cost of DRAM's microsecond-scale cell retention is made
//! concrete here: every `tREFI` the controller must issue refreshes that (a)
//! burn energy proportional to capacity and (b) steal bank time from demand
//! traffic. Both are tracked so the analysis layer can report refresh energy
//! *and* the bandwidth tax.

use mrm_device::bank::{Bank, BankTiming, RowOutcome};

/// REF commands per full refresh pass: DDR-style devices spread a pass over
/// 8192 tREFI-spaced REF commands, each occupying the bank for tRFC.
pub const REF_COMMANDS_PER_PASS: u64 = 8192;
use mrm_device::geometry::DeviceGeometry;
use mrm_faults::{FaultModel, FaultStats, ReadFaults, RecoveryAction};
use mrm_sim::time::{SimDuration, SimTime};
use mrm_telemetry::TelemetrySink;

/// Statistics accumulated by the controller.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DramStats {
    /// Demand accesses served.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (bank idle).
    pub row_misses: u64,
    /// Row-buffer conflicts (wrong row open).
    pub row_conflicts: u64,
    /// Refresh operations issued (per bank).
    pub refreshes: u64,
    /// Total bank-time consumed by refresh.
    pub refresh_busy: SimDuration,
    /// Refresh energy consumed, joules.
    pub refresh_energy_j: f64,
    /// Checked reads that needed a retry after a detected UE.
    pub read_retries: u64,
    /// Rows retired (post-package-repair style) after persistent UEs.
    pub rows_retired: u64,
}

impl DramStats {
    /// Row-buffer hit rate over all demand accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.row_hits as f64 / self.accesses as f64
    }
}

/// A DRAM/HBM memory controller over a bank array with periodic refresh.
///
/// # Examples
///
/// ```
/// use mrm_controller::dram::DramController;
/// use mrm_device::geometry::DeviceGeometry;
/// use mrm_sim::time::SimTime;
///
/// let geo = DeviceGeometry::hbm_like(1 << 30);
/// let mut ctrl = DramController::hbm_like(geo);
/// let done = ctrl.read(SimTime::ZERO, 0, 64 * 1024);
/// assert!(done > SimTime::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct DramController {
    geometry: DeviceGeometry,
    timing: BankTiming,
    banks: Vec<Bank>,
    /// All-bank refresh period (tREFI × rows-per-refresh generalized to a
    /// full-device pass every retention interval).
    refresh_period: SimDuration,
    /// Portion of the device refreshed per refresh tick (per-bank refresh).
    next_refresh: SimTime,
    /// Energy per refreshed bit, joules.
    refresh_j_per_bit: f64,
    /// Bytes per burst transfer.
    burst_bytes: u32,
    stats: DramStats,
    /// Optional fault-injection layer (SECDED) for checked reads.
    faults: Option<FaultModel>,
    /// Constant soft-error RBER for checked reads: refresh holds DRAM's
    /// error rate flat, so unlike MRM it does not grow with data age.
    soft_rber: f64,
}

impl DramController {
    /// Creates a controller with explicit parameters.
    pub fn new(
        geometry: DeviceGeometry,
        timing: BankTiming,
        refresh_period: SimDuration,
        refresh_pj_per_bit: f64,
        burst_bytes: u32,
    ) -> Self {
        let banks = (0..geometry.total_banks())
            .map(|_| Bank::new(timing))
            .collect();
        DramController {
            geometry,
            timing,
            banks,
            refresh_period,
            next_refresh: SimTime::ZERO + refresh_period,
            refresh_j_per_bit: refresh_pj_per_bit * 1e-12,
            burst_bytes: burst_bytes.max(1),
            stats: DramStats::default(),
            faults: None,
            soft_rber: 0.0,
        }
    }

    /// Attaches a fault-injection layer; [`DramController::read_checked`]
    /// runs reads through it at the constant `soft_rber` and retries /
    /// retires rows on detected uncorrectables.
    pub fn attach_faults(&mut self, model: FaultModel, soft_rber: f64) {
        self.faults = Some(model);
        self.soft_rber = soft_rber.max(0.0);
    }

    /// Cumulative fault-layer totals, if a layer is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// HBM3-like controller: 32 ms retention, 0.15 pJ/bit refresh, 64 B
    /// bursts.
    pub fn hbm_like(geometry: DeviceGeometry) -> Self {
        DramController::new(
            geometry,
            BankTiming::hbm3_like(),
            SimDuration::from_millis(32),
            0.15,
            64,
        )
    }

    /// DDR5-like controller: 64 ms retention.
    pub fn ddr5_like(geometry: DeviceGeometry) -> Self {
        DramController::new(
            geometry,
            BankTiming::ddr5_like(),
            SimDuration::from_millis(64),
            0.15,
            64,
        )
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The refresh period (full-device pass interval).
    pub fn refresh_period(&self) -> SimDuration {
        self.refresh_period
    }

    fn bank_index(&self, channel: u32, bank: u32) -> usize {
        (channel * self.geometry.banks_per_channel + bank) as usize
    }

    /// Issues any refresh passes due by `now`. Each pass touches every bank
    /// for `tRFC` and charges energy for rewriting the whole device.
    pub fn catch_up_refresh(&mut self, now: SimTime) {
        while self.next_refresh <= now {
            let at = self.next_refresh;
            for b in &mut self.banks {
                b.refresh(at);
                self.stats.refreshes += 1;
                // One state-machine refresh stands in for the pass, but the
                // bank-time cost is the real one: 8192 REF commands of tRFC
                // each per pass (tRFC/tREFI of every second, ~5-8%).
                self.stats.refresh_busy += self.timing.t_rfc.saturating_mul(REF_COMMANDS_PER_PASS);
            }
            let bits = self.geometry.capacity_bytes() as f64 * 8.0;
            self.stats.refresh_energy_j += bits * self.refresh_j_per_bit;
            self.next_refresh = at + self.refresh_period;
        }
    }

    fn service(&mut self, now: SimTime, addr: u64, len: u64) -> SimTime {
        assert!(len > 0, "zero-length access");
        self.catch_up_refresh(now);
        let row_bytes = u64::from(self.geometry.row_bytes);
        let mut done = now;
        let mut offset = 0u64;
        while offset < len {
            let a = addr + offset;
            let chunk = (row_bytes - a % row_bytes).min(len - offset);
            let d = self.geometry.decode(a % self.geometry.capacity_bytes());
            let bursts = (chunk as u32).div_ceil(self.burst_bytes);
            let idx = self.bank_index(d.channel, d.bank);
            let res = self.banks[idx].access(now, d.row, bursts);
            match res.outcome {
                RowOutcome::Hit => self.stats.row_hits += 1,
                RowOutcome::Miss => self.stats.row_misses += 1,
                RowOutcome::Conflict => self.stats.row_conflicts += 1,
            }
            self.stats.accesses += 1;
            done = done.max(res.bank_free_at);
            offset += chunk;
        }
        done
    }

    /// Reads `[addr, addr+len)` arriving at `now`; returns completion time.
    /// Sequential spans stripe across channels/banks and overlap.
    pub fn read(&mut self, now: SimTime, addr: u64, len: u64) -> SimTime {
        self.service(now, addr, len)
    }

    /// Writes `[addr, addr+len)` arriving at `now`; returns completion time.
    pub fn write(&mut self, now: SimTime, addr: u64, len: u64) -> SimTime {
        self.service(now, addr, len)
    }

    /// Reads through the SECDED fault layer at the attached soft-error
    /// rate. Single-bit errors correct inline; a detected double-bit error
    /// triggers one retry re-read (costing real bank time), and a UE that
    /// survives the retry retires the row (post-package-repair style) —
    /// the caller must restore the data from elsewhere.
    ///
    /// Without an attached fault layer this is [`DramController::read`].
    pub fn read_checked(
        &mut self,
        now: SimTime,
        addr: u64,
        len: u64,
    ) -> (SimTime, ReadFaults, RecoveryAction) {
        let mut done = self.read(now, addr, len);
        let rber = self.soft_rber;
        let Some(model) = self.faults.as_mut() else {
            return (done, ReadFaults::default(), RecoveryAction::None);
        };
        let mut faults = model.inject_read(len, rber);
        if !faults.uncorrectable() {
            return (done, faults, RecoveryAction::None);
        }
        // Retry: the re-read occupies the banks again.
        self.stats.read_retries += 1;
        done = self.read(done, addr, len);
        let model = self.faults.as_mut().expect("fault layer attached");
        let again = model.inject_read(len, rber);
        let cleared = !again.uncorrectable();
        faults.merge(&again);
        if cleared {
            return (done, faults, RecoveryAction::Retried);
        }
        self.stats.rows_retired += 1;
        (done, faults, RecoveryAction::Retired)
    }

    /// Fraction of total bank-time stolen by refresh over `elapsed`.
    pub fn refresh_time_fraction(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        let total_bank_time = elapsed.as_secs_f64() * self.banks.len() as f64;
        self.stats.refresh_busy.as_secs_f64() / total_bank_time
    }

    /// Average refresh power over `elapsed`, watts.
    pub fn refresh_power_w(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.stats.refresh_energy_j / elapsed.as_secs_f64()
    }

    /// Publishes the controller's housekeeping ledger into `sink`: demand
    /// and refresh counters plus the refresh-stall gauges (`refresh_busy`
    /// is the bank-time stolen from demand traffic — the §2.1 bandwidth
    /// tax made visible).
    ///
    /// Pull-style and idempotent: totals go through
    /// [`TelemetrySink::count_to`], so republishing every snapshot
    /// interval never double-counts. `elapsed` is the sim-time window the
    /// rate/fraction gauges are computed over.
    pub fn emit_telemetry(&self, elapsed: SimDuration, sink: &mut dyn TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        sink.count_to("dram_accesses", self.stats.accesses);
        sink.count_to("dram_row_hits", self.stats.row_hits);
        sink.count_to("dram_row_misses", self.stats.row_misses);
        sink.count_to("dram_row_conflicts", self.stats.row_conflicts);
        sink.count_to("dram_refreshes", self.stats.refreshes);
        sink.count_to("dram_read_retries", self.stats.read_retries);
        sink.count_to("dram_rows_retired", self.stats.rows_retired);
        if let Some(fs) = self.fault_stats() {
            sink.count_to("dram_fault_raw_flips", fs.raw_flips);
            sink.count_to("dram_fault_corrected", fs.corrected);
            sink.count_to("dram_fault_detected_ue", fs.detected_ue);
            sink.count_to("dram_fault_miscorrected", fs.miscorrected);
            sink.count_to("dram_fault_silent", fs.silent);
            sink.gauge("dram_fault_raw_ber", fs.raw_ber());
        }
        sink.gauge("dram_row_hit_rate", self.stats.hit_rate());
        sink.gauge("dram_refresh_busy_s", self.stats.refresh_busy.as_secs_f64());
        sink.gauge("dram_refresh_energy_j", self.stats.refresh_energy_j);
        sink.gauge(
            "dram_refresh_time_fraction",
            self.refresh_time_fraction(elapsed),
        );
        sink.gauge("dram_refresh_power_w", self.refresh_power_w(elapsed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::units::{GIB, MIB};

    fn ctrl() -> DramController {
        DramController::hbm_like(DeviceGeometry::hbm_like(GIB))
    }

    #[test]
    fn sequential_read_stripes_across_banks() {
        let mut c = ctrl();
        // 1 MiB sequential: spans 1024 rows across 256 banks.
        let done = c.read(SimTime::ZERO, 0, MIB);
        let s = c.stats();
        assert_eq!(s.accesses, 1024);
        assert!(done > SimTime::ZERO);
        // Striping means wall time far below the serial sum of accesses.
        let serial_ns = 1024 * 30; // ~30ns per independent access
        assert!(done.as_nanos() < serial_ns, "completion {done}");
    }

    #[test]
    fn repeated_same_row_hits() {
        let mut c = ctrl();
        let t1 = c.read(SimTime::ZERO, 0, 64);
        let _t2 = c.read(t1, 0, 64);
        let s = c.stats();
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_misses, 1);
        assert!(s.hit_rate() > 0.49);
    }

    #[test]
    fn refresh_fires_on_schedule() {
        let mut c = ctrl();
        // Jump 10 refresh periods ahead.
        let later = SimTime::ZERO + SimDuration::from_millis(320);
        c.catch_up_refresh(later);
        let s = c.stats();
        let banks = 256;
        assert_eq!(s.refreshes, 10 * banks);
        assert!(s.refresh_energy_j > 0.0);
    }

    #[test]
    fn refresh_energy_matches_capacity_math() {
        let mut c = ctrl();
        c.catch_up_refresh(SimTime::ZERO + SimDuration::from_millis(32));
        let s = c.stats();
        // One pass over ≥1 GiB at 0.15 pJ/bit ≈ ≥1.29 mJ (geometry may
        // round capacity up slightly).
        let expected = GIB as f64 * 8.0 * 0.15e-12;
        assert!(
            s.refresh_energy_j >= expected * 0.99,
            "{}",
            s.refresh_energy_j
        );
        assert!(
            s.refresh_energy_j <= expected * 1.05,
            "{}",
            s.refresh_energy_j
        );
    }

    #[test]
    fn refresh_steals_bandwidth() {
        let mut c = ctrl();
        let elapsed = SimDuration::from_secs(1);
        c.catch_up_refresh(SimTime::ZERO + elapsed);
        let frac = c.refresh_time_fraction(elapsed);
        // tRFC/tREFI ≈ 260ns / 3.9µs ≈ 6.7% of bank time.
        assert!(frac > 0.03 && frac < 0.12, "refresh fraction {frac}");
        assert!(c.refresh_power_w(elapsed) > 0.0);
    }

    #[test]
    fn demand_after_refresh_waits() {
        let mut c = ctrl();
        let refresh_time = SimTime::ZERO + SimDuration::from_millis(32);
        // Access arriving exactly when refresh is due must finish after the
        // refresh's tRFC.
        let done = c.read(refresh_time, 0, 64);
        assert!(done >= refresh_time + SimDuration::from_nanos(260));
    }

    #[test]
    fn writes_tracked_like_reads() {
        let mut c = ctrl();
        c.write(SimTime::ZERO, 0, 4096);
        assert!(c.stats().accesses >= 4);
    }

    #[test]
    #[should_panic(expected = "zero-length access")]
    fn zero_len_panics() {
        ctrl().read(SimTime::ZERO, 0, 0);
    }

    #[test]
    fn read_checked_without_faults_is_plain_read() {
        let mut c = ctrl();
        let (done, faults, action) = c.read_checked(SimTime::ZERO, 0, 64);
        assert!(done > SimTime::ZERO);
        assert_eq!(faults, ReadFaults::default());
        assert_eq!(action, RecoveryAction::None);
        assert_eq!(c.fault_stats(), None);
    }

    #[test]
    fn quiet_soft_error_rate_corrects_inline() {
        use mrm_faults::FaultConfig;
        let mut c = ctrl();
        c.attach_faults(FaultModel::new(FaultConfig::dram(), 21), 1e-9);
        for i in 0..32 {
            let (_, faults, action) = c.read_checked(SimTime::ZERO, i * 4096, 4096);
            assert_eq!(action, RecoveryAction::None);
            // SECDED absorbs the rare single-bit flip silently.
            assert_eq!(faults.detected_ue + faults.miscorrected + faults.silent, 0);
        }
        assert_eq!(c.stats().read_retries, 0);
        assert_eq!(c.stats().rows_retired, 0);
    }

    #[test]
    fn ue_storm_retries_then_retires_rows() {
        use mrm_faults::FaultConfig;
        let mut c = ctrl();
        // An absurd soft-error rate: double-bit errors in nearly every
        // word, so the retry ladder must exhaust and retire rows.
        let mut cfg = FaultConfig::dram();
        cfg.decoder_probes = 16;
        c.attach_faults(FaultModel::new(cfg, 13), 1e-2);
        let mut retired = 0;
        for i in 0..16 {
            let before = c.read(SimTime::ZERO, i * 4096, 64);
            let (done, faults, action) = c.read_checked(SimTime::ZERO, i * 4096, 64 * 1024);
            assert!(faults.raw_flips > 0);
            if action == RecoveryAction::Retired {
                retired += 1;
                // The retry re-read consumed extra bank time.
                assert!(done > before);
            }
            // SECDED never lets corruption through silently.
            assert_eq!(faults.silent, 0);
        }
        assert!(retired > 0, "expected row retirements under a UE storm");
        assert_eq!(c.stats().rows_retired, retired);
        assert!(c.stats().read_retries >= retired);
    }

    #[test]
    fn fault_telemetry_is_published() {
        use mrm_faults::FaultConfig;
        use mrm_telemetry::SimTelemetry;
        let mut c = ctrl();
        c.attach_faults(FaultModel::new(FaultConfig::dram(), 3), 1e-4);
        for _ in 0..8 {
            c.read_checked(SimTime::ZERO, 0, 64 * 1024);
        }
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        c.emit_telemetry(SimDuration::from_secs(1), &mut t);
        let r = t.registry();
        let fs = *c.fault_stats().unwrap();
        assert_eq!(r.counter_value("dram_fault_raw_flips"), Some(fs.raw_flips));
        assert_eq!(
            r.counter_value("dram_read_retries"),
            Some(c.stats().read_retries)
        );
        assert_eq!(
            r.counter_value("dram_rows_retired"),
            Some(c.stats().rows_retired)
        );
        assert!(r.gauge_value("dram_fault_raw_ber").unwrap() > 0.0);
    }

    #[test]
    fn telemetry_publishes_refresh_ledger() {
        use mrm_telemetry::SimTelemetry;
        let mut c = ctrl();
        let elapsed = SimDuration::from_secs(1);
        c.read(SimTime::ZERO, 0, 64);
        c.catch_up_refresh(SimTime::ZERO + elapsed);
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        c.emit_telemetry(elapsed, &mut t);
        c.emit_telemetry(elapsed, &mut t); // idempotent republish
        let r = t.registry();
        assert_eq!(r.counter_value("dram_accesses"), Some(1));
        assert_eq!(r.counter_value("dram_refreshes"), Some(c.stats().refreshes));
        let frac = r.gauge_value("dram_refresh_time_fraction").unwrap();
        assert!(frac > 0.03 && frac < 0.12, "refresh fraction {frac}");
    }
}
