//! Shared scheduling machinery: a deficit-weighted round-robin queue.
//!
//! §4: inference serving mixes "tight latency SLAs (e.g., user-in-the-loop
//! conversation)", "throughput hungry" batch jobs, and "background
//! best-effort jobs". The control plane needs a scheduler that gives each
//! service class a configurable share without starving anyone —
//! deficit-weighted round robin (DRR) is the standard answer and is what
//! the tiering crate uses to order expiry-handling and request dispatch.

use std::collections::VecDeque;

/// Service class for queued work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QosClass {
    /// Latency-sensitive interactive work.
    Interactive,
    /// Throughput-oriented batch work.
    Batch,
    /// Best-effort background work.
    BestEffort,
}

impl QosClass {
    /// All classes in priority order.
    pub fn all() -> [QosClass; 3] {
        [QosClass::Interactive, QosClass::Batch, QosClass::BestEffort]
    }
}

/// A deficit-weighted round-robin queue over the three QoS classes.
///
/// Each class has a weight (its quantum); [`DrrQueue::pop`] serves classes
/// in rotation, allowing each to dequeue while its deficit counter lasts.
/// A higher weight therefore yields a proportionally larger share of
/// dequeues under contention, while empty classes donate their share.
///
/// # Examples
///
/// ```
/// use mrm_controller::sched::{DrrQueue, QosClass};
///
/// let mut q = DrrQueue::new([4, 2, 1]);
/// q.push(QosClass::Interactive, "a");
/// q.push(QosClass::BestEffort, "b");
/// assert_eq!(q.pop(), Some((QosClass::Interactive, "a")));
/// assert_eq!(q.pop(), Some((QosClass::BestEffort, "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct DrrQueue<T> {
    queues: [VecDeque<T>; 3],
    weights: [u32; 3],
    deficits: [u32; 3],
    cursor: usize,
}

impl<T> DrrQueue<T> {
    /// Creates a queue with per-class weights `[interactive, batch,
    /// best_effort]`.
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero.
    pub fn new(weights: [u32; 3]) -> Self {
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        DrrQueue {
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            weights,
            deficits: [0; 3],
            cursor: 0,
        }
    }

    fn index(class: QosClass) -> usize {
        match class {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
            QosClass::BestEffort => 2,
        }
    }

    /// Enqueues an item in its class.
    pub fn push(&mut self, class: QosClass, item: T) {
        self.queues[Self::index(class)].push_back(item);
    }

    /// Total queued items.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True if all classes are empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Queue depth of one class.
    pub fn class_len(&self, class: QosClass) -> usize {
        self.queues[Self::index(class)].len()
    }

    /// Dequeues the next item under DRR.
    pub fn pop(&mut self) -> Option<(QosClass, T)> {
        if self.is_empty() {
            // Reset deficits so an idle period doesn't bank credit.
            self.deficits = [0; 3];
            return None;
        }
        loop {
            let i = self.cursor;
            if self.queues[i].is_empty() {
                self.deficits[i] = 0;
                self.cursor = (self.cursor + 1) % 3;
                continue;
            }
            if self.deficits[i] == 0 {
                self.deficits[i] = self.weights[i];
            }
            if self.deficits[i] > 0 {
                self.deficits[i] -= 1;
                let item = self.queues[i]
                    .pop_front()
                    .expect("deficit rounds only reach non-empty queues");
                let class = QosClass::all()[i];
                if self.deficits[i] == 0 {
                    self.cursor = (self.cursor + 1) % 3;
                }
                return Some((class, item));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_class_fifo() {
        let mut q = DrrQueue::new([1, 1, 1]);
        for i in 0..5 {
            q.push(QosClass::Batch, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, x)| x)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weights_set_share_under_contention() {
        let mut q = DrrQueue::new([6, 3, 1]);
        for i in 0..1000 {
            q.push(QosClass::Interactive, i);
            q.push(QosClass::Batch, i);
            q.push(QosClass::BestEffort, i);
        }
        let mut counts = [0u32; 3];
        for _ in 0..600 {
            let (c, _) = q.pop().unwrap();
            counts[DrrQueue::<i32>::index(c)] += 1;
        }
        // Shares ≈ 6:3:1 of 600 = 360/180/60.
        assert!((counts[0] as i32 - 360).abs() <= 12, "{counts:?}");
        assert!((counts[1] as i32 - 180).abs() <= 12, "{counts:?}");
        assert!((counts[2] as i32 - 60).abs() <= 12, "{counts:?}");
    }

    #[test]
    fn no_starvation() {
        let mut q = DrrQueue::new([100, 1, 1]);
        q.push(QosClass::BestEffort, -1);
        for i in 0..500 {
            q.push(QosClass::Interactive, i);
        }
        let mut popped_bg_at = None;
        for n in 0..501 {
            let (c, _) = q.pop().unwrap();
            if c == QosClass::BestEffort {
                popped_bg_at = Some(n);
                break;
            }
        }
        assert!(popped_bg_at.is_some(), "best-effort item starved");
    }

    #[test]
    fn empty_classes_donate() {
        let mut q = DrrQueue::new([1, 1, 1]);
        for i in 0..10 {
            q.push(QosClass::BestEffort, i);
        }
        // Only one class present: all pops come from it back to back.
        for i in 0..10 {
            assert_eq!(q.pop(), Some((QosClass::BestEffort, i)));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn lens() {
        let mut q = DrrQueue::new([1, 1, 1]);
        assert!(q.is_empty());
        q.push(QosClass::Interactive, 1);
        q.push(QosClass::Interactive, 2);
        q.push(QosClass::Batch, 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.class_len(QosClass::Interactive), 2);
        assert_eq!(q.class_len(QosClass::BestEffort), 0);
    }
}
