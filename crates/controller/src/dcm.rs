//! Dynamically Configurable Memory: per-write programmable retention.
//!
//! §4, "Dynamically Configurable Memory (DCM)": "the memory controller would
//! support writing at different durations and energies, allowing retention
//! time to be programmed at runtime", with the cluster-level control plane
//! "right provisioning the MRM to the workload".
//!
//! [`DcmController`] realizes the mechanism: writes carry a lifetime hint,
//! the controller quantizes it to a [`RetentionClass`] (hardware supports a
//! small ladder of write-pulse settings, not a continuum), programs the
//! device at that class's energy point, and accounts energy/endurance per
//! class so experiments can compare against fixed-retention provisioning.

use mrm_device::device::{DeviceError, MemoryDevice, OpResult};
use mrm_device::energy::EnergyBreakdown;
use mrm_faults::{FaultModel, FaultStats, ReadFaults, RecoveryAction};
use mrm_sim::time::{SimDuration, SimTime};
use mrm_telemetry::TelemetrySink;
use serde::{Deserialize, Serialize};

/// The hardware retention ladder: the write-pulse settings a DCM device
/// exposes (§4 — "writing at different durations and energies").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RetentionClass {
    /// 30 seconds — activations, speculative state.
    Seconds30,
    /// 10 minutes — short interactive contexts.
    Minutes10,
    /// 1 hour — typical conversation contexts.
    Hours1,
    /// 12 hours — long-lived contexts, prefix caches.
    Hours12,
    /// 7 days — model weights between deployments.
    Days7,
}

impl RetentionClass {
    /// The retention duration this class programs.
    pub fn duration(self) -> SimDuration {
        match self {
            RetentionClass::Seconds30 => SimDuration::from_secs(30),
            RetentionClass::Minutes10 => SimDuration::from_mins(10),
            RetentionClass::Hours1 => SimDuration::from_hours(1),
            RetentionClass::Hours12 => SimDuration::from_hours(12),
            RetentionClass::Days7 => SimDuration::from_days(7),
        }
    }

    /// All classes, shortest first.
    pub fn ladder() -> [RetentionClass; 5] {
        [
            RetentionClass::Seconds30,
            RetentionClass::Minutes10,
            RetentionClass::Hours1,
            RetentionClass::Hours12,
            RetentionClass::Days7,
        ]
    }

    /// The cheapest class whose retention covers `lifetime` (with the given
    /// safety margin multiplier ≥ 1). Falls back to the longest class for
    /// lifetimes beyond the ladder — the control plane must then refresh.
    pub fn for_lifetime(lifetime: SimDuration, margin: f64) -> RetentionClass {
        let need = lifetime.mul_f64(margin.max(1.0));
        for c in Self::ladder() {
            if c.duration() >= need {
                return c;
            }
        }
        RetentionClass::Days7
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            RetentionClass::Seconds30 => "30s",
            RetentionClass::Minutes10 => "10m",
            RetentionClass::Hours1 => "1h",
            RetentionClass::Hours12 => "12h",
            RetentionClass::Days7 => "7d",
        }
    }
}

/// Per-class accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Writes issued at this class.
    pub writes: u64,
    /// Bytes written at this class.
    pub bytes: u64,
}

/// A DCM front-end over a retention-tunable device.
///
/// # Examples
///
/// ```
/// use mrm_controller::dcm::{DcmController, RetentionClass};
/// use mrm_device::device::MemoryDevice;
/// use mrm_device::tech::presets;
/// use mrm_sim::time::{SimDuration, SimTime};
///
/// let mut dcm = DcmController::new(MemoryDevice::new(presets::mrm_days()), 1.2);
/// // A KV vector expected to live ~5 minutes gets the 10-minute class.
/// let (class, _res) = dcm
///     .write(SimTime::ZERO, 0, 4096, SimDuration::from_mins(5))
///     .unwrap();
/// assert_eq!(class, RetentionClass::Minutes10);
/// ```
#[derive(Clone, Debug)]
pub struct DcmController {
    device: MemoryDevice,
    margin: f64,
    per_class: [ClassStats; 5],
    /// Write-pulse reconfigurations: consecutive writes landing on
    /// different classes. DCM hardware retunes the write circuit when the
    /// class changes, so this is the §4 "programming retention at runtime"
    /// event count.
    reconfigs: u64,
    last_class: Option<RetentionClass>,
    /// Optional fault-injection layer for checked reads.
    faults: Option<FaultModel>,
    /// Checked reads that needed a retry.
    read_retries: u64,
    /// Margin derates applied after persistent uncorrectables.
    derates: u64,
}

impl DcmController {
    /// Creates a DCM controller with a lifetime safety margin (e.g. 1.2 =
    /// program 20% longer than the hint).
    pub fn new(device: MemoryDevice, margin: f64) -> Self {
        DcmController {
            device,
            margin: margin.max(1.0),
            per_class: Default::default(),
            reconfigs: 0,
            last_class: None,
            faults: None,
            read_retries: 0,
            derates: 0,
        }
    }

    /// Attaches a fault-injection layer; [`DcmController::read_checked`]
    /// runs reads through it and derates the provisioning margin on
    /// persistent uncorrectables.
    pub fn attach_faults(&mut self, model: FaultModel) {
        self.faults = Some(model);
    }

    /// Cumulative fault-layer totals, if a layer is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// The current lifetime safety margin (grows on derates).
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Checked reads that needed a retry.
    pub fn read_retries(&self) -> u64 {
        self.read_retries
    }

    /// Margin derates applied after persistent uncorrectables.
    pub fn derates(&self) -> u64 {
        self.derates
    }

    /// The underlying device.
    pub fn device(&self) -> &MemoryDevice {
        &self.device
    }

    /// Accumulated energy.
    pub fn energy(&self) -> EnergyBreakdown {
        self.device.energy()
    }

    /// Per-class statistics, indexed in ladder order.
    pub fn class_stats(&self) -> [(RetentionClass, ClassStats); 5] {
        let ladder = RetentionClass::ladder();
        [
            (ladder[0], self.per_class[0]),
            (ladder[1], self.per_class[1]),
            (ladder[2], self.per_class[2]),
            (ladder[3], self.per_class[3]),
            (ladder[4], self.per_class[4]),
        ]
    }

    fn class_index(c: RetentionClass) -> usize {
        RetentionClass::ladder()
            .iter()
            .position(|&x| x == c)
            .expect("RetentionClass::ladder() covers every class")
    }

    /// Records per-class accounting and the reconfig edge for one write.
    fn account(&mut self, class: RetentionClass, len: u64) {
        let s = &mut self.per_class[Self::class_index(class)];
        s.writes += 1;
        s.bytes += len;
        if self.last_class.is_some_and(|prev| prev != class) {
            self.reconfigs += 1;
        }
        self.last_class = Some(class);
    }

    /// Number of write-pulse reconfigurations so far (consecutive writes
    /// at different retention classes).
    pub fn reconfigs(&self) -> u64 {
        self.reconfigs
    }

    /// Writes with a lifetime hint: the controller picks the cheapest
    /// covering class and programs the device at that class's energy point.
    /// Returns the class chosen and the device result.
    pub fn write(
        &mut self,
        now: SimTime,
        addr: u64,
        len: u64,
        lifetime_hint: SimDuration,
    ) -> Result<(RetentionClass, OpResult), DeviceError> {
        let class = RetentionClass::for_lifetime(lifetime_hint, self.margin);
        let res = self
            .device
            .write_with_retention(now, addr, len, class.duration())?;
        self.account(class, len);
        Ok((class, res))
    }

    /// Writes at a fixed class regardless of lifetime — the non-DCM
    /// baseline ("worst-case provisioning").
    pub fn write_fixed(
        &mut self,
        now: SimTime,
        addr: u64,
        len: u64,
        class: RetentionClass,
    ) -> Result<OpResult, DeviceError> {
        let res = self
            .device
            .write_with_retention(now, addr, len, class.duration())?;
        self.account(class, len);
        Ok(res)
    }

    /// Reads through to the device.
    pub fn read(&mut self, now: SimTime, addr: u64, len: u64) -> Result<OpResult, DeviceError> {
        self.device.read(now, addr, len)
    }

    /// Reads through the fault layer at the device's age-derived RBER. On
    /// an uncorrectable outcome the recovery is:
    ///
    /// 1. **retry** — one re-read (transient decode failures clear);
    /// 2. **derate** — a persistent UE means the cells hold retention
    ///    worse than the class ladder promised, so the controller widens
    ///    its safety margin by 25% (capped at 4×): *future* writes are
    ///    programmed at longer-retention classes. The failed read itself
    ///    is reported as [`RecoveryAction::Retired`] — this layer cannot
    ///    restore the data, the caller must re-fetch or recompute.
    ///
    /// Without an attached fault layer this is [`DcmController::read`].
    pub fn read_checked(
        &mut self,
        now: SimTime,
        addr: u64,
        len: u64,
    ) -> Result<(OpResult, ReadFaults, RecoveryAction), DeviceError> {
        let mut op = self.device.read(now, addr, len)?;
        let Some(model) = self.faults.as_mut() else {
            return Ok((op, ReadFaults::default(), RecoveryAction::None));
        };
        let mut faults = model.inject_read(len, op.rber);
        if !faults.uncorrectable() {
            return Ok((op, faults, RecoveryAction::None));
        }
        self.read_retries += 1;
        op = self.device.read(now, addr, len)?;
        let model = self.faults.as_mut().expect("fault layer attached");
        let again = model.inject_read(len, op.rber);
        let cleared = !again.uncorrectable();
        faults.merge(&again);
        if cleared {
            return Ok((op, faults, RecoveryAction::Retried));
        }
        self.derates += 1;
        self.margin = (self.margin * 1.25).min(4.0);
        Ok((op, faults, RecoveryAction::Retired))
    }

    /// Per-class constant metric names (counter interning needs `'static`).
    fn class_counters(c: RetentionClass) -> (&'static str, &'static str) {
        match c {
            RetentionClass::Seconds30 => ("dcm_writes_30s", "dcm_bytes_30s"),
            RetentionClass::Minutes10 => ("dcm_writes_10m", "dcm_bytes_10m"),
            RetentionClass::Hours1 => ("dcm_writes_1h", "dcm_bytes_1h"),
            RetentionClass::Hours12 => ("dcm_writes_12h", "dcm_bytes_12h"),
            RetentionClass::Days7 => ("dcm_writes_7d", "dcm_bytes_7d"),
        }
    }

    /// Publishes the per-class write ledger and the reconfig count into
    /// `sink`. Pull-style and idempotent (totals via
    /// [`TelemetrySink::count_to`]).
    pub fn emit_telemetry(&self, sink: &mut dyn TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        for (class, stats) in self.class_stats() {
            let (writes, bytes) = Self::class_counters(class);
            sink.count_to(writes, stats.writes);
            sink.count_to(bytes, stats.bytes);
        }
        sink.count_to("dcm_reconfigs", self.reconfigs);
        sink.count_to("dcm_read_retries", self.read_retries);
        sink.count_to("dcm_derates", self.derates);
        sink.gauge("dcm_margin", self.margin);
        if let Some(fs) = self.fault_stats() {
            sink.count_to("dcm_fault_raw_flips", fs.raw_flips);
            sink.count_to("dcm_fault_corrected", fs.corrected);
            sink.count_to("dcm_fault_detected_ue", fs.detected_ue);
            sink.count_to("dcm_fault_miscorrected", fs.miscorrected);
            sink.count_to("dcm_fault_silent", fs.silent);
            sink.gauge("dcm_fault_raw_ber", fs.raw_ber());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_device::tech::presets;
    use mrm_sim::units::MIB;

    fn dcm() -> DcmController {
        let mut tech = presets::mrm_days();
        tech.capacity_bytes = 256 * MIB;
        DcmController::new(MemoryDevice::new(tech), 1.2)
    }

    #[test]
    fn class_ladder_is_sorted() {
        let ladder = RetentionClass::ladder();
        for w in ladder.windows(2) {
            assert!(w[0].duration() < w[1].duration());
        }
    }

    #[test]
    fn class_selection_covers_lifetime_with_margin() {
        // 55 minutes × 1.2 margin = 66 min > 1h → needs 12h class.
        let c = RetentionClass::for_lifetime(SimDuration::from_mins(55), 1.2);
        assert_eq!(c, RetentionClass::Hours12);
        // 45 minutes × 1.2 = 54 min ≤ 1h → 1h class.
        let c = RetentionClass::for_lifetime(SimDuration::from_mins(45), 1.2);
        assert_eq!(c, RetentionClass::Hours1);
        // Beyond the ladder: longest class.
        let c = RetentionClass::for_lifetime(SimDuration::from_days(30), 1.0);
        assert_eq!(c, RetentionClass::Days7);
        // Tiny lifetimes: shortest class.
        let c = RetentionClass::for_lifetime(SimDuration::from_secs(1), 1.0);
        assert_eq!(c, RetentionClass::Seconds30);
    }

    #[test]
    fn margin_below_one_is_clamped() {
        let c = RetentionClass::for_lifetime(SimDuration::from_mins(9), 0.1);
        assert_eq!(c, RetentionClass::Minutes10);
    }

    #[test]
    fn dcm_saves_write_energy_versus_fixed_worst_case() {
        // The §4 DCM claim: right-provisioned retention beats worst-case.
        let mut right = dcm();
        let mut worst = dcm();
        let lifetimes = [
            SimDuration::from_secs(10),
            SimDuration::from_mins(5),
            SimDuration::from_mins(30),
            SimDuration::from_hours(6),
        ];
        for (i, &lt) in lifetimes.iter().enumerate() {
            let addr = i as u64 * MIB;
            right.write(SimTime::ZERO, addr, MIB, lt).unwrap();
            worst
                .write_fixed(SimTime::ZERO, addr, MIB, RetentionClass::Days7)
                .unwrap();
        }
        let saved = 1.0 - right.energy().write_j / worst.energy().write_j;
        assert!(
            saved > 0.10,
            "DCM must save material write energy, saved {saved}"
        );
    }

    #[test]
    fn per_class_accounting() {
        let mut d = dcm();
        d.write(SimTime::ZERO, 0, 100, SimDuration::from_secs(5))
            .unwrap();
        d.write(SimTime::ZERO, 4096, 200, SimDuration::from_secs(5))
            .unwrap();
        d.write(SimTime::ZERO, 8192, 300, SimDuration::from_hours(10))
            .unwrap();
        let stats = d.class_stats();
        assert_eq!(stats[0].1.writes, 2); // Seconds30
        assert_eq!(stats[0].1.bytes, 300);
        assert_eq!(stats[3].1.writes, 1); // Hours12
        assert_eq!(stats[3].1.bytes, 300);
    }

    #[test]
    fn retention_stamp_respected_end_to_end() {
        let mut d = dcm();
        d.write(SimTime::ZERO, 0, MIB, SimDuration::from_mins(5))
            .unwrap();
        // 10-minute class: expired by 20 minutes.
        let r = d
            .read(SimTime::ZERO + SimDuration::from_mins(20), 0, MIB)
            .unwrap();
        assert!(r.expired);
        // But fine at 8 minutes.
        let mut d2 = dcm();
        d2.write(SimTime::ZERO, 0, MIB, SimDuration::from_mins(5))
            .unwrap();
        let r = d2
            .read(SimTime::ZERO + SimDuration::from_mins(8), 0, MIB)
            .unwrap();
        assert!(!r.expired);
    }

    #[test]
    fn labels() {
        assert_eq!(RetentionClass::Hours12.label(), "12h");
        assert_eq!(RetentionClass::Days7.label(), "7d");
    }

    #[test]
    fn reconfigs_count_class_edges() {
        let mut d = dcm();
        d.write_fixed(SimTime::ZERO, 0, 100, RetentionClass::Days7)
            .unwrap();
        d.write_fixed(SimTime::ZERO, 4096, 100, RetentionClass::Days7)
            .unwrap();
        assert_eq!(d.reconfigs(), 0, "same class twice: no retune");
        d.write(SimTime::ZERO, 8192, 100, SimDuration::from_secs(5))
            .unwrap(); // Days7 → Seconds30
        d.write(SimTime::ZERO, 12288, 100, SimDuration::from_secs(5))
            .unwrap(); // stays
        d.write_fixed(SimTime::ZERO, 16384, 100, RetentionClass::Hours1)
            .unwrap(); // Seconds30 → Hours1
        assert_eq!(d.reconfigs(), 2);
    }

    #[test]
    fn read_checked_fresh_data_needs_no_recovery() {
        use mrm_faults::FaultConfig;
        let mut d = dcm();
        d.attach_faults(FaultModel::new(FaultConfig::mrm(), 17));
        d.write(SimTime::ZERO, 0, MIB, SimDuration::from_hours(6))
            .unwrap();
        let (op, faults, action) = d
            .read_checked(SimTime::ZERO + SimDuration::from_mins(1), 0, MIB)
            .unwrap();
        assert!(!op.expired);
        assert_eq!(action, RecoveryAction::None);
        assert!(!faults.uncorrectable());
        assert_eq!(d.derates(), 0);
        assert!((d.margin() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn persistent_ue_derates_the_margin() {
        use mrm_faults::FaultConfig;
        let mut d = dcm();
        d.attach_faults(FaultModel::new(FaultConfig::mrm(), 23));
        // 10-minute class, read far past expiry: RBER saturates and the
        // UE persists through the retry, forcing a derate.
        d.write(SimTime::ZERO, 0, 4 * MIB, SimDuration::from_mins(5))
            .unwrap();
        let (op, faults, action) = d
            .read_checked(SimTime::ZERO + SimDuration::from_mins(60), 0, 4 * MIB)
            .unwrap();
        assert!(op.expired);
        assert!(faults.uncorrectable());
        assert_eq!(action, RecoveryAction::Retired);
        assert_eq!(d.derates(), 1);
        assert!((d.margin() - 1.5).abs() < 1e-12, "1.2 × 1.25 = 1.5");
        // The derated controller now rounds the same lifetime hint up to
        // a longer class: 45 min × 1.5 = 67.5 min > 1h → 12h.
        let (class, _) = d
            .write(SimTime::ZERO, 8 * MIB, 100, SimDuration::from_mins(45))
            .unwrap();
        assert_eq!(class, RetentionClass::Hours12);
        // Margin growth saturates at 4×.
        for _ in 0..20 {
            d.write(SimTime::ZERO, 0, 4 * MIB, SimDuration::from_mins(5))
                .unwrap();
            d.read_checked(SimTime::ZERO + SimDuration::from_mins(60), 0, 4 * MIB)
                .unwrap();
        }
        assert!(d.margin() <= 4.0 + 1e-12);
    }

    #[test]
    fn fault_telemetry_is_published() {
        use mrm_faults::FaultConfig;
        use mrm_telemetry::SimTelemetry;
        let mut d = dcm();
        d.attach_faults(FaultModel::new(FaultConfig::mrm(), 23));
        d.write(SimTime::ZERO, 0, 4 * MIB, SimDuration::from_mins(5))
            .unwrap();
        d.read_checked(SimTime::ZERO + SimDuration::from_mins(60), 0, 4 * MIB)
            .unwrap();
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        d.emit_telemetry(&mut t);
        let r = t.registry();
        assert_eq!(r.counter_value("dcm_read_retries"), Some(d.read_retries()));
        assert_eq!(r.counter_value("dcm_derates"), Some(d.derates()));
        assert!((r.gauge_value("dcm_margin").unwrap() - d.margin()).abs() < 1e-12);
        let fs = *d.fault_stats().unwrap();
        assert_eq!(r.counter_value("dcm_fault_raw_flips"), Some(fs.raw_flips));
    }

    #[test]
    fn telemetry_publishes_class_ledger() {
        use mrm_telemetry::{SimTelemetry, TelemetrySink as _};
        let mut d = dcm();
        d.write(SimTime::ZERO, 0, 300, SimDuration::from_secs(5))
            .unwrap();
        d.write_fixed(SimTime::ZERO, 4096, 200, RetentionClass::Days7)
            .unwrap();
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        d.emit_telemetry(&mut t);
        d.emit_telemetry(&mut t); // idempotent republish
        let r = t.registry();
        assert_eq!(r.counter_value("dcm_writes_30s"), Some(1));
        assert_eq!(r.counter_value("dcm_bytes_30s"), Some(300));
        assert_eq!(r.counter_value("dcm_writes_7d"), Some(1));
        assert_eq!(r.counter_value("dcm_reconfigs"), Some(1));
        // A disabled sink costs nothing and records nothing.
        let mut null = mrm_telemetry::NullSink;
        d.emit_telemetry(&mut null);
        assert!(!null.enabled());
    }
}
