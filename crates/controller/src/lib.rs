//! # `mrm-controller` — memory controllers across the retention spectrum
//!
//! §3 of the MRM paper frames housekeeping as the tax of mismatched
//! retention: "DRAM's retention is too short, requiring frequent refreshes.
//! Flash retention is too long, which is achieved at the expense of
//! endurance, requiring FTL mechanisms (wear levelling, garbage
//! collection)." §4 then proposes what replaces them: a **lightweight
//! block-level MRM controller** whose refresh and wear-levelling are "left
//! up to a software control plane higher up in the stack", and **Dynamically
//! Configurable Memory** where retention is programmed per write.
//!
//! One module per point on that spectrum:
//!
//! * [`dram`] — DRAM/HBM controller with bank scheduling and mandatory
//!   periodic refresh (the short-retention tax, measurable in both energy
//!   and stolen bandwidth).
//! * [`ftl`] — a Flash translation layer with page mapping, garbage
//!   collection and wear levelling (the long-retention tax: write
//!   amplification).
//! * [`mrm_block`] — the paper's proposed zoned, append-oriented MRM
//!   controller with a retention-deadline registry and no device-side
//!   housekeeping.
//! * [`dcm`] — per-write programmable retention on top of the block
//!   controller.
//! * [`sched`] — shared request-queue machinery.

pub mod dcm;
pub mod dram;
pub mod ftl;
pub mod mrm_block;
pub mod sched;

pub use dcm::{DcmController, RetentionClass};
pub use dram::DramController;
pub use ftl::{Ftl, FtlConfig, WearLeveling};
pub use mrm_block::{CheckedRead, MrmBlockController, ZoneId, ZoneState};
