//! Software wear-levelling evaluation: device lifetime under KV write load.
//!
//! §3 sizes the endurance requirement; this module answers the follow-on
//! systems question (E10): given an MRM part with finite endurance and a
//! sustained KV-cache append load, how many years does the device last —
//! and how much does control-plane wear levelling (the §4 "left up to a
//! software control plane" design) buy over naive zone reuse?

use mrm_controller::mrm_block::{MrmBlockController, ZoneId};
use mrm_device::device::MemoryDevice;
use mrm_device::tech::Technology;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_telemetry::{NullSink, TelemetrySink};
use serde::{Deserialize, Serialize};

/// Zone-allocation policy for the wear experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WearPolicy {
    /// Always reuse the lowest-numbered free zone (no wear levelling):
    /// a hot subset of zones absorbs the whole write load.
    LowestNumbered,
    /// Open the least-worn free zone (software wear levelling).
    LeastWorn,
}

impl WearPolicy {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            WearPolicy::LowestNumbered => "no-WL",
            WearPolicy::LeastWorn => "least-worn",
        }
    }
}

/// Result of a wear simulation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WearReport {
    /// Policy evaluated.
    pub policy: WearPolicy,
    /// Total bytes written during the simulated window.
    pub bytes_written: u64,
    /// Highest per-zone write-cycle count observed.
    pub max_zone_cycles: u64,
    /// Mean per-zone write-cycle count.
    pub mean_zone_cycles: f64,
    /// Projected device lifetime in years: the time until the *hottest*
    /// zone exhausts the cell endurance budget at the observed rate.
    pub projected_lifetime_years: f64,
}

/// Simulates a sustained KV-append churn: streams of `stream_bytes` are
/// written, live for a while, and are dropped, over a simulated window of
/// `window`; zone reuse follows `policy`. The write rate is
/// `write_bytes_per_s`.
///
/// The simulation runs a scaled-down device (the zone-reuse pattern, not
/// the absolute capacity, determines relative wear) and projects lifetime
/// from cycles-per-simulated-second on the hottest zone.
///
/// # Panics
///
/// Panics if the configuration cannot fit two streams in the device.
pub fn simulate_wear(
    tech: Technology,
    zone_bytes: u64,
    stream_bytes: u64,
    write_bytes_per_s: f64,
    window: SimDuration,
    policy: WearPolicy,
) -> WearReport {
    simulate_wear_with_telemetry(
        tech,
        zone_bytes,
        stream_bytes,
        write_bytes_per_s,
        window,
        policy,
        &mut NullSink,
    )
}

/// [`simulate_wear`] with a telemetry sink attached. Each churn step counts
/// the bytes written; at every due snapshot boundary the current peak/mean
/// zone write-cycle counts are published as gauges; the final per-zone wear
/// distribution goes into the `zone_write_cycles` histogram. The simulation
/// draws no randomness, so attaching a sink cannot change the report.
///
/// # Panics
///
/// Panics if the configuration cannot fit two streams in the device.
#[allow(clippy::too_many_arguments)]
pub fn simulate_wear_with_telemetry(
    tech: Technology,
    zone_bytes: u64,
    stream_bytes: u64,
    write_bytes_per_s: f64,
    window: SimDuration,
    policy: WearPolicy,
    sink: &mut dyn TelemetrySink,
) -> WearReport {
    let endurance = tech.endurance;
    let capacity = tech.capacity_bytes;
    let zones_per_stream = stream_bytes.div_ceil(zone_bytes).max(1);
    assert!(
        capacity / zone_bytes >= 2 * zones_per_stream,
        "device too small for churn simulation"
    );
    let mut ctrl = MrmBlockController::new(MemoryDevice::new(tech), zone_bytes);
    let retention = SimDuration::from_hours(12);

    // Live streams cycle: keep the device about half full; each step drops
    // the oldest stream and writes a new one.
    let max_live = (capacity / 2 / stream_bytes).max(1) as usize;
    let mut live: std::collections::VecDeque<Vec<ZoneId>> = std::collections::VecDeque::new();

    let mut now = SimTime::ZERO;
    let step = SimDuration::from_secs_f64(stream_bytes as f64 / write_bytes_per_s);
    let mut bytes_written = 0u64;

    while now.duration_since(SimTime::ZERO) < window {
        if live.len() >= max_live {
            let retired = live
                .pop_front()
                .expect("live stream queue is non-empty when at max_live");
            for z in retired {
                ctrl.reset_zone(z).expect("reset");
            }
        }
        let mut zones = Vec::with_capacity(zones_per_stream as usize);
        let mut remaining = stream_bytes;
        while remaining > 0 {
            let z = match policy {
                WearPolicy::LowestNumbered => ctrl.open_zone().expect("open"),
                WearPolicy::LeastWorn => ctrl.open_zone_least_worn().expect("open"),
            };
            let chunk = remaining.min(zone_bytes);
            ctrl.append(now, z, chunk, retention).expect("append");
            ctrl.finish_zone(z).ok();
            zones.push(z);
            remaining -= chunk;
        }
        live.push_back(zones);
        bytes_written += stream_bytes;
        now += step;
        sink.count("wear_bytes_written", stream_bytes);
        while let Some(at) = sink.snapshot_due(now) {
            let (max_c, mean_c) = zone_cycle_stats(&ctrl);
            sink.gauge("wear_max_zone_cycles", max_c as f64);
            sink.gauge("wear_mean_zone_cycles", mean_c);
            sink.snapshot(at);
        }
    }

    let (max_cycles, mean_cycles) = zone_cycle_stats(&ctrl);
    if sink.enabled() {
        for i in 0..ctrl.zone_count() {
            let c = ctrl
                .write_cycles(ZoneId(i as u32))
                .expect("zone index is within zone_count");
            sink.observe("zone_write_cycles", c as f64);
        }
    }
    let elapsed_s = window.as_secs_f64();
    let hottest_cycles_per_s = max_cycles as f64 / elapsed_s;
    let projected_lifetime_years = if hottest_cycles_per_s > 0.0 {
        endurance / hottest_cycles_per_s / (365.0 * 86_400.0)
    } else {
        f64::INFINITY
    };

    WearReport {
        policy,
        bytes_written,
        max_zone_cycles: max_cycles,
        mean_zone_cycles: mean_cycles,
        projected_lifetime_years,
    }
}

/// Peak and mean per-zone write-cycle counts across the whole device.
fn zone_cycle_stats(ctrl: &MrmBlockController) -> (u64, f64) {
    let n = ctrl.zone_count();
    let mut max_cycles = 0u64;
    let mut total_cycles = 0u64;
    for i in 0..n {
        let c = ctrl
            .write_cycles(ZoneId(i as u32))
            .expect("zone index is within zone_count");
        max_cycles = max_cycles.max(c);
        total_cycles += c;
    }
    (max_cycles, total_cycles as f64 / n.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_device::tech::presets;
    use mrm_sim::units::MIB;

    fn small_mrm() -> Technology {
        let mut t = presets::mrm_hours();
        t.capacity_bytes = 256 * MIB;
        t
    }

    fn run(policy: WearPolicy) -> WearReport {
        simulate_wear(
            small_mrm(),
            4 * MIB,  // zones
            16 * MIB, // streams
            64.0 * MIB as f64,
            SimDuration::from_secs(600),
            policy,
        )
    }

    #[test]
    fn wear_levelling_extends_lifetime() {
        let naive = run(WearPolicy::LowestNumbered);
        let levelled = run(WearPolicy::LeastWorn);
        assert!(naive.bytes_written == levelled.bytes_written);
        assert!(
            levelled.max_zone_cycles < naive.max_zone_cycles,
            "least-worn must reduce peak wear: {} vs {}",
            levelled.max_zone_cycles,
            naive.max_zone_cycles
        );
        assert!(
            levelled.projected_lifetime_years > 1.5 * naive.projected_lifetime_years,
            "lifetime: {} vs {}",
            levelled.projected_lifetime_years,
            naive.projected_lifetime_years
        );
    }

    #[test]
    fn levelled_wear_is_near_uniform() {
        let r = run(WearPolicy::LeastWorn);
        // Peak within 3× of mean under least-worn (half the zones are
        // parked in live streams at any instant).
        assert!(
            (r.max_zone_cycles as f64) < 3.0 * r.mean_zone_cycles.max(1.0),
            "max {} mean {}",
            r.max_zone_cycles,
            r.mean_zone_cycles
        );
    }

    #[test]
    fn telemetry_does_not_change_report() {
        let base = run(WearPolicy::LeastWorn);
        let mut tele = mrm_telemetry::SimTelemetry::new(SimDuration::from_secs(60));
        let traced = simulate_wear_with_telemetry(
            small_mrm(),
            4 * MIB,
            16 * MIB,
            64.0 * MIB as f64,
            SimDuration::from_secs(600),
            WearPolicy::LeastWorn,
            &mut tele,
        );
        assert_eq!(base.bytes_written, traced.bytes_written);
        assert_eq!(base.max_zone_cycles, traced.max_zone_cycles);
        // Telemetry must be a pure observer: bit-identical results.
        assert_eq!(
            base.mean_zone_cycles.to_bits(),
            traced.mean_zone_cycles.to_bits()
        );
        assert_eq!(
            base.projected_lifetime_years.to_bits(),
            traced.projected_lifetime_years.to_bits()
        );
        // 600 s window pumped at 60 s → boundaries 60..=600.
        assert_eq!(tele.snapshots().len(), 10);
        assert_eq!(
            tele.registry().counter_value("wear_bytes_written"),
            Some(traced.bytes_written)
        );
        let wear = tele
            .registry()
            .histogram_by_name("zone_write_cycles")
            .expect("wear histogram");
        assert!(wear.count() > 0);
    }

    #[test]
    fn report_accounting() {
        let r = run(WearPolicy::LeastWorn);
        // 600 s at 64 MiB/s = 37.5 GiB in 16 MiB streams.
        assert!(r.bytes_written > 30 * 1024 * MIB);
        assert!(r.projected_lifetime_years.is_finite());
        assert!(r.projected_lifetime_years > 0.0);
    }
}
