//! Placement policies: which tier each data class lands in.
//!
//! The §4 layout argument: MRM is "unlikely to be a one-size-fits-all
//! solution, and will co-exist with other types of memory, such as HBM for
//! write-heavy data structures (e.g., activations), and LPDDR as a slower
//! tier." The policies here are the systems compared in the cluster
//! experiments (T5/E9): the HBM-only status quo, the HBM+LPDDR cost
//! mitigation the paper argues is insufficient, and HBM+MRM with fixed or
//! dynamically-configured retention.

use mrm_sim::time::SimDuration;
use mrm_workload::access::DataClass;
use serde::{Deserialize, Serialize};

use crate::tier::TierKind;

/// A data-placement policy over the §4 tier set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Everything in HBM (today's accelerators).
    HbmOnly,
    /// Weights and activations in HBM; KV caches in the LPDDR cold tier
    /// (the "lower-cost, lower-throughput LPDDR for cooler data" strawman
    /// of §3).
    HbmLpddr,
    /// Weights and KV caches in MRM at its native (fixed) retention;
    /// activations in HBM.
    HbmMrm,
    /// As [`PlacementPolicy::HbmMrm`], with per-write retention classes
    /// chosen from lifetime hints (DCM, §4).
    HbmMrmDcm,
}

impl PlacementPolicy {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::HbmOnly => "HBM-only",
            PlacementPolicy::HbmLpddr => "HBM+LPDDR",
            PlacementPolicy::HbmMrm => "HBM+MRM",
            PlacementPolicy::HbmMrmDcm => "HBM+MRM(DCM)",
        }
    }

    /// The tier a data class is placed in under this policy.
    pub fn tier_for(self, class: DataClass) -> TierKind {
        match (self, class) {
            (PlacementPolicy::HbmOnly, _) => TierKind::Hbm,
            (PlacementPolicy::HbmLpddr, DataClass::KvCache) => TierKind::Lpddr,
            (PlacementPolicy::HbmLpddr, _) => TierKind::Hbm,
            (PlacementPolicy::HbmMrm | PlacementPolicy::HbmMrmDcm, DataClass::Activation) => {
                TierKind::Hbm
            }
            (PlacementPolicy::HbmMrm | PlacementPolicy::HbmMrmDcm, _) => TierKind::Mrm,
        }
    }

    /// Whether the policy programs retention per write.
    pub fn uses_dcm(self) -> bool {
        matches!(self, PlacementPolicy::HbmMrmDcm)
    }

    /// Whether the policy has an MRM tier at all.
    pub fn uses_mrm(self) -> bool {
        matches!(self, PlacementPolicy::HbmMrm | PlacementPolicy::HbmMrmDcm)
    }

    /// The retention target a write with `lifetime_hint` is programmed at.
    ///
    /// Shim over [`mrm_control::registry::retention_decision`], which owns
    /// the policy: DRAM-family tiers refresh themselves, so retention is
    /// their native interval; fixed-retention MRM uses `native_retention`;
    /// DCM quantizes the hint onto the retention-class ladder.
    pub fn retention_for(
        self,
        class: DataClass,
        lifetime_hint: SimDuration,
        native_retention: SimDuration,
        margin: f64,
    ) -> SimDuration {
        mrm_control::registry::retention_decision(
            self.tier_for(class) == TierKind::Mrm,
            self.uses_dcm(),
            lifetime_hint,
            native_retention,
            margin,
        )
    }

    /// All policies, in experiment order.
    pub fn all() -> [PlacementPolicy; 4] {
        [
            PlacementPolicy::HbmOnly,
            PlacementPolicy::HbmLpddr,
            PlacementPolicy::HbmMrm,
            PlacementPolicy::HbmMrmDcm,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_only_places_everything_in_hbm() {
        for c in [
            DataClass::Weights,
            DataClass::KvCache,
            DataClass::Activation,
        ] {
            assert_eq!(PlacementPolicy::HbmOnly.tier_for(c), TierKind::Hbm);
        }
    }

    #[test]
    fn mrm_policies_keep_activations_in_hbm() {
        // §4: "HBM for write-heavy data structures (e.g., activations)".
        for p in [PlacementPolicy::HbmMrm, PlacementPolicy::HbmMrmDcm] {
            assert_eq!(p.tier_for(DataClass::Activation), TierKind::Hbm);
            assert_eq!(p.tier_for(DataClass::Weights), TierKind::Mrm);
            assert_eq!(p.tier_for(DataClass::KvCache), TierKind::Mrm);
        }
    }

    #[test]
    fn lpddr_policy_offloads_kv() {
        let p = PlacementPolicy::HbmLpddr;
        assert_eq!(p.tier_for(DataClass::KvCache), TierKind::Lpddr);
        assert_eq!(p.tier_for(DataClass::Weights), TierKind::Hbm);
    }

    #[test]
    fn dcm_flag() {
        assert!(PlacementPolicy::HbmMrmDcm.uses_dcm());
        assert!(!PlacementPolicy::HbmMrm.uses_dcm());
        assert!(PlacementPolicy::HbmMrm.uses_mrm());
        assert!(!PlacementPolicy::HbmLpddr.uses_mrm());
    }

    #[test]
    fn retention_selection() {
        let native = SimDuration::from_hours(12);
        // Fixed MRM: native retention regardless of hint.
        let r = PlacementPolicy::HbmMrm.retention_for(
            DataClass::KvCache,
            SimDuration::from_mins(5),
            native,
            1.25,
        );
        assert_eq!(r, native);
        // DCM: quantized to the ladder.
        let r = PlacementPolicy::HbmMrmDcm.retention_for(
            DataClass::KvCache,
            SimDuration::from_mins(5),
            native,
            1.25,
        );
        assert_eq!(r, SimDuration::from_mins(10));
        // DRAM tiers: native refresh interval.
        let r = PlacementPolicy::HbmOnly.retention_for(
            DataClass::KvCache,
            SimDuration::from_mins(5),
            SimDuration::from_millis(32),
            1.25,
        );
        assert_eq!(r, SimDuration::from_millis(32));
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::BTreeSet<_> =
            PlacementPolicy::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
