//! Expected-lifetime estimation per data class.
//!
//! §4: "Fine-grained understanding of lifetime and access patterns of the
//! data will be required to lay out the data." The estimator turns what the
//! serving stack already knows — expected output length, decode rate,
//! follow-up caching policy, model deployment cadence — into the lifetime
//! hints that drive DCM retention classes and placement.

use mrm_sim::time::SimDuration;
use mrm_workload::access::DataClass;
use serde::{Deserialize, Serialize};

/// Lifetime estimator parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LifetimeEstimator {
    /// Expected decode rate per request, tokens/second.
    pub decode_tokens_per_s: f64,
    /// How long a completed context's KV cache is kept for potential
    /// follow-up turns.
    pub followup_window: SimDuration,
    /// Expected time between model (weight) redeployments.
    pub weight_deployment_period: SimDuration,
    /// Duration of one forward pass (activation lifetime).
    pub forward_pass: SimDuration,
}

impl LifetimeEstimator {
    /// Defaults matching the cluster simulation: ~30 tokens/s/request
    /// decode, 10-minute follow-up caching, daily weight refresh, 50 ms
    /// forward pass.
    pub fn default_serving() -> Self {
        LifetimeEstimator {
            decode_tokens_per_s: 30.0,
            followup_window: SimDuration::from_mins(10),
            weight_deployment_period: SimDuration::from_days(1),
            forward_pass: SimDuration::from_millis(50),
        }
    }

    /// Expected remaining lifetime of a KV cache with `remaining_tokens`
    /// still to decode: the decode tail plus the follow-up window.
    pub fn kv_lifetime(&self, remaining_tokens: u32) -> SimDuration {
        let decode_tail =
            SimDuration::from_secs_f64(f64::from(remaining_tokens) / self.decode_tokens_per_s);
        decode_tail + self.followup_window
    }

    /// Expected lifetime for a data class at write time.
    pub fn lifetime(&self, class: DataClass, remaining_tokens: u32) -> SimDuration {
        match class {
            DataClass::Weights => self.weight_deployment_period,
            DataClass::KvCache => self.kv_lifetime(remaining_tokens),
            DataClass::Activation => self.forward_pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_lifetime_scales_with_remaining_tokens() {
        let e = LifetimeEstimator::default_serving();
        let short = e.kv_lifetime(10);
        let long = e.kv_lifetime(1000);
        assert!(long > short);
        // 1000 tokens at 30 tok/s ≈ 33 s + 10 min window.
        let expected = SimDuration::from_secs(633);
        assert!((long.as_secs() as i64 - expected.as_secs() as i64).abs() <= 1);
    }

    #[test]
    fn class_lifetimes_are_ordered() {
        let e = LifetimeEstimator::default_serving();
        let act = e.lifetime(DataClass::Activation, 0);
        let kv = e.lifetime(DataClass::KvCache, 100);
        let w = e.lifetime(DataClass::Weights, 0);
        assert!(act < kv, "activations die first");
        assert!(kv < w, "weights live longest");
    }

    #[test]
    fn zero_remaining_tokens_is_just_the_window() {
        let e = LifetimeEstimator::default_serving();
        assert_eq!(e.kv_lifetime(0), e.followup_window);
    }
}
