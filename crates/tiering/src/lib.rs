//! # `mrm-tiering` — the retention-aware control plane
//!
//! §4 of the MRM paper sketches "a rack-scale OS for foundation model
//! inference" in which MRM "co-exist\[s\] with other types of memory, such as
//! HBM for write-heavy data structures (e.g., activations), and LPDDR as a
//! slower tier", and where "the scheduler will need to track the data
//! expiration times, and decide whether to refresh it or move it to another
//! tier based on the state of the requests that depend on that data."
//!
//! This crate is that control plane, plus the end-to-end cluster simulation
//! that evaluates it:
//!
//! * [`lifetime`] — expected-lifetime estimation per data class (the DCM
//!   input).
//! * [`tier`] — memory tiers composed from [`mrm_core::Pool`]s.
//! * [`placement`] — placement policies: HBM-only, HBM+LPDDR cold tier,
//!   HBM+MRM, HBM+MRM with DCM.
//! * [`prefix`] — vLLM-style prefix caching over chunk hashes (§2.2 \[54\]).
//! * [`refresh`] — re-export shim: the expiration tracker and the refresh /
//!   migrate / drop decision now live in `mrm-control`.
//! * [`wear`] — software wear-levelling evaluation under sustained KV write
//!   load (device lifetime in years).
//! * [`cluster`] — the discrete-event inference-cluster simulation:
//!   requests, prefill/decode, KV placement, expiry handling; reports
//!   tokens/s, J/token, cost, recompute rate, latency percentiles.

pub mod cluster;
pub mod lifetime;
pub mod placement;
pub mod prefix;
pub mod refresh;
pub mod tier;
pub mod wear;

pub use cluster::{
    run_cluster, run_cluster_with_audit, run_cluster_with_telemetry, ClusterConfig, ClusterReport,
    ClusterSim, FaultSummary, MemorySystemKind,
};
pub use lifetime::LifetimeEstimator;
pub use placement::PlacementPolicy;
// mrm-lint: allow(D7) re-export shim for pre-control-plane import paths
pub use refresh::{ExpiryAction, ExpiryTracker};
pub use tier::{Tier, TierKind};
