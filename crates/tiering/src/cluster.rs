//! The end-to-end inference-cluster simulation.
//!
//! This is where the paper's pieces meet: Splitwise-style request traffic
//! (`mrm-workload`) runs against accelerators whose memory system is one of
//! the §4 placement policies (HBM-only, HBM+LPDDR, HBM+MRM fixed, HBM+MRM
//! DCM), with the retention-aware control plane tracking expiration
//! deadlines on cached KV state and deciding refresh / migrate / drop.
//!
//! The performance model is deliberately at "memory-system simulator"
//! fidelity: a decode iteration's duration is the memory time of the §2.2
//! traffic — one full weight read, every active context's KV cache read,
//! one KV vector appended per context — floored by a compute term, so
//! memory-bandwidth differences between policies translate directly into
//! token throughput, and per-bit energy differences into J/token.

use std::collections::{BTreeMap, VecDeque};

use mrm_control::expiry::{consumed_age, rearm_deadline};
use mrm_control::registry::retention_decision;
use mrm_control::{
    AuditAction, AuditLog, ControlClass, ControlPlane, ControlSummary, Reconciler, WorkItem,
    WorkKind,
};
use mrm_device::cell::RetentionTradeoff;
use mrm_device::device::FRESH_RBER;
use mrm_device::energy::EnergyBreakdown;
use mrm_device::tech::presets;
use mrm_faults::{FaultConfig, FaultModel};
use mrm_obs::{Detail, HandlerId, Obs, SpanId, SpanKind};
use mrm_sim::event::EventQueue;
use mrm_sim::rng::SimRng;
use mrm_sim::stats::LogHistogram;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_telemetry::TelemetrySink;
use mrm_workload::access::DataClass;
use mrm_workload::model::{ModelConfig, Quantization};
use mrm_workload::replay::RequestTrace;
use mrm_workload::traces::TraceMix;
use serde::{Deserialize, Serialize};

use crate::lifetime::LifetimeEstimator;
use crate::placement::PlacementPolicy;
use crate::tier::{Tier, TierKind};

/// Alias kept for the public API: the memory system *is* the placement
/// policy.
pub type MemorySystemKind = PlacementPolicy;

/// Cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Accelerators in the cluster.
    pub accelerators: u32,
    /// Model served (same on every accelerator, §2).
    pub model: ModelConfig,
    /// Serving quantization.
    pub quant: Quantization,
    /// Memory system / placement policy.
    pub policy: PlacementPolicy,
    /// HBM stacks per accelerator.
    pub hbm_stacks: u32,
    /// LPDDR packages per accelerator (HBM+LPDDR policy).
    pub lpddr_packages: u32,
    /// MRM packages per accelerator (HBM+MRM policies).
    pub mrm_packages: u32,
    /// Cluster-wide request arrival rate, 1/s.
    pub arrivals_per_s: f64,
    /// Decode batch limit per accelerator.
    pub max_batch: u32,
    /// Context limit, tokens.
    pub max_context: u32,
    /// Prefill throughput per accelerator, tokens/s (compute-bound term).
    pub prefill_tokens_per_s: f64,
    /// Chunked-prefill budget per decode iteration, tokens (Sarathi-style
    /// piggybacking \[3\]: bounds how much prefill one iteration absorbs).
    pub prefill_chunk_tokens: u32,
    /// Compute floor per decode iteration.
    pub compute_floor: SimDuration,
    /// How long completed contexts stay cached for follow-ups.
    pub followup_window: SimDuration,
    /// The follow-up window the *lifetime estimator* assumes when hinting
    /// retention classes. Normally equal to `followup_window`; setting it
    /// lower models an optimistic estimator, forcing the §4 control plane
    /// to refresh or migrate under-provisioned data instead of losing it.
    pub hint_window: SimDuration,
    /// Probability a completed context receives a follow-up turn.
    pub followup_prob: f64,
    /// Prompt extension tokens a follow-up adds.
    pub followup_extension: u32,
    /// Whether the control plane scrubs expiring MRM data (§4 refresh
    /// decision); when false, expired cached contexts are recomputed.
    pub scrub_enabled: bool,
    /// Maintenance sweep period.
    pub maintenance_period: SimDuration,
    /// Safety margin for DCM lifetime hints.
    pub lifetime_margin: f64,
    /// Fault-injection layer (DESIGN.md §9). Disabled by default; when
    /// enabled, the weights read of every decode iteration, the cached-KV
    /// read of every follow-up hit, and the maintenance sweep's scrub
    /// verification read all pass through the deterministic injector, and
    /// uncorrectable outcomes engage the cluster-level recovery ladder
    /// (retry → re-fetch weights / recompute KV / escalate the scrub to a
    /// longer-class migration).
    pub faults: FaultConfig,
    /// Optional recorded trace to replay instead of Poisson arrivals
    /// (drop-in slot for real production traces; see `mrm_workload::replay`).
    pub trace: Option<RequestTrace>,
    /// Optional model-redeployment period (§2: "When a new model is
    /// deployed, the cluster ... loads weights for the new model"): every
    /// period, each accelerator bulk-overwrites its weight shard.
    pub weight_redeploy_period: Option<SimDuration>,
    /// Simulated wall-clock duration.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// Checks the configuration for values the simulator cannot run with.
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.accelerators == 0 {
            return Err("accelerators must be at least 1 (requests are \
                        round-robined across accelerators)"
                .to_string());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1 (no request could ever \
                        be admitted to a decode iteration)"
                .to_string());
        }
        if !(self.arrivals_per_s.is_finite() && self.arrivals_per_s >= 0.0) {
            return Err(format!(
                "arrivals_per_s must be finite and non-negative, got {}",
                self.arrivals_per_s
            ));
        }
        if self.hbm_stacks == 0 {
            return Err("hbm_stacks must be at least 1 (activations always \
                        live in HBM)"
                .to_string());
        }
        let (alt_name, alt_packages) = match self.policy {
            PlacementPolicy::HbmOnly => return Ok(()),
            PlacementPolicy::HbmLpddr => ("lpddr_packages", self.lpddr_packages),
            PlacementPolicy::HbmMrm | PlacementPolicy::HbmMrmDcm => {
                ("mrm_packages", self.mrm_packages)
            }
        };
        if alt_packages == 0 {
            return Err(format!(
                "{alt_name} must be at least 1 for the {} policy",
                self.policy.label()
            ));
        }
        Ok(())
    }

    /// The standard experiment configuration: Llama2-70B at fp16 with the
    /// Splitwise trace mix, sized per policy so each system carries the
    /// weights plus a KV working set.
    pub fn llama70b(policy: PlacementPolicy, accelerators: u32, arrivals_per_s: f64) -> Self {
        let (hbm_stacks, lpddr_packages, mrm_packages) = match policy {
            // 8 × 24 GB HBM: weights (140 GB) + KV in HBM.
            PlacementPolicy::HbmOnly => (8, 0, 0),
            // Weights stay in HBM (7 stacks, 168 GB); KV cold tier in
            // 8 × 32 GB LPDDR.
            PlacementPolicy::HbmLpddr => (7, 8, 0),
            // Activations in 2 HBM stacks; weights + KV in 8 × 48 GB MRM.
            PlacementPolicy::HbmMrm | PlacementPolicy::HbmMrmDcm => (2, 0, 8),
        };
        ClusterConfig {
            accelerators,
            model: ModelConfig::llama2_70b(),
            quant: Quantization::Fp16,
            policy,
            hbm_stacks,
            lpddr_packages,
            mrm_packages,
            arrivals_per_s,
            max_batch: 32,
            max_context: 4096,
            prefill_tokens_per_s: 7000.0,
            prefill_chunk_tokens: 2048,
            compute_floor: SimDuration::from_millis(10),
            followup_window: SimDuration::from_mins(10),
            hint_window: SimDuration::from_mins(10),
            followup_prob: 0.4,
            followup_extension: 64,
            scrub_enabled: true,
            maintenance_period: SimDuration::from_secs(60),
            lifetime_margin: 1.25,
            faults: FaultConfig::disabled(),
            trace: None,
            weight_redeploy_period: None,
            duration: SimDuration::from_secs(120),
            seed: 0xC1A5_7E12,
        }
    }
}

/// Per-tier energy/traffic summary in the report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TierReport {
    /// Tier label.
    pub tier: String,
    /// Aggregate capacity, bytes (per accelerator).
    pub capacity_bytes: u64,
    /// Demand bytes read (whole cluster).
    pub bytes_read: u64,
    /// Demand bytes written (whole cluster).
    pub bytes_written: u64,
    /// Energy breakdown (whole cluster).
    pub energy: EnergyBreakdown,
}

/// Fault-injection and recovery summary in the report (DESIGN.md §9).
///
/// All zeros when the fault layer is disabled. `silent` is the cluster's
/// silent-data-corruption count — the quantity the recovery pipeline
/// exists to hold at zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Whether the fault layer was constructed for this run.
    pub enabled: bool,
    /// Reads that went through injection at a non-zero effective RBER.
    pub reads: u64,
    /// Raw bit flips injected before any correction.
    pub raw_flips: u64,
    /// Observed raw bit error rate: flips per scanned bit.
    pub raw_ber: f64,
    /// Codewords the inner ECC corrected transparently.
    pub corrected: u64,
    /// Codewords the decoder flagged uncorrectable.
    pub detected_ue: u64,
    /// Decoder miscorrections caught by the outer CRC.
    pub miscorrected: u64,
    /// Corruption that escaped every layer (SDC).
    pub silent: u64,
    /// Read retries (first rung of the recovery ladder).
    pub retries: u64,
    /// Weight shards re-fetched after a persistent uncorrectable read.
    pub weight_refetches: u64,
    /// Follow-up cache hits demoted to recomputes by a persistent
    /// uncorrectable KV read.
    pub kv_recomputes: u64,
    /// Maintenance refreshes escalated to a longer-class migration after
    /// the scrub verification read failed.
    pub scrub_escalations: u64,
}

/// Simulation results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Policy evaluated.
    pub policy: String,
    /// Accelerator count.
    pub accelerators: u32,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests completed.
    pub completions: u64,
    /// Tokens decoded.
    pub tokens: u64,
    /// Decode throughput, tokens/s (cluster).
    pub tokens_per_s: f64,
    /// Follow-ups that hit cached KV state.
    pub cache_hits: u64,
    /// Follow-ups that found their KV state expired and recomputed.
    pub recomputes: u64,
    /// Control-plane scrub (refresh) operations.
    pub scrubs: u64,
    /// Control-plane migrations to a longer retention class.
    pub migrations: u64,
    /// Expired cached contexts dropped.
    pub drops: u64,
    /// Cached contexts evicted under memory pressure (best-effort cache).
    pub evictions: u64,
    /// Model (weight) redeployments performed.
    pub redeploys: u64,
    /// Total energy, joules.
    pub energy_total_j: f64,
    /// Energy per decoded token, joules.
    pub j_per_token: f64,
    /// Energy spent on housekeeping (refresh + scrub), joules.
    pub housekeeping_j: f64,
    /// Relative hardware cost units (whole cluster).
    pub cost_units: f64,
    /// Throughput per cost: tokens/s per 1000 cost units.
    pub tokens_per_s_per_kcost: f64,
    /// KV-capacity headroom per accelerator, bytes.
    pub kv_capacity_bytes: u64,
    /// Median request latency, ms (`None` when no request completed —
    /// "no data" must not read as "0 ms").
    pub p50_latency_ms: Option<f64>,
    /// Tail request latency, ms (`None` when no request completed).
    pub p99_latency_ms: Option<f64>,
    /// Median time-to-first-token, ms (arrival to first decoded token;
    /// `None` when no token was produced).
    pub p50_ttft_ms: Option<f64>,
    /// Tail time-to-first-token, ms (`None` when no token was produced).
    pub p99_ttft_ms: Option<f64>,
    /// Decode iterations executed (all accelerators).
    pub iterations: u64,
    /// Mean decode batch size over iterations.
    pub mean_batch: f64,
    /// Fault-injection and recovery totals (all zeros when disabled).
    pub faults: FaultSummary,
    /// Control-plane decision totals from the audit log (DESIGN.md §10).
    pub control: ControlSummary,
    /// Per-tier details.
    pub tiers: Vec<TierReport>,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrival,
    IterDone { acc: usize },
    Followup { acc: usize, ctx: u64 },
    CacheExpire { acc: usize, ctx: u64 },
    Maintenance { acc: usize },
    WeightRedeploy { acc: usize },
    TraceArrival { prompt: u32, output: u32 },
}

/// Profiler handler ids, interned once at [`ClusterSim::attach_obs`] so
/// the per-event hooks never resolve a name on the dispatch path.
#[derive(Clone, Copy)]
struct ProfIds {
    arrival: HandlerId,
    iter_done: HandlerId,
    followup: HandlerId,
    cache_expire: HandlerId,
    maintenance: HandlerId,
    weight_redeploy: HandlerId,
    admission: HandlerId,
    reconcile_plan: HandlerId,
    decode_iter: HandlerId,
}

/// Stable profiler handler per event kind (pre-interned id form).
fn handler_id(ids: &ProfIds, ev: &Ev) -> HandlerId {
    match ev {
        Ev::Arrival | Ev::TraceArrival { .. } => ids.arrival,
        Ev::IterDone { .. } => ids.iter_done,
        Ev::Followup { .. } => ids.followup,
        Ev::CacheExpire { .. } => ids.cache_expire,
        Ev::Maintenance { .. } => ids.maintenance,
        Ev::WeightRedeploy { .. } => ids.weight_redeploy,
    }
}

#[derive(Clone, Debug)]
struct Pending {
    arrival: SimTime,
    prompt_tokens: u32,
    output_tokens: u32,
    /// Cached context this request continues, if any.
    reuse: Option<u64>,
}

#[derive(Clone, Debug)]
struct Active {
    arrival: SimTime,
    /// Admission-order id: the audit identity of this request's KV tail.
    req: u64,
    context_tokens: u32,
    output_remaining: u32,
    kv_allocs: Vec<mrm_core::pool::Allocation>,
    kv_bytes: u64,
    retention: SimDuration,
    /// Whether the first output token has been produced (TTFT recorded).
    first_token_done: bool,
}

/// The in-flight decode batch in struct-of-arrays layout.
///
/// Every decode iteration scans the whole batch twice (KV read sizing over
/// `context_tokens`, per-context KV append over `retention`) and the
/// completion sweep walks four more fields; splitting them into parallel
/// dense columns keeps those scans on contiguous homogeneous memory
/// instead of striding over `Active` records dragging the cold
/// `kv_allocs` vectors through cache. Slot `i` means the same request in
/// every column, and removal is a columnwise `swap_remove` — the exact
/// ordering the AoS `Vec<Active>` had, so event order (and therefore
/// every byte of every report) is unchanged.
#[derive(Clone, Debug, Default)]
struct ActiveBatch {
    // Hot columns: scanned every iteration.
    context_tokens: Vec<u32>,
    output_remaining: Vec<u32>,
    retention: Vec<SimDuration>,
    first_token_done: Vec<bool>,
    // Warm columns: touched at TTFT and completion.
    arrival: Vec<SimTime>,
    req: Vec<u64>,
    kv_bytes: Vec<u64>,
    // Cold: allocation handles, moved only at admission and completion.
    kv_allocs: Vec<Vec<mrm_core::pool::Allocation>>,
}

impl ActiveBatch {
    fn len(&self) -> usize {
        self.req.len()
    }

    fn is_empty(&self) -> bool {
        self.req.is_empty()
    }

    fn push(&mut self, a: Active) {
        self.context_tokens.push(a.context_tokens);
        self.output_remaining.push(a.output_remaining);
        self.retention.push(a.retention);
        self.first_token_done.push(a.first_token_done);
        self.arrival.push(a.arrival);
        self.req.push(a.req);
        self.kv_bytes.push(a.kv_bytes);
        self.kv_allocs.push(a.kv_allocs);
    }

    fn swap_remove(&mut self, i: usize) -> Active {
        Active {
            context_tokens: self.context_tokens.swap_remove(i),
            output_remaining: self.output_remaining.swap_remove(i),
            retention: self.retention.swap_remove(i),
            first_token_done: self.first_token_done.swap_remove(i),
            arrival: self.arrival.swap_remove(i),
            req: self.req.swap_remove(i),
            kv_bytes: self.kv_bytes.swap_remove(i),
            kv_allocs: self.kv_allocs.swap_remove(i),
        }
    }
}

#[derive(Clone, Debug)]
struct Cached {
    kv_allocs: Vec<mrm_core::pool::Allocation>,
    kv_bytes: u64,
    tokens: u32,
    deadline: SimTime,
    retention: SimDuration,
}

struct Accel {
    hbm: Tier,
    alt: Option<Tier>,
    batch: ActiveBatch,
    queue: VecDeque<Pending>,
    cached: BTreeMap<u64, Cached>,
    /// Control-plane reconciler for the parked-prefix class: the data path
    /// observes parks/releases in, the maintenance sweep executes the work
    /// items it plans.
    reconciler: Reconciler,
    running: bool,
    /// When the weight shard was last (re)written — the age input of the
    /// fault model's RBER curve for weights reads.
    weights_written_at: SimTime,
    /// Retention class the weight shard is currently programmed at.
    weights_retention: SimDuration,
}

impl Accel {
    fn kv_tier(&mut self, policy: PlacementPolicy) -> &mut Tier {
        match policy.tier_for(DataClass::KvCache) {
            TierKind::Hbm => &mut self.hbm,
            _ => self
                .alt
                .as_mut()
                .expect("policy requires an alternate tier"),
        }
    }

    fn weights_tier(&mut self, policy: PlacementPolicy) -> &mut Tier {
        match policy.tier_for(DataClass::Weights) {
            TierKind::Hbm => &mut self.hbm,
            _ => self
                .alt
                .as_mut()
                .expect("policy requires an alternate tier"),
        }
    }
}

/// Gauge names for each [`TierKind`], indexed by [`tier_index`].
const TIER_GAUGES: [(&str, &str); 3] = [
    ("tier_hbm_used_bytes", "tier_hbm_occupancy"),
    ("tier_lpddr_used_bytes", "tier_lpddr_occupancy"),
    ("tier_mrm_used_bytes", "tier_mrm_occupancy"),
];

/// Stable slot for a tier kind in [`TIER_GAUGES`]-shaped arrays.
fn tier_index(kind: TierKind) -> usize {
    match kind {
        TierKind::Hbm => 0,
        TierKind::Lpddr => 1,
        TierKind::Mrm => 2,
    }
}

/// The cluster simulator.
///
/// The lifetime parameter is the borrow of an optionally attached
/// [`TelemetrySink`] (see [`ClusterSim::attach_telemetry`]); plain
/// `ClusterSim::new(cfg).run()` callers never see it.
pub struct ClusterSim<'t> {
    cfg: ClusterConfig,
    accels: Vec<Accel>,
    queue: EventQueue<Ev>,
    rng: SimRng,
    mix: TraceMix,
    estimator: LifetimeEstimator,
    next_ctx: u64,
    next_req: u64,
    rr: usize,
    // The retention control plane: declared policies + the append-only
    // audit log every placement/expiry/recovery decision flows through.
    // Decisions are *routed* through it (registry policy, reconciler work
    // items); the log itself is observe-only bookkeeping.
    control: ControlPlane,
    // Counters.
    arrivals: u64,
    completions: u64,
    tokens: u64,
    cache_hits: u64,
    recomputes: u64,
    scrubs: u64,
    migrations: u64,
    drops: u64,
    evictions: u64,
    redeploys: u64,
    scrub_bytes: u64,
    migration_bytes: u64,
    latency_ms: LogHistogram,
    ttft_ms: LogHistogram,
    kv_capacity_bytes: u64,
    iterations: u64,
    batch_sum: u64,
    // Incremental aggregates for telemetry snapshots: maintained at every
    // queue/batch/cache mutation so `sample_into` never rescans the
    // accelerators. Observability only — they feed gauges, never decisions.
    pending_total: usize,
    active_total: usize,
    cached_total: usize,
    // Per-iteration constants hoisted out of `start_iteration` (derived
    // once from `cfg`; identical values to recomputing them every
    // iteration, so this is wall-clock only).
    kvpt: u64,
    weights_bytes: u64,
    kv_native_retention: SimDuration,
    hbm_retention: SimDuration,
    // Fault layer (None unless `cfg.faults.enabled`). The injector draws
    // only from its own salted stream, never from `rng`, so enabling it at
    // `ber_scale = 0` leaves the report byte-identical to a disabled run.
    fault_layer: Option<FaultModel>,
    mrm_tradeoff: RetentionTradeoff,
    kv_on_mrm: bool,
    weights_on_mrm: bool,
    fault_retries: u64,
    fault_refetches: u64,
    fault_recomputes: u64,
    fault_escalations: u64,
    // Observability only: never consulted by the simulation logic and
    // never draws from `rng`, so an attached sink cannot change a report.
    telemetry: Option<&'t mut dyn TelemetrySink>,
    // Causal tracer + profiler bundle (mrm-obs), same contract as the
    // telemetry sink. Hook sites live only in the `obs_*` helpers below —
    // lint rule D8 keeps them out of every function that draws RNG or
    // mutates the event queue.
    obs: Option<&'t mut Obs>,
    // Handler ids interned at `attach_obs`; `Some` iff `obs` is.
    prof_ids: Option<ProfIds>,
    // Start time + batch size of the in-flight decode iteration per
    // accelerator (obs bookkeeping only); recorded as a closed slice on
    // completion so the hot path skips the tracer's open-span machinery.
    iter_open: Vec<Option<(SimTime, u64)>>,
}

impl<'t> ClusterSim<'t> {
    /// Builds the simulator, placing weights in their tier up front.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ClusterConfig::validate`] or the
    /// configured memory system cannot hold the model weights.
    pub fn new(cfg: ClusterConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ClusterConfig: {e}");
        }
        let mut rng = SimRng::seed_from(cfg.seed);
        let mix = TraceMix::splitwise_default(cfg.max_context, cfg.arrivals_per_s);
        let weights_bytes = cfg.model.weights_bytes(cfg.quant);
        let mut kv_capacity = 0;

        // Capacity hints are wall-clock-only: the KV tier holds the live
        // batch plus the follow-up cache, so pre-size its allocator arena
        // for a few batches' worth of allocations.
        let alloc_hint = cfg.max_batch as usize * 8;
        let weights_native_retention = match cfg.policy.tier_for(DataClass::Weights) {
            TierKind::Hbm => presets::hbm3e().retention,
            TierKind::Lpddr => presets::lpddr5x().retention,
            TierKind::Mrm => presets::mrm_hours().retention,
        };
        let accels: Vec<Accel> = (0..cfg.accelerators)
            .map(|_| {
                let hbm = Tier::with_capacity_hint(
                    TierKind::Hbm,
                    presets::hbm3e(),
                    cfg.hbm_stacks,
                    alloc_hint,
                );
                let alt = match cfg.policy {
                    PlacementPolicy::HbmLpddr => Some(Tier::with_capacity_hint(
                        TierKind::Lpddr,
                        presets::lpddr5x(),
                        cfg.lpddr_packages,
                        alloc_hint,
                    )),
                    PlacementPolicy::HbmMrm | PlacementPolicy::HbmMrmDcm => {
                        Some(Tier::with_capacity_hint(
                            TierKind::Mrm,
                            presets::mrm_hours(),
                            cfg.mrm_packages,
                            alloc_hint,
                        ))
                    }
                    PlacementPolicy::HbmOnly => None,
                };
                let mut acc = Accel {
                    hbm,
                    alt,
                    batch: ActiveBatch::default(),
                    queue: VecDeque::new(),
                    cached: BTreeMap::new(),
                    reconciler: Reconciler::new(ControlClass::KvPrefix),
                    running: false,
                    weights_written_at: SimTime::ZERO,
                    weights_retention: weights_native_retention,
                };
                // Pin the weights.
                let wt = acc.weights_tier(cfg.policy);
                wt.alloc(weights_bytes).unwrap_or_else(|e| {
                    panic!("weights do not fit the {} tier: {e}", wt.kind().label())
                });
                let kvt = acc.kv_tier(cfg.policy);
                kv_capacity = kvt.capacity_bytes() - kvt.used_bytes();
                acc
            })
            .collect();

        // Pre-size the heap: every replayed trace entry is scheduled up
        // front, and the steady state keeps a follow-up/expiry event per
        // cached context plus per-accel maintenance timers in flight.
        let event_hint = cfg.trace.as_ref().map_or(0, |t| t.entries().len())
            + cfg.accelerators as usize * (cfg.max_batch as usize * 4 + 2)
            + 16;
        let mut queue = EventQueue::with_capacity(event_hint);
        // Seed arrivals (Poisson, or a recorded trace) and maintenance.
        match &cfg.trace {
            None if mix.has_arrivals() => {
                let first_gap = mix.next_interarrival(&mut rng);
                queue.schedule(SimTime::ZERO + first_gap, Ev::Arrival);
            }
            // Zero-rate mix: nothing ever arrives, so no arrival event is
            // seeded (the sim still runs maintenance to completion).
            None => {}
            Some(trace) => {
                for (at, e) in trace.replay_from(SimTime::ZERO) {
                    queue.schedule(
                        at,
                        Ev::TraceArrival {
                            prompt: e.prompt_tokens,
                            output: e.output_tokens,
                        },
                    );
                }
            }
        }
        for acc in 0..cfg.accelerators as usize {
            queue.schedule(
                SimTime::ZERO + cfg.maintenance_period,
                Ev::Maintenance { acc },
            );
            if let Some(period) = cfg.weight_redeploy_period {
                queue.schedule(SimTime::ZERO + period, Ev::WeightRedeploy { acc });
            }
        }

        let estimator = LifetimeEstimator {
            followup_window: cfg.hint_window,
            ..LifetimeEstimator::default_serving()
        };
        let kvpt = cfg.model.kv_bytes_per_token(cfg.quant);
        let kv_on_mrm = matches!(cfg.policy.tier_for(DataClass::KvCache), TierKind::Mrm);
        let weights_on_mrm = matches!(cfg.policy.tier_for(DataClass::Weights), TierKind::Mrm);
        // The e11 sweep axis: `provision_margin` re-provisions the KV
        // class at margin × follow-up window instead of the tier-native
        // class, so margin 1 means retention exactly equal to the data's
        // lifetime — the operating point where retention faults surface.
        let kv_native_retention = match (cfg.faults.provision_margin, kv_on_mrm) {
            (Some(m), true) => cfg.followup_window.mul_f64(m.max(0.0)),
            _ => match cfg.policy.tier_for(DataClass::KvCache) {
                TierKind::Hbm => presets::hbm3e().retention,
                TierKind::Lpddr => presets::lpddr5x().retention,
                TierKind::Mrm => presets::mrm_hours().retention,
            },
        };
        let hbm_retention = presets::hbm3e().retention;
        let fault_layer = cfg
            .faults
            .enabled
            .then(|| FaultModel::new(cfg.faults, cfg.seed));

        // Declare the retention policies up front (INV-CPR-CLASSIFIED) and
        // audit the initial weight-shard stores.
        let mut control = ControlPlane::serving_default(cfg.followup_window);
        debug_assert!(control.registry.fully_classified());
        for acc in 0..u64::from(cfg.accelerators) {
            control.record(
                SimTime::ZERO,
                ControlClass::Weights,
                acc,
                AuditAction::Store,
                "deploy",
                weights_bytes,
            );
        }

        ClusterSim {
            cfg,
            accels,
            queue,
            rng,
            mix,
            estimator,
            next_ctx: 0,
            next_req: 0,
            rr: 0,
            control,
            arrivals: 0,
            completions: 0,
            tokens: 0,
            cache_hits: 0,
            recomputes: 0,
            scrubs: 0,
            migrations: 0,
            drops: 0,
            evictions: 0,
            redeploys: 0,
            scrub_bytes: 0,
            migration_bytes: 0,
            latency_ms: LogHistogram::new(16),
            ttft_ms: LogHistogram::new(16),
            kv_capacity_bytes: kv_capacity,
            iterations: 0,
            batch_sum: 0,
            pending_total: 0,
            active_total: 0,
            cached_total: 0,
            kvpt,
            weights_bytes,
            kv_native_retention,
            hbm_retention,
            fault_layer,
            mrm_tradeoff: presets::mrm_hours().tradeoff(),
            kv_on_mrm,
            weights_on_mrm,
            fault_retries: 0,
            fault_refetches: 0,
            fault_recomputes: 0,
            fault_escalations: 0,
            telemetry: None,
            obs: None,
            prof_ids: None,
            iter_open: Vec::new(),
        }
    }

    /// Raw BER of a read `age` after a `retention`-class write. MRM decays
    /// along the Weibull retention curve; the DRAM-family tiers are pinned
    /// at the soft-error floor by their mandatory refresh.
    fn aged_rber(&self, on_mrm: bool, retention: SimDuration, age: SimDuration) -> f64 {
        if on_mrm {
            self.mrm_tradeoff.rber_at_age(retention, age, FRESH_RBER)
        } else {
            FRESH_RBER
        }
    }

    /// One fault-checked read: inject at `rber`, and on an uncorrectable
    /// outcome retry once (the first rung of every recovery ladder).
    /// Returns false when the error persisted and the caller must take its
    /// own recovery path. A no-op returning true when the layer is off.
    fn read_survives(&mut self, len_bytes: u64, rber: f64) -> bool {
        let Some(model) = self.fault_layer.as_mut() else {
            return true;
        };
        if !model.inject_read(len_bytes, rber).uncorrectable() {
            return true;
        }
        self.fault_retries += 1;
        !model.inject_read(len_bytes, rber).uncorrectable()
    }

    /// Attaches a telemetry sink for the lifetime of the run. The sink is
    /// pumped at event-dispatch boundaries, so its snapshots land on exact
    /// multiples of its interval independent of event timing; it is fed
    /// only from the simulation's own counters and never touches the RNG
    /// or the event queue, so the [`ClusterReport`] is bit-identical with
    /// or without a sink attached.
    pub fn attach_telemetry(&mut self, sink: &'t mut dyn TelemetrySink) {
        self.telemetry = Some(sink);
    }

    /// Attaches a causal tracer + profiler for the lifetime of the run.
    /// Same contract as [`ClusterSim::attach_telemetry`]: the bundle is
    /// observe-only (hooks never draw RNG and never touch the event
    /// queue — lint rule D8), so the report is byte-identical with or
    /// without it.
    pub fn attach_obs(&mut self, obs: &'t mut Obs) {
        self.iter_open = vec![None; self.accels.len()];
        // Resolve every handler label once, here: the per-event hooks
        // profile by pre-interned id and never look a name up again.
        let p = &mut obs.profiler;
        self.prof_ids = Some(ProfIds {
            arrival: p.handle("arrival"),
            iter_done: p.handle("iter_done"),
            followup: p.handle("followup"),
            cache_expire: p.handle("cache_expire"),
            maintenance: p.handle("maintenance"),
            weight_redeploy: p.handle("weight_redeploy"),
            admission: p.handle("admission"),
            reconcile_plan: p.handle("reconcile_plan"),
            decode_iter: p.handle("decode_iter"),
        });
        self.obs = Some(obs);
    }

    // ------------------------------------------------------------------
    // Obs hooks. Every tracer/profiler touch in this simulator lives in
    // one of these helpers; the event handlers call them by name. That
    // confinement is what lint rule D8 enforces: a function that draws
    // `SimRng`/`FaultRng` or mutates the event queue may not itself
    // mention the tracer or profiler, so observation can never sit on a
    // path that could perturb the simulation. Each hook is a `None`
    // check when detached.
    //
    // The profiler hooks take a `ProfIds` selector, not a name: ids were
    // interned at `attach_obs`. Dispatch uses lap timing — a single
    // `switch` per event closes the previous handler's lap and opens the
    // next — so the steady-state per-event cost is one `Option` check
    // and one clock read.
    // ------------------------------------------------------------------

    fn obs_prof_enter(&mut self, sel: fn(&ProfIds) -> HandlerId) {
        if let (Some(ids), Some(o)) = (self.prof_ids, self.obs.as_deref_mut()) {
            o.profiler.enter_id(sel(&ids));
        }
    }

    fn obs_prof_exit(&mut self) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.profiler.exit();
        }
    }

    /// Closes the open frame and opens `ev`'s handler frame on a single
    /// clock reading — the pop-to-dispatch lap transition.
    fn obs_prof_switch_ev(&mut self, ev: &Ev) {
        if let (Some(ids), Some(o)) = (self.prof_ids, self.obs.as_deref_mut()) {
            o.profiler.switch(handler_id(&ids, ev));
        }
    }

    /// Charges a handler with simulated time (e.g. an iteration's latency).
    fn obs_prof_sim(&mut self, sel: fn(&ProfIds) -> HandlerId, d: SimDuration) {
        if let (Some(ids), Some(o)) = (self.prof_ids, self.obs.as_deref_mut()) {
            o.profiler.sim_cost_id(sel(&ids), d);
        }
    }

    /// A request admitted into the batch: opens its session lifecycle
    /// span and records the admission decision with its audit seq.
    fn obs_admit(
        &mut self,
        at: SimTime,
        acc: usize,
        req: u64,
        seq: u64,
        bytes: u64,
        followup: bool,
    ) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.tracer.async_begin(at, SpanKind::Session, acc as u32, req);
            o.tracer.instant(
                at,
                SpanKind::Admission,
                acc as u32,
                req,
                Detail {
                    bytes,
                    reason: if followup { "followup-admit" } else { "admit" },
                    audit_seq: Some(seq),
                    required: true, // the KV tail is Required state
                },
            );
        }
    }

    /// First token of a session (TTFT landmark).
    fn obs_first_token(&mut self, at: SimTime, acc: usize, req: u64) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.tracer
                .instant(at, SpanKind::FirstToken, acc as u32, req, Detail::default());
        }
    }

    /// A session completed: closes its span, retires the tail (`detail`
    /// carries the retire audit seq), and opens the parked prefix's
    /// lifecycle span under `park_seq`.
    fn obs_complete(
        &mut self,
        at: SimTime,
        acc: usize,
        req: u64,
        ctx: u64,
        detail: Detail,
        park_seq: u64,
    ) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.tracer
                .instant(at, SpanKind::Completion, acc as u32, req, detail);
            o.tracer
                .async_end(at, SpanKind::Session, req, Detail::default());
            o.tracer.async_begin(at, SpanKind::Prefix, acc as u32, ctx);
            o.tracer.instant(
                at,
                SpanKind::Placement,
                acc as u32,
                ctx,
                Detail {
                    bytes: detail.bytes,
                    reason: "park-followup",
                    audit_seq: Some(park_seq),
                    required: false,
                },
            );
        }
    }

    /// A parked prefix re-opened (stall putback re-parks consumed state).
    fn obs_prefix_begin(&mut self, at: SimTime, acc: usize, ctx: u64, bytes: u64, seq: u64) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.tracer.async_begin(at, SpanKind::Prefix, acc as u32, ctx);
            o.tracer.instant(
                at,
                SpanKind::Placement,
                acc as u32,
                ctx,
                Detail {
                    bytes,
                    reason: "stall-putback",
                    audit_seq: Some(seq),
                    required: false,
                },
            );
        }
    }

    /// End of a parked prefix's life: retire (consumed), drop, or evict.
    /// `detail.required` marks the drops that demanded recovery before
    /// reclaim (the recompute-then-drop path) — the spans the trace
    /// checker insists must carry a causal link from an audited recovery.
    /// Returns the terminal span so callers can record that link.
    fn obs_prefix_end(
        &mut self,
        at: SimTime,
        acc: usize,
        ctx: u64,
        kind: SpanKind,
        detail: Detail,
    ) -> Option<SpanId> {
        self.obs.as_deref_mut().map(|o| {
            let span = o.tracer.instant(at, kind, acc as u32, ctx, detail);
            o.tracer
                .async_end(at, SpanKind::Prefix, ctx, Detail::default());
            span
        })
    }

    /// An uncorrectable read that survived the retry rung. Returns the
    /// fault span for linking to whatever recovery it forces.
    fn obs_fault(&mut self, at: SimTime, acc: usize, subject: u64, bytes: u64) -> Option<SpanId> {
        self.obs.as_deref_mut().map(|o| {
            o.tracer.instant(
                at,
                SpanKind::Fault,
                acc as u32,
                subject,
                Detail {
                    bytes,
                    reason: "uncorrectable-read",
                    audit_seq: None,
                    required: false,
                },
            )
        })
    }

    /// An audited recovery (refetch/recompute). Linked from the fault
    /// that forced it; returns the recovery span for linking to a drop.
    fn obs_recovery(
        &mut self,
        at: SimTime,
        acc: usize,
        subject: u64,
        detail: Detail,
        fault: Option<SpanId>,
    ) -> Option<SpanId> {
        self.obs.as_deref_mut().map(|o| {
            let span = o
                .tracer
                .instant(at, SpanKind::Recovery, acc as u32, subject, detail);
            if let Some(f) = fault {
                o.tracer.link(f, span);
            }
            span
        })
    }

    /// A maintenance work item (refresh/migrate/escalate) or redeploy.
    fn obs_work(
        &mut self,
        at: SimTime,
        acc: usize,
        kind: SpanKind,
        subject: u64,
        detail: Detail,
        cause: Option<SpanId>,
    ) {
        if let Some(o) = self.obs.as_deref_mut() {
            let span = o.tracer.instant(at, kind, acc as u32, subject, detail);
            if let Some(c) = cause {
                o.tracer.link(c, span);
            }
        }
    }

    /// Records a causal edge between two already-recorded spans.
    fn obs_link(&mut self, cause: Option<SpanId>, effect: Option<SpanId>) {
        if let Some(o) = self.obs.as_deref_mut() {
            if let (Some(c), Some(e)) = (cause, effect) {
                o.tracer.link(c, e);
            }
        }
    }

    /// Notes the start of a decode iteration on an accelerator's track.
    /// No tracer call yet: the span is recorded as one closed slice at
    /// `obs_iter_end`, which skips the open-span bookkeeping entirely.
    fn obs_iter_begin(&mut self, at: SimTime, acc: usize, batch: u64) {
        if self.obs.is_some() {
            self.iter_open[acc] = Some((at, batch));
        }
    }

    /// Records the accelerator's decode iteration as a closed slice.
    fn obs_iter_end(&mut self, at: SimTime, acc: usize) {
        if let Some(o) = self.obs.as_deref_mut() {
            if let Some((begin, batch)) = self.iter_open[acc].take() {
                o.tracer
                    .slice(begin, at, SpanKind::DecodeIter, acc as u32, batch);
            }
        }
    }

    /// Opens/closes the maintenance-sweep slice.
    fn obs_sweep_begin(&mut self, at: SimTime, acc: usize) -> Option<SpanId> {
        self.obs
            .as_deref_mut()
            .map(|o| o.tracer.begin(at, SpanKind::Maintenance, acc as u32, 0))
    }

    fn obs_sweep_end(&mut self, at: SimTime, span: Option<SpanId>) {
        if let Some(o) = self.obs.as_deref_mut() {
            if let Some(s) = span {
                o.tracer.end(at, s);
            }
        }
    }

    /// Run teardown: closes every span still open at the end time.
    fn obs_finish(&mut self, at: SimTime) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.tracer.finish(at);
        }
    }

    /// Runs to completion and produces the report.
    pub fn run(self) -> ClusterReport {
        self.run_with_audit().0
    }

    /// Runs to completion and returns the report together with the full
    /// audit log — the chaos suite's oracle.
    pub fn run_with_audit(mut self) -> (ClusterReport, AuditLog) {
        let end = SimTime::ZERO + self.cfg.duration;
        // Lap-timed profiling: each event costs exactly ONE clock read —
        // the `switch` at the top of `dispatch` closes the previous
        // handler's lap and opens this one's. Queue bookkeeping (peek,
        // telemetry pump, pop) folds into the preceding handler's lap;
        // the trailing `exit` closes the final lap.
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            self.pump_telemetry(t.min(end));
            let popped = self.queue.pop();
            let Some((now, ev)) = popped else {
                break; // unreachable: peek_time just returned Some
            };
            self.dispatch(now, ev);
        }
        self.obs_prof_exit();
        self.finish(end)
    }

    /// Executes one popped event. The leading `switch` closes the
    /// previous handler's lap and opens this one's on a single clock
    /// read (on the first event it acts as a plain `enter`: there is
    /// no open frame to close yet).
    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        self.obs_prof_switch_ev(&ev);
        match ev {
            Ev::Arrival => self.on_arrival(now),
            Ev::IterDone { acc } => self.on_iter_done(now, acc),
            Ev::Followup { acc, ctx } => self.on_followup(now, acc, ctx),
            Ev::CacheExpire { acc, ctx } => self.on_cache_expire(now, acc, ctx),
            Ev::Maintenance { acc } => self.on_maintenance(now, acc),
            Ev::WeightRedeploy { acc } => self.on_weight_redeploy(now, acc),
            Ev::TraceArrival { prompt, output } => self.enqueue_request(now, prompt, output),
        }
    }

    /// Stamps every telemetry snapshot boundary due at or before `now`.
    /// Boundaries land on exact interval multiples (the sink reports the
    /// due time), so the exported series does not depend on event timing.
    fn pump_telemetry(&mut self, now: SimTime) {
        let Some(sink) = self.telemetry.take() else {
            return;
        };
        while let Some(at) = sink.snapshot_due(now) {
            self.sample_into(sink);
            sink.snapshot(at);
        }
        self.telemetry = Some(sink);
    }

    /// Publishes the simulation's current counters and occupancy into a
    /// sink. Observe-only with respect to the simulated state: the only
    /// mutation is the audit log's export cursor.
    fn sample_into(&mut self, sink: &mut dyn TelemetrySink) {
        sink.count_to("cluster_arrivals", self.arrivals);
        sink.count_to("cluster_completions", self.completions);
        sink.count_to("cluster_tokens", self.tokens);
        sink.count_to("cluster_cache_hits", self.cache_hits);
        sink.count_to("cluster_recomputes", self.recomputes);
        sink.count_to("cluster_scrubs", self.scrubs);
        sink.count_to("cluster_migrations", self.migrations);
        sink.count_to("cluster_drops", self.drops);
        sink.count_to("cluster_evictions", self.evictions);
        sink.count_to("cluster_redeploys", self.redeploys);
        sink.count_to("cluster_iterations", self.iterations);
        sink.count_to("cluster_scrub_bytes", self.scrub_bytes);
        sink.count_to("cluster_migration_bytes", self.migration_bytes);

        if let Some(model) = &self.fault_layer {
            let s = model.stats();
            sink.count_to("cluster_fault_reads", s.reads);
            sink.count_to("cluster_fault_raw_flips", s.raw_flips);
            sink.count_to("cluster_fault_corrected", s.corrected);
            sink.count_to("cluster_fault_detected_ue", s.detected_ue);
            sink.count_to("cluster_fault_miscorrected", s.miscorrected);
            sink.count_to("cluster_fault_silent", s.silent);
            sink.count_to("cluster_fault_retries", self.fault_retries);
            sink.count_to("cluster_fault_refetches", self.fault_refetches);
            sink.count_to("cluster_fault_recomputes", self.fault_recomputes);
            sink.count_to("cluster_fault_scrub_escalations", self.fault_escalations);
            sink.gauge("cluster_fault_raw_ber", s.raw_ber());
        }

        // Incremental aggregates (updated at each mutation) replace the
        // per-snapshot rescan of every accelerator; the debug asserts pin
        // the counters to the ground truth.
        debug_assert_eq!(
            self.pending_total,
            self.accels.iter().map(|a| a.queue.len()).sum::<usize>()
        );
        debug_assert_eq!(
            self.active_total,
            self.accels.iter().map(|a| a.batch.len()).sum::<usize>()
        );
        debug_assert_eq!(
            self.cached_total,
            self.accels.iter().map(|a| a.cached.len()).sum::<usize>()
        );
        sink.gauge("cluster_pending_requests", self.pending_total as f64);
        sink.gauge("cluster_active_batch", self.active_total as f64);
        sink.gauge("cluster_cached_contexts", self.cached_total as f64);

        // Per-tier occupancy, aggregated across accelerators.
        let mut used = [0u64; 3];
        let mut cap = [0u64; 3];
        {
            let mut add = |t: &Tier| {
                let i = tier_index(t.kind());
                used[i] += t.used_bytes();
                cap[i] += t.capacity_bytes();
            };
            for a in &self.accels {
                add(&a.hbm);
                if let Some(alt) = &a.alt {
                    add(alt);
                }
            }
        }
        for (i, (used_name, occ_name)) in TIER_GAUGES.iter().enumerate() {
            if cap[i] > 0 {
                sink.gauge(used_name, used[i] as f64);
                sink.gauge(occ_name, used[i] as f64 / cap[i] as f64);
            }
        }

        if let (Some(p50), Some(p99)) = (
            self.latency_ms.try_percentile(50.0),
            self.latency_ms.try_percentile(99.0),
        ) {
            sink.gauge("latency_p50_ms", p50);
            sink.gauge("latency_p99_ms", p99);
        }
        if let (Some(p50), Some(p99)) = (
            self.ttft_ms.try_percentile(50.0),
            self.ttft_ms.try_percentile(99.0),
        ) {
            sink.gauge("ttft_p50_ms", p50);
            sink.gauge("ttft_p99_ms", p99);
        }

        self.control.emit_telemetry(sink);
    }

    fn on_arrival(&mut self, now: SimTime) {
        let (_kind, prompt, output) = self.mix.sample_request(&mut self.rng);
        let gap = self.mix.next_interarrival(&mut self.rng);
        self.queue.schedule(now + gap, Ev::Arrival);
        self.enqueue_request(now, prompt, output);
    }

    /// Admits one request (from the arrival process or a replayed trace)
    /// to the next accelerator round-robin.
    fn enqueue_request(&mut self, now: SimTime, prompt: u32, output: u32) {
        self.arrivals += 1;
        let acc = self.rr % self.accels.len();
        self.rr += 1;
        self.accels[acc].queue.push_back(Pending {
            arrival: now,
            prompt_tokens: prompt,
            // Every admitted request decodes at least one token: a recorded
            // trace may carry output_tokens == 0 (e.g. a truncated entry),
            // which would underflow output_remaining on iteration completion.
            output_tokens: output.max(1),
            reuse: None,
        });
        self.pending_total += 1;
        self.start_iteration(now, acc);
    }

    /// Admits queued requests into the batch and schedules one decode
    /// iteration sized by its memory traffic.
    fn start_iteration(&mut self, now: SimTime, acc: usize) {
        if self.accels[acc].running {
            return;
        }
        let policy = self.cfg.policy;
        let kvpt = self.kvpt;
        let native = self.kv_native_retention;
        let kv_on_mrm = self.kv_on_mrm;
        let dcm = policy.uses_dcm();

        let mut prefill_write_bytes = 0u64;
        let mut prefill_tokens = 0u64;
        // Admission. The queue head is inspected in place — `Pending` is
        // all plain scalars, so its fields are read through the reference
        // and the entry leaves the queue (one `pop_front`, no clone) only
        // once its KV allocation has succeeded.
        //
        // The profiler frame opens only when admission can actually do
        // work (a queued request and batch headroom): most calls arrive
        // from `iter_done` with an empty queue, and a frame costs two
        // clock reads. The gate reads sim state but never mutates it.
        let admittable = {
            let a = &self.accels[acc];
            a.batch.len() < self.cfg.max_batch as usize && !a.queue.is_empty()
        };
        if admittable {
            self.obs_prof_enter(|i| i.admission);
        }
        loop {
            let a = &mut self.accels[acc];
            if a.batch.len() >= self.cfg.max_batch as usize {
                break;
            }
            let Some(p) = a.queue.front() else {
                break;
            };
            let (arrival, prompt_tokens, output_tokens, reuse) =
                (p.arrival, p.prompt_tokens, p.output_tokens, p.reuse);
            // Chunked prefill: bound the prompt tokens one iteration
            // absorbs (the first admission may exceed the budget so big
            // prompts are never starved).
            if prefill_tokens > 0
                && prefill_tokens + u64::from(prompt_tokens)
                    > u64::from(self.cfg.prefill_chunk_tokens)
            {
                break;
            }
            // Reused (follow-up) context: existing KV is already resident.
            // Consuming it retires the parked prefix — the state is
            // promoted into the live tail, a planned end of need.
            let mut consumed: Option<(u64, u64)> = None; // (audit seq, bytes)
            let (base_tokens, base_allocs, base_bytes) = match reuse {
                Some(ctx) => match a.cached.remove(&ctx) {
                    Some(c) => {
                        self.cached_total -= 1;
                        a.reconciler.observe_release(ctx);
                        let seq = self.control.record(
                            now,
                            ControlClass::KvPrefix,
                            ctx,
                            AuditAction::Retire,
                            "followup-consumed",
                            c.kv_bytes,
                        );
                        consumed = Some((seq, c.kv_bytes));
                        (c.tokens, c.kv_allocs, c.kv_bytes)
                    }
                    None => (0, Vec::new(), 0),
                },
                None => (0, Vec::new(), 0),
            };
            if let (Some((seq, bytes)), Some(ctx)) = (consumed, reuse) {
                let _ = self.obs_prefix_end(
                    now,
                    acc,
                    ctx,
                    SpanKind::Retire,
                    Detail {
                        bytes,
                        reason: "followup-consumed",
                        audit_seq: Some(seq),
                        required: false,
                    },
                );
            }
            let a = &mut self.accels[acc];
            let new_tokens = u64::from(prompt_tokens) + u64::from(output_tokens);
            let need = new_tokens * kvpt;
            let lifetime = self.estimator.kv_lifetime(output_tokens);
            // The per-write retention target is declared policy, not
            // inline tier logic (mrm-control owns the decision).
            let retention =
                retention_decision(kv_on_mrm, dcm, lifetime, native, self.cfg.lifetime_margin);
            // Allocate, evicting cached (completed, best-effort) contexts
            // under memory pressure: live requests outrank the follow-up
            // cache — §4's scheduler deciding "based on the state of the
            // requests that depend on that data".
            let mut evicted_here = 0u64;
            let mut evicted_obs: Vec<(u64, u64, u64)> = Vec::new(); // (ctx, seq, bytes)
            let alloc = loop {
                match a.kv_tier(policy).alloc(need) {
                    Ok(al) => break Some(al),
                    // Allocation failed — occupancy 1.0 by definition, so
                    // ask declared policy whether the prefix cache may be
                    // reclaimed under pressure (EPHEMERAL-POLICY).
                    Err(_) if self.control.may_evict(ControlClass::KvPrefix, 1.0) => {
                        // Oldest cached context first (ids are monotonic).
                        let victim = a.cached.keys().find(|&&c| Some(c) != reuse).copied();
                        match victim {
                            Some(v) => {
                                if let Some(c) = a.cached.remove(&v) {
                                    self.cached_total -= 1;
                                    a.reconciler.observe_release(v);
                                    let seq = self.control.record(
                                        now,
                                        ControlClass::KvPrefix,
                                        v,
                                        AuditAction::Evict,
                                        "memory-pressure",
                                        c.kv_bytes,
                                    );
                                    if self.obs.is_some() {
                                        evicted_obs.push((v, seq, c.kv_bytes));
                                    }
                                    let kvt = a.kv_tier(policy);
                                    for al in c.kv_allocs {
                                        let _ = kvt.free(al);
                                    }
                                }
                                evicted_here += 1;
                            }
                            None => break None,
                        }
                    }
                    Err(_) => break None,
                }
            };
            self.evictions += evicted_here;
            for (v, seq, bytes) in evicted_obs {
                let _ = self.obs_prefix_end(
                    now,
                    acc,
                    v,
                    SpanKind::Evict,
                    Detail {
                        bytes,
                        reason: "memory-pressure",
                        audit_seq: Some(seq),
                        required: false,
                    },
                );
            }
            let a = &mut self.accels[acc];
            let Some(alloc) = alloc else {
                // Genuinely out of memory even with an empty cache: put
                // reused state back and stall admission.
                if let Some(ctx) = reuse {
                    if base_bytes > 0 {
                        a.cached.insert(
                            ctx,
                            Cached {
                                kv_allocs: base_allocs,
                                kv_bytes: base_bytes,
                                tokens: base_tokens,
                                deadline: SimTime::MAX,
                                retention,
                            },
                        );
                        self.cached_total += 1;
                        let seq = self.control.record(
                            now,
                            ControlClass::KvPrefix,
                            ctx,
                            AuditAction::Store,
                            "stall-putback",
                            base_bytes,
                        );
                        self.obs_prefix_begin(now, acc, ctx, base_bytes, seq);
                    }
                }
                break;
            };
            a.queue.pop_front();
            self.pending_total -= 1;
            // Admit: the request's KV tail is Required state from here to
            // completion; give it an audit identity.
            let req = self.next_req;
            self.next_req += 1;
            let admit_seq = self.control.record(
                now,
                ControlClass::KvTail,
                req,
                AuditAction::Store,
                if reuse.is_some() {
                    "followup-admit"
                } else {
                    "admit"
                },
                need,
            );
            self.obs_admit(now, acc, req, admit_seq, need, reuse.is_some());
            let a = &mut self.accels[acc];
            // Prefill traffic: the new prompt's KV vectors are written.
            prefill_write_bytes += u64::from(prompt_tokens) * kvpt;
            prefill_tokens += u64::from(prompt_tokens);
            let mut kv_allocs = base_allocs;
            kv_allocs.push(alloc);
            a.batch.push(Active {
                arrival,
                req,
                context_tokens: base_tokens + prompt_tokens,
                output_remaining: output_tokens,
                kv_allocs,
                kv_bytes: base_bytes + need,
                retention,
                first_token_done: false,
            });
            self.active_total += 1;
        }
        if admittable {
            self.obs_prof_exit();
        }

        let a = &mut self.accels[acc];
        if a.batch.is_empty() {
            a.running = false;
            return;
        }

        // Iteration duration from memory traffic (§2.2 arithmetic).
        let weights_bytes = self.weights_bytes;
        let batch_len = a.batch.len() as u64;
        let kv_read_total: u64 = a
            .batch
            .context_tokens
            .iter()
            .map(|&c| u64::from(c) * kvpt)
            .sum();
        let act_bytes = self
            .cfg
            .model
            .activation_bytes(batch_len as u32, self.cfg.quant);

        let mut t = SimDuration::ZERO;
        // Weights: one full sequential read per iteration.
        t += self.accels[acc]
            .weights_tier(policy)
            .stream_read(weights_bytes);
        // Fault check on the weights read. A persistent uncorrectable
        // outcome means the shard must be re-fetched — modelled as a bulk
        // rewrite at its current class, charged to this iteration (§4's
        // "re-fetch from a colder tier" response; weights are immutable,
        // so recovery is a reload, never data loss).
        if self.fault_layer.is_some() {
            let age = now.duration_since(self.accels[acc].weights_written_at);
            let w_ret = self.accels[acc].weights_retention;
            let rber = self.aged_rber(self.weights_on_mrm, w_ret, age);
            if !self.read_survives(weights_bytes, rber) {
                // The ladder's work item: weights are Required, so the
                // only legal response is a refetch — recorded in the
                // audit log before anything else happens to the shard.
                let fault = self.obs_fault(now, acc, acc as u64, weights_bytes);
                let item = self
                    .control
                    .plan_fault_recovery(ControlClass::Weights, acc as u64);
                debug_assert_eq!(item.kind, WorkKind::Refetch);
                let seq0 = self.control.audit.len() as u64;
                self.control.record_work(now, &item, weights_bytes);
                let _ = self.obs_recovery(
                    now,
                    acc,
                    acc as u64,
                    Detail {
                        bytes: weights_bytes,
                        reason: "uncorrectable-read",
                        audit_seq: Some(seq0),
                        required: true,
                    },
                    fault,
                );
                self.fault_refetches += 1;
                t += self.accels[acc]
                    .weights_tier(policy)
                    .stream_write(weights_bytes, w_ret);
                self.accels[acc].weights_written_at = now;
                if let Some(sink) = self.telemetry.as_deref_mut() {
                    sink.event(now, "fault_refetch", weights_bytes as f64);
                }
            }
        }
        // KV: all active contexts read; one vector appended per context;
        // prefill KV written. The tier and the batch are disjoint fields,
        // so the batch is walked in place — no per-iteration `Vec` of
        // retentions on the hot path.
        {
            let Accel {
                hbm, alt, batch, ..
            } = &mut self.accels[acc];
            let kvt = match policy.tier_for(DataClass::KvCache) {
                TierKind::Hbm => &mut *hbm,
                _ => alt.as_mut().expect("policy requires an alternate tier"),
            };
            t += kvt.stream_read(kv_read_total);
            for &rt in &batch.retention {
                t += kvt.stream_write(kvpt, rt);
            }
            if prefill_write_bytes > 0 {
                // Prefill writes use the batch-average retention.
                let rt = batch.retention.first().copied().unwrap_or(native);
                t += kvt.stream_write(prefill_write_bytes, rt);
            }
        }
        // Activations: write + read back in HBM.
        let hbm_retention = self.hbm_retention;
        t += self.accels[acc].hbm.stream_write(act_bytes, hbm_retention);
        t += self.accels[acc].hbm.stream_read(act_bytes);
        // Prefill compute piggybacks on the decode iteration (chunked
        // prefill, [3]): the iteration takes the max of its memory time
        // and its compute time, not their sum.
        let prefill_compute =
            SimDuration::from_secs_f64(prefill_tokens as f64 / self.cfg.prefill_tokens_per_s);
        t = t.max(self.cfg.compute_floor).max(prefill_compute);

        self.iterations += 1;
        self.batch_sum += batch_len;
        self.obs_iter_begin(now, acc, batch_len);
        self.obs_prof_sim(|i| i.decode_iter, t);
        self.accels[acc].running = true;
        self.queue.schedule(now + t, Ev::IterDone { acc });
    }

    fn on_iter_done(&mut self, now: SimTime, acc: usize) {
        let policy = self.cfg.policy;
        self.obs_iter_end(now, acc);
        self.accels[acc].running = false;
        let mut finished: Vec<Active> = Vec::new();
        let mut first_tokens: Vec<u64> = Vec::new();
        {
            let a = &mut self.accels[acc];
            let mut i = 0;
            while i < a.batch.len() {
                a.batch.context_tokens[i] += 1;
                a.batch.output_remaining[i] -= 1;
                self.tokens += 1;
                if !a.batch.first_token_done[i] {
                    a.batch.first_token_done[i] = true;
                    let ttft = now.duration_since(a.batch.arrival[i]);
                    let ttft_ms = ttft.as_secs_f64() * 1e3;
                    self.ttft_ms.record(ttft_ms);
                    if let Some(sink) = self.telemetry.as_deref_mut() {
                        sink.observe("ttft_ms", ttft_ms);
                    }
                    if self.obs.is_some() {
                        first_tokens.push(a.batch.req[i]);
                    }
                }
                if a.batch.output_remaining[i] == 0 {
                    finished.push(a.batch.swap_remove(i));
                    self.active_total -= 1;
                } else {
                    i += 1;
                }
            }
        }
        for req in first_tokens {
            self.obs_first_token(now, acc, req);
        }
        for r in finished {
            self.completions += 1;
            let latency = now.duration_since(r.arrival);
            let latency_ms = latency.as_secs_f64() * 1e3;
            self.latency_ms.record(latency_ms);
            if let Some(sink) = self.telemetry.as_deref_mut() {
                sink.observe("latency_ms", latency_ms);
            }
            // The request's KV tail is retired (its need ended with the
            // final token) and the context is parked as a KV prefix for
            // follow-ups — a class transition, recorded as such.
            let retire_seq = self.control.record(
                now,
                ControlClass::KvTail,
                r.req,
                AuditAction::Retire,
                "completed",
                r.kv_bytes,
            );
            let ctx = self.next_ctx;
            self.next_ctx += 1;
            let park_seq = self.control.record(
                now,
                ControlClass::KvPrefix,
                ctx,
                AuditAction::Store,
                "park-followup",
                r.kv_bytes,
            );
            let deadline = if policy.uses_mrm() {
                rearm_deadline(now, r.retention)
            } else {
                SimTime::MAX // DRAM tiers refresh themselves
            };
            let needed_until = now + self.cfg.followup_window;
            let a = &mut self.accels[acc];
            a.cached.insert(
                ctx,
                Cached {
                    kv_allocs: r.kv_allocs,
                    kv_bytes: r.kv_bytes,
                    tokens: r.context_tokens,
                    deadline,
                    retention: r.retention,
                },
            );
            self.cached_total += 1;
            if policy.uses_mrm() {
                a.reconciler
                    .observe_store(ctx, deadline, needed_until, r.retention);
            }
            self.obs_complete(
                now,
                acc,
                r.req,
                ctx,
                Detail {
                    bytes: r.kv_bytes,
                    reason: "completed",
                    audit_seq: Some(retire_seq),
                    required: true,
                },
                park_seq,
            );
            self.queue
                .schedule(now + self.cfg.followup_window, Ev::CacheExpire { acc, ctx });
            if self.rng.gen_bool(self.cfg.followup_prob) {
                let delay = self
                    .cfg
                    .followup_window
                    .mul_f64(self.rng.next_f64().max(0.01));
                self.queue.schedule(now + delay, Ev::Followup { acc, ctx });
            }
        }
        self.start_iteration(now, acc);
    }

    fn on_followup(&mut self, now: SimTime, acc: usize, ctx: u64) {
        let (_kind, _prompt, output) = self.mix.sample_request(&mut self.rng);
        let ext = self.cfg.followup_extension;
        // Fault check on the cached-KV read before the hit/miss decision:
        // a hit whose read stays uncorrectable after the retry is demoted
        // to the recompute path — KV state is soft, so the recovery for
        // lost cache lines is "drop and recompute", never an error.
        let mut hit_survived = true;
        let mut fault_span: Option<SpanId> = None;
        if self.fault_layer.is_some() {
            let probe = match self.accels[acc].cached.get(&ctx) {
                Some(c) if now <= c.deadline => {
                    // Deadline = write time + retention, so the data's age
                    // is the retention already consumed. Self-refreshing
                    // tiers park at `SimTime::MAX`: no meaningful age.
                    let age = if c.deadline == SimTime::MAX {
                        SimDuration::ZERO
                    } else {
                        consumed_age(c.retention, c.deadline.duration_since(now))
                    };
                    (c.kv_bytes, c.retention, age)
                }
                _ => (0, SimDuration::ZERO, SimDuration::ZERO),
            };
            if probe.0 > 0 {
                let rber = self.aged_rber(self.kv_on_mrm, probe.1, probe.2);
                hit_survived = self.read_survives(probe.0, rber);
                if !hit_survived {
                    self.fault_recomputes += 1;
                    fault_span = self.obs_fault(now, acc, ctx, probe.0);
                    if let Some(sink) = self.telemetry.as_deref_mut() {
                        sink.event(now, "fault_recompute", probe.0 as f64);
                    }
                }
            }
        }
        let a = &mut self.accels[acc];
        match a.cached.get(&ctx) {
            Some(c) if now <= c.deadline && hit_survived => {
                // Valid cached KV: continue the context without prefill of
                // the history.
                self.cache_hits += 1;
                a.queue.push_back(Pending {
                    arrival: now,
                    prompt_tokens: ext,
                    output_tokens: output,
                    reuse: Some(ctx),
                });
                self.pending_total += 1;
            }
            Some(_) => {
                // Retention lapsed before the follow-up — or the cached
                // KV read came back uncorrectable: recompute the whole
                // context (the §4 soft-state recovery path). The recompute
                // is recorded before the drop, which is what makes the
                // reclaim legal under the REQUIRED-DURABLE oracle.
                self.recomputes += 1;
                let (tokens, bytes) = a
                    .cached
                    .get(&ctx)
                    .map(|c| (c.tokens, c.kv_bytes))
                    .unwrap_or((0, 0));
                let item = WorkItem {
                    id: ctx,
                    class: ControlClass::KvPrefix,
                    kind: WorkKind::RecomputeDrop,
                    reason: if hit_survived {
                        "retention-lapsed"
                    } else {
                        "uncorrectable-read"
                    },
                };
                let seq0 = self.control.audit.len() as u64;
                self.control.record_work(now, &item, bytes);
                // The recovery decision (audit seq0) authorizes the drop
                // (seq0 + 1): export that authorization as a flow arrow.
                let rec = self.obs_recovery(
                    now,
                    acc,
                    ctx,
                    Detail {
                        bytes,
                        reason: item.reason,
                        audit_seq: Some(seq0),
                        required: false,
                    },
                    fault_span,
                );
                let dropped = self.obs_prefix_end(
                    now,
                    acc,
                    ctx,
                    SpanKind::Drop,
                    Detail {
                        bytes,
                        reason: item.reason,
                        audit_seq: Some(seq0 + 1),
                        required: true,
                    },
                );
                self.obs_link(rec, dropped);
                self.free_cached(acc, ctx);
                let a = &mut self.accels[acc];
                a.queue.push_back(Pending {
                    arrival: now,
                    prompt_tokens: tokens + ext,
                    output_tokens: output,
                    reuse: None,
                });
                self.pending_total += 1;
            }
            None => {
                // Already evicted (window raced the follow-up): recompute
                // with a fresh sampled prompt. Nothing is cached, so there
                // is no drop to account — just the recompute itself.
                self.recomputes += 1;
                let seq = self.control.record(
                    now,
                    ControlClass::KvPrefix,
                    ctx,
                    AuditAction::Recompute,
                    "already-evicted",
                    0,
                );
                let _ = self.obs_recovery(
                    now,
                    acc,
                    ctx,
                    Detail {
                        bytes: 0,
                        reason: "already-evicted",
                        audit_seq: Some(seq),
                        required: false,
                    },
                    None,
                );
                let (_k, p, o) = self.mix.sample_request(&mut self.rng);
                let a = &mut self.accels[acc];
                a.queue.push_back(Pending {
                    arrival: now,
                    prompt_tokens: p,
                    output_tokens: o,
                    reuse: None,
                });
                self.pending_total += 1;
            }
        }
        self.start_iteration(now, acc);
    }

    /// Releases a cached context's memory and tells the reconciler the
    /// object is gone. Pure mechanism: the *decision* (and its audit
    /// record) belongs to the caller.
    fn free_cached(&mut self, acc: usize, ctx: u64) {
        let policy = self.cfg.policy;
        let a = &mut self.accels[acc];
        if let Some(c) = a.cached.remove(&ctx) {
            a.reconciler.observe_release(ctx);
            let kvt = a.kv_tier(policy);
            for al in c.kv_allocs {
                let _ = kvt.free(al);
            }
            self.cached_total -= 1;
        }
    }

    fn on_cache_expire(&mut self, now: SimTime, acc: usize, ctx: u64) {
        if let Some(bytes) = self.accels[acc].cached.get(&ctx).map(|c| c.kv_bytes) {
            let seq = self.control.record(
                now,
                ControlClass::KvPrefix,
                ctx,
                AuditAction::Drop,
                "ttl-expired",
                bytes,
            );
            let _ = self.obs_prefix_end(
                now,
                acc,
                ctx,
                SpanKind::Drop,
                Detail {
                    bytes,
                    reason: "ttl-expired",
                    audit_seq: Some(seq),
                    required: false,
                },
            );
            self.free_cached(acc, ctx);
        }
        self.start_iteration(now, acc);
    }

    /// The §4 maintenance sweep, split reconciler-style: the
    /// [`Reconciler`] plans typed work items from deadlines + declared
    /// policy, and this executor carries them out in order — charging
    /// scrubs, rewriting at escalation classes, reclaiming lapsed state —
    /// with every outcome recorded in the audit log.
    ///
    /// Planning the whole sweep before executing is byte-identical to the
    /// old interleaved decide/execute loop: the plan step reads only
    /// per-object tracker state and draws no randomness, so the fault
    /// model sees the same reads in the same order.
    fn on_maintenance(&mut self, now: SimTime, acc: usize) {
        let policy = self.cfg.policy;
        if policy.uses_mrm() && self.cfg.scrub_enabled {
            let sweep = self.obs_sweep_begin(now, acc);
            let horizon = now + self.cfg.maintenance_period * 2;
            self.obs_prof_enter(|i| i.reconcile_plan);
            let items = self.accels[acc]
                .reconciler
                .plan(now, horizon, &self.control.registry);
            self.obs_prof_exit();
            for item in items {
                let ctx = item.id;
                match item.kind {
                    WorkKind::Refresh => {
                        let (bytes, retention, deadline) = {
                            let c = &self.accels[acc].cached[&ctx];
                            (c.kv_bytes, c.retention, c.deadline)
                        };
                        // Scrub verification read: refreshing re-reads the
                        // data at its current age. An uncorrectable outcome
                        // means re-arming the same class would keep the
                        // data at the edge of correctability — escalate to
                        // the policy's long class instead (the §4 control
                        // plane degrading its advertised retention).
                        let remaining = if deadline > now {
                            deadline.duration_since(now)
                        } else {
                            SimDuration::ZERO
                        };
                        let age = consumed_age(retention, remaining);
                        let rber = self.aged_rber(self.kv_on_mrm, retention, age);
                        if self.read_survives(bytes, rber) {
                            let a = &mut self.accels[acc];
                            a.kv_tier(policy).charge_scrub(bytes);
                            a.reconciler.observe_refreshed(ctx, now);
                            if let Some(c) = a.cached.get_mut(&ctx) {
                                c.deadline = rearm_deadline(now, retention);
                            }
                            let seq0 = self.control.audit.len() as u64;
                            self.control.record_work(now, &item, bytes);
                            self.obs_work(
                                now,
                                acc,
                                SpanKind::Refresh,
                                ctx,
                                Detail {
                                    bytes,
                                    reason: item.reason,
                                    audit_seq: Some(seq0),
                                    required: false,
                                },
                                None,
                            );
                            self.scrubs += 1;
                            self.scrub_bytes += bytes;
                            if let Some(sink) = self.telemetry.as_deref_mut() {
                                sink.event(now, "scrub", bytes as f64);
                            }
                        } else {
                            self.fault_escalations += 1;
                            let fault = self.obs_fault(now, acc, ctx, bytes);
                            let long = self
                                .control
                                .registry
                                .policy(ControlClass::KvPrefix)
                                .ok()
                                .and_then(|p| p.escalation_class)
                                .unwrap_or(SimDuration::from_days(7));
                            let a = &mut self.accels[acc];
                            let _ = a.kv_tier(policy).stream_write(bytes, long);
                            let new_deadline = rearm_deadline(now, long);
                            a.reconciler
                                .observe_store(ctx, new_deadline, new_deadline, long);
                            if let Some(c) = a.cached.get_mut(&ctx) {
                                c.deadline = new_deadline;
                                c.retention = long;
                            }
                            let seq = self.control.record(
                                now,
                                ControlClass::KvPrefix,
                                ctx,
                                AuditAction::Escalate,
                                "scrub-verify-failed",
                                bytes,
                            );
                            self.obs_work(
                                now,
                                acc,
                                SpanKind::Migrate,
                                ctx,
                                Detail {
                                    bytes,
                                    reason: "scrub-verify-failed",
                                    audit_seq: Some(seq),
                                    required: false,
                                },
                                fault,
                            );
                            self.migrations += 1;
                            self.migration_bytes += bytes;
                            if let Some(sink) = self.telemetry.as_deref_mut() {
                                sink.event(now, "fault_escalation", bytes as f64);
                            }
                        }
                    }
                    WorkKind::Migrate { to } => {
                        // Rewrite at the escalation class: one-time cost,
                        // long deadline.
                        let bytes = self.accels[acc].cached[&ctx].kv_bytes;
                        let a = &mut self.accels[acc];
                        let kvt = a.kv_tier(policy);
                        let _ = kvt.stream_write(bytes, to);
                        let deadline = rearm_deadline(now, to);
                        a.reconciler.observe_store(ctx, deadline, deadline, to);
                        if let Some(c) = a.cached.get_mut(&ctx) {
                            c.deadline = deadline;
                            c.retention = to;
                        }
                        let seq0 = self.control.audit.len() as u64;
                        self.control.record_work(now, &item, bytes);
                        self.obs_work(
                            now,
                            acc,
                            SpanKind::Migrate,
                            ctx,
                            Detail {
                                bytes,
                                reason: item.reason,
                                audit_seq: Some(seq0),
                                required: false,
                            },
                            None,
                        );
                        self.migrations += 1;
                        self.migration_bytes += bytes;
                        if let Some(sink) = self.telemetry.as_deref_mut() {
                            sink.event(now, "migrate", bytes as f64);
                        }
                    }
                    WorkKind::RecomputeDrop | WorkKind::Retire => {
                        // Need lapsed. No recompute happens *now* — the
                        // data is simply reclaimed, and a later follow-up
                        // that misses takes the recompute path — so the
                        // record is the drop (or retire) alone.
                        let bytes = self.accels[acc]
                            .cached
                            .get(&ctx)
                            .map(|c| c.kv_bytes)
                            .unwrap_or(0);
                        let action = if item.kind == WorkKind::Retire {
                            AuditAction::Retire
                        } else {
                            AuditAction::Drop
                        };
                        let seq = self.control.record(
                            now,
                            ControlClass::KvPrefix,
                            ctx,
                            action,
                            item.reason,
                            bytes,
                        );
                        let span_kind = if item.kind == WorkKind::Retire {
                            SpanKind::Retire
                        } else {
                            SpanKind::Drop
                        };
                        let _ = self.obs_prefix_end(
                            now,
                            acc,
                            ctx,
                            span_kind,
                            Detail {
                                bytes,
                                reason: item.reason,
                                audit_seq: Some(seq),
                                required: false,
                            },
                        );
                        self.free_cached(acc, ctx);
                        self.drops += 1;
                        if let Some(sink) = self.telemetry.as_deref_mut() {
                            sink.event(now, "drop", bytes as f64);
                        }
                    }
                    WorkKind::Refetch => unreachable!("plan never emits refetch"),
                }
            }
            self.obs_sweep_end(now, sweep);
        }
        self.queue
            .schedule(now + self.cfg.maintenance_period, Ev::Maintenance { acc });
    }

    /// §2's model swap: bulk-overwrite the weight shard in its tier. With
    /// DCM the new weights are programmed for the deployment period (they
    /// will be overwritten anyway); fixed systems pay the native class.
    fn on_weight_redeploy(&mut self, now: SimTime, acc: usize) {
        let policy = self.cfg.policy;
        let weights_bytes = self.cfg.model.weights_bytes(self.cfg.quant);
        let period = self
            .cfg
            .weight_redeploy_period
            .expect("redeploy event without period");
        let retention = retention_decision(
            policy.tier_for(DataClass::Weights) == TierKind::Mrm,
            policy.uses_dcm(),
            period,
            presets::mrm_hours().retention,
            self.cfg.lifetime_margin,
        );
        // The old shard's need ends (Retire — always legal for Required
        // data) and the new model's shard is stored in its place.
        self.control.record(
            now,
            ControlClass::Weights,
            acc as u64,
            AuditAction::Retire,
            "superseded",
            weights_bytes,
        );
        let seq = self.control.record(
            now,
            ControlClass::Weights,
            acc as u64,
            AuditAction::Store,
            "redeploy",
            weights_bytes,
        );
        self.obs_work(
            now,
            acc,
            SpanKind::Redeploy,
            acc as u64,
            Detail {
                bytes: weights_bytes,
                reason: "superseded",
                audit_seq: Some(seq),
                required: false,
            },
            None,
        );
        let wt = self.accels[acc].weights_tier(policy);
        let _ = wt.stream_write(weights_bytes, retention);
        self.accels[acc].weights_written_at = now;
        self.accels[acc].weights_retention = retention;
        self.redeploys += 1;
        self.queue
            .schedule(now + period, Ev::WeightRedeploy { acc });
    }

    fn finish(mut self, end: SimTime) -> (ClusterReport, AuditLog) {
        // Close out any snapshot boundaries between the last event and the
        // end of the simulated window.
        self.pump_telemetry(end);
        self.obs_finish(end);
        let elapsed = end.duration_since(SimTime::ZERO);
        // Background energy for the whole window on every tier.
        for a in &mut self.accels {
            a.hbm.charge_background(elapsed);
            if let Some(alt) = &mut a.alt {
                alt.charge_background(elapsed);
            }
        }

        let mut tiers: Vec<TierReport> = Vec::new();
        let mut total = EnergyBreakdown::default();
        let mut cost = 0.0;
        let add_tier = |t: &Tier, tiers: &mut Vec<TierReport>, total: &mut EnergyBreakdown| {
            let e = t.energy();
            let (r, w) = t.traffic();
            match tiers.iter_mut().find(|tr| tr.tier == t.kind().label()) {
                Some(tr) => {
                    tr.bytes_read += r;
                    tr.bytes_written += w;
                    tr.energy = tr.energy.merged(&e);
                }
                None => tiers.push(TierReport {
                    tier: t.kind().label().to_string(),
                    capacity_bytes: t.capacity_bytes(),
                    bytes_read: r,
                    bytes_written: w,
                    energy: e,
                }),
            }
            *total = total.merged(&e);
        };
        for a in &self.accels {
            add_tier(&a.hbm, &mut tiers, &mut total);
            cost += a.hbm.cost_units();
            if let Some(alt) = &a.alt {
                add_tier(alt, &mut tiers, &mut total);
                cost += alt.cost_units();
            }
        }

        let faults = match &self.fault_layer {
            Some(model) => {
                let s = model.stats();
                FaultSummary {
                    enabled: true,
                    reads: s.reads,
                    raw_flips: s.raw_flips,
                    raw_ber: s.raw_ber(),
                    corrected: s.corrected,
                    detected_ue: s.detected_ue,
                    miscorrected: s.miscorrected,
                    silent: s.silent,
                    retries: self.fault_retries,
                    weight_refetches: self.fault_refetches,
                    kv_recomputes: self.fault_recomputes,
                    scrub_escalations: self.fault_escalations,
                }
            }
            None => FaultSummary::default(),
        };

        let dur_s = elapsed.as_secs_f64();
        let tokens_per_s = self.tokens as f64 / dur_s;
        let report = ClusterReport {
            policy: self.cfg.policy.label().to_string(),
            accelerators: self.cfg.accelerators,
            duration_s: dur_s,
            arrivals: self.arrivals,
            completions: self.completions,
            tokens: self.tokens,
            tokens_per_s,
            cache_hits: self.cache_hits,
            recomputes: self.recomputes,
            scrubs: self.scrubs,
            migrations: self.migrations,
            drops: self.drops,
            evictions: self.evictions,
            redeploys: self.redeploys,
            energy_total_j: total.total_j(),
            j_per_token: total.total_j() / self.tokens.max(1) as f64,
            housekeeping_j: total.housekeeping_j,
            cost_units: cost,
            tokens_per_s_per_kcost: tokens_per_s / (cost / 1000.0),
            kv_capacity_bytes: self.kv_capacity_bytes,
            p50_latency_ms: self.latency_ms.try_percentile(50.0),
            p99_latency_ms: self.latency_ms.try_percentile(99.0),
            p50_ttft_ms: self.ttft_ms.try_percentile(50.0),
            p99_ttft_ms: self.ttft_ms.try_percentile(99.0),
            iterations: self.iterations,
            mean_batch: self.batch_sum as f64 / self.iterations.max(1) as f64,
            control: self.control.summary(),
            faults,
            tiers,
        };
        (report, self.control.audit)
    }
}

/// Convenience: build and run in one call.
pub fn run_cluster(cfg: ClusterConfig) -> ClusterReport {
    ClusterSim::new(cfg).run()
}

/// [`run_cluster`], also returning the audit log for oracle checks.
pub fn run_cluster_with_audit(cfg: ClusterConfig) -> (ClusterReport, AuditLog) {
    ClusterSim::new(cfg).run_with_audit()
}

/// [`run_cluster`] with a telemetry sink attached. Produces the exact same
/// report as [`run_cluster`] on the same config: the sink is observe-only
/// (see [`ClusterSim::attach_telemetry`]).
pub fn run_cluster_with_telemetry(
    cfg: ClusterConfig,
    sink: &mut dyn TelemetrySink,
) -> ClusterReport {
    let mut sim = ClusterSim::new(cfg);
    sim.attach_telemetry(sink);
    sim.run()
}

/// Fully-observed run: telemetry sink, causal tracer + profiler, and the
/// audit log all come back alongside the report. The obs bundle obeys the
/// same contract as the sink — observe-only, byte-identical report (see
/// [`ClusterSim::attach_obs`] and lint rule D8).
pub fn run_cluster_observed(
    cfg: ClusterConfig,
    sink: &mut dyn TelemetrySink,
    obs: &mut Obs,
) -> (ClusterReport, AuditLog) {
    let mut sim = ClusterSim::new(cfg);
    sim.attach_telemetry(sink);
    sim.attach_obs(obs);
    sim.run_with_audit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: PlacementPolicy) -> ClusterReport {
        let mut cfg = ClusterConfig::llama70b(policy, 2, 8.0);
        cfg.duration = SimDuration::from_secs(30);
        run_cluster(cfg)
    }

    #[test]
    fn cluster_makes_progress_on_all_policies() {
        for p in PlacementPolicy::all() {
            let r = quick(p);
            assert!(r.tokens > 100, "{}: only {} tokens", r.policy, r.tokens);
            assert!(r.completions > 0, "{}", r.policy);
            assert!(r.tokens_per_s > 0.0);
            assert!(r.energy_total_j > 0.0);
            assert!(r.p50_latency_ms.unwrap() > 0.0);
            assert!(r.p99_latency_ms.unwrap() >= r.p50_latency_ms.unwrap());
        }
    }

    #[test]
    fn zero_admission_reports_absent_percentiles() {
        // Regression for the empty-histogram panic: a cluster that admits
        // nothing must finish cleanly with `None` percentiles, not abort in
        // `LogHistogram::percentile`.
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 2, 0.0);
        cfg.duration = SimDuration::from_secs(30);
        let r = run_cluster(cfg);
        assert_eq!(r.completions, 0);
        assert_eq!(r.tokens, 0);
        assert_eq!(r.p50_latency_ms, None);
        assert_eq!(r.p99_latency_ms, None);
        assert_eq!(r.p99_ttft_ms, None);
    }

    #[test]
    fn telemetry_sink_does_not_perturb_report() {
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 2, 8.0);
        cfg.duration = SimDuration::from_secs(30);
        let plain = run_cluster(cfg.clone());
        let mut tele = mrm_telemetry::SimTelemetry::new(SimDuration::from_secs(5));
        let traced = run_cluster_with_telemetry(cfg, &mut tele);

        // The report must be bit-identical with the sink attached.
        assert_eq!(plain.tokens, traced.tokens);
        assert_eq!(plain.completions, traced.completions);
        assert_eq!(plain.cache_hits, traced.cache_hits);
        assert_eq!(plain.scrubs, traced.scrubs);
        assert_eq!(plain.migrations, traced.migrations);
        assert_eq!(plain.evictions, traced.evictions);
        // Telemetry must be a pure observer: bit-identical results.
        assert_eq!(
            plain.energy_total_j.to_bits(),
            traced.energy_total_j.to_bits()
        );
        assert_eq!(
            plain.p99_latency_ms.map(f64::to_bits),
            traced.p99_latency_ms.map(f64::to_bits)
        );

        // 30 s pumped at 5 s → exactly 6 boundary-stamped snapshots.
        let snaps = tele.snapshots();
        assert_eq!(snaps.len(), 6);
        for (k, s) in snaps.iter().enumerate() {
            assert_eq!(s.sim_time_ns, (k as u64 + 1) * 5_000_000_000);
        }
        let reg = tele.registry();
        assert_eq!(reg.counter_value("cluster_tokens"), Some(traced.tokens));
        assert_eq!(reg.counter_value("cluster_scrubs"), Some(traced.scrubs));
        // Under HbmMrm the weights and KV live in MRM; HBM only streams
        // activations, so its occupancy gauge exists but may read zero.
        assert!(reg.gauge_value("tier_hbm_occupancy").is_some());
        assert!(reg.gauge_value("tier_mrm_occupancy").unwrap() > 0.0);
        let lat = reg.histogram_by_name("latency_ms").expect("latency hist");
        assert_eq!(lat.count(), traced.completions);
    }

    #[test]
    fn obs_bundle_does_not_perturb_report() {
        // The central mrm-obs contract: attaching the tracer + profiler
        // changes NOTHING about the simulation — report and audit log are
        // byte-identical, even with the fault layer (and its RNG) active.
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrmDcm, 2, 8.0);
        cfg.duration = SimDuration::from_secs(30);
        cfg.faults = FaultConfig {
            ber_scale: 40.0,
            provision_margin: Some(1.0),
            ..FaultConfig::mrm()
        };
        let (plain, plain_audit) = run_cluster_with_audit(cfg.clone());

        let mut tele = mrm_telemetry::SimTelemetry::new(SimDuration::from_secs(5));
        let mut obs = Obs::new(cfg.seed);
        let (observed, obs_audit) = run_cluster_observed(cfg, &mut tele, &mut obs);

        assert_eq!(plain.tokens, observed.tokens);
        assert_eq!(plain.completions, observed.completions);
        assert_eq!(plain.cache_hits, observed.cache_hits);
        assert_eq!(plain.recomputes, observed.recomputes);
        assert_eq!(plain.scrubs, observed.scrubs);
        assert_eq!(plain.migrations, observed.migrations);
        assert_eq!(plain.evictions, observed.evictions);
        assert_eq!(plain.faults, observed.faults);
        assert_eq!(
            plain.energy_total_j.to_bits(),
            observed.energy_total_j.to_bits()
        );
        assert_eq!(
            plain.p99_latency_ms.map(f64::to_bits),
            observed.p99_latency_ms.map(f64::to_bits)
        );
        assert_eq!(
            plain.p99_ttft_ms.map(f64::to_bits),
            observed.p99_ttft_ms.map(f64::to_bits)
        );
        // Audit logs identical entry-for-entry: obs never adds, drops, or
        // reorders control decisions.
        assert_eq!(plain_audit.len(), obs_audit.len());
        for (a, b) in plain_audit.records().iter().zip(obs_audit.records().iter()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.reason, b.reason);
            assert_eq!(a.bytes, b.bytes);
        }

        // And the trace actually observed something.
        assert!(obs.tracer.total() > 0, "tracer recorded no spans");
        assert!(
            obs.tracer.spans().any(|s| s.kind == SpanKind::Admission),
            "no admission spans"
        );
        assert!(
            obs.tracer.spans().any(|s| s.kind == SpanKind::DecodeIter),
            "no decode-iteration slices"
        );
        let prof = obs.profiler.report(5);
        assert!(
            prof.top.iter().any(|h| h.name == "iter_done"),
            "profiler missed the decode handler"
        );
    }

    #[test]
    fn fault_rate_zero_is_byte_identical_to_no_faults() {
        // The differential chaos test: constructing the fault layer with
        // `ber_scale = 0` must leave the entire report byte-identical to a
        // run with no layer at all — injection at zero effective RBER is a
        // true no-op (no RNG draw, no charge, no counter).
        let mut base = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 2, 8.0);
        base.duration = SimDuration::from_secs(30);
        let mut zeroed = base.clone();
        zeroed.faults = FaultConfig {
            ber_scale: 0.0,
            ..FaultConfig::mrm()
        };
        let mut plain = run_cluster(base);
        let mut zero = run_cluster(zeroed);
        // Only the `enabled` flag may differ; blank the summaries and
        // compare everything else byte for byte through serde.
        plain.faults = FaultSummary::default();
        zero.faults = FaultSummary::default();
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&zero).unwrap(),
            "a rate-0 fault layer must not perturb the simulation"
        );
    }

    /// A config provisioned so tightly that retention faults must surface:
    /// KV retention equal to the follow-up window, RBER scaled up.
    fn chaos_cfg() -> ClusterConfig {
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 2, 8.0);
        cfg.duration = SimDuration::from_secs(90);
        cfg.followup_window = SimDuration::from_secs(20);
        cfg.hint_window = SimDuration::from_secs(20);
        cfg.followup_prob = 0.8;
        cfg.maintenance_period = SimDuration::from_secs(5);
        cfg.faults = FaultConfig {
            ber_scale: 40.0,
            provision_margin: Some(1.0),
            ..FaultConfig::mrm()
        };
        cfg
    }

    #[test]
    fn seeded_faults_are_deterministic() {
        let a = run_cluster(chaos_cfg());
        let b = run_cluster(chaos_cfg());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed must produce a byte-identical faulted report"
        );
    }

    #[test]
    fn tight_margin_engages_recovery_and_blocks_sdc() {
        let r = run_cluster(chaos_cfg());
        assert!(r.faults.enabled);
        assert!(r.faults.reads > 0, "injection must have run");
        assert!(r.faults.raw_flips > 0, "margin 1 at 40x BER must flip bits");
        assert!(r.faults.corrected > 0, "ECC must absorb the bulk");
        assert!(
            r.faults.detected_ue + r.faults.miscorrected > 0,
            "retention at the data lifetime must break through t=2"
        );
        assert!(r.faults.retries > 0, "recovery must at least retry");
        assert!(
            r.faults.kv_recomputes > 0,
            "persistent KV UEs must demote hits to recomputes"
        );
        // Demoted hits are counted in the serving recompute totals too.
        assert!(r.recomputes >= r.faults.kv_recomputes);
        // The acceptance bar: the recovery pipeline holds cluster-level
        // silent data corruption at zero (outer CRC catches every BCH
        // miscorrection; everything else is retried or recomputed).
        assert_eq!(r.faults.silent, 0, "SDC must be zero: {:?}", r.faults);
        // The cluster still serves tokens through all of this.
        assert!(r.tokens > 100);
    }

    #[test]
    fn failed_scrub_verification_escalates_to_migration() {
        // Under-provisioned retention (margin 0.25: class = 5 s, needed
        // 20 s) makes the sweep refresh; the verification read at 40x BER
        // near end-of-retention fails and must escalate to the 7-day
        // class instead of re-arming the dying one.
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 2, 8.0);
        cfg.duration = SimDuration::from_secs(90);
        cfg.followup_window = SimDuration::from_secs(20);
        cfg.hint_window = SimDuration::from_secs(20);
        cfg.followup_prob = 0.2;
        cfg.maintenance_period = SimDuration::from_secs(2);
        cfg.faults = FaultConfig {
            ber_scale: 40.0,
            provision_margin: Some(0.25),
            ..FaultConfig::mrm()
        };
        let r = run_cluster(cfg);
        assert!(
            r.faults.scrub_escalations > 0,
            "failed verification reads must escalate: {:?}",
            r.faults
        );
        assert!(
            r.migrations >= r.faults.scrub_escalations,
            "every escalation is a migration"
        );
        assert_eq!(r.faults.silent, 0);
    }

    #[test]
    fn fault_telemetry_reaches_the_sink() {
        let mut tele = mrm_telemetry::SimTelemetry::new(SimDuration::from_secs(5));
        let r = run_cluster_with_telemetry(chaos_cfg(), &mut tele);
        let reg = tele.registry();
        assert_eq!(
            reg.counter_value("cluster_fault_reads"),
            Some(r.faults.reads)
        );
        assert_eq!(
            reg.counter_value("cluster_fault_raw_flips"),
            Some(r.faults.raw_flips)
        );
        assert_eq!(
            reg.counter_value("cluster_fault_recomputes"),
            Some(r.faults.kv_recomputes)
        );
        assert_eq!(
            reg.counter_value("cluster_fault_silent"),
            Some(r.faults.silent)
        );
        assert!(reg.gauge_value("cluster_fault_raw_ber").unwrap() > 0.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = quick(PlacementPolicy::HbmMrm);
        let b = quick(PlacementPolicy::HbmMrm);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.completions, b.completions);
        assert!((a.energy_total_j - b.energy_total_j).abs() < 1e-9);
        assert_eq!(a.cache_hits, b.cache_hits);
    }

    #[test]
    fn mrm_beats_hbm_on_energy_per_token() {
        // §3: MRM's read energy (1.5 vs 3.9 pJ/bit) plus zero refresh must
        // show up as lower J/token.
        let hbm = quick(PlacementPolicy::HbmOnly);
        let mrm = quick(PlacementPolicy::HbmMrm);
        assert!(
            mrm.j_per_token < hbm.j_per_token,
            "MRM {} J/tok vs HBM {} J/tok",
            mrm.j_per_token,
            hbm.j_per_token
        );
    }

    #[test]
    fn lpddr_cuts_throughput() {
        // §3: LPDDR "reduce[s] the bandwidth at which the data is
        // available" — visible as lower tokens/s under load.
        let hbm = quick(PlacementPolicy::HbmOnly);
        let lpddr = quick(PlacementPolicy::HbmLpddr);
        assert!(
            lpddr.tokens_per_s < hbm.tokens_per_s,
            "LPDDR {} vs HBM {}",
            lpddr.tokens_per_s,
            hbm.tokens_per_s
        );
    }

    #[test]
    fn mrm_matches_or_beats_hbm_throughput() {
        let hbm = quick(PlacementPolicy::HbmOnly);
        let mrm = quick(PlacementPolicy::HbmMrm);
        assert!(
            mrm.tokens_per_s >= hbm.tokens_per_s * 0.95,
            "MRM {} vs HBM {}",
            mrm.tokens_per_s,
            hbm.tokens_per_s
        );
    }

    #[test]
    fn mrm_offers_more_kv_capacity() {
        let hbm = quick(PlacementPolicy::HbmOnly);
        let mrm = quick(PlacementPolicy::HbmMrm);
        assert!(mrm.kv_capacity_bytes > 2 * hbm.kv_capacity_bytes);
    }

    #[test]
    fn dram_housekeeping_exceeds_mrm() {
        let hbm = quick(PlacementPolicy::HbmOnly);
        let mrm = quick(PlacementPolicy::HbmMrm);
        assert!(
            hbm.housekeeping_j > mrm.housekeeping_j,
            "HBM refresh {} J vs MRM scrub {} J",
            hbm.housekeeping_j,
            mrm.housekeeping_j
        );
    }

    #[test]
    fn followups_produce_hits() {
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 2, 8.0);
        cfg.duration = SimDuration::from_secs(60);
        cfg.followup_prob = 0.8;
        let r = run_cluster(cfg);
        assert!(r.cache_hits > 0, "expected follow-up cache hits");
    }

    #[test]
    fn optimistic_hints_force_scrubs() {
        // The §4 refresh path: the estimator assumes a 1-minute follow-up
        // window, so DCM programs short classes — but the cache actually
        // holds contexts 30 minutes, so the maintenance sweep must scrub
        // (or migrate) to keep them alive.
        // 10-minute DCM class deadlines land ~11 min in; run past them, at
        // an arrival rate low enough that the cache is not eviction-bound
        // (0.2 req/s x 30 min x ~0.4 GB fits the 244 GB KV tier).
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrmDcm, 1, 0.2);
        cfg.duration = SimDuration::from_secs(1200);
        cfg.hint_window = SimDuration::from_mins(1);
        cfg.followup_window = SimDuration::from_mins(30);
        cfg.followup_prob = 0.0; // isolate the maintenance path
        cfg.maintenance_period = SimDuration::from_secs(30);
        let r = run_cluster(cfg);
        assert!(
            r.scrubs + r.migrations > 0,
            "under-provisioned retention must trigger control-plane action"
        );
    }

    #[test]
    fn migrate_fires_for_long_needs() {
        // Need (2 h) spans many 10-minute retention periods: the decision
        // logic must choose Migrate at least sometimes.
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrmDcm, 1, 0.05);
        cfg.duration = SimDuration::from_secs(1200);
        cfg.hint_window = SimDuration::from_mins(1);
        cfg.followup_window = SimDuration::from_hours(2);
        cfg.followup_prob = 0.0;
        cfg.maintenance_period = SimDuration::from_secs(30);
        let r = run_cluster(cfg);
        assert!(
            r.migrations > 0,
            "long-lived cached data must migrate to a longer class"
        );
    }

    #[test]
    fn scrub_disabled_turns_expiry_into_recomputes() {
        let mk = |scrub: bool| {
            let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrmDcm, 1, 0.2);
            cfg.duration = SimDuration::from_secs(1500);
            cfg.hint_window = SimDuration::from_mins(1);
            cfg.followup_window = SimDuration::from_mins(30);
            cfg.followup_prob = 0.9;
            cfg.scrub_enabled = scrub;
            cfg.maintenance_period = SimDuration::from_secs(30);
            run_cluster(cfg)
        };
        let with = mk(true);
        let without = mk(false);
        assert!(
            without.recomputes > with.recomputes,
            "without scrubbing, expired follow-ups must recompute: {} vs {}",
            without.recomputes,
            with.recomputes
        );
    }

    #[test]
    fn weight_redeploys_charge_the_weights_tier() {
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 1, 4.0);
        cfg.duration = SimDuration::from_secs(120);
        cfg.weight_redeploy_period = Some(SimDuration::from_secs(30));
        let with = run_cluster(cfg.clone());
        cfg.weight_redeploy_period = None;
        let without = run_cluster(cfg);
        assert_eq!(with.redeploys, 4, "one redeploy per 30 s per accelerator");
        let w_mrm = with.tiers.iter().find(|t| t.tier == "MRM").unwrap();
        let wo_mrm = without.tiers.iter().find(|t| t.tier == "MRM").unwrap();
        assert!(
            w_mrm.bytes_written > wo_mrm.bytes_written + 3 * 140_000_000_000,
            "redeploys must bulk-write the weights"
        );
    }

    #[test]
    fn trace_replay_drives_the_cluster_reproducibly() {
        use mrm_workload::replay::RequestTrace;
        let mix = mrm_workload::traces::TraceMix::splitwise_default(4096, 6.0);
        let mut rng = mrm_sim::rng::SimRng::seed_from(5);
        let trace = RequestTrace::record(&mix, 150, &mut rng);

        let run = |trace: RequestTrace| {
            let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 2, 999.0);
            cfg.duration = SimDuration::from_secs(40);
            cfg.trace = Some(trace);
            run_cluster(cfg)
        };
        let a = run(trace.clone());
        let b = run(trace.clone());
        assert_eq!(a.tokens, b.tokens, "trace replay must be deterministic");
        // Arrivals within the 40 s window came from the trace, not Poisson.
        let expected = trace
            .entries()
            .iter()
            .filter(|e| e.arrival <= SimDuration::from_secs(40))
            .count() as u64;
        assert_eq!(a.arrivals, expected);
        assert!(a.tokens > 0);
    }

    #[test]
    fn ttft_is_recorded_and_below_total_latency() {
        let r = quick(PlacementPolicy::HbmMrm);
        assert!(r.p50_ttft_ms.unwrap() > 0.0);
        assert!(
            r.p50_ttft_ms.unwrap() <= r.p50_latency_ms.unwrap(),
            "first token precedes completion"
        );
        assert!(r.p99_ttft_ms.unwrap() >= r.p50_ttft_ms.unwrap());
    }

    #[test]
    fn tier_reports_cover_policy() {
        let r = quick(PlacementPolicy::HbmMrm);
        let names: Vec<&str> = r.tiers.iter().map(|t| t.tier.as_str()).collect();
        assert!(names.contains(&"HBM"));
        assert!(names.contains(&"MRM"));
        let mrm = r.tiers.iter().find(|t| t.tier == "MRM").unwrap();
        assert!(
            mrm.bytes_read > mrm.bytes_written * 100,
            "read-dominated (§2.2)"
        );
    }

    #[test]
    fn zero_output_trace_entry_is_admitted_without_underflow() {
        // Regression: a trace entry with output_tokens == 0 used to
        // underflow `output_remaining` when its first iteration completed.
        // Admission clamps to one output token, so the request completes.
        let trace = RequestTrace::from_csv(
            "0.5,conversation,128,0\n1.0,coding,256,4\n1.5,conversation,64,0\n",
        )
        .unwrap();
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 1, 999.0);
        cfg.duration = SimDuration::from_secs(20);
        cfg.trace = Some(trace);
        let r = run_cluster(cfg);
        assert_eq!(r.arrivals, 3);
        assert_eq!(r.completions, 3, "zero-output requests must still finish");
        // Each zero-output request yields exactly one decode token.
        assert!(r.tokens >= 2 + 4);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 2, 8.0);
        assert!(ok.validate().is_ok());

        let mut cfg = ok.clone();
        cfg.accelerators = 0;
        assert!(cfg.validate().unwrap_err().contains("accelerators"));

        let mut cfg = ok.clone();
        cfg.max_batch = 0;
        assert!(cfg.validate().unwrap_err().contains("max_batch"));

        let mut cfg = ok.clone();
        cfg.arrivals_per_s = f64::NAN;
        assert!(cfg.validate().unwrap_err().contains("arrivals_per_s"));

        let mut cfg = ok.clone();
        cfg.mrm_packages = 0;
        assert!(cfg.validate().unwrap_err().contains("mrm_packages"));

        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmLpddr, 2, 8.0);
        cfg.lpddr_packages = 0;
        assert!(cfg.validate().unwrap_err().contains("lpddr_packages"));
    }

    #[test]
    #[should_panic(expected = "invalid ClusterConfig: accelerators")]
    fn zero_accelerators_panics_with_clear_message() {
        // Regression: this used to die with a remainder-by-zero panic deep
        // in request admission instead of a config error.
        let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmOnly, 1, 8.0);
        cfg.accelerators = 0;
        let _ = ClusterSim::new(cfg);
    }
}
