//! Memory tiers: named pools with aggregate bandwidth and cost.
//!
//! A [`Tier`] aggregates `n` identical devices (HBM stacks, MRM packages,
//! LPDDR packages) into one pool with summed capacity and bandwidth — the
//! granularity the placement policies reason at.

use mrm_core::pool::{Allocation, Pool, PoolError};
use mrm_device::device::MemoryDevice;
use mrm_device::energy::EnergyBreakdown;
use mrm_device::tech::Technology;
use mrm_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The role a tier plays in the §4 layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierKind {
    /// HBM: write-heavy structures (activations) and, in the baseline,
    /// everything else too.
    Hbm,
    /// MRM: weights and KV caches (read-heavy, append-only).
    Mrm,
    /// LPDDR: the slower, cheaper cold tier.
    Lpddr,
}

impl TierKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TierKind::Hbm => "HBM",
            TierKind::Mrm => "MRM",
            TierKind::Lpddr => "LPDDR",
        }
    }
}

/// One memory tier: `n` devices of one technology fused into a pool.
#[derive(Clone, Debug)]
pub struct Tier {
    kind: TierKind,
    pool: Pool,
    devices: u32,
    /// Aggregate sequential read bandwidth, bytes/s.
    read_bw: f64,
    /// Aggregate write bandwidth, bytes/s.
    write_bw: f64,
    /// Relative cost of the tier (capacity GB × cost/GB).
    cost_units: f64,
    /// Demand bytes moved (for utilization reporting).
    bytes_read: u64,
    bytes_written: u64,
    /// Energy metered outside the pool device (bulk streams, background).
    extra_energy: EnergyBreakdown,
    /// Last `(retention, write pJ/bit)` operating point, memoized: batches
    /// overwhelmingly share one retention class, so the tradeoff-curve
    /// math runs once per class change instead of once per write. The
    /// cached value is the exact f64 the curve produces, so metered energy
    /// is bit-identical to the unmemoized path.
    write_point_memo: Option<(SimDuration, f64)>,
}

impl Tier {
    /// Builds a tier of `devices` identical devices of `tech`.
    ///
    /// The pool spans the aggregate capacity; bandwidth sums across
    /// devices (inference reads stripe across stacks, §2.1).
    pub fn new(kind: TierKind, tech: Technology, devices: u32) -> Self {
        Tier::with_capacity_hint(kind, tech, devices, 0)
    }

    /// [`Tier::new`] with the pool allocator pre-sized for about
    /// `expected_live` simultaneous allocations. Purely a wall-clock hint:
    /// behaviour is identical to [`Tier::new`].
    pub fn with_capacity_hint(
        kind: TierKind,
        tech: Technology,
        devices: u32,
        expected_live: usize,
    ) -> Self {
        let mut fused = tech.clone();
        fused.capacity_bytes = tech.capacity_bytes * u64::from(devices);
        let read_bw = tech.read_bw * f64::from(devices);
        let write_bw = tech.write_bw * f64::from(devices);
        let cost_units = fused.capacity_bytes as f64 / 1e9 * tech.cost_per_gb_rel;
        Tier {
            kind,
            pool: Pool::with_capacity_hint(MemoryDevice::new(fused), expected_live),
            devices,
            read_bw,
            write_bw,
            cost_units,
            bytes_read: 0,
            bytes_written: 0,
            extra_energy: EnergyBreakdown::default(),
            write_point_memo: None,
        }
    }

    /// The tier's role.
    pub fn kind(&self) -> TierKind {
        self.kind
    }

    /// Device count.
    pub fn devices(&self) -> u32 {
        self.devices
    }

    /// Aggregate capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.pool.capacity_bytes()
    }

    /// Bytes allocated.
    pub fn used_bytes(&self) -> u64 {
        self.pool.used_bytes()
    }

    /// Aggregate read bandwidth, bytes/s.
    pub fn read_bw(&self) -> f64 {
        self.read_bw
    }

    /// Aggregate write bandwidth, bytes/s.
    pub fn write_bw(&self) -> f64 {
        self.write_bw
    }

    /// Relative hardware cost of the tier.
    pub fn cost_units(&self) -> f64 {
        self.cost_units
    }

    /// Demand traffic so far: `(bytes_read, bytes_written)`.
    pub fn traffic(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    /// Allocates from the tier.
    pub fn alloc(&mut self, bytes: u64) -> Result<Allocation, PoolError> {
        self.pool.alloc(bytes)
    }

    /// Frees an allocation.
    pub fn free(&mut self, a: Allocation) -> Result<(), PoolError> {
        self.pool.free(a)
    }

    /// Time to read `bytes` sequentially at aggregate tier bandwidth.
    /// Traffic and energy are metered; block-level state is not walked
    /// (bulk streams like weights would make that O(device/4096) per op).
    pub fn stream_read(&mut self, bytes: u64) -> SimDuration {
        self.bytes_read += bytes;
        self.meter_read_energy(bytes);
        SimDuration::from_secs_f64(bytes as f64 / self.read_bw)
    }

    /// Time to write `bytes` sequentially at aggregate tier bandwidth,
    /// charged at the retention-scaled energy point.
    pub fn stream_write(&mut self, bytes: u64, retention: SimDuration) -> SimDuration {
        self.bytes_written += bytes;
        self.meter_write_energy(bytes, retention);
        SimDuration::from_secs_f64(bytes as f64 / self.write_bw)
    }

    fn meter_read_energy(&mut self, bytes: u64) {
        // Meter through the pool's device by charging its per-bit rate
        // directly (avoids walking per-block state for bulk streams).
        let j = self.pool.device().tech().read_energy_j(bytes);
        self.extra_energy.read_j += j;
    }

    fn meter_write_energy(&mut self, bytes: u64, retention: SimDuration) {
        let pj_bit = match self.write_point_memo {
            Some((r, pj)) if r == retention => pj,
            _ => {
                let tech = self.pool.device().tech();
                let pj = tech.tradeoff().at(retention).write_energy_pj_bit;
                self.write_point_memo = Some((retention, pj));
                pj
            }
        };
        let j = bytes as f64 * 8.0 * pj_bit * 1e-12;
        self.extra_energy.write_j += j;
    }

    /// Timed, block-tracked read of an allocation sub-range (used for KV
    /// caches, where expiry tracking matters).
    pub fn read_tracked(
        &mut self,
        now: SimTime,
        a: &Allocation,
        offset: u64,
        len: u64,
    ) -> Result<mrm_device::device::OpResult, PoolError> {
        self.bytes_read += len;
        self.pool.read(now, a, offset, len)
    }

    /// Timed, block-tracked write of an allocation sub-range.
    pub fn write_tracked(
        &mut self,
        now: SimTime,
        a: &Allocation,
        offset: u64,
        len: u64,
        retention: SimDuration,
    ) -> Result<mrm_device::device::OpResult, PoolError> {
        self.bytes_written += len;
        self.pool.write(now, a, offset, len, retention)
    }

    /// Charges `elapsed` of background cost: idle power, plus refresh power
    /// for DRAM-family technologies (the §2.1 "consuming power even when
    /// the memory is idle" term).
    pub fn charge_background(&mut self, elapsed: SimDuration) {
        let tech = self.pool.device().tech();
        let idle_j = tech.idle_power_w() * elapsed.as_secs_f64();
        let refresh_j = tech.refresh_power_w() * elapsed.as_secs_f64();
        self.extra_energy.idle_j += idle_j;
        self.extra_energy.housekeeping_j += refresh_j;
    }

    /// Charges a software scrub (read + rewrite) of `bytes`.
    pub fn charge_scrub(&mut self, bytes: u64) {
        let tech = self.pool.device().tech();
        let j = tech.read_energy_j(bytes) + tech.write_energy_j(bytes);
        self.extra_energy.housekeeping_j += j;
    }

    /// Total energy: pool device meter plus bulk-stream metering.
    pub fn energy(&self) -> EnergyBreakdown {
        self.pool.energy().merged(&self.extra_energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_device::tech::presets;
    use mrm_sim::units::{GB, GIB, MIB};

    fn hbm_tier() -> Tier {
        Tier::new(TierKind::Hbm, presets::hbm3e(), 8)
    }

    #[test]
    fn aggregate_capacity_and_bandwidth() {
        let t = hbm_tier();
        assert_eq!(t.capacity_bytes(), 192 * GB, "B200-class: 8×24 GB");
        assert!((t.read_bw() - 8e12).abs() < 1e6, "8 TB/s aggregate");
        assert_eq!(t.devices(), 8);
    }

    #[test]
    fn cost_units_scale_with_capacity_and_rate() {
        let hbm = hbm_tier();
        let mrm = Tier::new(TierKind::Mrm, presets::mrm_hours(), 8);
        // MRM: 8×48 GB at 1.5 vs HBM 8×24 GB at 3.0.
        assert!((hbm.cost_units() - 192.0 * 3.0).abs() < 1e-6);
        assert!((mrm.cost_units() - 384.0 * 1.5).abs() < 1e-6);
        // Twice the capacity at equal spend.
        assert_eq!(mrm.capacity_bytes(), 2 * hbm.capacity_bytes());
        assert!((mrm.cost_units() - hbm.cost_units()).abs() < 1e-6);
    }

    #[test]
    fn stream_read_times_match_bandwidth() {
        let mut t = hbm_tier();
        let d = t.stream_read(8 * GIB);
        // 8 GiB at 8 TB/s ≈ 1.07 ms.
        assert!((d.as_secs_f64() * 1e3 - 1.074).abs() < 0.01, "{d}");
        assert_eq!(t.traffic().0, 8 * GIB);
    }

    #[test]
    fn stream_energy_metered() {
        let mut t = hbm_tier();
        t.stream_read(GIB);
        t.stream_write(GIB, SimDuration::from_millis(32));
        let e = t.energy();
        assert!(e.read_j > 0.0 && e.write_j > 0.0);
    }

    #[test]
    fn mrm_write_energy_scales_with_retention() {
        let mut short = Tier::new(TierKind::Mrm, presets::mrm_days(), 1);
        let mut long = Tier::new(TierKind::Mrm, presets::mrm_days(), 1);
        short.stream_write(GIB, SimDuration::from_mins(10));
        long.stream_write(GIB, SimDuration::from_days(7));
        assert!(short.energy().write_j < long.energy().write_j);
    }

    #[test]
    fn background_charges_refresh_only_for_dram() {
        let mut hbm = hbm_tier();
        let mut mrm = Tier::new(TierKind::Mrm, presets::mrm_hours(), 8);
        hbm.charge_background(SimDuration::from_secs(60));
        mrm.charge_background(SimDuration::from_secs(60));
        assert!(
            hbm.energy().housekeeping_j > 0.0,
            "HBM refreshes while idle"
        );
        assert!(
            mrm.energy().housekeeping_j.abs() < f64::EPSILON,
            "MRM does not"
        );
    }

    #[test]
    fn tracked_io_and_alloc() {
        let mut t = Tier::new(TierKind::Mrm, presets::mrm_hours(), 1);
        let a = t.alloc(16 * MIB).unwrap();
        t.write_tracked(SimTime::ZERO, &a, 0, MIB, SimDuration::from_hours(1))
            .unwrap();
        let r = t.read_tracked(SimTime::ZERO, &a, 0, MIB).unwrap();
        assert!(!r.expired);
        t.free(a).unwrap();
        assert_eq!(t.used_bytes(), 0);
    }

    #[test]
    fn scrub_is_housekeeping() {
        let mut t = Tier::new(TierKind::Mrm, presets::mrm_hours(), 1);
        t.charge_scrub(GIB);
        assert!(t.energy().housekeeping_j > 0.0);
        assert!(t.energy().write_j.abs() < f64::EPSILON);
    }
}
