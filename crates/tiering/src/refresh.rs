//! Expiration tracking — moved to the control plane.
//!
//! The tracker and the refresh / migrate / drop decision now live in
//! `mrm-control` ([`mrm_control::expiry`]), where the reconciler owns
//! them; this module re-exports the types so existing
//! `mrm_tiering::refresh::…` paths keep working.

// mrm-lint: allow(D7) re-export shim: the decision types live in mrm-control
pub use mrm_control::expiry::{ExpiryAction, ExpiryTracker};
