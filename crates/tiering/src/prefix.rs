//! Prefix caching: sharing KV state across requests (§2.2 / \[54\]).
//!
//! §2.2: "Reuse of the KV cache across requests \[54\] ... \[is\] used, but
//! \[has\] its limitations and even together they do not fundamentally change
//! the heavily read-dominated nature of the workload." This module
//! implements vLLM-style automatic prefix caching over chunk hashes so the
//! claim can be measured: shared system prompts deduplicate their KV
//! writes, which *reduces* the endurance requirement and prefill traffic —
//! and the experiment shows by how much (and that read dominance is
//! untouched).
//!
//! Prompts are represented as sequences of chunk hashes (one hash per
//! `chunk_tokens` tokens). The cache is a trie keyed by
//! `(parent node, chunk hash)` with reference counts, exactly the shape a
//! control plane would pin MRM zones with.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Node identifier in the prefix trie.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PrefixNodeId(u32);

/// Sentinel parent for root chunks.
const ROOT: PrefixNodeId = PrefixNodeId(u32::MAX);

#[derive(Clone, Debug)]
struct Node {
    refcount: u32,
    /// Tokens covered by this chunk (== chunk_tokens except a short tail).
    tokens: u32,
}

/// Outcome of inserting a prompt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixInsert {
    /// Tokens whose KV state was already cached (no prefill, no KV write).
    pub hit_tokens: u64,
    /// Tokens that must be prefilled and written.
    pub new_tokens: u64,
    /// The node path now pinned by this request (release when done).
    pub path: Vec<PrefixNodeId>,
}

/// A reference-counted prefix-cache trie over chunk hashes.
///
/// # Examples
///
/// ```
/// use mrm_tiering::prefix::PrefixCache;
///
/// let mut pc = PrefixCache::new(16);
/// let a = pc.insert(&[11, 22, 33], 48);
/// assert_eq!(a.hit_tokens, 0);
/// // Same system prompt (first two chunks) + different user turn.
/// let b = pc.insert(&[11, 22, 99], 48);
/// assert_eq!(b.hit_tokens, 32);
/// assert_eq!(b.new_tokens, 16);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PrefixCache {
    chunk_tokens: u32,
    children: BTreeMap<(PrefixNodeId, u64), PrefixNodeId>,
    nodes: Vec<Node>,
    /// Cumulative stats.
    hits_tokens: u64,
    misses_tokens: u64,
    /// Release-mode count of double releases (debug builds assert instead).
    release_underflows: u64,
}

impl PrefixCache {
    /// Creates a cache with the given chunk granularity (tokens per chunk).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_tokens` is zero.
    pub fn new(chunk_tokens: u32) -> Self {
        assert!(chunk_tokens > 0, "chunk granularity must be positive");
        PrefixCache {
            chunk_tokens,
            ..Default::default()
        }
    }

    /// Tokens per chunk.
    pub fn chunk_tokens(&self) -> u32 {
        self.chunk_tokens
    }

    /// Live (referenced or cached) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.tokens > 0).count()
    }

    /// Total KV tokens resident in the cache (deduplicated).
    pub fn resident_tokens(&self) -> u64 {
        self.nodes.iter().map(|n| u64::from(n.tokens)).sum()
    }

    /// Cumulative `(hit_tokens, miss_tokens)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.hits_tokens, self.misses_tokens)
    }

    /// Hit rate over all inserted tokens.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits_tokens + self.misses_tokens;
        if total == 0 {
            return 0.0;
        }
        self.hits_tokens as f64 / total as f64
    }

    /// Inserts a prompt given its chunk hashes and total token count; the
    /// last chunk may be partial. Pins every node on the path.
    pub fn insert(&mut self, chunk_hashes: &[u64], prompt_tokens: u32) -> PrefixInsert {
        let mut parent = ROOT;
        let mut path = Vec::with_capacity(chunk_hashes.len());
        let mut hit_tokens = 0u64;
        let mut new_tokens = 0u64;
        let mut remaining = prompt_tokens;
        for (i, &h) in chunk_hashes.iter().enumerate() {
            // Extra hashes beyond the prompt's token count carry no KV
            // state: stop rather than minting zero-token nodes, which
            // would count as evicted (`tokens == 0`) while still pinned.
            if remaining == 0 {
                break;
            }
            let chunk = if i + 1 == chunk_hashes.len() {
                remaining
            } else {
                self.chunk_tokens.min(remaining)
            };
            remaining -= chunk;
            let id = match self.children.get(&(parent, h)) {
                Some(&id) if self.nodes[id.0 as usize].tokens > 0 => {
                    self.nodes[id.0 as usize].refcount += 1;
                    hit_tokens += u64::from(chunk);
                    id
                }
                _ => {
                    let id = PrefixNodeId(self.nodes.len() as u32);
                    self.nodes.push(Node {
                        refcount: 1,
                        tokens: chunk,
                    });
                    self.children.insert((parent, h), id);
                    new_tokens += u64::from(chunk);
                    id
                }
            };
            path.push(id);
            parent = id;
        }
        self.hits_tokens += hit_tokens;
        self.misses_tokens += new_tokens;
        PrefixInsert {
            hit_tokens,
            new_tokens,
            path,
        }
    }

    /// Releases a request's pins. Nodes stay cached (refcount may reach 0)
    /// until [`PrefixCache::evict_unreferenced`] reclaims them.
    ///
    /// Releasing a path more often than it was pinned is a caller bug:
    /// debug builds panic (the old `saturating_sub` silently masked the
    /// double release, letting a still-pinned node reach refcount 0 and be
    /// evicted under a live request); release builds refuse the decrement
    /// and count it in [`PrefixCache::release_underflows`].
    pub fn release(&mut self, path: &[PrefixNodeId]) {
        for &id in path {
            let n = &mut self.nodes[id.0 as usize];
            debug_assert!(n.refcount > 0, "double release of prefix node {id:?}");
            if n.refcount == 0 {
                self.release_underflows += 1;
            } else {
                n.refcount -= 1;
            }
        }
    }

    /// Double releases refused in release builds (always 0 in a correct
    /// caller; debug builds panic at the offending release instead).
    pub fn release_underflows(&self) -> u64 {
        self.release_underflows
    }

    /// Test oracle: every live node is reachable from the root over edges
    /// whose child is live, and every edge points at a live node. Returns
    /// the live-node count.
    ///
    /// # Panics
    ///
    /// Panics if a live node is unreachable (an orphan) or an edge targets
    /// an evicted node.
    pub fn check_invariants(&self) -> usize {
        let mut reachable = vec![false; self.nodes.len()];
        let mut frontier = vec![ROOT];
        while let Some(p) = frontier.pop() {
            for (&(parent, _), &child) in &self.children {
                let c = child.0 as usize;
                if parent == p && self.nodes[c].tokens > 0 && !reachable[c] {
                    reachable[c] = true;
                    frontier.push(child);
                }
            }
        }
        for &child in self.children.values() {
            assert!(
                self.nodes[child.0 as usize].tokens > 0,
                "edge points at evicted node {child:?}"
            );
        }
        let mut live = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.tokens > 0 {
                assert!(reachable[i], "live node {i} unreachable from root");
                live += 1;
            }
        }
        live
    }

    /// Evicts all unreferenced nodes (a coarse low-memory response).
    /// Returns the KV tokens reclaimed.
    pub fn evict_unreferenced(&mut self) -> u64 {
        let mut reclaimed = 0u64;
        // A node is evictable only if no *live* descendant references it;
        // sweep leaf-to-root by repeated passes (trie depth is small).
        loop {
            let mut changed = false;
            let has_live_child: Vec<bool> = {
                let mut v = vec![false; self.nodes.len()];
                for (&(parent, _), &child) in &self.children {
                    if parent != ROOT && self.nodes[child.0 as usize].tokens > 0 {
                        v[parent.0 as usize] = true;
                    }
                }
                v
            };
            for (i, n) in self.nodes.iter_mut().enumerate() {
                if n.tokens > 0 && n.refcount == 0 && !has_live_child[i] {
                    reclaimed += u64::from(n.tokens);
                    n.tokens = 0;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.children
            .retain(|_, &mut child| self.nodes[child.0 as usize].tokens > 0);
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_prompts_fully_hit() {
        let mut pc = PrefixCache::new(16);
        let first = pc.insert(&[1, 2, 3], 48);
        assert_eq!(first.hit_tokens, 0);
        assert_eq!(first.new_tokens, 48);
        let second = pc.insert(&[1, 2, 3], 48);
        assert_eq!(second.hit_tokens, 48);
        assert_eq!(second.new_tokens, 0);
        assert!((pc.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_system_prompt_dedupes() {
        let mut pc = PrefixCache::new(16);
        pc.insert(&[7, 8, 100], 48);
        let b = pc.insert(&[7, 8, 200], 48);
        assert_eq!(b.hit_tokens, 32, "the two system-prompt chunks");
        assert_eq!(b.new_tokens, 16);
        // Divergent chunk with same hash but different parent is distinct.
        let c = pc.insert(&[100, 8, 7], 48);
        assert_eq!(c.hit_tokens, 0, "prefix identity is positional");
    }

    #[test]
    fn partial_tail_chunks_count_correct_tokens() {
        let mut pc = PrefixCache::new(16);
        let a = pc.insert(&[1, 2], 20); // 16 + 4-token tail
        assert_eq!(a.new_tokens, 20);
        let b = pc.insert(&[1, 2], 20);
        assert_eq!(b.hit_tokens, 20);
    }

    #[test]
    fn resident_tokens_are_deduplicated() {
        let mut pc = PrefixCache::new(16);
        for user in 0..10u64 {
            pc.insert(&[42, 43, 1000 + user], 48);
        }
        // One shared 32-token prefix + ten 16-token tails.
        assert_eq!(pc.resident_tokens(), 32 + 10 * 16);
    }

    #[test]
    fn eviction_respects_refcounts_and_children() {
        let mut pc = PrefixCache::new(16);
        let a = pc.insert(&[1, 2, 3], 48);
        let b = pc.insert(&[1, 2, 4], 48);
        // Release only request A: its unique tail is evictable, the shared
        // prefix is not (B still pins it).
        pc.release(&a.path);
        let reclaimed = pc.evict_unreferenced();
        assert_eq!(reclaimed, 16, "only A's tail chunk");
        // A re-inserted A must re-write only its tail.
        let a2 = pc.insert(&[1, 2, 3], 48);
        assert_eq!(a2.hit_tokens, 32);
        assert_eq!(a2.new_tokens, 16);
        // Release everything: all reclaimable.
        pc.release(&b.path);
        pc.release(&a2.path);
        let reclaimed = pc.evict_unreferenced();
        assert_eq!(reclaimed, 64, "shared prefix + both tails reclaimed");
        assert_eq!(pc.resident_tokens(), 0);
    }

    #[test]
    fn excess_hashes_mint_no_zero_token_nodes() {
        let mut pc = PrefixCache::new(16);
        // 16 tokens fill one chunk; the second hash carries nothing.
        let a = pc.insert(&[1, 2], 16);
        assert_eq!(a.path.len(), 1, "zero-token chunk must not be pinned");
        assert_eq!(a.new_tokens, 16);
        assert_eq!(pc.node_count(), 1);
        pc.check_invariants();
        // A later full-length insert caches the second chunk cleanly
        // instead of colliding with a dead placeholder.
        let b = pc.insert(&[1, 2], 32);
        assert_eq!(b.hit_tokens, 16);
        assert_eq!(b.new_tokens, 16);
        pc.release(&a.path);
        pc.release(&b.path);
        assert_eq!(pc.evict_unreferenced(), 32);
        pc.check_invariants();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double release")]
    fn double_release_panics_in_debug() {
        let mut pc = PrefixCache::new(16);
        let a = pc.insert(&[1], 8);
        pc.release(&a.path);
        pc.release(&a.path);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn double_release_is_refused_and_counted_in_release_builds() {
        let mut pc = PrefixCache::new(16);
        let a = pc.insert(&[1], 8);
        let b = pc.insert(&[1], 8);
        pc.release(&a.path);
        pc.release(&a.path); // caller bug: must not strip b's pin
        assert_eq!(pc.release_underflows(), 1);
        assert_eq!(pc.evict_unreferenced(), 0, "b still pins the node");
        pc.release(&b.path);
        assert_eq!(pc.evict_unreferenced(), 8);
    }

    #[test]
    fn interior_nodes_survive_while_descendants_live() {
        let mut pc = PrefixCache::new(16);
        let a = pc.insert(&[1, 2, 3], 48);
        // Release the full path: root chunk refcount 0, but keep a second
        // request pinning only a deeper path — the interior must survive.
        let b = pc.insert(&[1, 2, 3, 9], 64);
        pc.release(&a.path);
        pc.release(&b.path[..2]); // partially release b's pins
        let _ = pc.evict_unreferenced();
        // Node 3 and 9 still pinned via b's remaining refs; chain intact.
        let c = pc.insert(&[1, 2, 3, 9], 64);
        assert_eq!(c.hit_tokens, 64, "whole chain must still be cached");
    }
}
