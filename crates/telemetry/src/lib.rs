//! # `mrm-telemetry` — sim-time-aware metrics and tracing
//!
//! The paper's argument turns on *housekeeping* — DRAM refresh, flash GC,
//! MRM scrubbing, tier migration — and housekeeping is invisible in an
//! end-of-run report struct. This crate makes it visible as time series:
//!
//! - [`MetricsRegistry`]: named counters, gauges, and
//!   `LogHistogram`-backed histograms behind small copyable handle types.
//!   Plain `u64`/`f64` slots, no locks — cheap enough for the hot path of a
//!   single-threaded simulation loop.
//! - [`SimSpan`]/[`TelemetryEvent`]: spans and point events timestamped
//!   with [`SimTime`](mrm_sim::time::SimTime) (never wall-clock), recorded
//!   into the existing [`mrm_sim::trace::Trace`] ring buffer.
//! - Exporters ([`export`]): JSONL time-series snapshots taken at a
//!   configurable sim-time interval, a Prometheus-style text dump, and CSV
//!   via [`TraceRecord`](mrm_sim::trace::TraceRecord).
//! - [`TelemetrySink`]: the instrumentation-facing trait. Every method has
//!   a no-op default and [`NullSink`] overrides nothing, so disabled
//!   instrumentation compiles down to empty inlinable calls.
//!
//! ## Determinism contract
//!
//! Telemetry must never perturb a simulation: implementations never draw
//! from `SimRng`, never schedule simulator events, and timestamp snapshots
//! at exact interval boundaries (`k * interval`) regardless of when the
//! host loop gets around to pumping them. A run with a [`SimTelemetry`]
//! sink attached produces bit-identical results to one with [`NullSink`] —
//! the cluster integration tests enforce this.

pub mod export;
pub mod registry;
pub mod sink;
pub mod span;

pub use registry::{CounterId, GaugeId, HistogramId, HistogramSummary, MetricsRegistry, Snapshot};
pub use sink::{NullSink, SimTelemetry, TelemetrySink};
pub use span::{SimSpan, TelemetryEvent};
