//! Sim-time spans and point events.

use mrm_sim::time::SimTime;
use mrm_sim::trace::{csv_field, TraceRecord};

use crate::sink::TelemetrySink;

/// A named point event with one numeric payload (bytes moved, class index,
/// span duration…), timestamped by the [`Trace`](mrm_sim::trace::Trace) it
/// is pushed into.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TelemetryEvent {
    /// Event name (e.g. `"gc"`, `"migrate"`, `"dcm_reconfig"`).
    pub name: &'static str,
    /// Numeric payload; meaning is event-specific.
    pub value: f64,
}

impl TraceRecord for TelemetryEvent {
    fn csv_header() -> &'static str {
        "event,value"
    }
    fn csv_row(&self) -> String {
        // Event names are free-form: quote per RFC 4180 so a name with a
        // comma cannot shift every column after it.
        format!("{},{}", csv_field(self.name), self.value)
    }
}

/// An in-flight span of simulated time.
///
/// Spans are manual and allocation-free: [`SimSpan::begin`] captures the
/// start instant, [`SimSpan::end`] emits one [`TelemetryEvent`] carrying
/// the span's duration in nanoseconds, timestamped at the start. The
/// consuming `end` makes dangling spans a compile-time borrow error rather
/// than a silent accounting hole.
///
/// # Examples
///
/// ```
/// use mrm_telemetry::{NullSink, SimSpan};
/// use mrm_sim::time::SimTime;
///
/// let span = SimSpan::begin("gc_pass", SimTime::from_nanos(100));
/// // ... simulate the GC pass ...
/// let mut sink = NullSink;
/// span.end(SimTime::from_nanos(350), &mut sink); // event value: 250 ns
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SimSpan {
    name: &'static str,
    start: SimTime,
}

impl SimSpan {
    /// Opens a span named `name` starting at `at`.
    pub fn begin(name: &'static str, at: SimTime) -> Self {
        SimSpan { name, start: at }
    }

    /// The span's start instant.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Closes the span at `at`, emitting its duration (ns) as an event
    /// timestamped at the span's start.
    pub fn end(self, at: SimTime, sink: &mut dyn TelemetrySink) {
        let dur = at.duration_since(self.start);
        sink.event(self.start, self.name, dur.as_nanos() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SimTelemetry;
    use mrm_sim::time::SimDuration;

    #[test]
    fn span_emits_duration_event_at_start_time() {
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        let span = SimSpan::begin("gc_pass", SimTime::from_nanos(1_000));
        span.end(SimTime::from_nanos(1_750), &mut t);
        assert_eq!(t.events().total_pushed(), 1);
        let (at, ev) = t.events().iter().next().unwrap();
        assert_eq!(at.as_nanos(), 1_000);
        assert_eq!(ev.name, "gc_pass");
        // Integer nanoseconds convert exactly into f64 here.
        assert_eq!(ev.value.to_bits(), 750.0f64.to_bits());
    }

    #[test]
    fn nested_spans_account_independently() {
        // Spans are plain values: an inner span opened while an outer one
        // is in flight closes on its own clock, and each emits exactly one
        // duration event timestamped at its own start.
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        let outer = SimSpan::begin("sweep", SimTime::from_nanos(100));
        let inner = SimSpan::begin("refresh", SimTime::from_nanos(150));
        inner.end(SimTime::from_nanos(250), &mut t);
        outer.end(SimTime::from_nanos(600), &mut t);
        let recs: Vec<(u64, &'static str, f64)> = t
            .events()
            .iter()
            .map(|(at, ev)| (at.as_nanos(), ev.name, ev.value))
            .collect();
        // Events land in close order but carry begin timestamps, so the
        // nesting is reconstructible: inner ⊂ [outer.start, outer.end].
        assert_eq!(recs, vec![(150, "refresh", 100.0), (100, "sweep", 500.0)]);
    }

    #[test]
    fn zero_width_and_reopened_spans_are_distinct_events() {
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        let s = SimSpan::begin("plan", SimTime::from_nanos(10));
        s.end(SimTime::from_nanos(10), &mut t); // zero-duration is legal
        let again = SimSpan::begin("plan", SimTime::from_nanos(20));
        again.end(SimTime::from_nanos(35), &mut t);
        assert_eq!(t.events().total_pushed(), 2);
        let vals: Vec<f64> = t.events().iter().map(|(_, ev)| ev.value).collect();
        assert_eq!(vals, vec![0.0, 15.0]);
    }

    #[test]
    fn event_csv_shape() {
        assert_eq!(TelemetryEvent::csv_header(), "event,value");
        let ev = TelemetryEvent {
            name: "migrate",
            value: 4096.0,
        };
        assert_eq!(ev.csv_row(), "migrate,4096");
    }

    #[test]
    fn event_csv_quotes_names_with_commas() {
        let ev = TelemetryEvent {
            name: "migrate,escalated",
            value: 1.0,
        };
        // The comma is inside one quoted field: the row still has exactly
        // two CSV columns.
        assert_eq!(ev.csv_row(), "\"migrate,escalated\",1");
    }
}
