//! Named counters, gauges, and histograms behind small handle types.
//!
//! A [`MetricsRegistry`] stores each metric kind in a flat `Vec` indexed by
//! a copyable id, so hot-path updates are a bounds-checked array write with
//! no hashing and no locks. Name lookup (interning) happens once per metric,
//! at registration; instruments that update every event should hold on to
//! the returned id.

use std::collections::BTreeMap;

use mrm_sim::stats::LogHistogram;
use mrm_sim::time::SimTime;
use serde::{Deserialize, Error, Serialize, Value};

/// Handle to a monotonically increasing counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a last-value-wins gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a log-scale histogram of observations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(u32);

/// Sub-buckets per octave for registry histograms (~4.4 % relative error).
const HISTOGRAM_SUB_BUCKETS: u32 = 16;

/// A registry of named metrics with flat storage.
///
/// Metrics are created on first registration and keep their values for the
/// registry's lifetime. Iteration and snapshots report metrics in
/// registration order, which is deterministic for a deterministic
/// instrumentation path — the property the sweep determinism tests rely on.
///
/// # Examples
///
/// ```
/// use mrm_telemetry::MetricsRegistry;
/// use mrm_sim::time::SimTime;
///
/// let mut r = MetricsRegistry::new();
/// let reads = r.counter("reads");
/// r.add(reads, 3);
/// let depth = r.gauge("queue_depth");
/// r.set(depth, 7.0);
/// let lat = r.histogram("latency_ms");
/// r.observe(lat, 12.5);
/// let snap = r.snapshot(SimTime::from_secs(1));
/// assert_eq!(snap.counters, vec![("reads".to_string(), 3)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counter_names: Vec<&'static str>,
    counter_values: Vec<u64>,
    counter_ids: BTreeMap<&'static str, u32>,
    gauge_names: Vec<&'static str>,
    gauge_values: Vec<f64>,
    gauge_ids: BTreeMap<&'static str, u32>,
    hist_names: Vec<&'static str>,
    hist_values: Vec<LogHistogram>,
    hist_ids: BTreeMap<&'static str, u32>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the id for counter `name`, registering it at zero if new.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(&i) = self.counter_ids.get(name) {
            return CounterId(i);
        }
        let i = self.counter_names.len() as u32;
        self.counter_names.push(name);
        self.counter_values.push(0);
        self.counter_ids.insert(name, i);
        CounterId(i)
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counter_values[id.0 as usize] += n;
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Raises a counter to `total` if it is below it.
    ///
    /// This is the pull-style update used by instruments that already keep
    /// their own running totals: re-publishing the total is idempotent and
    /// keeps the counter monotone even if publishers overlap.
    pub fn set_total(&mut self, id: CounterId, total: u64) {
        let v = &mut self.counter_values[id.0 as usize];
        *v = (*v).max(total);
    }

    /// Returns the id for gauge `name`, registering it at zero if new.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(&i) = self.gauge_ids.get(name) {
            return GaugeId(i);
        }
        let i = self.gauge_names.len() as u32;
        self.gauge_names.push(name);
        self.gauge_values.push(0.0);
        self.gauge_ids.insert(name, i);
        GaugeId(i)
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauge_values[id.0 as usize] = value;
    }

    /// Returns the id for histogram `name`, registering it empty if new.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(&i) = self.hist_ids.get(name) {
            return HistogramId(i);
        }
        let i = self.hist_names.len() as u32;
        self.hist_names.push(name);
        self.hist_values
            .push(LogHistogram::new(HISTOGRAM_SUB_BUCKETS));
        self.hist_ids.insert(name, i);
        HistogramId(i)
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.hist_values[id.0 as usize].record(value);
    }

    /// Reads a counter by name (`None` if never registered).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counter_ids
            .get(name)
            .map(|&i| self.counter_values[i as usize])
    }

    /// Reads a gauge by name (`None` if never registered).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauge_ids
            .get(name)
            .map(|&i| self.gauge_values[i as usize])
    }

    /// Borrows a histogram by name (`None` if never registered).
    pub fn histogram_by_name(&self, name: &str) -> Option<&LogHistogram> {
        self.hist_ids
            .get(name)
            .map(|&i| &self.hist_values[i as usize])
    }

    /// Iterates counters as `(name, value)` in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counter_names
            .iter()
            .zip(&self.counter_values)
            .map(|(n, v)| (*n, *v))
    }

    /// Iterates gauges as `(name, value)` in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauge_names
            .iter()
            .zip(&self.gauge_values)
            .map(|(n, v)| (*n, *v))
    }

    /// Iterates histograms as `(name, histogram)` in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.hist_names
            .iter()
            .zip(&self.hist_values)
            .map(|(n, h)| (*n, h))
    }

    /// Captures the current value of every metric, stamped with `at`.
    pub fn snapshot(&self, at: SimTime) -> Snapshot {
        Snapshot {
            sim_time_ns: at.as_nanos(),
            counters: self.counters().map(|(n, v)| (n.to_string(), v)).collect(),
            gauges: self.gauges().map(|(n, v)| (n.to_string(), v)).collect(),
            histograms: self
                .histograms()
                .map(|(n, h)| (n.to_string(), HistogramSummary::of(h)))
                .collect(),
        }
    }
}

/// Percentile-bearing summary of one histogram at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean (0 if empty).
    pub mean: f64,
    /// Smallest observation (`None` if empty).
    pub min: Option<f64>,
    /// Largest observation (`None` if empty).
    pub max: Option<f64>,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Median, accurate to the histogram's bucket width.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Summarizes a histogram (percentiles plus the Welford figures).
    pub fn of(h: &LogHistogram) -> Self {
        let s = h.summary();
        HistogramSummary {
            count: s.count,
            mean: s.mean,
            min: s.min,
            max: s.max,
            std_dev: s.std_dev,
            p50: h.percentile(50.0),
            p90: h.percentile(90.0),
            p99: h.percentile(99.0),
        }
    }
}

/// One point-in-time capture of a registry: the JSONL record shape.
///
/// Serializes as an object with fields in the fixed order `sim_time_ns`,
/// `counters`, `gauges`, `histograms`; the three metric maps are nested
/// objects in registration order, so repeated exports of the same
/// instrumentation path are byte-identical.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Simulated time of the capture, in nanoseconds.
    pub sim_time_ns: u64,
    /// Counter totals at capture time.
    pub counters: Vec<(String, u64)>,
    /// Gauge values at capture time.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries at capture time.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("sim_time_ns".to_string(), Value::U64(self.sim_time_ns)),
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn object_entries<'v>(v: &'v Value, what: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Object(entries) => Ok(entries),
        other => Err(Error::custom(format!(
            "expected {what} object, got {}",
            other.kind()
        ))),
    }
}

impl Deserialize for Snapshot {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let sim_time_ns = u64::from_value(v.field("sim_time_ns"))
            .map_err(|e| e.in_field("Snapshot", "sim_time_ns"))?;
        let counters = object_entries(v.field("counters"), "counters")?
            .iter()
            .map(|(k, val)| Ok((k.clone(), u64::from_value(val)?)))
            .collect::<Result<_, Error>>()
            .map_err(|e| e.in_field("Snapshot", "counters"))?;
        let gauges = object_entries(v.field("gauges"), "gauges")?
            .iter()
            .map(|(k, val)| Ok((k.clone(), f64::from_value(val)?)))
            .collect::<Result<_, Error>>()
            .map_err(|e| e.in_field("Snapshot", "gauges"))?;
        let histograms = object_entries(v.field("histograms"), "histograms")?
            .iter()
            .map(|(k, val)| Ok((k.clone(), HistogramSummary::from_value(val)?)))
            .collect::<Result<_, Error>>()
            .map_err(|e| e.in_field("Snapshot", "histograms"))?;
        Ok(Snapshot {
            sim_time_ns,
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_stable_ids() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("a");
        let b = r.counter("b");
        assert_ne!(a, b);
        assert_eq!(r.counter("a"), a);
        r.inc(a);
        r.add(b, 10);
        assert_eq!(r.counter_value("a"), Some(1));
        assert_eq!(r.counter_value("b"), Some(10));
        assert_eq!(r.counter_value("absent"), None);
    }

    #[test]
    fn set_total_is_monotone() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("total");
        r.set_total(c, 5);
        r.set_total(c, 3); // stale republish must not regress
        r.set_total(c, 9);
        assert_eq!(r.counter_value("total"), Some(9));
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("depth");
        r.set(g, 4.0);
        r.set(g, 2.5);
        assert_eq!(r.gauge_value("depth"), Some(2.5));
    }

    #[test]
    fn histograms_accumulate() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for x in 1..=100 {
            r.observe(h, f64::from(x));
        }
        let hist = r.histogram_by_name("lat").unwrap();
        assert_eq!(hist.count(), 100);
        let summary = HistogramSummary::of(hist);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.min, Some(1.0));
        assert!(
            (summary.p50 / 50.0 - 1.0).abs() < 0.1,
            "p50 {}",
            summary.p50
        );
    }

    #[test]
    fn snapshot_keeps_registration_order_and_round_trips() {
        let mut r = MetricsRegistry::new();
        let z = r.counter("zebra"); // registered first, sorts last
        let a = r.counter("aardvark");
        r.inc(z);
        r.add(a, 2);
        let g = r.gauge("occupancy");
        r.set(g, 0.75);
        let h = r.histogram("lat");
        r.observe(h, 8.0);
        let snap = r.snapshot(SimTime::from_nanos(123));
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["zebra", "aardvark"]);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.starts_with("{\"sim_time_ns\":123,"), "{json}");
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_histogram_snapshot_is_json_safe() {
        let mut r = MetricsRegistry::new();
        r.histogram("never_observed");
        let json = serde_json::to_string(&r.snapshot(SimTime::ZERO)).unwrap();
        assert!(!json.contains("inf"), "{json}");
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.histograms[0].1.min, None);
    }
}
