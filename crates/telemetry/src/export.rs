//! Exporters: JSON Lines time series and Prometheus-style text dumps.
//!
//! All output is deterministic: snapshots serialize with fixed field order
//! (see [`Snapshot`]) and metrics render in registration order, so two runs
//! of the same instrumentation path produce byte-identical exports — the
//! property the sweep determinism tests assert.

use std::fmt::Write as _;

use serde::{Serialize, Value};

use crate::registry::{MetricsRegistry, Snapshot};

/// Renders snapshots as JSON Lines: one compact object per line.
pub fn jsonl(snapshots: &[Snapshot]) -> String {
    let mut out = String::new();
    for s in snapshots {
        let _ = writeln!(out, "{}", serde_json::to_string(s).unwrap_or_default());
    }
    out
}

/// Renders snapshots as JSON Lines with `tags` prepended to every line's
/// object — the way sweep harnesses label each grid point's series (e.g.
/// `{"experiment": "e9", "point": 3, ...}`).
pub fn jsonl_tagged(snapshots: &[Snapshot], tags: &[(&str, Value)]) -> String {
    let mut out = String::new();
    for s in snapshots {
        let mut entries: Vec<(String, Value)> = tags
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        match s.to_value() {
            Value::Object(fields) => entries.extend(fields),
            other => entries.push(("snapshot".to_string(), other)),
        }
        let line = serde_json::to_string(&Value::Object(entries)).unwrap_or_default();
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Renders the registry's current state in Prometheus text exposition
/// format: counters and gauges as single samples, histograms as summaries
/// with `quantile` labels plus `_sum`/`_count` samples.
///
/// `# TYPE` is emitted exactly once per metric name — sanitization can
/// collapse distinct registered names onto one exposition name (e.g.
/// `"tier.occupancy"` and `"tier/occupancy"` both become
/// `tier_occupancy`), and scrapers reject duplicate TYPE lines.
pub fn prometheus(registry: &MetricsRegistry) -> String {
    prometheus_labeled(registry, &[])
}

/// [`prometheus`] with constant labels attached to every sample — the way
/// sweep harnesses tag each grid point's scrape (e.g.
/// `[("experiment", "e9"), ("policy", "hbm+mrm")]`). Label values pass
/// through [`escape_label`], so arbitrary strings (quotes, backslashes,
/// newlines) survive exposition.
pub fn prometheus_labeled(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> String {
    let base: String = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label(v)))
        .collect::<Vec<_>>()
        .join(",");
    let plain = if base.is_empty() {
        String::new()
    } else {
        format!("{{{base}}}")
    };
    let mut typed: Vec<String> = Vec::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        if !typed.iter().any(|t| t == name) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            typed.push(name.to_string());
        }
    };
    let mut out = String::new();
    for (name, v) in registry.counters() {
        let name = sanitize(name);
        type_line(&mut out, &name, "counter");
        let _ = writeln!(out, "{name}{plain} {v}");
    }
    for (name, v) in registry.gauges() {
        let name = sanitize(name);
        type_line(&mut out, &name, "gauge");
        let _ = writeln!(out, "{name}{plain} {v}");
    }
    for (name, h) in registry.histograms() {
        let name = sanitize(name);
        type_line(&mut out, &name, "summary");
        for (label, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
            let q = if base.is_empty() {
                format!("{{quantile=\"{label}\"}}")
            } else {
                format!("{{{base},quantile=\"{label}\"}}")
            };
            let _ = writeln!(out, "{name}{q} {}", h.percentile(p));
        }
        let _ = writeln!(out, "{name}_sum{plain} {}", h.mean() * h.count() as f64);
        let _ = writeln!(out, "{name}_count{plain} {}", h.count());
    }
    out
}

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double-quote, and newline become `\\`, `\"`, and `\n`.
pub fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            _ => s.push(c),
        }
    }
    s
}

/// Maps a metric name onto the Prometheus charset `[a-zA-Z0-9_:]`,
/// prefixing a `_` when the name would start with a digit.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    if s.is_empty() {
        s.push('_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::time::SimTime;

    fn sample_registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        let c = r.counter("gc_moves");
        r.add(c, 7);
        let g = r.gauge("tier_occupancy");
        r.set(g, 0.5);
        let h = r.histogram("latency_ms");
        for x in 1..=100 {
            r.observe(h, f64::from(x));
        }
        r
    }

    #[test]
    fn jsonl_one_parseable_line_per_snapshot() {
        let r = sample_registry();
        let snaps = vec![
            r.snapshot(SimTime::from_secs(1)),
            r.snapshot(SimTime::from_secs(2)),
        ];
        let text = jsonl(&snaps);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(matches!(v.field("sim_time_ns"), Value::U64(_)));
        }
    }

    #[test]
    fn jsonl_tagged_prepends_tags() {
        let r = sample_registry();
        let snaps = vec![r.snapshot(SimTime::from_secs(1))];
        let text = jsonl_tagged(
            &snaps,
            &[
                ("experiment", Value::Str("e9".to_string())),
                ("point", Value::U64(3)),
            ],
        );
        let v: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(v.field("experiment").as_str().unwrap(), "e9");
        assert_eq!(v.field("point"), &Value::U64(3));
        assert!(matches!(v.field("sim_time_ns"), Value::U64(_)));
        assert!(
            text.starts_with("{\"experiment\":\"e9\",\"point\":3,"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_text_shape() {
        let text = prometheus(&sample_registry());
        assert!(
            text.contains("# TYPE gc_moves counter\ngc_moves 7\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE tier_occupancy gauge\ntier_occupancy 0.5\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE latency_ms summary"), "{text}");
        assert!(text.contains("latency_ms{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("latency_ms_count 100"), "{text}");
        assert!(text.contains("latency_ms_sum 5050"), "{text}");
    }

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize("latency.ms/p99"), "latency_ms_p99");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn prometheus_type_emitted_once_per_metric() {
        // Sanitization collapses both registered names onto `tier_occ`;
        // the exposition must still carry exactly one TYPE line for it.
        let mut r = MetricsRegistry::new();
        let a = r.counter("tier.occ");
        r.add(a, 1);
        let b = r.counter("tier/occ");
        r.add(b, 2);
        let text = prometheus(&r);
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE tier_occ "))
            .count();
        assert_eq!(type_lines, 1, "{text}");
        // Both samples still render.
        assert_eq!(
            text.lines().filter(|l| l.starts_with("tier_occ ")).count(),
            2,
            "{text}"
        );
    }

    #[test]
    fn escape_label_round_trips() {
        let nasty = "he said \"hi\\there\"\nand left";
        let escaped = escape_label(nasty);
        assert!(!escaped.contains('\n'));
        // Invert the escaping: \\ -> \, \" -> ", \n -> newline.
        let mut unescaped = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => unescaped.push('\\'),
                    Some('"') => unescaped.push('"'),
                    Some('n') => unescaped.push('\n'),
                    other => panic!("bad escape: {other:?}"),
                }
            } else {
                unescaped.push(c);
            }
        }
        assert_eq!(unescaped, nasty);
    }

    #[test]
    fn prometheus_labeled_escapes_and_tags_every_sample() {
        let text = prometheus_labeled(
            &sample_registry(),
            &[("experiment", "e9"), ("policy", "hbm\"mrm\\dcm")],
        );
        // Every sample line (non-comment) carries both labels.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.contains("experiment=\"e9\"") && line.contains("policy=\"hbm\\\"mrm\\\\dcm\""),
                "unlabeled sample: {line}"
            );
        }
        // Histogram samples merge constant labels with the quantile.
        assert!(
            text.contains(
                "latency_ms{experiment=\"e9\",policy=\"hbm\\\"mrm\\\\dcm\",quantile=\"0.5\"}"
            ),
            "{text}"
        );
    }
}
