//! The instrumentation-facing sink trait, its no-op default, and the
//! recording implementation used by the simulators.

use mrm_sim::time::{SimDuration, SimTime};
use mrm_sim::trace::Trace;

use crate::export;
use crate::registry::{MetricsRegistry, Snapshot};
use crate::span::TelemetryEvent;

/// Where instrumented code sends its measurements.
///
/// Every method defaults to a no-op, so a disabled sink ([`NullSink`])
/// costs an inlinable empty call on the hot path. Implementations MUST
/// uphold the crate's determinism contract: no `SimRng` draws, no
/// simulator event scheduling — a sink observes the simulation, it never
/// participates in it.
///
/// Snapshot pumping is pull-based so the host loop stays in control:
///
/// ```text
/// while let Some(at) = sink.snapshot_due(now) {
///     /* set gauges from current sim state */
///     sink.snapshot(at);
/// }
/// ```
///
/// `snapshot_due` hands back the exact interval boundary (not `now`), so
/// exported timestamps are independent of when the loop happens to pump.
pub trait TelemetrySink {
    /// True when measurements are recorded; callers may skip expensive
    /// sampling when false.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to counter `name`.
    fn count(&mut self, _name: &'static str, _delta: u64) {}

    /// Raises counter `name` to `total` (monotone; for instruments that
    /// keep their own running totals).
    fn count_to(&mut self, _name: &'static str, _total: u64) {}

    /// Sets gauge `name` to `value`.
    fn gauge(&mut self, _name: &'static str, _value: f64) {}

    /// Records one observation into histogram `name`.
    fn observe(&mut self, _name: &'static str, _value: f64) {}

    /// Records a point event at sim time `at`.
    fn event(&mut self, _at: SimTime, _name: &'static str, _value: f64) {}

    /// If a snapshot boundary has been reached by `now`, the boundary's
    /// timestamp; `None` otherwise. Call in a loop: multiple boundaries
    /// may be due after a long event gap.
    fn snapshot_due(&self, _now: SimTime) -> Option<SimTime> {
        None
    }

    /// Captures a snapshot stamped `at` and advances the boundary.
    fn snapshot(&mut self, _at: SimTime) {}
}

/// The disabled sink: records nothing, reports `enabled() == false`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {}

/// Default capacity of the event ring buffer.
const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// The recording sink: a [`MetricsRegistry`] snapshotted on a fixed
/// sim-time cadence, plus an event ring buffer.
///
/// # Examples
///
/// ```
/// use mrm_telemetry::{SimTelemetry, TelemetrySink};
/// use mrm_sim::time::{SimDuration, SimTime};
///
/// let mut t = SimTelemetry::new(SimDuration::from_secs(1));
/// t.count("ops", 3);
/// while let Some(at) = t.snapshot_due(SimTime::from_secs(2)) {
///     t.snapshot(at);
/// }
/// assert_eq!(t.snapshots().len(), 2); // boundaries at 1 s and 2 s
/// assert_eq!(t.snapshots()[0].sim_time_ns, 1_000_000_000);
/// ```
#[derive(Clone, Debug)]
pub struct SimTelemetry {
    registry: MetricsRegistry,
    interval: SimDuration,
    next_snapshot: SimTime,
    snapshots: Vec<Snapshot>,
    events: EventTrace,
}

/// The event buffer type: a bounded ring of [`TelemetryEvent`]s.
pub type EventTrace = Trace<TelemetryEvent>;

impl SimTelemetry {
    /// Creates a sink snapshotting every `interval` of sim time, with the
    /// default event-buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (the pump loop could never terminate).
    pub fn new(interval: SimDuration) -> Self {
        Self::with_event_capacity(interval, DEFAULT_EVENT_CAPACITY)
    }

    /// Creates a sink with an explicit event-buffer capacity (0 keeps
    /// event counts but retains no event records).
    pub fn with_event_capacity(interval: SimDuration, events: usize) -> Self {
        assert!(!interval.is_zero(), "snapshot interval must be non-zero");
        SimTelemetry {
            registry: MetricsRegistry::new(),
            interval,
            next_snapshot: SimTime::ZERO + interval,
            snapshots: Vec::new(),
            events: Trace::with_capacity(events),
        }
    }

    /// The configured snapshot interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Borrows the metric registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutably borrows the metric registry (for handle-based hot paths).
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// The snapshots captured so far, oldest first.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Consumes the sink, yielding its snapshots.
    pub fn into_snapshots(self) -> Vec<Snapshot> {
        self.snapshots
    }

    /// Borrows the recorded events.
    pub fn events(&self) -> &EventTrace {
        &self.events
    }

    /// Takes one final snapshot stamped `end` unless the latest snapshot
    /// already carries that timestamp. Call after the simulation loop so
    /// the series always closes at the run's horizon.
    pub fn finish(&mut self, end: SimTime) {
        if self.snapshots.last().map(|s| s.sim_time_ns) != Some(end.as_nanos()) {
            self.snapshot(end);
        }
    }

    /// Exports the snapshots as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        export::jsonl(&self.snapshots)
    }

    /// Exports the current registry state in Prometheus text format.
    pub fn to_prometheus(&self) -> String {
        export::prometheus(&self.registry)
    }

    /// Exports the retained events as CSV (`time_ns,event,value`).
    pub fn events_csv(&self) -> String {
        self.events.to_csv()
    }
}

impl TelemetrySink for SimTelemetry {
    fn enabled(&self) -> bool {
        true
    }

    fn count(&mut self, name: &'static str, delta: u64) {
        let id = self.registry.counter(name);
        self.registry.add(id, delta);
    }

    fn count_to(&mut self, name: &'static str, total: u64) {
        let id = self.registry.counter(name);
        self.registry.set_total(id, total);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        let id = self.registry.gauge(name);
        self.registry.set(id, value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        let id = self.registry.histogram(name);
        self.registry.observe(id, value);
    }

    fn event(&mut self, at: SimTime, name: &'static str, value: f64) {
        self.events.push(at, TelemetryEvent { name, value });
    }

    fn snapshot_due(&self, now: SimTime) -> Option<SimTime> {
        (now >= self.next_snapshot).then_some(self.next_snapshot)
    }

    fn snapshot(&mut self, at: SimTime) {
        self.snapshots.push(self.registry.snapshot(at));
        // Advance past `at` in whole intervals so a manual out-of-cadence
        // snapshot cannot stall the boundary clock.
        while self.next_snapshot <= at {
            self.next_snapshot += self.interval;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.count("x", 1);
        s.gauge("y", 2.0);
        s.observe("z", 3.0);
        s.event(SimTime::ZERO, "e", 0.0);
        assert_eq!(s.snapshot_due(SimTime::MAX), None);
        s.snapshot(SimTime::ZERO);
    }

    #[test]
    fn boundaries_stamp_exact_multiples() {
        let mut t = SimTelemetry::new(SimDuration::from_secs(10));
        t.count("ops", 1);
        // The loop pumps late (at t = 35 s): three boundaries are due and
        // each must be stamped at its own multiple, not at `now`.
        let now = SimTime::from_secs(35);
        while let Some(at) = t.snapshot_due(now) {
            t.snapshot(at);
        }
        let stamps: Vec<u64> = t.snapshots().iter().map(|s| s.sim_time_ns).collect();
        assert_eq!(stamps, vec![10_000_000_000, 20_000_000_000, 30_000_000_000]);
    }

    #[test]
    fn finish_closes_the_series_once() {
        let mut t = SimTelemetry::new(SimDuration::from_secs(1));
        let end = SimTime::from_secs(5);
        while let Some(at) = t.snapshot_due(end) {
            t.snapshot(at);
        }
        assert_eq!(t.snapshots().len(), 5);
        t.finish(end); // last snapshot is already at `end`
        assert_eq!(t.snapshots().len(), 5);
        t.finish(SimTime::from_secs(6));
        assert_eq!(t.snapshots().len(), 6);
        assert_eq!(t.snapshots().last().unwrap().sim_time_ns, 6_000_000_000);
    }

    #[test]
    fn counters_persist_across_snapshots() {
        let mut t = SimTelemetry::new(SimDuration::from_millis(100));
        t.count("ops", 2);
        t.snapshot(SimTime::ZERO + SimDuration::from_millis(100));
        t.count("ops", 3);
        t.snapshot(SimTime::ZERO + SimDuration::from_millis(200));
        assert_eq!(t.snapshots()[0].counters[0], ("ops".to_string(), 2));
        assert_eq!(t.snapshots()[1].counters[0], ("ops".to_string(), 5));
    }

    #[test]
    fn events_record_into_ring_buffer() {
        let mut t = SimTelemetry::with_event_capacity(SimDuration::from_secs(1), 2);
        t.event(SimTime::from_nanos(1), "gc", 4.0);
        t.event(SimTime::from_nanos(2), "gc", 5.0);
        t.event(SimTime::from_nanos(3), "scrub", 6.0);
        assert_eq!(t.events().total_pushed(), 3);
        assert_eq!(t.events().len(), 2);
        let csv = t.events_csv();
        assert!(csv.starts_with("time_ns,event,value\n"), "{csv}");
        assert!(csv.contains("3,scrub,6"), "{csv}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_is_rejected() {
        let _ = SimTelemetry::new(SimDuration::ZERO);
    }
}
