//! Property suite for [`mrm_obs::CausalTracer`].
//!
//! Drives arbitrary interleavings of slice opens/closes, instants, and
//! async begin/end pairs — including out-of-order closes, double closes,
//! unmatched async ends, and ring evictions at tiny capacities — against
//! an unbounded oracle that records the parent every span *should* have
//! captured at begin time. The tracer may forget old spans (that is the
//! ring bound's job) but must never misattribute a retained one.

use proptest::prelude::*;

use mrm_obs::causal::{CausalTracer, Detail, SpanId, SpanKind, TraceId};
use mrm_sim::time::SimTime;

/// One scripted tracer operation. Track/subject selectors are small so
/// sequences collide on the same track often enough to exercise nesting.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Open a slice on a track.
    Begin(u8),
    /// Record an instant on a track.
    Instant(u8),
    /// Close the `sel % ids`-th span ever assigned (often already closed,
    /// sometimes an instant or async id — all must be ignored safely).
    End(u8),
    /// Open an async session span for a subject.
    AsyncBegin(u8),
    /// Close the newest open async session span for a subject (may be
    /// unmatched).
    AsyncEnd(u8),
}

/// Decodes a generated `(selector, operand)` pair (the vendored proptest
/// has no `prop_oneof`, so ops are generated as raw tuples).
fn decode(sel: u8, operand: u8) -> Op {
    match sel {
        0 => Op::Begin(operand % 4),
        1 => Op::Instant(operand % 4),
        2 => Op::End(operand),
        3 => Op::AsyncBegin(operand % 3),
        _ => Op::AsyncEnd(operand % 3),
    }
}

/// Unbounded reference model: what every id's parent was at begin time,
/// plus the open-slice stacks per track.
#[derive(Default)]
struct Oracle {
    /// `parents[id]` = expected parent, `None` for track-top or async.
    parents: Vec<Option<SpanId>>,
    /// `is_slice[id]` = id was opened by `Begin` (closable).
    is_slice: Vec<bool>,
    /// Per-track stacks of open slice ids, innermost last.
    stacks: Vec<(u8, Vec<SpanId>)>,
    /// Open async spans as (subject, id), in open order.
    async_open: Vec<(u8, SpanId)>,
    /// Spans that have reached the closed ring.
    closed: u64,
}

impl Oracle {
    fn stack(&mut self, track: u8) -> &mut Vec<SpanId> {
        if let Some(i) = self.stacks.iter().position(|(t, _)| *t == track) {
            &mut self.stacks[i].1
        } else {
            self.stacks.push((track, Vec::new()));
            &mut self.stacks.last_mut().unwrap().1
        }
    }

    fn top(&self, track: u8) -> Option<SpanId> {
        self.stacks
            .iter()
            .find(|(t, _)| *t == track)
            .and_then(|(_, s)| s.last().copied())
    }
}

proptest! {
    #[test]
    fn arbitrary_open_close_sequences_keep_attribution(
        raw in proptest::collection::vec((0u8..5, any::<u8>()), 1..200),
        capacity in 1usize..32,
        seed in any::<u64>(),
    ) {
        let ops: Vec<Op> = raw.iter().map(|&(s, o)| decode(s, o)).collect();
        let mut tr = CausalTracer::with_capacity(TraceId::derive(seed), capacity);
        let mut oracle = Oracle::default();
        for (step, op) in ops.iter().enumerate() {
            let now = SimTime::from_nanos(step as u64);
            match *op {
                Op::Begin(track) => {
                    let expected_parent = oracle.top(track);
                    let id = tr.begin(now, SpanKind::DecodeIter, u32::from(track), 0);
                    prop_assert_eq!(id.0, oracle.parents.len() as u64, "ids must be dense");
                    oracle.parents.push(expected_parent);
                    oracle.is_slice.push(true);
                    oracle.stack(track).push(id);
                }
                Op::Instant(track) => {
                    let expected_parent = oracle.top(track);
                    let id = tr.instant(
                        now,
                        SpanKind::Drop,
                        u32::from(track),
                        0,
                        Detail::default(),
                    );
                    prop_assert_eq!(id.0, oracle.parents.len() as u64, "ids must be dense");
                    oracle.parents.push(expected_parent);
                    oracle.is_slice.push(false);
                    oracle.closed += 1;
                }
                Op::End(sel) => {
                    if oracle.parents.is_empty() {
                        continue;
                    }
                    let id = SpanId(u64::from(sel) % oracle.parents.len() as u64);
                    tr.end(now, id);
                    // Only currently-open slices actually close; ends on
                    // instants, async ids, or already-closed ids are no-ops.
                    for (_, stack) in &mut oracle.stacks {
                        if let Some(i) = stack.iter().position(|s| *s == id) {
                            stack.remove(i);
                            oracle.closed += 1;
                        }
                    }
                }
                Op::AsyncBegin(subject) => {
                    let id = tr.async_begin(now, SpanKind::Session, 0, u64::from(subject));
                    prop_assert_eq!(id.0, oracle.parents.len() as u64, "ids must be dense");
                    oracle.parents.push(None);
                    oracle.is_slice.push(false);
                    oracle.async_open.push((subject, id));
                }
                Op::AsyncEnd(subject) => {
                    tr.async_end(now, SpanKind::Session, u64::from(subject), Detail::default());
                    if let Some(i) = oracle
                        .async_open
                        .iter()
                        .rposition(|(s, _)| *s == subject)
                    {
                        oracle.async_open.remove(i);
                        oracle.closed += 1;
                    }
                }
            }
        }

        // Every retained closed span carries the parent captured at its
        // begin time — eviction and close order cannot rewrite history.
        for rec in tr.spans() {
            prop_assert_eq!(
                rec.parent,
                oracle.parents[rec.id.0 as usize],
                "span {} misattributed",
                rec.id.0
            );
            if let Some(p) = rec.parent {
                prop_assert!(p < rec.id, "parent must predate child");
            }
        }

        // The ring is exact: closed spans beyond capacity are counted as
        // dropped, never silently lost or double-retained.
        prop_assert_eq!(tr.total(), oracle.parents.len() as u64);
        prop_assert_eq!(
            tr.spans().count() as u64 + tr.dropped(),
            oracle.closed,
            "retained + dropped must equal closed"
        );
        prop_assert_eq!(tr.dropped(), oracle.closed.saturating_sub(capacity as u64));
        let open_slices: usize = oracle.stacks.iter().map(|(_, s)| s.len()).sum();
        prop_assert_eq!(tr.open_count(), open_slices + oracle.async_open.len());

        // Teardown closes everything and attribution still holds.
        tr.finish(SimTime::from_nanos(ops.len() as u64));
        prop_assert_eq!(tr.open_count(), 0);
        let finished = oracle.closed + open_slices as u64 + oracle.async_open.len() as u64;
        prop_assert_eq!(tr.spans().count() as u64 + tr.dropped(), finished);
        for rec in tr.spans() {
            prop_assert_eq!(rec.parent, oracle.parents[rec.id.0 as usize]);
        }
    }

    #[test]
    fn same_ops_same_seed_are_identical(
        raw in proptest::collection::vec((0u8..5, any::<u8>()), 1..100),
        seed in any::<u64>(),
    ) {
        let ops: Vec<Op> = raw.iter().map(|&(s, o)| decode(s, o)).collect();
        // The tracer itself holds no entropy: two replays of one script
        // agree span-for-span (ids, parents, kinds, times).
        let run = |ops: &[Op]| {
            let mut tr = CausalTracer::with_capacity(TraceId::derive(seed), 64);
            for (step, op) in ops.iter().enumerate() {
                let now = SimTime::from_nanos(step as u64);
                match *op {
                    Op::Begin(t) => {
                        tr.begin(now, SpanKind::DecodeIter, u32::from(t), 0);
                    }
                    Op::Instant(t) => {
                        tr.instant(now, SpanKind::Drop, u32::from(t), 0, Detail::default());
                    }
                    Op::End(sel) => {
                        if tr.total() > 0 {
                            tr.end(now, SpanId(u64::from(sel) % tr.total()));
                        }
                    }
                    Op::AsyncBegin(s) => {
                        tr.async_begin(now, SpanKind::Session, 0, u64::from(s));
                    }
                    Op::AsyncEnd(s) => {
                        tr.async_end(now, SpanKind::Session, u64::from(s), Detail::default());
                    }
                }
            }
            tr.finish(SimTime::from_nanos(ops.len() as u64));
            tr
        };
        let a = run(&ops);
        let b = run(&ops);
        prop_assert_eq!(a.total(), b.total());
        prop_assert_eq!(a.dropped(), b.dropped());
        for (ra, rb) in a.spans().zip(b.spans()) {
            prop_assert_eq!(ra.id, rb.id);
            prop_assert_eq!(ra.parent, rb.parent);
            prop_assert_eq!(ra.kind, rb.kind);
            prop_assert_eq!(ra.begin, rb.begin);
            prop_assert_eq!(ra.end, rb.end);
        }
    }
}
