//! Chrome trace-event / Perfetto JSON export.
//!
//! Renders one or more [`CausalTracer`]s as a single
//! `{"traceEvents":[...]}` document loadable by `ui.perfetto.dev` or
//! `chrome://tracing`. Each tracer becomes one Perfetto *process*
//! (`pid` = point index, named by its label); each sim track becomes a
//! *thread* (`tid` 0 is the cluster-wide track, `tid` n+1 is
//! accelerator n).
//!
//! Mapping:
//!
//! * slices and instants → `"ph":"X"` complete events (instants with
//!   `dur` 0) with sim-time timestamps in fractional microseconds at
//!   nanosecond precision;
//! * async lifecycle spans → `"ph":"b"`/`"e"` pairs sharing the span id;
//! * causal links → `"ph":"s"`/`"f"` flow arrows from the cause slice
//!   to the effect slice; the effect's args also carry `"cause"` so the
//!   linkage survives tools that ignore flows.
//!
//! Every field is derived from sim state and dense ids, so the exported
//! bytes are identical for any `--threads` and distinct across seeds
//! (the `trace_id` rides in `otherData` and every event's args carry
//! dense ids derived from it).

use crate::causal::{CausalTracer, SpanRec, CLUSTER_TRACK};

/// Escapes a string for direct inclusion inside JSON quotes.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Sim nanoseconds → trace-event microseconds with ns precision.
fn ts(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn tid(track: u32) -> u64 {
    if track == CLUSTER_TRACK {
        0
    } else {
        u64::from(track) + 1
    }
}

/// Builds the deterministic `args` object for a span.
fn args(span: &SpanRec, cause: Option<u64>) -> String {
    let mut a = format!("{{\"span\":{},\"subject\":{}", span.id.0, span.subject);
    if let Some(p) = span.parent {
        a.push_str(&format!(",\"parent\":{}", p.0));
    }
    if span.detail.bytes > 0 {
        a.push_str(&format!(",\"bytes\":{}", span.detail.bytes));
    }
    if !span.detail.reason.is_empty() {
        a.push_str(&format!(",\"reason\":\"{}\"", esc(span.detail.reason)));
    }
    if let Some(seq) = span.detail.audit_seq {
        a.push_str(&format!(",\"audit_seq\":{seq}"));
    }
    if span.detail.required {
        a.push_str(",\"required\":1");
    }
    if let Some(c) = cause {
        a.push_str(&format!(",\"cause\":{c}"));
    }
    a.push('}');
    a
}

/// Exports labelled tracers as one Chrome trace-event JSON document.
/// Point order is the caller's (grid) order, so output is reproducible.
pub fn chrome_trace(points: &[(String, &CausalTracer)]) -> String {
    let mut ev: Vec<String> = Vec::new();
    let mut flow_id = 0u64;

    for (pid, (label, tracer)) in points.iter().enumerate() {
        ev.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(label)
        ));
        let mut tracks: Vec<u32> = tracer.spans().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for track in tracks {
            let name = if track == CLUSTER_TRACK {
                "cluster".to_string()
            } else {
                format!("accel {track}")
            };
            ev.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{},\
                 \"args\":{{\"name\":\"{name}\"}}}}",
                tid(track)
            ));
        }

        // The first recorded cause for each effect rides in its args.
        let cause_of = |effect: u64| -> Option<u64> {
            tracer
                .links()
                .iter()
                .find(|l| l.effect.0 == effect)
                .map(|l| l.cause.0)
        };

        for span in tracer.spans() {
            let name = span.kind.label();
            let cat = span.kind.category();
            let t0 = span.begin.as_nanos();
            let t1 = span.end.as_nanos();
            let a = args(span, cause_of(span.id.0));
            if span.is_async {
                // b/e pair share the span id; ids are scoped per cat+pid.
                ev.push(format!(
                    "{{\"ph\":\"b\",\"cat\":\"{cat}\",\"name\":\"{name}\",\"id\":\"{}\",\
                     \"pid\":{pid},\"tid\":{},\"ts\":{},\"args\":{a}}}",
                    span.id.0,
                    tid(span.track),
                    ts(t0)
                ));
                ev.push(format!(
                    "{{\"ph\":\"e\",\"cat\":\"{cat}\",\"name\":\"{name}\",\"id\":\"{}\",\
                     \"pid\":{pid},\"tid\":{},\"ts\":{}}}",
                    span.id.0,
                    tid(span.track),
                    ts(t1)
                ));
            } else {
                ev.push(format!(
                    "{{\"ph\":\"X\",\"cat\":\"{cat}\",\"name\":\"{name}\",\"pid\":{pid},\
                     \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{a}}}",
                    tid(span.track),
                    ts(t0),
                    ts(t1 - t0)
                ));
            }
        }

        for link in tracer.links() {
            let (Some(cause), Some(effect)) = (tracer.span(link.cause), tracer.span(link.effect))
            else {
                continue; // an endpoint fell out of the bounded ring
            };
            ev.push(format!(
                "{{\"ph\":\"s\",\"cat\":\"flow\",\"name\":\"causal\",\"id\":{flow_id},\
                 \"pid\":{pid},\"tid\":{},\"ts\":{}}}",
                tid(cause.track),
                ts(cause.begin.as_nanos())
            ));
            ev.push(format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\",\"name\":\"causal\",\
                 \"id\":{flow_id},\"pid\":{pid},\"tid\":{},\"ts\":{}}}",
                tid(effect.track),
                ts(effect.begin.as_nanos())
            ));
            flow_id += 1;
        }
    }

    let ids: Vec<String> = points
        .iter()
        .map(|(_, t)| format!("\"{:#018x}\"", t.trace_id().0))
        .collect();
    format!(
        "{{\"traceEvents\":[\n{}\n],\"otherData\":{{\"trace_ids\":[{}]}}}}\n",
        ev.join(",\n"),
        ids.join(",")
    )
}

/// Exports one tracer (convenience for single-run callers).
pub fn single(label: &str, tracer: &CausalTracer) -> String {
    chrome_trace(&[(label.to_string(), tracer)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::{Detail, SpanKind, TraceId};
    use mrm_sim::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample() -> CausalTracer {
        let mut tr = CausalTracer::new(TraceId::derive(5));
        let s = tr.async_begin(t(100), SpanKind::Session, 0, 1);
        let it = tr.begin(t(1_500), SpanKind::DecodeIter, 0, 1);
        let rec = tr.instant(
            t(2_000),
            SpanKind::Recovery,
            0,
            9,
            Detail {
                bytes: 64,
                reason: "uncorrectable-read",
                audit_seq: Some(3),
                required: false,
            },
        );
        let drop = tr.instant(
            t(2_000),
            SpanKind::Drop,
            0,
            9,
            Detail {
                bytes: 64,
                reason: "uncorrectable-read",
                audit_seq: Some(4),
                required: true,
            },
        );
        tr.link(rec, drop);
        tr.end(t(2_500), it);
        let _ = s;
        tr.async_end(t(3_000), SpanKind::Session, 1, Detail::default());
        tr
    }

    #[test]
    fn export_is_deterministic_and_carries_links() {
        let a = single("point", &sample());
        let b = single("point", &sample());
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"b\""));
        assert!(a.contains("\"ph\":\"s\""));
        assert!(a.contains("\"ph\":\"f\""));
        assert!(a.contains("\"cause\":"));
        assert!(a.contains("\"audit_seq\":4"));
        assert!(a.contains("\"required\":1"));
        // ts is µs with ns precision: 1500 ns → 1.500.
        assert!(a.contains("\"ts\":1.500"));
    }

    #[test]
    fn seeds_produce_distinct_bytes() {
        let t1 = CausalTracer::new(TraceId::derive(1));
        let t2 = CausalTracer::new(TraceId::derive(2));
        assert_ne!(single("p", &t1), single("p", &t2));
    }

    #[test]
    fn labels_are_escaped() {
        let tr = CausalTracer::new(TraceId::derive(1));
        let out = single("a\"b\\c", &tr);
        assert!(out.contains("a\\\"b\\\\c"));
    }
}
