//! `trace_check` — dependency-free Perfetto JSON shape checker for CI.
//!
//! Usage: `trace_check <trace.json> [--require-drop-links]`
//!
//! Validates the structural contract of an exported Chrome trace (see
//! [`mrm_obs::check`]) and prints the event tally. With
//! `--require-drop-links`, additionally fails unless every drop event
//! flagged `required` carries a `cause` link to its audited recovery —
//! the trace-level form of the REQUIRED-DURABLE oracle.

use mrm_obs::check::validate_chrome_trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_links = args.iter().any(|a| a == "--require-drop-links");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_check <trace.json> [--require-drop-links]");
        std::process::exit(2);
    };
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match validate_chrome_trace(&json) {
        Ok(stats) => {
            println!(
                "trace_check: {path}: {} events ({} slices, {} async pairs, {} flows, \
                 {} metadata); {}/{} required drops carry a cause link",
                stats.events,
                stats.slices,
                stats.async_pairs,
                stats.flows,
                stats.metadata,
                stats.required_drops_with_cause,
                stats.required_drops,
            );
            if require_links && stats.required_drops_with_cause != stats.required_drops {
                eprintln!("trace_check: FAIL: required drop without a causal recovery link");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("trace_check: FAIL: {path}: {e}");
            std::process::exit(1);
        }
    }
}
