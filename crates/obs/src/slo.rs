//! Declarative SLO specs evaluated over telemetry snapshots.
//!
//! An [`SloSpec`] names one metric in the telemetry snapshot stream and
//! a bound on it; [`evaluate`] walks a run's snapshots at their
//! sim-time intervals and emits a typed [`SloBreach`] for every
//! violation, folded into an [`SloReport`] the experiment bins consume
//! as shape checks (e9_cluster, e11_faults, e13_control).
//!
//! Four bound kinds cover the serving SLOs the paper's argument needs:
//! per-request latency ([`SloKind::HistP99Ceiling`] on `ttft_ms`), the
//! REQUIRED-DURABLE invariant ([`SloKind::GaugeCeiling`] of zero on
//! `control_required_drop_violations`), the fault ladder's blast radius
//! ([`SloKind::RatePerSecCeiling`] on `cluster_fault_scrub_escalations`),
//! and per-tier occupancy ceilings ([`SloKind::GaugeCeiling`] on
//! `tier_*_occupancy`). Metrics absent from a snapshot are skipped, not
//! failed — a healthy run with faults disabled simply never evaluates
//! the fault SLOs.
//!
//! Evaluation is pure: snapshots in, report out. Nothing here touches
//! the simulator, so the watchdog obeys the obs determinism contract
//! by construction.

use mrm_telemetry::Snapshot;
use serde::Serialize;

/// How a metric is compared against its bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SloKind {
    /// Gauge value must be ≤ bound in every snapshot.
    GaugeCeiling,
    /// Counter total must be ≤ bound in every snapshot.
    CounterCeiling,
    /// Histogram p99 must be ≤ bound in every snapshot.
    HistP99Ceiling,
    /// Counter increase rate between consecutive snapshots must be
    /// ≤ bound per simulated second.
    RatePerSecCeiling,
}

/// One declarative SLO: a metric, a comparison, a bound.
#[derive(Clone, Debug, Serialize)]
pub struct SloSpec {
    /// Report label, e.g. `ttft-p99`.
    pub name: String,
    /// Snapshot metric name, e.g. `ttft_ms`.
    pub metric: String,
    /// Comparison kind.
    pub kind: SloKind,
    /// Inclusive upper bound.
    pub bound: f64,
}

impl SloSpec {
    /// Convenience constructor.
    pub fn new(name: &str, metric: &str, kind: SloKind, bound: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            metric: metric.to_string(),
            kind,
            bound,
        }
    }
}

/// A typed breach event: which SLO, when, what was observed.
#[derive(Clone, Debug, Serialize)]
pub struct SloBreach {
    /// Spec label.
    pub slo: String,
    /// Metric that broke the bound.
    pub metric: String,
    /// Snapshot sim time.
    pub at_ns: u64,
    /// Observed value (for rates, per simulated second).
    pub observed: f64,
    /// The bound it exceeded.
    pub bound: f64,
}

/// Pass/fail summary over one run's snapshot stream.
#[derive(Clone, Debug, Serialize)]
pub struct SloReport {
    /// Specs supplied.
    pub specs: u64,
    /// Snapshots examined.
    pub snapshots: u64,
    /// Individual spec×snapshot evaluations performed.
    pub checks: u64,
    /// Breaches, in snapshot order.
    pub breaches: Vec<SloBreach>,
    /// `breaches.is_empty()` — the watchdog verdict.
    pub passed: bool,
}

impl SloReport {
    /// Breaches of one spec (by label).
    pub fn breaches_of(&self, slo: &str) -> usize {
        self.breaches.iter().filter(|b| b.slo == slo).count()
    }
}

fn gauge(snap: &Snapshot, name: &str) -> Option<f64> {
    snap.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

fn counter(snap: &Snapshot, name: &str) -> Option<u64> {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
}

fn hist_p99(snap: &Snapshot, name: &str) -> Option<f64> {
    snap.histograms
        .iter()
        .find(|(n, h)| n == name && h.count > 0)
        .map(|(_, h)| h.p99)
}

/// Evaluates every spec against every snapshot (rates against every
/// consecutive pair). Snapshots must be in sim-time order, as the
/// telemetry layer emits them.
pub fn evaluate(specs: &[SloSpec], snapshots: &[Snapshot]) -> SloReport {
    let mut checks = 0u64;
    let mut breaches = Vec::new();
    for spec in specs {
        let mut prev: Option<(u64, u64)> = None; // (sim_time_ns, counter)
        for snap in snapshots {
            let observed = match spec.kind {
                SloKind::GaugeCeiling => gauge(snap, &spec.metric),
                SloKind::CounterCeiling => counter(snap, &spec.metric).map(|v| v as f64),
                SloKind::HistP99Ceiling => hist_p99(snap, &spec.metric),
                SloKind::RatePerSecCeiling => {
                    let cur = counter(snap, &spec.metric);
                    let rate = match (prev, cur) {
                        (Some((t0, c0)), Some(c1)) if snap.sim_time_ns > t0 => {
                            let dt_s = (snap.sim_time_ns - t0) as f64 / 1e9;
                            Some(c1.saturating_sub(c0) as f64 / dt_s)
                        }
                        _ => None,
                    };
                    if let Some(c) = cur {
                        prev = Some((snap.sim_time_ns, c));
                    }
                    rate
                }
            };
            let Some(observed) = observed else {
                continue;
            };
            checks += 1;
            if observed > spec.bound {
                breaches.push(SloBreach {
                    slo: spec.name.clone(),
                    metric: spec.metric.clone(),
                    at_ns: snap.sim_time_ns,
                    observed,
                    bound: spec.bound,
                });
            }
        }
    }
    breaches.sort_by(|a, b| a.at_ns.cmp(&b.at_ns).then_with(|| a.slo.cmp(&b.slo)));
    SloReport {
        specs: specs.len() as u64,
        snapshots: snapshots.len() as u64,
        checks,
        passed: breaches.is_empty(),
        breaches,
    }
}

/// The serving-cluster SLO set the experiment bins check: TTFT p99
/// under `ttft_p99_ms`, zero required-drop violations, scrub-escalation
/// rate under `escalations_per_s`, and every tier's occupancy ≤ 1.
pub fn serving_default(ttft_p99_ms: f64, escalations_per_s: f64) -> Vec<SloSpec> {
    vec![
        SloSpec::new("ttft-p99", "ttft_ms", SloKind::HistP99Ceiling, ttft_p99_ms),
        SloSpec::new(
            "required-drop",
            "control_required_drop_violations",
            SloKind::GaugeCeiling,
            0.0,
        ),
        SloSpec::new(
            "escalation-rate",
            "cluster_fault_scrub_escalations",
            SloKind::RatePerSecCeiling,
            escalations_per_s,
        ),
        SloSpec::new(
            "hbm-occupancy",
            "tier_hbm_occupancy",
            SloKind::GaugeCeiling,
            1.0,
        ),
        SloSpec::new(
            "lpddr-occupancy",
            "tier_lpddr_occupancy",
            SloKind::GaugeCeiling,
            1.0,
        ),
        SloSpec::new(
            "mrm-occupancy",
            "tier_mrm_occupancy",
            SloKind::GaugeCeiling,
            1.0,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::time::{SimDuration, SimTime};
    use mrm_telemetry::SimTelemetry;

    fn snaps(points: &[(u64, f64, u64)]) -> Vec<Snapshot> {
        // (sim secs, gauge "g", counter "c") per snapshot.
        let mut tele = SimTelemetry::new(SimDuration::from_secs(1));
        use mrm_telemetry::TelemetrySink;
        for (s, g, c) in points {
            tele.gauge("g", *g);
            tele.count_to("c", *c);
            tele.observe("h", *g);
            tele.snapshot(SimTime::ZERO + SimDuration::from_secs(*s));
        }
        tele.into_snapshots()
    }

    #[test]
    fn gauge_ceiling_flags_each_offending_snapshot() {
        let specs = [SloSpec::new("g-max", "g", SloKind::GaugeCeiling, 1.0)];
        let rep = evaluate(&specs, &snaps(&[(1, 0.5, 0), (2, 1.5, 0), (3, 2.5, 0)]));
        assert_eq!(rep.checks, 3);
        assert_eq!(rep.breaches.len(), 2);
        assert!(!rep.passed);
        assert_eq!(rep.breaches_of("g-max"), 2);
        assert_eq!(rep.breaches[0].at_ns, 2_000_000_000);
        assert!((rep.breaches[0].observed - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rate_ceiling_uses_consecutive_deltas() {
        let specs = [SloSpec::new("rate", "c", SloKind::RatePerSecCeiling, 2.0)];
        // 0→1 (1/s ok), 1→9 (8/s breach).
        let rep = evaluate(&specs, &snaps(&[(1, 0.0, 0), (2, 0.0, 1), (3, 0.0, 9)]));
        assert_eq!(rep.checks, 2);
        assert_eq!(rep.breaches.len(), 1);
        assert!((rep.breaches[0].observed - 8.0).abs() < 1e-12);
    }

    #[test]
    fn absent_metrics_are_skipped_not_failed() {
        let specs = serving_default(100.0, 1.0);
        let rep = evaluate(&specs, &snaps(&[(1, 0.0, 0)]));
        // None of the serving metrics exist in this synthetic stream.
        assert_eq!(rep.checks, 0);
        assert!(rep.passed);
        assert_eq!(rep.snapshots, 1);
    }

    #[test]
    fn hist_p99_ceiling_reads_summaries() {
        let specs = [SloSpec::new("h99", "h", SloKind::HistP99Ceiling, 1.0)];
        let rep = evaluate(&specs, &snaps(&[(1, 0.5, 0), (2, 50.0, 0)]));
        assert_eq!(rep.breaches.len(), 1);
        assert_eq!(rep.breaches[0].at_ns, 2_000_000_000);
    }
}
