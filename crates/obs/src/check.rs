//! Dependency-free structural validation of exported Chrome traces.
//!
//! CI's `obs-smoke` job byte-compares trace JSON across thread counts;
//! this module is the complementary *shape* check: the file must parse,
//! be a `{"traceEvents":[...]}` document, every event must carry the
//! fields its phase requires, async `b`/`e` pairs must balance, and
//! every flow start must meet a flow finish. [`validate_chrome_trace`]
//! returns the tally on success so callers can assert content-level
//! expectations (e.g. "every required drop carries a cause link").

use serde::Value;

/// Event tally from a validated trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events.
    pub events: u64,
    /// `"X"` complete slices (instants have `dur` 0).
    pub slices: u64,
    /// Async `b`/`e` pairs.
    pub async_pairs: u64,
    /// Flow `s`→`f` arrows.
    pub flows: u64,
    /// `"M"` metadata events.
    pub metadata: u64,
    /// Drop events flagged `required` in args.
    pub required_drops: u64,
    /// Required drop events whose args carry a `cause` span.
    pub required_drops_with_cause: u64,
}

fn is_num(v: &Value) -> bool {
    matches!(v, Value::U64(_) | Value::I64(_) | Value::F64(_))
}

/// Validates Chrome trace-event JSON produced by [`crate::perfetto`].
/// Returns the event tally, or a message naming the first violation.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Array(events) = doc.field("traceEvents") else {
        return Err("top level must be an object with a traceEvents array".to_string());
    };

    let mut stats = TraceStats::default();
    // (cat, id) balance for async pairs; (cat, id) for flows.
    let mut async_open: Vec<(String, String)> = Vec::new();
    let mut flow_open: Vec<String> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let Value::Object(_) = ev else {
            return Err(at("event must be an object"));
        };
        let ph = ev
            .field("ph")
            .as_str()
            .map_err(|_| at("missing ph"))?
            .to_string();
        ev.field("name").as_str().map_err(|_| at("missing name"))?;
        if !is_num(ev.field("pid")) || !is_num(ev.field("tid")) {
            return Err(at("missing numeric pid/tid"));
        }
        if ph != "M" && !is_num(ev.field("ts")) {
            return Err(at("missing numeric ts"));
        }
        stats.events += 1;
        match ph.as_str() {
            "X" => {
                if !is_num(ev.field("dur")) {
                    return Err(at("X event missing dur"));
                }
                stats.slices += 1;
                let name = ev.field("name").as_str().unwrap_or("");
                let args = ev.field("args");
                if name == "drop" && *args.field("required") == Value::U64(1) {
                    stats.required_drops += 1;
                    if is_num(args.field("cause")) {
                        stats.required_drops_with_cause += 1;
                    }
                }
            }
            "b" | "e" => {
                let cat = ev
                    .field("cat")
                    .as_str()
                    .map_err(|_| at("async event missing cat"))?
                    .to_string();
                let id = ev
                    .field("id")
                    .as_str()
                    .map_err(|_| at("async event missing string id"))?
                    .to_string();
                if ph == "b" {
                    async_open.push((cat, id));
                } else {
                    let Some(p) = async_open.iter().rposition(|(c, d)| *c == cat && *d == id)
                    else {
                        return Err(at("async e without matching b"));
                    };
                    async_open.swap_remove(p);
                    stats.async_pairs += 1;
                }
            }
            "s" | "f" => {
                let id = match ev.field("id") {
                    Value::U64(n) => n.to_string(),
                    Value::Str(s) => s.clone(),
                    _ => return Err(at("flow event missing id")),
                };
                if ph == "s" {
                    flow_open.push(id);
                } else {
                    let Some(p) = flow_open.iter().rposition(|d| *d == id) else {
                        return Err(at("flow f without matching s"));
                    };
                    flow_open.swap_remove(p);
                    stats.flows += 1;
                }
            }
            "M" => stats.metadata += 1,
            other => return Err(at(&format!("unsupported phase {other:?}"))),
        }
    }
    if !async_open.is_empty() {
        return Err(format!("{} async b events never closed", async_open.len()));
    }
    if !flow_open.is_empty() {
        return Err(format!("{} flow s events never finished", flow_open.len()));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::{CausalTracer, Detail, SpanKind, TraceId};
    use crate::perfetto;
    use mrm_sim::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn validates_exporter_output() {
        let mut tr = CausalTracer::new(TraceId::derive(9));
        tr.async_begin(t(0), SpanKind::Session, 0, 1);
        let rec = tr.instant(t(5), SpanKind::Recovery, 0, 2, Detail::default());
        let drop = tr.instant(
            t(5),
            SpanKind::Drop,
            0,
            2,
            Detail {
                required: true,
                ..Detail::default()
            },
        );
        tr.link(rec, drop);
        tr.async_end(t(9), SpanKind::Session, 1, Detail::default());
        let json = perfetto::single("p", &tr);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.async_pairs, 1);
        assert_eq!(stats.flows, 1);
        assert_eq!(stats.required_drops, 1);
        assert_eq!(stats.required_drops_with_cause, 1);
        assert!(stats.slices >= 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        let unbalanced = "{\"traceEvents\":[{\"ph\":\"b\",\"cat\":\"c\",\"id\":\"1\",\
                          \"name\":\"n\",\"pid\":0,\"tid\":0,\"ts\":0}]}";
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("never closed"));
    }
}
