//! Sim-time + wall-clock profiler over event-handler execution.
//!
//! [`Profiler::enter`]/[`Profiler::exit`] bracket a handler's execution;
//! frames nest, so each handler accumulates *total* wall time (itself
//! plus callees) and *self* wall time (total minus callees). Because
//! the simulator executes handlers at an instant of sim time, sim-time
//! cost is attributed explicitly: [`Profiler::sim_cost`] charges a
//! handler with the simulated interval it scheduled (a decode
//! iteration's duration, a maintenance period's scrub time).
//!
//! Exports: [`Profiler::folded`] emits `inferno`/`flamegraph.pl`-ready
//! folded stacks (`mrm;dispatch;decode_iter 1234` lines, self wall-ns
//! values), and [`Profiler::report`] the top-N hot-handler table
//! embedded in perf_suite output.
//!
//! Wall-clock readings make this the one deliberately nondeterministic
//! surface in the workspace: `mrm-obs` is *not* a sim-path crate (lint
//! D1 does not apply), and CI never byte-compares profile output —
//! only traces, which are pure sim time.

use std::collections::BTreeMap;
use std::time::Instant;

use mrm_sim::time::SimDuration;
use serde::Serialize;

struct Frame {
    name: &'static str,
    started: Instant,
    child_wall_ns: u64,
}

#[derive(Clone, Copy, Default)]
struct Stat {
    calls: u64,
    wall_self_ns: u64,
    wall_total_ns: u64,
    sim_ns: u64,
}

/// One row of the hot-handler table.
#[derive(Clone, Debug, Serialize)]
pub struct HotHandler {
    /// Handler label (the `enter` name).
    pub name: String,
    /// Times entered.
    pub calls: u64,
    /// Wall nanoseconds excluding callees.
    pub wall_self_ns: u64,
    /// Wall nanoseconds including callees.
    pub wall_total_ns: u64,
    /// Simulated nanoseconds attributed via [`Profiler::sim_cost`].
    pub sim_ns: u64,
}

/// Top-N summary, serializable into perf_suite's BENCH records.
#[derive(Clone, Debug, Serialize)]
pub struct ProfileReport {
    /// Distinct handler labels seen.
    pub handlers: u64,
    /// Total wall nanoseconds across root frames.
    pub wall_total_ns: u64,
    /// Hottest handlers by self wall time, descending.
    pub top: Vec<HotHandler>,
}

/// Frame-stack profiler; see the module docs. All methods are
/// observe-only and never touch sim state.
#[derive(Default)]
pub struct Profiler {
    stack: Vec<Frame>,
    stats: BTreeMap<&'static str, Stat>,
    /// Folded stack key (`;`-joined) → cumulative self wall ns.
    folded: BTreeMap<String, u64>,
    root_wall_ns: u64,
}

impl Profiler {
    /// New, empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a frame. Every `enter` must be matched by an `exit`.
    pub fn enter(&mut self, name: &'static str) {
        self.stack.push(Frame {
            name,
            started: Instant::now(),
            child_wall_ns: 0,
        });
    }

    /// Closes the innermost frame, attributing elapsed wall time.
    pub fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = u64::try_from(frame.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let self_ns = elapsed.saturating_sub(frame.child_wall_ns);
        let stat = self.stats.entry(frame.name).or_default();
        stat.calls += 1;
        stat.wall_total_ns += elapsed;
        stat.wall_self_ns += self_ns;
        let mut key = String::from("mrm");
        for f in &self.stack {
            key.push(';');
            key.push_str(f.name);
        }
        key.push(';');
        key.push_str(frame.name);
        *self.folded.entry(key).or_insert(0) += self_ns;
        match self.stack.last_mut() {
            Some(parent) => parent.child_wall_ns += elapsed,
            None => self.root_wall_ns += elapsed,
        }
    }

    /// Charges `name` with a simulated interval (e.g. the decode
    /// iteration latency the handler scheduled).
    pub fn sim_cost(&mut self, name: &'static str, d: SimDuration) {
        self.stats.entry(name).or_default().sim_ns += d.as_nanos();
    }

    /// Flamegraph-ready folded stacks, one `stack self_ns` line each,
    /// sorted by stack key.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (key, ns) in &self.folded {
            out.push_str(key);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Top-`n` handlers by self wall time (ties broken by name so the
    /// table is stable).
    pub fn report(&self, n: usize) -> ProfileReport {
        let mut top: Vec<HotHandler> = self
            .stats
            .iter()
            .map(|(name, s)| HotHandler {
                name: (*name).to_string(),
                calls: s.calls,
                wall_self_ns: s.wall_self_ns,
                wall_total_ns: s.wall_total_ns,
                sim_ns: s.sim_ns,
            })
            .collect();
        top.sort_by(|a, b| {
            b.wall_self_ns
                .cmp(&a.wall_self_ns)
                .then_with(|| a.name.cmp(&b.name))
        });
        top.truncate(n);
        ProfileReport {
            handlers: self.stats.len() as u64,
            wall_total_ns: self.root_wall_ns,
            top,
        }
    }

    /// Renders `report(n)` as an aligned text table for bin output.
    pub fn table(&self, n: usize) -> String {
        let rep = self.report(n);
        let mut out =
            String::from("handler                     calls     self ms    total ms      sim s\n");
        for h in &rep.top {
            out.push_str(&format!(
                "{:<24} {:>9} {:>11.3} {:>11.3} {:>10.1}\n",
                h.name,
                h.calls,
                h.wall_self_ns as f64 / 1e6,
                h.wall_total_ns as f64 / 1e6,
                h.sim_ns as f64 / 1e9,
            ));
        }
        out
    }
}

/// Renders the `--profile` artifact for a set of labelled grid points:
/// one JSON line per point carrying its top-`n` report, followed by a
/// `# folded` section with each point's flamegraph-ready stacks prefixed
/// by `label;`. Wall-clock values are machine-dependent by design — CI
/// byte-compares traces, never this file.
pub fn artifact(points: &[(String, &Profiler)], n: usize) -> String {
    let mut out = String::new();
    for (label, p) in points {
        // Hand-rolled envelope: the vendored serde derive does not handle
        // borrowed fields, and the label needs JSON string escaping.
        let label_json =
            serde_json::to_string(&serde_json::Value::Str(label.clone())).unwrap_or_default();
        let report_json = serde_json::to_string(&p.report(n)).unwrap_or_default();
        out.push_str(&format!(
            "{{\"point\":{label_json},\"report\":{report_json}}}\n"
        ));
    }
    out.push_str("# folded\n");
    for (label, p) in points {
        for line in p.folded().lines() {
            out.push_str(label);
            out.push(';');
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_has_one_json_line_per_point_and_folded_section() {
        let mut p = Profiler::new();
        p.enter("dispatch");
        p.exit();
        let points = vec![("pt0".to_string(), &p)];
        let points: Vec<(String, &Profiler)> = points;
        let text = artifact(&points, 5);
        let mut lines = text.lines();
        let first = lines.next().unwrap();
        assert!(first.starts_with("{\"point\":\"pt0\","), "{first}");
        assert!(text.contains("# folded\n"));
        assert!(text.contains("pt0;mrm;dispatch "));
    }

    #[test]
    fn self_time_excludes_children() {
        let mut p = Profiler::new();
        p.enter("dispatch");
        p.enter("decode");
        p.exit();
        p.exit();
        let rep = p.report(10);
        let get = |n: &str| rep.top.iter().find(|h| h.name == n).unwrap().clone();
        let dispatch = get("dispatch");
        let decode = get("decode");
        assert_eq!(dispatch.calls, 1);
        assert!(dispatch.wall_total_ns >= decode.wall_total_ns);
        assert!(dispatch.wall_self_ns <= dispatch.wall_total_ns);
        assert_eq!(rep.handlers, 2);
        assert!(rep.wall_total_ns >= dispatch.wall_total_ns);
    }

    #[test]
    fn folded_stacks_nest_by_semicolon() {
        let mut p = Profiler::new();
        p.enter("a");
        p.enter("b");
        p.exit();
        p.exit();
        let folded = p.folded();
        assert!(folded.contains("mrm;a "));
        assert!(folded.contains("mrm;a;b "));
        for line in folded.lines() {
            let (_, v) = line.rsplit_once(' ').unwrap();
            v.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn sim_cost_accumulates() {
        let mut p = Profiler::new();
        p.enter("decode");
        p.exit();
        p.sim_cost("decode", SimDuration::from_millis(3));
        p.sim_cost("decode", SimDuration::from_millis(2));
        let rep = p.report(1);
        assert_eq!(rep.top[0].sim_ns, 5_000_000);
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let mut p = Profiler::new();
        p.exit();
        assert_eq!(p.report(5).handlers, 0);
    }
}
