//! Sim-time + wall-clock profiler over event-handler execution.
//!
//! [`Profiler::enter`]/[`Profiler::exit`] bracket a handler's execution;
//! frames nest, so each handler accumulates *total* wall time (itself
//! plus callees) and *self* wall time (total minus callees). Because
//! the simulator executes handlers at an instant of sim time, sim-time
//! cost is attributed explicitly: [`Profiler::sim_cost`] charges a
//! handler with the simulated interval it scheduled (a decode
//! iteration's duration, a maintenance period's scrub time).
//!
//! The hot path is built for per-event use: handler names are interned
//! once into [`HandlerId`]s (resolve them at attach time, not per
//! event), per-handler stats live in an id-indexed vector, and folded
//! stacks accumulate in a call-tree of id-keyed nodes — no string is
//! built and no map is walked while the simulation runs. Back-to-back
//! handlers hand off through [`Profiler::switch`], which closes one
//! frame and opens the next on a *single* clock reading.
//!
//! Exports: [`Profiler::folded`] emits `inferno`/`flamegraph.pl`-ready
//! folded stacks (`mrm;dispatch;decode_iter 1234` lines, self wall-ns
//! values), and [`Profiler::report`] the top-N hot-handler table
//! embedded in perf_suite output.
//!
//! Wall-clock readings make this the one deliberately nondeterministic
//! surface in the workspace: `mrm-obs` is *not* a sim-path crate (lint
//! D1 does not apply), and CI never byte-compares profile output —
//! only traces, which are pure sim time.

use std::collections::BTreeMap;
use std::time::Instant;

use mrm_sim::time::SimDuration;
use serde::Serialize;

/// An interned handler label — resolve once via [`Profiler::handle`],
/// then profile by id with no lookups on the event path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandlerId(u32);

/// Sentinel index for "no node" in the call-tree link fields.
const NONE: u32 = u32::MAX;

struct Frame {
    /// Call-tree node this frame accumulates into.
    node: u32,
    started: Instant,
    child_wall_ns: u64,
}

/// One position in the call tree (a unique root-to-here handler path).
/// Children form a singly linked sibling list; lists are a handful of
/// entries long (distinct callees of one handler), so a linear walk
/// beats any map.
struct Node {
    handler: u32,
    parent: u32,
    first_child: u32,
    next_sibling: u32,
    /// Accumulated self wall time at this path.
    self_ns: u64,
    /// Whether any frame completed here (folded output includes only
    /// exited paths, matching frame-exit attribution).
    exited: bool,
}

#[derive(Clone, Copy, Default)]
struct Stat {
    calls: u64,
    wall_self_ns: u64,
    wall_total_ns: u64,
    sim_ns: u64,
    /// Whether the handler was ever exited or sim-charged (interned-only
    /// ids do not count as observed handlers).
    used: bool,
}

/// One row of the hot-handler table.
#[derive(Clone, Debug, Serialize)]
pub struct HotHandler {
    /// Handler label (the `enter` name).
    pub name: String,
    /// Times entered.
    pub calls: u64,
    /// Wall nanoseconds excluding callees.
    pub wall_self_ns: u64,
    /// Wall nanoseconds including callees.
    pub wall_total_ns: u64,
    /// Simulated nanoseconds attributed via [`Profiler::sim_cost`].
    pub sim_ns: u64,
}

/// Top-N summary, serializable into perf_suite's BENCH records.
#[derive(Clone, Debug, Serialize)]
pub struct ProfileReport {
    /// Distinct handler labels seen.
    pub handlers: u64,
    /// Total wall nanoseconds across root frames.
    pub wall_total_ns: u64,
    /// Hottest handlers by self wall time, descending.
    pub top: Vec<HotHandler>,
}

/// Frame-stack profiler; see the module docs. All methods are
/// observe-only and never touch sim state.
#[derive(Default)]
pub struct Profiler {
    /// Interned handler names, indexed by `HandlerId`.
    names: Vec<&'static str>,
    /// Name → id, consulted only at interning time.
    index: BTreeMap<&'static str, u32>,
    /// Per-handler stats, indexed by `HandlerId`.
    stats: Vec<Stat>,
    stack: Vec<Frame>,
    nodes: Vec<Node>,
    /// Head of the root-level sibling list.
    root_child: u32,
    /// Root-level node per handler (`NONE` until first visit) — a memo
    /// for the top-level enter/switch hot path, which would otherwise
    /// walk the root sibling list on every event.
    root_nodes: Vec<u32>,
    /// Node of the innermost open frame (`NONE` at top level).
    cur_node: u32,
    root_wall_ns: u64,
}

impl Profiler {
    /// New, empty profiler.
    pub fn new() -> Self {
        Profiler {
            root_child: NONE,
            cur_node: NONE,
            ..Profiler::default()
        }
    }

    /// Interns `name`, returning the id to profile it by. Idempotent;
    /// call it once when wiring hooks up, never per event.
    pub fn handle(&mut self, name: &'static str) -> HandlerId {
        if let Some(&id) = self.index.get(name) {
            return HandlerId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name);
        self.stats.push(Stat::default());
        self.index.insert(name, id);
        HandlerId(id)
    }

    /// Opens a frame. Every `enter` must be matched by an `exit`.
    pub fn enter(&mut self, name: &'static str) {
        let id = self.handle(name);
        self.enter_id(id);
    }

    /// Opens a frame for a pre-resolved handler — the per-event path.
    pub fn enter_id(&mut self, id: HandlerId) {
        self.enter_at(id, Instant::now());
    }

    /// Closes the innermost frame, attributing elapsed wall time.
    pub fn exit(&mut self) {
        self.exit_at(Instant::now());
    }

    /// Closes the innermost frame and opens one for `id` on a single
    /// clock reading — the handler-to-handler lap transition.
    pub fn switch(&mut self, id: HandlerId) {
        let t = Instant::now();
        self.exit_at(t);
        self.enter_at(id, t);
    }

    fn enter_at(&mut self, id: HandlerId, t: Instant) {
        let node = self.node_for(id.0);
        self.cur_node = node;
        self.stack.push(Frame {
            node,
            started: t,
            child_wall_ns: 0,
        });
    }

    fn exit_at(&mut self, t: Instant) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = u64::try_from(t.duration_since(frame.started).as_nanos()).unwrap_or(u64::MAX);
        let self_ns = elapsed.saturating_sub(frame.child_wall_ns);
        let node = &mut self.nodes[frame.node as usize];
        node.self_ns += self_ns;
        node.exited = true;
        let (handler, parent) = (node.handler, node.parent);
        let stat = &mut self.stats[handler as usize];
        stat.calls += 1;
        stat.wall_total_ns += elapsed;
        stat.wall_self_ns += self_ns;
        stat.used = true;
        self.cur_node = parent;
        match self.stack.last_mut() {
            Some(parent) => parent.child_wall_ns += elapsed,
            None => self.root_wall_ns += elapsed,
        }
    }

    /// The call-tree position for `handler` under the current frame,
    /// created on first visit.
    fn node_for(&mut self, handler: u32) -> u32 {
        if self.cur_node == NONE {
            if let Some(&n) = self.root_nodes.get(handler as usize) {
                if n != NONE {
                    return n;
                }
            }
        }
        let head = if self.cur_node == NONE {
            self.root_child
        } else {
            self.nodes[self.cur_node as usize].first_child
        };
        let mut c = head;
        while c != NONE {
            if self.nodes[c as usize].handler == handler {
                return c;
            }
            c = self.nodes[c as usize].next_sibling;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            handler,
            parent: self.cur_node,
            first_child: NONE,
            next_sibling: head,
            self_ns: 0,
            exited: false,
        });
        if self.cur_node == NONE {
            self.root_child = id;
            if self.root_nodes.len() <= handler as usize {
                self.root_nodes.resize(handler as usize + 1, NONE);
            }
            self.root_nodes[handler as usize] = id;
        } else {
            self.nodes[self.cur_node as usize].first_child = id;
        }
        id
    }

    /// Charges `name` with a simulated interval (e.g. the decode
    /// iteration latency the handler scheduled).
    pub fn sim_cost(&mut self, name: &'static str, d: SimDuration) {
        let id = self.handle(name);
        self.sim_cost_id(id, d);
    }

    /// Id-resolved [`sim_cost`](Self::sim_cost) — the per-event path.
    pub fn sim_cost_id(&mut self, id: HandlerId, d: SimDuration) {
        let stat = &mut self.stats[id.0 as usize];
        stat.sim_ns += d.as_nanos();
        stat.used = true;
    }

    /// Flamegraph-ready folded stacks, one `stack self_ns` line each,
    /// sorted by stack key.
    pub fn folded(&self) -> String {
        let mut lines: Vec<(String, u64)> = Vec::new();
        // Depth-first over the call tree, rendering each exited path.
        let mut pending: Vec<(u32, String)> = Vec::new();
        let mut c = self.root_child;
        while c != NONE {
            pending.push((c, String::from("mrm")));
            c = self.nodes[c as usize].next_sibling;
        }
        while let Some((n, prefix)) = pending.pop() {
            let node = &self.nodes[n as usize];
            let mut key = prefix.clone();
            key.push(';');
            key.push_str(self.names[node.handler as usize]);
            let mut child = node.first_child;
            while child != NONE {
                pending.push((child, key.clone()));
                child = self.nodes[child as usize].next_sibling;
            }
            if node.exited {
                lines.push((key, node.self_ns));
            }
        }
        lines.sort();
        let mut out = String::new();
        for (key, ns) in &lines {
            out.push_str(key);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Top-`n` handlers by self wall time (ties broken by name so the
    /// table is stable).
    pub fn report(&self, n: usize) -> ProfileReport {
        let mut top: Vec<HotHandler> = self
            .stats
            .iter()
            .zip(&self.names)
            .filter(|(s, _)| s.used)
            .map(|(s, name)| HotHandler {
                name: (*name).to_string(),
                calls: s.calls,
                wall_self_ns: s.wall_self_ns,
                wall_total_ns: s.wall_total_ns,
                sim_ns: s.sim_ns,
            })
            .collect();
        let handlers = top.len() as u64;
        top.sort_by(|a, b| {
            b.wall_self_ns
                .cmp(&a.wall_self_ns)
                .then_with(|| a.name.cmp(&b.name))
        });
        top.truncate(n);
        ProfileReport {
            handlers,
            wall_total_ns: self.root_wall_ns,
            top,
        }
    }

    /// Renders `report(n)` as an aligned text table for bin output.
    pub fn table(&self, n: usize) -> String {
        let rep = self.report(n);
        let mut out =
            String::from("handler                     calls     self ms    total ms      sim s\n");
        for h in &rep.top {
            out.push_str(&format!(
                "{:<24} {:>9} {:>11.3} {:>11.3} {:>10.1}\n",
                h.name,
                h.calls,
                h.wall_self_ns as f64 / 1e6,
                h.wall_total_ns as f64 / 1e6,
                h.sim_ns as f64 / 1e9,
            ));
        }
        out
    }
}

/// Renders the `--profile` artifact for a set of labelled grid points:
/// one JSON line per point carrying its top-`n` report, followed by a
/// `# folded` section with each point's flamegraph-ready stacks prefixed
/// by `label;`. Wall-clock values are machine-dependent by design — CI
/// byte-compares traces, never this file.
pub fn artifact(points: &[(String, &Profiler)], n: usize) -> String {
    let mut out = String::new();
    for (label, p) in points {
        // Hand-rolled envelope: the vendored serde derive does not handle
        // borrowed fields, and the label needs JSON string escaping.
        let label_json =
            serde_json::to_string(&serde_json::Value::Str(label.clone())).unwrap_or_default();
        let report_json = serde_json::to_string(&p.report(n)).unwrap_or_default();
        out.push_str(&format!(
            "{{\"point\":{label_json},\"report\":{report_json}}}\n"
        ));
    }
    out.push_str("# folded\n");
    for (label, p) in points {
        for line in p.folded().lines() {
            out.push_str(label);
            out.push(';');
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_has_one_json_line_per_point_and_folded_section() {
        let mut p = Profiler::new();
        p.enter("dispatch");
        p.exit();
        let points = vec![("pt0".to_string(), &p)];
        let points: Vec<(String, &Profiler)> = points;
        let text = artifact(&points, 5);
        let mut lines = text.lines();
        let first = lines.next().unwrap();
        assert!(first.starts_with("{\"point\":\"pt0\","), "{first}");
        assert!(text.contains("# folded\n"));
        assert!(text.contains("pt0;mrm;dispatch "));
    }

    #[test]
    fn self_time_excludes_children() {
        let mut p = Profiler::new();
        p.enter("dispatch");
        p.enter("decode");
        p.exit();
        p.exit();
        let rep = p.report(10);
        let get = |n: &str| rep.top.iter().find(|h| h.name == n).unwrap().clone();
        let dispatch = get("dispatch");
        let decode = get("decode");
        assert_eq!(dispatch.calls, 1);
        assert!(dispatch.wall_total_ns >= decode.wall_total_ns);
        assert!(dispatch.wall_self_ns <= dispatch.wall_total_ns);
        assert_eq!(rep.handlers, 2);
        assert!(rep.wall_total_ns >= dispatch.wall_total_ns);
    }

    #[test]
    fn folded_stacks_nest_by_semicolon() {
        let mut p = Profiler::new();
        p.enter("a");
        p.enter("b");
        p.exit();
        p.exit();
        let folded = p.folded();
        assert!(folded.contains("mrm;a "));
        assert!(folded.contains("mrm;a;b "));
        for line in folded.lines() {
            let (_, v) = line.rsplit_once(' ').unwrap();
            v.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn folded_lines_are_sorted_and_merge_repeat_visits() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            p.enter("z");
            p.exit();
            p.enter("a");
            p.enter("b");
            p.exit();
            p.exit();
        }
        let folded = p.folded();
        let keys: Vec<&str> = folded
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().0)
            .collect();
        // One line per distinct path, in sorted order.
        assert_eq!(keys, vec!["mrm;a", "mrm;a;b", "mrm;z"]);
        let rep = p.report(10);
        for h in &rep.top {
            if h.name != "a" {
                continue;
            }
            assert_eq!(h.calls, 3);
        }
    }

    #[test]
    fn sim_cost_accumulates() {
        let mut p = Profiler::new();
        p.enter("decode");
        p.exit();
        p.sim_cost("decode", SimDuration::from_millis(3));
        p.sim_cost("decode", SimDuration::from_millis(2));
        let rep = p.report(1);
        assert_eq!(rep.top[0].sim_ns, 5_000_000);
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let mut p = Profiler::new();
        p.exit();
        assert_eq!(p.report(5).handlers, 0);
    }

    #[test]
    fn interned_but_unused_handles_are_not_reported() {
        let mut p = Profiler::new();
        let spare = p.handle("never_fires");
        let hot = p.handle("hot");
        assert_eq!(p.handle("hot"), hot, "interning is idempotent");
        assert_ne!(spare, hot);
        p.enter_id(hot);
        p.exit();
        let rep = p.report(10);
        assert_eq!(rep.handlers, 1);
        assert_eq!(rep.top[0].name, "hot");
    }

    #[test]
    fn switch_closes_and_opens_on_one_instant() {
        let mut p = Profiler::new();
        let a = p.handle("a");
        let b = p.handle("b");
        p.enter_id(a);
        p.switch(b);
        p.exit();
        let rep = p.report(10);
        assert_eq!(rep.handlers, 2);
        let calls: u64 = rep.top.iter().map(|h| h.calls).sum();
        assert_eq!(calls, 2);
        // Both frames were roots: total root wall covers both laps.
        let total: u64 = rep.top.iter().map(|h| h.wall_total_ns).sum();
        assert_eq!(rep.wall_total_ns, total);
        // And the folded output has both as root stacks.
        let folded = p.folded();
        assert!(folded.contains("mrm;a "));
        assert!(folded.contains("mrm;b "));
    }

    #[test]
    fn sim_cost_id_matches_name_path() {
        let mut p = Profiler::new();
        let id = p.handle("decode");
        p.sim_cost_id(id, SimDuration::from_millis(1));
        p.sim_cost("decode", SimDuration::from_millis(1));
        let rep = p.report(1);
        assert_eq!(rep.top[0].sim_ns, 2_000_000);
    }
}
