//! Deterministic causal spans: dense ids, per-track nesting, flow links.
//!
//! A [`CausalTracer`] records three shapes of span:
//!
//! * **slices** — [`CausalTracer::begin`]/[`CausalTracer::end`] pairs
//!   nested per track (one track per accelerator). The parent is the
//!   innermost slice open *on that track at begin time* and is captured
//!   immediately, so closing spans out of order — or dropping closed
//!   spans when the bounded ring wraps — can never corrupt parent/child
//!   attribution (the property suite drives arbitrary open/close
//!   sequences against an oracle).
//! * **instants** — zero-duration slices ([`CausalTracer::instant`]) for
//!   point decisions: admissions, work items, faults, drops. Instants
//!   carry a [`Detail`] with the audit sequence number returned by
//!   `ControlPlane::record`, which is the correlation key between a span
//!   and its audit record.
//! * **async spans** — [`CausalTracer::async_begin`]/[`async_end`]
//!   (keyed by kind + subject id, not by nesting) for lifecycles that
//!   outlive any one handler: a request from admission to completion, a
//!   parked KV prefix from store to retire.
//!
//! [`CausalTracer::link`] records a causal edge between two spans (e.g.
//! an audited recompute → the drop it authorizes); the exporter renders
//! these as Perfetto flow arrows.
//!
//! Ids are deterministic: the [`TraceId`] is a fixed mix of the run seed
//! and [`SpanId`]s are a dense per-trace counter — no entropy, so two
//! runs of the same seed produce byte-identical traces.
//!
//! [`async_end`]: CausalTracer::async_end

use std::collections::{HashMap, VecDeque};

use mrm_sim::time::SimTime;

/// Identifies one run's trace. Derived from the run seed by a fixed
/// splitmix64 finalizer — reproducible, entropy-free, and distinct
/// across seeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Domain-separation salt so a trace id never equals the raw seed.
    const SALT: u64 = 0x0B5E_2BAD_CAFE_F00D;

    /// Derives the trace id for a run seed (splitmix64 finalizer).
    pub fn derive(seed: u64) -> Self {
        let mut z = seed ^ Self::SALT;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self(z ^ (z >> 31))
    }
}

/// Dense per-trace span identifier: the n-th span recorded gets id `n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The span taxonomy over the session/decision lifecycle (DESIGN.md §11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Async: one request, admission → completion (subject = request id).
    Session,
    /// Async: one parked KV prefix, store → retire/drop (subject = ctx id).
    Prefix,
    /// Slice: one batched decode iteration on an accelerator.
    DecodeIter,
    /// Slice: one maintenance sweep (reconciler plan + work items).
    Maintenance,
    /// Instant: a request admitted into an accelerator queue.
    Admission,
    /// Instant: a placement decision (tier choice, KV alloc).
    Placement,
    /// Instant: first token produced for a session.
    FirstToken,
    /// Instant: a session completed and its tail retired.
    Completion,
    /// Instant: a refresh (scrub rewrite) work item.
    Refresh,
    /// Instant: a migrate work item.
    Migrate,
    /// Instant: an uncorrectable read survived by the fault ladder.
    Fault,
    /// Instant: an audited recovery (re-fetch or recompute).
    Recovery,
    /// Instant: a drop/reclaim decision.
    Drop,
    /// Instant: a memory-pressure eviction.
    Evict,
    /// Instant: a planned end of need (tail completed, prefix consumed).
    Retire,
    /// Instant: a scrub-verify failure escalated a block.
    Escalate,
    /// Instant: a weight set redeployed onto an accelerator.
    Redeploy,
}

impl SpanKind {
    /// Stable event name (Perfetto `name` field).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Session => "session",
            SpanKind::Prefix => "prefix",
            SpanKind::DecodeIter => "decode_iter",
            SpanKind::Maintenance => "maintenance",
            SpanKind::Admission => "admission",
            SpanKind::Placement => "placement",
            SpanKind::FirstToken => "first_token",
            SpanKind::Completion => "completion",
            SpanKind::Refresh => "refresh",
            SpanKind::Migrate => "migrate",
            SpanKind::Fault => "fault",
            SpanKind::Recovery => "recovery",
            SpanKind::Drop => "drop",
            SpanKind::Evict => "evict",
            SpanKind::Retire => "retire",
            SpanKind::Escalate => "escalate",
            SpanKind::Redeploy => "redeploy",
        }
    }

    /// Perfetto category, used to group tracks and scope async ids.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Session => "session",
            SpanKind::Prefix => "retention",
            SpanKind::DecodeIter | SpanKind::Maintenance => "exec",
            SpanKind::Admission | SpanKind::Placement => "admit",
            SpanKind::FirstToken | SpanKind::Completion => "session",
            SpanKind::Fault | SpanKind::Recovery | SpanKind::Escalate => "fault",
            SpanKind::Refresh
            | SpanKind::Migrate
            | SpanKind::Drop
            | SpanKind::Evict
            | SpanKind::Retire
            | SpanKind::Redeploy => "retention",
        }
    }
}

/// Optional per-span annotations; every field is observe-only metadata.
#[derive(Clone, Copy, Debug, Default)]
pub struct Detail {
    /// Bytes the decision governs.
    pub bytes: u64,
    /// The audit reason string (static, from the control plane).
    pub reason: &'static str,
    /// `AuditLog` sequence number correlating span ↔ audit record.
    pub audit_seq: Option<u64>,
    /// Whether the subject is a `Required`-durability class.
    pub required: bool,
}

/// One recorded span (closed slice, instant, or async endpoint pair).
#[derive(Clone, Copy, Debug)]
pub struct SpanRec {
    /// Dense id.
    pub id: SpanId,
    /// Parent slice captured at begin time (`None` at track top level
    /// and for async spans).
    pub parent: Option<SpanId>,
    /// Taxonomy kind.
    pub kind: SpanKind,
    /// Track (accelerator index; `u32::MAX` = cluster-wide).
    pub track: u32,
    /// Domain id: request id, ctx id, or object id.
    pub subject: u64,
    /// Open time.
    pub begin: SimTime,
    /// Close time (== `begin` for instants).
    pub end: SimTime,
    /// True for async (`b`/`e`) spans.
    pub is_async: bool,
    /// Annotations.
    pub detail: Detail,
}

/// A causal edge: `cause` happened-before and authorized `effect`.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// Source span.
    pub cause: SpanId,
    /// Destination span.
    pub effect: SpanId,
}

/// Cluster-wide track for spans not tied to one accelerator.
pub const CLUSTER_TRACK: u32 = u32::MAX;

/// Bounded, deterministic span recorder. See the module docs for the
/// span shapes; all methods are observe-only and O(open spans) worst
/// case, O(1) typical.
/// Async-span slot: the first open span inline plus spilled duplicates
/// (see the `async_open` field doc).
type AsyncSlot = (SpanRec, Vec<SpanRec>);

pub struct CausalTracer {
    trace_id: TraceId,
    next: u64,
    capacity: usize,
    /// Closed spans, oldest first; evicts at `capacity`.
    closed: VecDeque<SpanRec>,
    /// Open slices in begin order (removal is by id, order-independent).
    open: Vec<SpanRec>,
    /// Per-track nesting stacks over `open` span ids.
    stacks: Vec<(u32, Vec<SpanId>)>,
    /// Open async spans keyed by (kind, subject). The value holds the
    /// first open span inline and spills re-opened duplicates into the
    /// vec (empty in the common case, so no per-key allocation). Keyed
    /// lookup keeps `async_end` O(1) however many prefixes are parked
    /// at once. The map is only ever *looked up* by key on the hot path;
    /// the one place that iterates it ([`CausalTracer::finish`]) sorts
    /// first, so hash order never reaches the trace.
    async_open: HashMap<(u8, u64), AsyncSlot>,
    links: Vec<Link>,
    dropped: u64,
}

impl CausalTracer {
    /// Default closed-span ring capacity.
    pub const DEFAULT_CAPACITY: usize = 1 << 18;

    /// New tracer with the default ring capacity.
    pub fn new(trace_id: TraceId) -> Self {
        Self::with_capacity(trace_id, Self::DEFAULT_CAPACITY)
    }

    /// New tracer retaining at most `capacity` closed spans (oldest are
    /// evicted first; `dropped()` counts evictions).
    pub fn with_capacity(trace_id: TraceId, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        CausalTracer {
            trace_id,
            next: 0,
            capacity,
            // Preallocate a generous slab (bounded well below `capacity`'s
            // worst case) so steady-state recording never pays a growth
            // memcpy of the whole ring.
            closed: VecDeque::with_capacity(capacity.min(1 << 15)),
            open: Vec::new(),
            stacks: Vec::new(),
            async_open: HashMap::new(),
            links: Vec::new(),
            dropped: 0,
        }
    }

    /// The run's trace id.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    fn next_id(&mut self) -> SpanId {
        let id = SpanId(self.next);
        self.next += 1;
        id
    }

    fn retain(&mut self, rec: SpanRec) {
        if self.closed.len() == self.capacity {
            self.closed.pop_front();
            self.dropped += 1;
        }
        self.closed.push_back(rec);
    }

    /// Opens a slice on `track`; the parent is the innermost slice
    /// currently open on that track.
    pub fn begin(&mut self, at: SimTime, kind: SpanKind, track: u32, subject: u64) -> SpanId {
        let id = self.next_id();
        // One track lookup serves both the parent read and the push.
        let si = match self.stacks.iter().position(|(t, _)| *t == track) {
            Some(i) => i,
            None => {
                self.stacks.push((track, Vec::new()));
                self.stacks.len() - 1
            }
        };
        let parent = self.stacks[si].1.last().copied();
        self.open.push(SpanRec {
            id,
            parent,
            kind,
            track,
            subject,
            begin: at,
            end: at,
            is_async: false,
            detail: Detail::default(),
        });
        self.stacks[si].1.push(id);
        id
    }

    /// Closes the slice with `id` wherever it sits in its track's stack.
    /// Unknown ids (already closed, or evicted) are ignored.
    pub fn end(&mut self, at: SimTime, id: SpanId) {
        let Some(i) = self.open.iter().position(|s| s.id == id) else {
            return;
        };
        let mut rec = self.open.swap_remove(i);
        rec.end = at;
        // A slice can only sit in its own track's stack, and the common
        // case (well-nested begin/end) closes the innermost one.
        if let Some((_, stack)) = self.stacks.iter_mut().find(|(t, _)| *t == rec.track) {
            if stack.last() == Some(&id) {
                stack.pop();
            } else {
                stack.retain(|s| *s != id);
            }
        }
        self.retain(rec);
    }

    /// Records an already-closed slice in one step — the hot path for
    /// back-to-back spans whose bounds are both known at record time
    /// (e.g. decode iterations), skipping the open-set and stack
    /// bookkeeping of [`CausalTracer::begin`]/[`CausalTracer::end`].
    /// The parent is the innermost slice open on `track` at record time;
    /// nothing can nest *under* a slice recorded this way.
    pub fn slice(
        &mut self,
        begin: SimTime,
        end: SimTime,
        kind: SpanKind,
        track: u32,
        subject: u64,
    ) -> SpanId {
        let id = self.next_id();
        let parent = self
            .stacks
            .iter()
            .find(|(t, _)| *t == track)
            .and_then(|(_, s)| s.last().copied());
        self.retain(SpanRec {
            id,
            parent,
            kind,
            track,
            subject,
            begin,
            end,
            is_async: false,
            detail: Detail::default(),
        });
        id
    }

    /// Records a zero-duration slice (a point decision). Parent nesting
    /// follows the same rule as [`CausalTracer::begin`].
    pub fn instant(
        &mut self,
        at: SimTime,
        kind: SpanKind,
        track: u32,
        subject: u64,
        detail: Detail,
    ) -> SpanId {
        let id = self.next_id();
        let parent = self
            .stacks
            .iter()
            .find(|(t, _)| *t == track)
            .and_then(|(_, s)| s.last().copied());
        self.retain(SpanRec {
            id,
            parent,
            kind,
            track,
            subject,
            begin: at,
            end: at,
            is_async: false,
            detail,
        });
        id
    }

    /// Opens an async lifecycle span keyed by `(kind, subject)`.
    pub fn async_begin(&mut self, at: SimTime, kind: SpanKind, track: u32, subject: u64) -> SpanId {
        let id = self.next_id();
        let rec = SpanRec {
            id,
            parent: None,
            kind,
            track,
            subject,
            begin: at,
            end: at,
            is_async: true,
            detail: Detail::default(),
        };
        match self.async_open.entry((kind as u8, subject)) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((rec, Vec::new()));
            }
            std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().1.push(rec),
        }
        id
    }

    /// Closes the most recent open async span of `(kind, subject)`;
    /// unmatched ends are ignored.
    pub fn async_end(&mut self, at: SimTime, kind: SpanKind, subject: u64, detail: Detail) {
        let key = (kind as u8, subject);
        let Some((first, spill)) = self.async_open.get_mut(&key) else {
            return;
        };
        let mut rec = match spill.pop() {
            Some(r) => r,
            None => {
                let r = *first;
                self.async_open.remove(&key);
                r
            }
        };
        rec.end = at;
        rec.detail = detail;
        self.retain(rec);
    }

    /// Records a causal edge from `cause` to `effect`.
    pub fn link(&mut self, cause: SpanId, effect: SpanId) {
        self.links.push(Link { cause, effect });
    }

    /// Closes everything still open (run teardown) at `at`. Async spans
    /// close in key order — the entries are sorted before draining, so
    /// the trace bytes never depend on hash order.
    pub fn finish(&mut self, at: SimTime) {
        let open: Vec<SpanId> = self.open.iter().map(|s| s.id).collect();
        for id in open {
            self.end(at, id);
        }
        let mut entries: Vec<((u8, u64), AsyncSlot)> =
            std::mem::take(&mut self.async_open).into_iter().collect();
        entries.sort_unstable_by_key(|(key, _)| *key);
        for (_, (first, mut spill)) in entries {
            while let Some(mut rec) = spill.pop() {
                rec.end = at;
                self.retain(rec);
            }
            let mut rec = first;
            rec.end = at;
            self.retain(rec);
        }
    }

    /// Closed spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRec> + '_ {
        self.closed.iter()
    }

    /// Looks up a retained span by id.
    pub fn span(&self, id: SpanId) -> Option<&SpanRec> {
        self.closed.iter().find(|s| s.id == id)
    }

    /// All recorded causal edges (some endpoints may have been evicted).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Total spans ever assigned an id.
    pub fn total(&self) -> u64 {
        self.next
    }

    /// Closed spans evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans currently open (slices + async).
    pub fn open_count(&self) -> usize {
        self.open.len()
            + self
                .async_open
                .values()
                .map(|(_, spill)| 1 + spill.len())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn tracer(cap: usize) -> CausalTracer {
        CausalTracer::with_capacity(TraceId::derive(7), cap)
    }

    #[test]
    fn trace_id_is_deterministic_and_seed_distinct() {
        assert_eq!(TraceId::derive(42), TraceId::derive(42));
        assert_ne!(TraceId::derive(1), TraceId::derive(2));
        assert_ne!(TraceId::derive(0).0, 0);
    }

    #[test]
    fn span_ids_are_dense() {
        let mut tr = tracer(16);
        let a = tr.begin(t(0), SpanKind::DecodeIter, 0, 1);
        let b = tr.instant(t(1), SpanKind::Admission, 0, 2, Detail::default());
        let c = tr.async_begin(t(1), SpanKind::Session, 0, 3);
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(tr.total(), 3);
    }

    #[test]
    fn nesting_parents_follow_track_stack() {
        let mut tr = tracer(16);
        let outer = tr.begin(t(0), SpanKind::Maintenance, 3, 0);
        let inner = tr.begin(t(1), SpanKind::DecodeIter, 3, 0);
        let other = tr.begin(t(1), SpanKind::DecodeIter, 4, 0);
        let leaf = tr.instant(t(2), SpanKind::Refresh, 3, 9, Detail::default());
        tr.end(t(3), inner);
        tr.end(t(4), outer);
        tr.end(t(4), other);
        assert_eq!(tr.span(inner).unwrap().parent, Some(outer));
        assert_eq!(tr.span(leaf).unwrap().parent, Some(inner));
        assert_eq!(tr.span(other).unwrap().parent, None);
        assert_eq!(tr.span(outer).unwrap().parent, None);
    }

    #[test]
    fn out_of_order_close_keeps_attribution() {
        let mut tr = tracer(16);
        let a = tr.begin(t(0), SpanKind::Maintenance, 0, 0);
        let b = tr.begin(t(1), SpanKind::DecodeIter, 0, 0);
        // Close the parent first: the child's parent was captured at
        // begin and must survive.
        tr.end(t(2), a);
        let c = tr.instant(t(3), SpanKind::Drop, 0, 1, Detail::default());
        tr.end(t(4), b);
        assert_eq!(tr.span(b).unwrap().parent, Some(a));
        // After `a` closed, `b` is the innermost open slice on track 0.
        assert_eq!(tr.span(c).unwrap().parent, Some(b));
    }

    #[test]
    fn ring_evicts_oldest_closed_only() {
        let mut tr = tracer(2);
        let keep = tr.begin(t(0), SpanKind::Maintenance, 0, 0);
        for i in 0..5 {
            tr.instant(t(i), SpanKind::Drop, 0, i, Detail::default());
        }
        tr.end(t(9), keep);
        assert_eq!(tr.dropped(), 4);
        assert_eq!(tr.closed.len(), 2);
        // The open span was never evictable; it closes intact.
        assert!(tr.span(keep).is_some());
        assert_eq!(tr.total(), 6);
    }

    #[test]
    fn async_spans_match_by_kind_and_subject() {
        let mut tr = tracer(16);
        let s = tr.async_begin(t(0), SpanKind::Session, 1, 77);
        tr.async_begin(t(0), SpanKind::Prefix, 1, 77);
        tr.async_end(
            t(5),
            SpanKind::Session,
            77,
            Detail {
                reason: "completed",
                ..Detail::default()
            },
        );
        let rec = tr.span(s).unwrap();
        assert_eq!(rec.end, t(5));
        assert!(rec.is_async);
        assert_eq!(rec.detail.reason, "completed");
        assert_eq!(tr.open_count(), 1);
        tr.finish(t(6));
        assert_eq!(tr.open_count(), 0);
    }

    #[test]
    fn finish_closes_open_slices() {
        let mut tr = tracer(16);
        let a = tr.begin(t(0), SpanKind::DecodeIter, 0, 0);
        tr.finish(t(9));
        assert_eq!(tr.span(a).unwrap().end, t(9));
        assert_eq!(tr.open_count(), 0);
    }
}
