//! # `mrm-obs` — causal tracing, profiling, and SLO watchdog
//!
//! The paper's managed-retention argument is a *per-decision* accounting
//! argument: which object was placed where, why it was refreshed or
//! dropped, and what that cost end-to-end. This crate supplies the three
//! observation surfaces that make a run explain itself:
//!
//! * [`causal`] — a deterministic [`TraceId`]/[`SpanId`] scheme (derived
//!   from the run seed plus dense sequence numbers, no entropy) threaded
//!   through the session lifecycle. Spans correlate `mrm-telemetry`
//!   events with `mrm-control` audit records by carrying the audit
//!   sequence number the control plane returned for the decision.
//! * [`perfetto`] — a Chrome trace-event / Perfetto-compatible JSON
//!   exporter, so any run renders as a sim-time timeline with causal
//!   flow arrows from recovery decisions to the drops they authorize.
//! * [`profile`] — a sim-time + wall-clock profiler attributing
//!   self/total time per event handler, with a flamegraph-ready
//!   folded-stacks export and a top-N hot-handler table.
//! * [`slo`] — declarative SLO specs (TTFT p99, required-drop
//!   violations, escalation rate, tier-occupancy ceilings) evaluated
//!   over telemetry snapshots, emitting typed breach records and a
//!   pass/fail report the experiment bins use as shape checks.
//!
//! **Determinism contract.** Everything here is observe-only: hooks never
//! draw from `SimRng`/`FaultRng` and never touch the event queue (lint
//! rule D8 pins hook call sites out of those functions), so a simulated
//! report is byte-identical with obs attached or detached, at any
//! `--threads`. Trace content is pure sim-time and therefore also
//! byte-identical across thread counts; only the profiler's wall-clock
//! column is machine-dependent, which is why CI diffs traces, never
//! profiles.

pub mod causal;
pub mod check;
pub mod perfetto;
pub mod profile;
pub mod slo;

pub use causal::{CausalTracer, Detail, SpanId, SpanKind, SpanRec, TraceId};
pub use check::{validate_chrome_trace, TraceStats};
pub use profile::{HandlerId, HotHandler, ProfileReport, Profiler};
pub use slo::{SloBreach, SloKind, SloReport, SloSpec};

/// The bundle a simulator attaches: one tracer plus one profiler, both
/// observe-only. Constructed per run from the run's seed so every span
/// id is reproducible.
pub struct Obs {
    /// Causal span recorder for the session/decision lifecycle.
    pub tracer: CausalTracer,
    /// Per-handler sim/wall time attribution.
    pub profiler: Profiler,
}

impl Obs {
    /// Builds an observer for a run with the given seed. The tracer's
    /// ring holds [`CausalTracer::DEFAULT_CAPACITY`] closed spans.
    pub fn new(seed: u64) -> Self {
        Obs {
            tracer: CausalTracer::new(TraceId::derive(seed)),
            profiler: Profiler::new(),
        }
    }
}
