//! Binary BCH codes with Berlekamp–Massey decoding.
//!
//! BCH codes are the workhorse of large-block storage ECC and the natural
//! realization of the paper's §4 point: over a block-level MRM interface,
//! code words can be thousands of bits, and a `t`-error-correcting BCH code
//! over GF(2^m) pays only ≈ `m·t` parity bits regardless of how much data a
//! codeword carries — so overhead *falls* as blocks grow (Dolinar et al.,
//! "Code Performance as a Function of Block Size" \[8\]).
//!
//! The implementation is a textbook binary BCH:
//!
//! * generator polynomial = LCM of minimal polynomials of `α¹..α^{2t}`,
//! * systematic encoding by LFSR division,
//! * decoding by syndrome computation, Berlekamp–Massey for the error
//!   locator polynomial, and Chien search for its roots,
//! * shortened codes (data width chosen freely below the natural `k`).
//!
//! Bits are one-per-`u8` (0/1), matching [`crate::hamming`].

use crate::gf::Gf;

/// Errors from BCH decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BchError {
    /// More errors occurred than the code can correct.
    TooManyErrors,
}

impl std::fmt::Display for BchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BchError::TooManyErrors => write!(f, "uncorrectable: more than t errors"),
        }
    }
}

impl std::error::Error for BchError {}

/// A binary BCH code over GF(2^m), correcting up to `t` bit errors per
/// codeword, optionally shortened.
///
/// # Examples
///
/// ```
/// use mrm_ecc::bch::Bch;
///
/// // A t=3 code over GF(2^8): n=255, k=231 (24 parity bits).
/// let code = Bch::new(8, 3);
/// assert_eq!(code.n(), 255);
/// assert_eq!(code.parity_bits(), 24);
///
/// let data: Vec<u8> = (0..code.k()).map(|i| (i % 5 == 0) as u8).collect();
/// let mut cw = code.encode(&data);
/// cw[9] ^= 1;
/// cw[100] ^= 1;
/// cw[200] ^= 1;
/// let (decoded, fixed) = code.decode(&cw).unwrap();
/// assert_eq!(fixed, 3);
/// assert_eq!(decoded, data);
/// ```
#[derive(Clone, Debug)]
pub struct Bch {
    gf: Gf,
    /// Full (unshortened) code length `2^m − 1`.
    n_full: usize,
    /// Correctable errors per codeword.
    t: usize,
    /// Data bits per stored codeword (after shortening).
    k: usize,
    /// Bits removed by shortening.
    shorten: usize,
    /// Generator polynomial coefficients over GF(2), index = degree.
    gen: Vec<u8>,
}

impl Bch {
    /// Constructs the full-length BCH code over GF(2^m) correcting `t`
    /// errors.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero or the code has no data bits (t too large for
    /// the field).
    pub fn new(m: u32, t: usize) -> Self {
        Self::build(m, t, None)
    }

    /// Constructs a shortened BCH code carrying exactly `data_len` data
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `data_len` is zero or exceeds the natural `k` of the
    /// full-length code.
    pub fn with_data_len(m: u32, t: usize, data_len: usize) -> Self {
        Self::build(m, t, Some(data_len))
    }

    fn build(m: u32, t: usize, data_len: Option<usize>) -> Self {
        assert!(t >= 1, "t must be at least 1");
        let gf = Gf::new(m);
        let n_full = gf.order();
        let gen = generator_poly(&gf, t);
        let parity = gen.len() - 1;
        assert!(parity < n_full, "t={t} too large for GF(2^{m})");
        let k_full = n_full - parity;
        let (k, shorten) = match data_len {
            None => (k_full, 0),
            Some(d) => {
                assert!(d > 0, "data length must be positive");
                assert!(
                    d <= k_full,
                    "data length {d} exceeds k={k_full} for BCH(m={m}, t={t})"
                );
                (d, k_full - d)
            }
        };
        Bch {
            gf,
            n_full,
            t,
            k,
            shorten,
            gen,
        }
    }

    /// Stored codeword length (shortening applied).
    pub fn n(&self) -> usize {
        self.n_full - self.shorten
    }

    /// Data bits per codeword.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Correctable errors per codeword.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Parity bits per codeword.
    pub fn parity_bits(&self) -> usize {
        self.gen.len() - 1
    }

    /// Overhead: parity bits / codeword bits.
    pub fn overhead(&self) -> f64 {
        self.parity_bits() as f64 / self.n() as f64
    }

    /// Encodes `data` systematically: the returned codeword holds
    /// `parity_bits()` check bits followed by the data bits.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.k()` or any value is not 0/1.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "data length mismatch");
        let nk = self.parity_bits();
        let mut rem = vec![0u8; nk];
        // LFSR division of d(x)·x^nk by g(x); process data from the
        // highest-degree coefficient down.
        for i in (0..self.k).rev() {
            let bit = data[i];
            assert!(bit <= 1, "bits must be 0 or 1");
            let feedback = bit ^ rem[nk - 1];
            for j in (1..nk).rev() {
                rem[j] = rem[j - 1] ^ (feedback & self.gen[j]);
            }
            rem[0] = feedback & self.gen[0];
        }
        let mut cw = Vec::with_capacity(self.n());
        cw.extend_from_slice(&rem);
        cw.extend_from_slice(data);
        cw
    }

    /// Computes the 2t syndromes of a stored codeword. All-zero syndromes
    /// mean a valid codeword.
    fn syndromes(&self, cw: &[u8]) -> Vec<u16> {
        (1..=2 * self.t)
            .map(|j| {
                // S_j = c(α^j), evaluated by accumulating only set bits:
                // Σ_{i: c_i=1} α^{j·i}.
                let mut acc = 0u16;
                for (i, &b) in cw.iter().enumerate() {
                    if b != 0 {
                        acc ^= self.gf.alpha_pow((j * i) as i64);
                    }
                }
                acc
            })
            .collect()
    }

    /// Decodes a stored codeword, correcting up to `t` bit errors.
    ///
    /// Returns the recovered data and the number of bits corrected, or
    /// [`BchError::TooManyErrors`] when the error pattern exceeds the code's
    /// capability (detected via locator degree, root count, or syndrome
    /// recheck).
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != self.n()`.
    pub fn decode(&self, cw: &[u8]) -> Result<(Vec<u8>, usize), BchError> {
        assert_eq!(cw.len(), self.n(), "codeword length mismatch");
        let syn = self.syndromes(cw);
        if syn.iter().all(|&s| s == 0) {
            return Ok((cw[self.parity_bits()..].to_vec(), 0));
        }

        let sigma = self.berlekamp_massey(&syn);
        let nu = sigma.len() - 1;
        if nu > self.t {
            return Err(BchError::TooManyErrors);
        }

        // Chien search over the *stored* positions only: shortening means
        // positions n()..n_full are known-zero and cannot be in error.
        let mut cw = cw.to_vec();
        let mut found = 0usize;
        for (i, bit) in cw.iter_mut().enumerate() {
            // Error at position i ⇔ σ(α^{−i}) = 0.
            let x = self.gf.alpha_pow(-(i as i64));
            if self.gf.poly_eval(&sigma, x) == 0 {
                *bit ^= 1;
                found += 1;
            }
        }
        if found != nu {
            return Err(BchError::TooManyErrors);
        }
        // Recheck: corrected word must be a valid codeword.
        if self.syndromes(&cw).iter().any(|&s| s != 0) {
            return Err(BchError::TooManyErrors);
        }
        Ok((cw[self.parity_bits()..].to_vec(), found))
    }

    /// Berlekamp–Massey: finds the minimal-degree error locator polynomial
    /// σ(x) with σ(0)=1 consistent with the syndrome sequence.
    fn berlekamp_massey(&self, syn: &[u16]) -> Vec<u16> {
        let gf = &self.gf;
        let mut c: Vec<u16> = vec![1];
        let mut b: Vec<u16> = vec![1];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut bb = 1u16;
        for i in 0..syn.len() {
            // Discrepancy.
            let mut d = syn[i];
            for j in 1..=l.min(c.len() - 1) {
                d ^= gf.mul(c[j], syn[i - j]);
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= i {
                let old_c = c.clone();
                let coef = gf.div(d, bb);
                if c.len() < b.len() + m {
                    c.resize(b.len() + m, 0);
                }
                for (j, &bj) in b.iter().enumerate() {
                    c[j + m] ^= gf.mul(coef, bj);
                }
                l = i + 1 - l;
                b = old_c;
                bb = d;
                m = 1;
            } else {
                let coef = gf.div(d, bb);
                if c.len() < b.len() + m {
                    c.resize(b.len() + m, 0);
                }
                for (j, &bj) in b.iter().enumerate() {
                    c[j + m] ^= gf.mul(coef, bj);
                }
                m += 1;
            }
        }
        // Trim trailing zeros so degree reflects the true locator.
        while c.len() > 1 && c.last() == Some(&0) {
            c.pop();
        }
        c
    }
}

/// Computes the generator polynomial for a t-error-correcting binary BCH
/// code over `gf`: the LCM of the minimal polynomials of α¹..α^{2t}.
fn generator_poly(gf: &Gf, t: usize) -> Vec<u8> {
    let n = gf.order();
    let mut covered = vec![false; n];
    // Generator as a GF-coefficient polynomial (coefficients stay in {0,1}
    // because each factor is a complete conjugate set).
    let mut gen: Vec<u16> = vec![1];
    for j in 1..=2 * t {
        let j = j % n;
        if j == 0 || covered[j] {
            continue;
        }
        // Cyclotomic coset of j: {j, 2j, 4j, ...} mod n.
        let mut coset = Vec::new();
        let mut cur = j;
        loop {
            covered[cur] = true;
            coset.push(cur);
            cur = (cur * 2) % n;
            if cur == j {
                break;
            }
        }
        // Minimal polynomial: Π (x + α^c) over the coset.
        let mut min_poly: Vec<u16> = vec![1];
        for &c in &coset {
            let root = gf.alpha_pow(c as i64);
            // Multiply min_poly by (x + root).
            let mut next = vec![0u16; min_poly.len() + 1];
            for (d, &coef) in min_poly.iter().enumerate() {
                next[d + 1] ^= coef; // x · coef
                next[d] ^= gf.mul(coef, root); // root · coef
            }
            min_poly = next;
        }
        // Multiply the generator by the minimal polynomial.
        let mut next = vec![0u16; gen.len() + min_poly.len() - 1];
        for (a, &ga) in gen.iter().enumerate() {
            if ga == 0 {
                continue;
            }
            for (b, &mb) in min_poly.iter().enumerate() {
                next[a + b] ^= gf.mul(ga, mb);
            }
        }
        gen = next;
    }
    gen.iter()
        .map(|&c| {
            debug_assert!(c <= 1, "generator polynomial must be binary");
            c as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_pattern(k: usize, seed: u64) -> Vec<u8> {
        (0..k)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761).wrapping_add(seed) >> 7 & 1) as u8)
            .collect()
    }

    #[test]
    fn known_code_parameters() {
        // Classic table values.
        let c = Bch::new(4, 1);
        assert_eq!((c.n(), c.k()), (15, 11)); // BCH(15,11,1) = Hamming
        let c = Bch::new(4, 2);
        assert_eq!((c.n(), c.k()), (15, 7)); // BCH(15,7,2)
        let c = Bch::new(4, 3);
        assert_eq!((c.n(), c.k()), (15, 5)); // BCH(15,5,3)
        let c = Bch::new(6, 2);
        assert_eq!((c.n(), c.k()), (63, 51)); // BCH(63,51,2)
        let c = Bch::new(8, 2);
        assert_eq!((c.n(), c.k()), (255, 239)); // BCH(255,239,2)
    }

    #[test]
    fn clean_roundtrip() {
        for (m, t) in [(4u32, 1usize), (4, 2), (6, 3), (8, 4), (10, 5)] {
            let code = Bch::new(m, t);
            let data = data_pattern(code.k(), u64::from(m) << 8 | t as u64);
            let cw = code.encode(&data);
            assert_eq!(cw.len(), code.n());
            let (out, fixed) = code.decode(&cw).unwrap();
            assert_eq!(fixed, 0, "m={m} t={t}");
            assert_eq!(out, data, "m={m} t={t}");
        }
    }

    #[test]
    fn corrects_exactly_t_errors() {
        let code = Bch::new(8, 4);
        let data = data_pattern(code.k(), 42);
        let cw = code.encode(&data);
        // Deterministic spread of exactly t error positions.
        let positions = [3usize, 77, 141, 250];
        let mut bad = cw.clone();
        for &p in &positions {
            bad[p] ^= 1;
        }
        let (out, fixed) = code.decode(&bad).unwrap();
        assert_eq!(fixed, 4);
        assert_eq!(out, data);
    }

    #[test]
    fn corrects_errors_in_parity_region() {
        let code = Bch::new(6, 3);
        let data = data_pattern(code.k(), 7);
        let mut cw = code.encode(&data);
        cw[0] ^= 1; // parity bit
        cw[code.parity_bits() - 1] ^= 1; // last parity bit
        let (out, fixed) = code.decode(&cw).unwrap();
        assert_eq!(fixed, 2);
        assert_eq!(out, data);
    }

    #[test]
    fn detects_more_than_t_errors_or_miscorrects_to_valid() {
        // t+1 errors are beyond the guarantee: the decoder must either
        // report failure or (rarely) land on a *valid* wrong codeword —
        // never panic or return an invalid word.
        let code = Bch::new(8, 3);
        let data = data_pattern(code.k(), 1);
        let cw = code.encode(&data);
        let mut failures = 0;
        for seed in 0..40u64 {
            let mut bad = cw.clone();
            for e in 0..4u64 {
                let pos = ((seed * 97 + e * 31) as usize * 131) % code.n();
                bad[pos] ^= 1;
            }
            match code.decode(&bad) {
                Err(BchError::TooManyErrors) => failures += 1,
                Ok((out, _)) => {
                    // If it "succeeded", the result must re-encode to a
                    // valid codeword (miscorrection), or be the original
                    // (error positions collided and cancelled).
                    let recoded = code.encode(&out);
                    assert!(code.decode(&recoded).is_ok());
                }
            }
        }
        assert!(
            failures > 20,
            "expected mostly detected failures, got {failures}"
        );
    }

    #[test]
    fn shortened_code_roundtrip() {
        // 512-bit data block protected by a t=4 code over GF(2^10).
        let code = Bch::with_data_len(10, 4, 512);
        assert_eq!(code.k(), 512);
        assert_eq!(code.parity_bits(), 40); // m·t = 10·4
        assert_eq!(code.n(), 552);
        let data = data_pattern(512, 99);
        let mut cw = code.encode(&data);
        for &p in &[0usize, 100, 300, 551] {
            cw[p] ^= 1;
        }
        let (out, fixed) = code.decode(&cw).unwrap();
        assert_eq!(fixed, 4);
        assert_eq!(out, data);
    }

    #[test]
    fn overhead_falls_with_block_size_at_fixed_t() {
        // The Dolinar observation realized: same t, bigger blocks, lower
        // overhead.
        let small = Bch::with_data_len(8, 4, 128).overhead();
        let medium = Bch::with_data_len(10, 4, 512).overhead();
        let large = Bch::with_data_len(13, 4, 4096).overhead();
        assert!(small > medium && medium > large, "{small} {medium} {large}");
    }

    #[test]
    fn generator_is_binary_and_has_expected_degree() {
        for (m, t) in [(4u32, 2usize), (6, 3), (8, 5), (10, 4)] {
            let gf = Gf::new(m);
            let gen = generator_poly(&gf, t);
            assert!(gen.iter().all(|&c| c <= 1));
            // deg(g) ≤ m·t for binary BCH.
            assert!(gen.len() - 1 <= m as usize * t, "m={m} t={t}");
            assert_eq!(*gen.last().unwrap(), 1, "monic");
        }
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn oversized_shortening_panics() {
        let _ = Bch::with_data_len(4, 2, 8); // k is only 7
    }

    #[test]
    #[should_panic(expected = "codeword length mismatch")]
    fn wrong_codeword_length_panics() {
        let code = Bch::new(4, 1);
        let _ = code.decode(&[0u8; 14]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bch_corrects_up_to_t_random_errors(
            data in proptest::collection::vec(0u8..=1, 231),
            errs in proptest::collection::btree_set(0usize..255, 0..=3),
        ) {
            let code = Bch::new(8, 3);
            prop_assert_eq!(code.k(), 231);
            let mut cw = code.encode(&data);
            for &p in &errs {
                cw[p] ^= 1;
            }
            let (out, fixed) = code.decode(&cw).unwrap();
            prop_assert_eq!(fixed, errs.len());
            prop_assert_eq!(out, data);
        }

        #[test]
        fn shortened_bch_corrects_up_to_t_random_errors(
            data in proptest::collection::vec(0u8..=1, 256),
            errs in proptest::collection::btree_set(0usize..296, 0..=4),
        ) {
            let code = Bch::with_data_len(10, 4, 256);
            prop_assert_eq!(code.n(), 296);
            let mut cw = code.encode(&data);
            for &p in &errs {
                cw[p] ^= 1;
            }
            let (out, fixed) = code.decode(&cw).unwrap();
            prop_assert_eq!(fixed, errs.len());
            prop_assert_eq!(out, data);
        }
    }
}
