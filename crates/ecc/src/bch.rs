//! Binary BCH codes with Berlekamp–Massey decoding.
//!
//! BCH codes are the workhorse of large-block storage ECC and the natural
//! realization of the paper's §4 point: over a block-level MRM interface,
//! code words can be thousands of bits, and a `t`-error-correcting BCH code
//! over GF(2^m) pays only ≈ `m·t` parity bits regardless of how much data a
//! codeword carries — so overhead *falls* as blocks grow (Dolinar et al.,
//! "Code Performance as a Function of Block Size" \[8\]).
//!
//! The implementation is a textbook binary BCH:
//!
//! * generator polynomial = LCM of minimal polynomials of `α¹..α^{2t}`,
//! * systematic encoding by LFSR division,
//! * decoding by syndrome computation, Berlekamp–Massey for the error
//!   locator polynomial, and Chien search for its roots,
//! * shortened codes (data width chosen freely below the natural `k`).
//!
//! Bits are one-per-`u8` (0/1), matching [`crate::hamming`].

use crate::gf::Gf;

/// Errors from BCH decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BchError {
    /// More errors occurred than the code can correct.
    TooManyErrors,
}

impl std::fmt::Display for BchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BchError::TooManyErrors => write!(f, "uncorrectable: more than t errors"),
        }
    }
}

impl std::error::Error for BchError {}

/// A binary BCH code over GF(2^m), correcting up to `t` bit errors per
/// codeword, optionally shortened.
///
/// # Examples
///
/// ```
/// use mrm_ecc::bch::Bch;
///
/// // A t=3 code over GF(2^8): n=255, k=231 (24 parity bits).
/// let code = Bch::new(8, 3);
/// assert_eq!(code.n(), 255);
/// assert_eq!(code.parity_bits(), 24);
///
/// let data: Vec<u8> = (0..code.k()).map(|i| (i % 5 == 0) as u8).collect();
/// let mut cw = code.encode(&data);
/// cw[9] ^= 1;
/// cw[100] ^= 1;
/// cw[200] ^= 1;
/// let (decoded, fixed) = code.decode(&cw).unwrap();
/// assert_eq!(fixed, 3);
/// assert_eq!(decoded, data);
/// ```
#[derive(Clone, Debug)]
pub struct Bch {
    gf: Gf,
    /// Full (unshortened) code length `2^m − 1`.
    n_full: usize,
    /// Correctable errors per codeword.
    t: usize,
    /// Data bits per stored codeword (after shortening).
    k: usize,
    /// Bits removed by shortening.
    shorten: usize,
    /// Generator polynomial coefficients over GF(2), index = degree.
    gen: Vec<u8>,
    /// Horner hop tables for syndrome evaluation: `steps[j-1][d] = α^{j·d}`
    /// for `d ∈ 0..=64`, so the packed evaluator multiplies across a gap of
    /// `d` zero coefficients (up to a whole `u64` word) with one table
    /// lookup instead of `d` field multiplications.
    steps: Vec<Vec<u16>>,
}

impl Bch {
    /// Constructs the full-length BCH code over GF(2^m) correcting `t`
    /// errors.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero or the code has no data bits (t too large for
    /// the field).
    pub fn new(m: u32, t: usize) -> Self {
        Self::build(m, t, None)
    }

    /// Constructs a shortened BCH code carrying exactly `data_len` data
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `data_len` is zero or exceeds the natural `k` of the
    /// full-length code.
    pub fn with_data_len(m: u32, t: usize, data_len: usize) -> Self {
        Self::build(m, t, Some(data_len))
    }

    fn build(m: u32, t: usize, data_len: Option<usize>) -> Self {
        assert!(t >= 1, "t must be at least 1");
        let gf = Gf::new(m);
        let n_full = gf.order();
        let gen = generator_poly(&gf, t);
        let parity = gen.len() - 1;
        assert!(parity < n_full, "t={t} too large for GF(2^{m})");
        let k_full = n_full - parity;
        let (k, shorten) = match data_len {
            None => (k_full, 0),
            Some(d) => {
                assert!(d > 0, "data length must be positive");
                assert!(
                    d <= k_full,
                    "data length {d} exceeds k={k_full} for BCH(m={m}, t={t})"
                );
                (d, k_full - d)
            }
        };
        let steps = (1..=2 * t)
            .map(|j| {
                let aj = gf.alpha_pow(j as i64);
                let mut row = Vec::with_capacity(65);
                row.push(1u16);
                for d in 1..=64usize {
                    let prev = row[d - 1];
                    row.push(gf.mul(prev, aj));
                }
                row
            })
            .collect();
        Bch {
            gf,
            n_full,
            t,
            k,
            shorten,
            gen,
            steps,
        }
    }

    /// Stored codeword length (shortening applied).
    pub fn n(&self) -> usize {
        self.n_full - self.shorten
    }

    /// Data bits per codeword.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Correctable errors per codeword.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Parity bits per codeword.
    pub fn parity_bits(&self) -> usize {
        self.gen.len() - 1
    }

    /// Overhead: parity bits / codeword bits.
    pub fn overhead(&self) -> f64 {
        self.parity_bits() as f64 / self.n() as f64
    }

    /// Encodes `data` systematically: the returned codeword holds
    /// `parity_bits()` check bits followed by the data bits.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.k()` or any value is not 0/1.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "data length mismatch");
        let nk = self.parity_bits();
        let mut rem = vec![0u8; nk];
        // LFSR division of d(x)·x^nk by g(x); process data from the
        // highest-degree coefficient down.
        for i in (0..self.k).rev() {
            let bit = data[i];
            assert!(bit <= 1, "bits must be 0 or 1");
            let feedback = bit ^ rem[nk - 1];
            for j in (1..nk).rev() {
                rem[j] = rem[j - 1] ^ (feedback & self.gen[j]);
            }
            rem[0] = feedback & self.gen[0];
        }
        let mut cw = Vec::with_capacity(self.n());
        cw.extend_from_slice(&rem);
        cw.extend_from_slice(data);
        cw
    }

    /// Computes the 2t syndromes of a stored codeword by direct per-set-bit
    /// accumulation: `S_j = Σ_{i: c_i=1} α^{j·i}`. Retained as the reference
    /// oracle for the packed Horner evaluator below.
    #[cfg(test)]
    fn syndromes_reference(&self, cw: &[u8]) -> Vec<u16> {
        (1..=2 * self.t)
            .map(|j| {
                let mut acc = 0u16;
                for (i, &b) in cw.iter().enumerate() {
                    if b != 0 {
                        acc ^= self.gf.alpha_pow((j * i) as i64);
                    }
                }
                acc
            })
            .collect()
    }

    /// Packs a one-bit-per-byte codeword into `u64` words, bit `i % 64` of
    /// word `i / 64` holding coefficient `i`.
    fn pack_bits(cw: &[u8], words: &mut Vec<u64>) {
        words.clear();
        words.resize(cw.len().div_ceil(64), 0);
        for (i, &b) in cw.iter().enumerate() {
            debug_assert!(b <= 1, "bits must be 0 or 1");
            words[i / 64] |= u64::from(b) << (i % 64);
        }
    }

    /// Computes the 2t syndromes from a bit-packed codeword by Horner's
    /// rule over GF(2^m), hopping between set coefficients with the
    /// precomputed `steps` tables: `S_j = c(α^j)` costs ≈ one table-driven
    /// multiplication per set bit (zero words are skipped whole), instead of
    /// one modular exponent per set bit per syndrome.
    fn syndromes_packed(&self, words: &[u64]) -> Vec<u16> {
        (1..=2 * self.t)
            .map(|j| {
                let step = &self.steps[j - 1];
                let mut acc = 0u16;
                // `mark` = coefficient index `acc` is aligned to: acc holds
                // Σ_{i ≥ mark} c_i α^{j·(i−mark)}. Visit set bits high → low.
                let mut mark = 0usize;
                for (w_idx, &w) in words.iter().enumerate().rev() {
                    if w == 0 {
                        continue;
                    }
                    let mut x = w;
                    while x != 0 {
                        let b = 63 - x.leading_zeros() as usize;
                        x ^= 1u64 << b;
                        let i = w_idx * 64 + b;
                        if acc != 0 {
                            let mut gap = mark - i;
                            while gap > 64 {
                                acc = self.gf.mul(acc, step[64]);
                                gap -= 64;
                            }
                            acc = self.gf.mul(acc, step[gap]);
                        }
                        acc ^= 1;
                        mark = i;
                    }
                }
                // Align the accumulator down to coefficient 0.
                if acc != 0 {
                    let mut gap = mark;
                    while gap > 64 {
                        acc = self.gf.mul(acc, step[64]);
                        gap -= 64;
                    }
                    acc = self.gf.mul(acc, step[gap]);
                }
                acc
            })
            .collect()
    }

    /// Decodes a stored codeword, correcting up to `t` bit errors.
    ///
    /// Returns the recovered data and the number of bits corrected, or
    /// [`BchError::TooManyErrors`] when the error pattern exceeds the code's
    /// capability (detected via locator degree, root count, or syndrome
    /// recheck).
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != self.n()`.
    pub fn decode(&self, cw: &[u8]) -> Result<(Vec<u8>, usize), BchError> {
        assert_eq!(cw.len(), self.n(), "codeword length mismatch");
        let mut words = Vec::new();
        Self::pack_bits(cw, &mut words);
        let syn = self.syndromes_packed(&words);
        if syn.iter().all(|&s| s == 0) {
            return Ok((cw[self.parity_bits()..].to_vec(), 0));
        }
        self.correct(cw, &syn)
    }

    /// Decodes a slice of stored codewords: the batched front-end the fault
    /// model's decode ladders call.
    ///
    /// A [`CleanScreen`] reduction table — `v(x)·x^d mod g(x)` for every
    /// 8-bit chunk `v` — is built once per call and amortized across the
    /// batch. Each lane then pays one word-parallel remainder computation
    /// (≈ `n/8` table lookups): remainder zero is *exactly* "all 2t
    /// syndromes zero" (the syndromes are `c(α^j)` for the roots of `g`, so
    /// both say `g | c`), and the lane early-exits to the clean path. Only
    /// lanes with a nonzero remainder pay the per-set-bit Horner syndrome
    /// pass, Berlekamp–Massey, and Chien search — so a clean-dominated
    /// batch costs per-batch table construction plus per-lane screening.
    /// Results are bitwise identical to mapping [`Bch::decode`] over the
    /// slice (asserted by the differential suite in
    /// `tests/batch_differential.rs`).
    ///
    /// # Panics
    ///
    /// Panics if any codeword's length differs from `n()`.
    pub fn decode_batch(&self, cws: &[&[u8]]) -> Vec<Result<(Vec<u8>, usize), BchError>> {
        let screen = CleanScreen::build(&self.gen);
        let mut words = Vec::new();
        cws.iter()
            .map(|cw| {
                assert_eq!(cw.len(), self.n(), "codeword length mismatch");
                Self::pack_bits(cw, &mut words);
                match &screen {
                    Some(s) => {
                        if s.rem(&words) == 0 {
                            return Ok((cw[self.parity_bits()..].to_vec(), 0));
                        }
                        // Nonzero remainder ⇒ nonzero syndromes: go
                        // straight to the algebraic decode.
                        let syn = self.syndromes_packed(&words);
                        self.correct(cw, &syn)
                    }
                    None => {
                        let syn = self.syndromes_packed(&words);
                        if syn.iter().all(|&v| v == 0) {
                            return Ok((cw[self.parity_bits()..].to_vec(), 0));
                        }
                        self.correct(cw, &syn)
                    }
                }
            })
            .collect()
    }

    /// The dirty back half of decoding: Berlekamp–Massey, Chien search over
    /// stored positions, and the validity recheck.
    fn correct(&self, cw: &[u8], syn: &[u16]) -> Result<(Vec<u8>, usize), BchError> {
        let sigma = self.berlekamp_massey(syn);
        let nu = sigma.len() - 1;
        if nu > self.t {
            return Err(BchError::TooManyErrors);
        }

        // Chien search over the *stored* positions only: shortening means
        // positions n()..n_full are known-zero and cannot be in error.
        let mut cw = cw.to_vec();
        let mut found = 0usize;
        for (i, bit) in cw.iter_mut().enumerate() {
            // Error at position i ⇔ σ(α^{−i}) = 0.
            let x = self.gf.alpha_pow(-(i as i64));
            if self.gf.poly_eval(&sigma, x) == 0 {
                *bit ^= 1;
                found += 1;
            }
        }
        if found != nu {
            return Err(BchError::TooManyErrors);
        }
        // Recheck: corrected word must be a valid codeword.
        let mut words = Vec::new();
        Self::pack_bits(&cw, &mut words);
        if self.syndromes_packed(&words).iter().any(|&s| s != 0) {
            return Err(BchError::TooManyErrors);
        }
        Ok((cw[self.parity_bits()..].to_vec(), found))
    }

    /// Berlekamp–Massey: finds the minimal-degree error locator polynomial
    /// σ(x) with σ(0)=1 consistent with the syndrome sequence.
    fn berlekamp_massey(&self, syn: &[u16]) -> Vec<u16> {
        let gf = &self.gf;
        let mut c: Vec<u16> = vec![1];
        let mut b: Vec<u16> = vec![1];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut bb = 1u16;
        for i in 0..syn.len() {
            // Discrepancy.
            let mut d = syn[i];
            for j in 1..=l.min(c.len() - 1) {
                d ^= gf.mul(c[j], syn[i - j]);
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= i {
                let old_c = c.clone();
                let coef = gf.div(d, bb);
                if c.len() < b.len() + m {
                    c.resize(b.len() + m, 0);
                }
                for (j, &bj) in b.iter().enumerate() {
                    c[j + m] ^= gf.mul(coef, bj);
                }
                l = i + 1 - l;
                b = old_c;
                bb = d;
                m = 1;
            } else {
                let coef = gf.div(d, bb);
                if c.len() < b.len() + m {
                    c.resize(b.len() + m, 0);
                }
                for (j, &bj) in b.iter().enumerate() {
                    c[j + m] ^= gf.mul(coef, bj);
                }
                m += 1;
            }
        }
        // Trim trailing zeros so degree reflects the true locator.
        while c.len() > 1 && c.last() == Some(&0) {
            c.pop();
        }
        c
    }
}

/// CRC-style clean screen for [`Bch::decode_batch`]: a byte-indexed
/// reduction table for computing `c(x) mod g(x)` over GF(2) word-parallel.
///
/// A stored word is a valid codeword iff `g | c`, which is also exactly
/// "all 2t syndromes zero" (the syndromes evaluate `c` at the roots of
/// `g`), so a zero remainder lets a lane skip syndrome computation
/// entirely. Building the 256-entry table costs a few microseconds and is
/// paid once per batch; screening a lane costs one table lookup per input
/// byte — an order of magnitude cheaper than the per-set-bit Horner
/// syndrome pass it replaces on clean lanes.
///
/// Only codes whose parity degree fits the `u64` shift register
/// (`8 ≤ deg g ≤ 56`) get a screen; tiny test codes fall back to the
/// syndrome check.
struct CleanScreen {
    /// Degree of the generator polynomial (= parity bits).
    d: usize,
    /// `(1 << d) − 1`: the remainder register mask.
    mask: u64,
    /// `table[v] = v(x)·x^d mod g(x)` for each 8-bit chunk `v`.
    table: [u64; 256],
}

impl CleanScreen {
    fn build(gen: &[u8]) -> Option<CleanScreen> {
        let d = gen.len() - 1;
        if !(8..=56).contains(&d) {
            return None;
        }
        // g(x) = x^d + (low bits), so x^d ≡ low bits (mod g).
        let mut gbits = 0u64;
        for (j, &g) in gen.iter().enumerate().take(d) {
            gbits |= u64::from(g) << j;
        }
        let mask = (1u64 << d) - 1;
        // base[k] = x^{d+k} mod g, by repeated multiply-by-x with reduction.
        let mut base = [0u64; 8];
        let mut pow = gbits;
        for b in &mut base {
            *b = pow;
            let overflow = pow >> (d - 1) & 1 == 1;
            pow = (pow << 1) & mask;
            if overflow {
                pow ^= gbits;
            }
        }
        // table[v] = Σ_{k set in v} base[k], filled in one pass: each v
        // extends the entry with its lowest bit cleared.
        let mut table = [0u64; 256];
        for v in 1usize..256 {
            let k = v.trailing_zeros() as usize;
            table[v] = table[v ^ (1 << k)] ^ base[k];
        }
        Some(CleanScreen { d, mask, table })
    }

    /// Remainder of the bit-packed codeword polynomial mod `g`, processing
    /// 8 coefficients per step from the highest degree down. Zero iff the
    /// word is a valid codeword. Leading zero padding in the top word is
    /// harmless: absorbing zero bytes into a zero register is a no-op.
    fn rem(&self, words: &[u64]) -> u64 {
        let mut r = 0u64;
        for &w in words.iter().rev() {
            for shift in (0..8).rev() {
                let byte = (w >> (shift * 8)) & 0xFF;
                let top = (r >> (self.d - 8)) as usize;
                r = (((r << 8) | byte) & self.mask) ^ self.table[top];
            }
        }
        r
    }
}

/// Computes the generator polynomial for a t-error-correcting binary BCH
/// code over `gf`: the LCM of the minimal polynomials of α¹..α^{2t}.
fn generator_poly(gf: &Gf, t: usize) -> Vec<u8> {
    let n = gf.order();
    let mut covered = vec![false; n];
    // Generator as a GF-coefficient polynomial (coefficients stay in {0,1}
    // because each factor is a complete conjugate set).
    let mut gen: Vec<u16> = vec![1];
    for j in 1..=2 * t {
        let j = j % n;
        if j == 0 || covered[j] {
            continue;
        }
        // Cyclotomic coset of j: {j, 2j, 4j, ...} mod n.
        let mut coset = Vec::new();
        let mut cur = j;
        loop {
            covered[cur] = true;
            coset.push(cur);
            cur = (cur * 2) % n;
            if cur == j {
                break;
            }
        }
        // Minimal polynomial: Π (x + α^c) over the coset.
        let mut min_poly: Vec<u16> = vec![1];
        for &c in &coset {
            let root = gf.alpha_pow(c as i64);
            // Multiply min_poly by (x + root).
            let mut next = vec![0u16; min_poly.len() + 1];
            for (d, &coef) in min_poly.iter().enumerate() {
                next[d + 1] ^= coef; // x · coef
                next[d] ^= gf.mul(coef, root); // root · coef
            }
            min_poly = next;
        }
        // Multiply the generator by the minimal polynomial.
        let mut next = vec![0u16; gen.len() + min_poly.len() - 1];
        for (a, &ga) in gen.iter().enumerate() {
            if ga == 0 {
                continue;
            }
            for (b, &mb) in min_poly.iter().enumerate() {
                next[a + b] ^= gf.mul(ga, mb);
            }
        }
        gen = next;
    }
    gen.iter()
        .map(|&c| {
            debug_assert!(c <= 1, "generator polynomial must be binary");
            c as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_pattern(k: usize, seed: u64) -> Vec<u8> {
        (0..k)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761).wrapping_add(seed) >> 7 & 1) as u8)
            .collect()
    }

    #[test]
    fn known_code_parameters() {
        // Classic table values.
        let c = Bch::new(4, 1);
        assert_eq!((c.n(), c.k()), (15, 11)); // BCH(15,11,1) = Hamming
        let c = Bch::new(4, 2);
        assert_eq!((c.n(), c.k()), (15, 7)); // BCH(15,7,2)
        let c = Bch::new(4, 3);
        assert_eq!((c.n(), c.k()), (15, 5)); // BCH(15,5,3)
        let c = Bch::new(6, 2);
        assert_eq!((c.n(), c.k()), (63, 51)); // BCH(63,51,2)
        let c = Bch::new(8, 2);
        assert_eq!((c.n(), c.k()), (255, 239)); // BCH(255,239,2)
    }

    #[test]
    fn clean_screen_remainder_agrees_with_syndromes() {
        // The batch screen's claim: remainder zero ⇔ all 2t syndromes
        // zero — checked on clean codewords, every single-bit corruption
        // of one, and a handful of multi-bit corruptions.
        for (m, t) in [(4u32, 2usize), (6, 2), (8, 3), (10, 2)] {
            let code = Bch::new(m, t);
            let screen = CleanScreen::build(&code.gen).expect("deg g within screen bounds");
            let mut words = Vec::new();
            let check = |cw: &[u8], words: &mut Vec<u64>| {
                Bch::pack_bits(cw, words);
                let clean_by_screen = screen.rem(words) == 0;
                let clean_by_syndromes = code.syndromes_reference(cw).iter().all(|&s| s == 0);
                assert_eq!(clean_by_screen, clean_by_syndromes, "m={m} t={t}");
                clean_by_screen
            };
            let data = data_pattern(code.k(), 99);
            let mut cw = code.encode(&data);
            assert!(check(&cw, &mut words));
            for i in 0..code.n() {
                cw[i] ^= 1;
                assert!(!check(&cw, &mut words), "flip at {i}");
                cw[i] ^= 1;
            }
            for flips in [[0usize, 7], [3, 11], [1, 2]] {
                for &i in &flips {
                    cw[i % code.n()] ^= 1;
                }
                check(&cw, &mut words);
                for &i in &flips {
                    cw[i % code.n()] ^= 1;
                }
            }
        }
    }

    #[test]
    fn clean_roundtrip() {
        for (m, t) in [(4u32, 1usize), (4, 2), (6, 3), (8, 4), (10, 5)] {
            let code = Bch::new(m, t);
            let data = data_pattern(code.k(), u64::from(m) << 8 | t as u64);
            let cw = code.encode(&data);
            assert_eq!(cw.len(), code.n());
            let (out, fixed) = code.decode(&cw).unwrap();
            assert_eq!(fixed, 0, "m={m} t={t}");
            assert_eq!(out, data, "m={m} t={t}");
        }
    }

    #[test]
    fn corrects_exactly_t_errors() {
        let code = Bch::new(8, 4);
        let data = data_pattern(code.k(), 42);
        let cw = code.encode(&data);
        // Deterministic spread of exactly t error positions.
        let positions = [3usize, 77, 141, 250];
        let mut bad = cw.clone();
        for &p in &positions {
            bad[p] ^= 1;
        }
        let (out, fixed) = code.decode(&bad).unwrap();
        assert_eq!(fixed, 4);
        assert_eq!(out, data);
    }

    #[test]
    fn corrects_errors_in_parity_region() {
        let code = Bch::new(6, 3);
        let data = data_pattern(code.k(), 7);
        let mut cw = code.encode(&data);
        cw[0] ^= 1; // parity bit
        cw[code.parity_bits() - 1] ^= 1; // last parity bit
        let (out, fixed) = code.decode(&cw).unwrap();
        assert_eq!(fixed, 2);
        assert_eq!(out, data);
    }

    #[test]
    fn detects_more_than_t_errors_or_miscorrects_to_valid() {
        // t+1 errors are beyond the guarantee: the decoder must either
        // report failure or (rarely) land on a *valid* wrong codeword —
        // never panic or return an invalid word.
        let code = Bch::new(8, 3);
        let data = data_pattern(code.k(), 1);
        let cw = code.encode(&data);
        let mut failures = 0;
        for seed in 0..40u64 {
            let mut bad = cw.clone();
            for e in 0..4u64 {
                let pos = ((seed * 97 + e * 31) as usize * 131) % code.n();
                bad[pos] ^= 1;
            }
            match code.decode(&bad) {
                Err(BchError::TooManyErrors) => failures += 1,
                Ok((out, _)) => {
                    // If it "succeeded", the result must re-encode to a
                    // valid codeword (miscorrection), or be the original
                    // (error positions collided and cancelled).
                    let recoded = code.encode(&out);
                    assert!(code.decode(&recoded).is_ok());
                }
            }
        }
        assert!(
            failures > 20,
            "expected mostly detected failures, got {failures}"
        );
    }

    #[test]
    fn shortened_code_roundtrip() {
        // 512-bit data block protected by a t=4 code over GF(2^10).
        let code = Bch::with_data_len(10, 4, 512);
        assert_eq!(code.k(), 512);
        assert_eq!(code.parity_bits(), 40); // m·t = 10·4
        assert_eq!(code.n(), 552);
        let data = data_pattern(512, 99);
        let mut cw = code.encode(&data);
        for &p in &[0usize, 100, 300, 551] {
            cw[p] ^= 1;
        }
        let (out, fixed) = code.decode(&cw).unwrap();
        assert_eq!(fixed, 4);
        assert_eq!(out, data);
    }

    #[test]
    fn overhead_falls_with_block_size_at_fixed_t() {
        // The Dolinar observation realized: same t, bigger blocks, lower
        // overhead.
        let small = Bch::with_data_len(8, 4, 128).overhead();
        let medium = Bch::with_data_len(10, 4, 512).overhead();
        let large = Bch::with_data_len(13, 4, 4096).overhead();
        assert!(small > medium && medium > large, "{small} {medium} {large}");
    }

    #[test]
    fn generator_is_binary_and_has_expected_degree() {
        for (m, t) in [(4u32, 2usize), (6, 3), (8, 5), (10, 4)] {
            let gf = Gf::new(m);
            let gen = generator_poly(&gf, t);
            assert!(gen.iter().all(|&c| c <= 1));
            // deg(g) ≤ m·t for binary BCH.
            assert!(gen.len() - 1 <= m as usize * t, "m={m} t={t}");
            assert_eq!(*gen.last().unwrap(), 1, "monic");
        }
    }

    #[test]
    fn packed_syndromes_match_reference() {
        for (m, t) in [(4u32, 2usize), (6, 3), (8, 4), (10, 2), (10, 4)] {
            let code = Bch::new(m, t);
            for seed in 0..8u64 {
                let data = data_pattern(code.k(), seed);
                let mut cw = code.encode(&data);
                // Clean, then progressively dirtier patterns.
                for flips in 0..=(t + 2) {
                    let mut words = Vec::new();
                    Bch::pack_bits(&cw, &mut words);
                    assert_eq!(
                        code.syndromes_packed(&words),
                        code.syndromes_reference(&cw),
                        "m={m} t={t} seed={seed} flips={flips}"
                    );
                    cw[(seed as usize * 37 + flips * 101) % code.n()] ^= 1;
                }
            }
        }
    }

    #[test]
    fn batch_decode_matches_scalar() {
        let code = Bch::with_data_len(10, 2, 512);
        let mut cws: Vec<Vec<u8>> = Vec::new();
        for i in 0..40u64 {
            let mut cw = code.encode(&data_pattern(512, i));
            // Mix clean lanes with 1..=t+1-error lanes.
            for e in 0..(i % 4) {
                cw[((i * 131 + e * 977) % 532) as usize] ^= 1;
            }
            cws.push(cw);
        }
        let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
        let batch = code.decode_batch(&refs);
        for (i, cw) in cws.iter().enumerate() {
            assert_eq!(batch[i], code.decode(cw), "lane {i}");
        }
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn oversized_shortening_panics() {
        let _ = Bch::with_data_len(4, 2, 8); // k is only 7
    }

    #[test]
    #[should_panic(expected = "codeword length mismatch")]
    fn wrong_codeword_length_panics() {
        let code = Bch::new(4, 1);
        let _ = code.decode(&[0u8; 14]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bch_corrects_up_to_t_random_errors(
            data in proptest::collection::vec(0u8..=1, 231),
            errs in proptest::collection::btree_set(0usize..255, 0..=3),
        ) {
            let code = Bch::new(8, 3);
            prop_assert_eq!(code.k(), 231);
            let mut cw = code.encode(&data);
            for &p in &errs {
                cw[p] ^= 1;
            }
            let (out, fixed) = code.decode(&cw).unwrap();
            prop_assert_eq!(fixed, errs.len());
            prop_assert_eq!(out, data);
        }

        #[test]
        fn shortened_bch_corrects_up_to_t_random_errors(
            data in proptest::collection::vec(0u8..=1, 256),
            errs in proptest::collection::btree_set(0usize..296, 0..=4),
        ) {
            let code = Bch::with_data_len(10, 4, 256);
            prop_assert_eq!(code.n(), 296);
            let mut cw = code.encode(&data);
            for &p in &errs {
                cw[p] ^= 1;
            }
            let (out, fixed) = code.decode(&cw).unwrap();
            prop_assert_eq!(fixed, errs.len());
            prop_assert_eq!(out, data);
        }
    }
}
