//! Block interleaving: spreading burst errors across codewords.
//!
//! MRM's failure modes are spatially correlated — a marginal wordline, a
//! die-level defect, a disturbed crossbar row — which shows up as *burst*
//! errors. Interleaving `depth` codewords bit-by-bit converts a burst of
//! length `L` into at most `⌈L/depth⌉` errors per codeword, letting modest
//! per-codeword `t` survive long bursts. This is standard practice in NAND
//! controllers and equally applicable to the paper's block-level MRM
//! controller.

/// A bit-level block interleaver over `depth` codewords of `len` bits each.
#[derive(Clone, Copy, Debug)]
pub struct Interleaver {
    depth: usize,
    len: usize,
}

impl Interleaver {
    /// Creates an interleaver for `depth` codewords of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(depth: usize, len: usize) -> Self {
        assert!(
            depth > 0 && len > 0,
            "interleaver dimensions must be positive"
        );
        Interleaver { depth, len }
    }

    /// Number of interleaved codewords.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Bits per codeword.
    pub fn codeword_len(&self) -> usize {
        self.len
    }

    /// Total bits in one interleaved frame.
    pub fn frame_len(&self) -> usize {
        self.depth * self.len
    }

    /// Interleaves `depth` codewords into one frame: frame position
    /// `i·depth + j` holds bit `i` of codeword `j`.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `depth` codewords of `len` bits are supplied.
    pub fn interleave(&self, codewords: &[Vec<u8>]) -> Vec<u8> {
        assert_eq!(codewords.len(), self.depth, "codeword count mismatch");
        for cw in codewords {
            assert_eq!(cw.len(), self.len, "codeword length mismatch");
        }
        let mut frame = vec![0u8; self.frame_len()];
        for (j, cw) in codewords.iter().enumerate() {
            for (i, &bit) in cw.iter().enumerate() {
                frame[i * self.depth + j] = bit;
            }
        }
        frame
    }

    /// De-interleaves a frame back into `depth` codewords.
    ///
    /// # Panics
    ///
    /// Panics if the frame length is wrong.
    pub fn deinterleave(&self, frame: &[u8]) -> Vec<Vec<u8>> {
        assert_eq!(frame.len(), self.frame_len(), "frame length mismatch");
        let mut out = vec![vec![0u8; self.len]; self.depth];
        for (pos, &bit) in frame.iter().enumerate() {
            out[pos % self.depth][pos / self.depth] = bit;
        }
        out
    }

    /// The worst-case number of errors any single codeword sees from a
    /// contiguous burst of `burst_len` flipped frame bits.
    pub fn errors_per_codeword(&self, burst_len: usize) -> usize {
        burst_len.div_ceil(self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bch::Bch;

    fn codewords(depth: usize, len: usize) -> Vec<Vec<u8>> {
        (0..depth)
            .map(|j| (0..len).map(|i| ((i * 7 + j * 13) % 2) as u8).collect())
            .collect()
    }

    #[test]
    fn roundtrip() {
        let il = Interleaver::new(8, 63);
        let cws = codewords(8, 63);
        let frame = il.interleave(&cws);
        assert_eq!(frame.len(), 8 * 63);
        assert_eq!(il.deinterleave(&frame), cws);
    }

    #[test]
    fn burst_spreads_evenly() {
        let il = Interleaver::new(4, 16);
        let cws = codewords(4, 16);
        let mut frame = il.interleave(&cws);
        // Burst of 8 consecutive bits: each codeword sees exactly 2 errors.
        for bit in frame.iter_mut().skip(10).take(8) {
            *bit ^= 1;
        }
        let out = il.deinterleave(&frame);
        for (j, cw) in out.iter().enumerate() {
            let errors = cw.iter().zip(&cws[j]).filter(|(a, b)| a != b).count();
            assert_eq!(errors, 2, "codeword {j}");
        }
        assert_eq!(il.errors_per_codeword(8), 2);
        assert_eq!(il.errors_per_codeword(9), 3);
    }

    #[test]
    fn interleaved_bch_survives_long_bursts() {
        // t=2 BCH codewords, depth-8 interleaving: a 16-bit burst (far more
        // than any single codeword could take) decodes cleanly.
        let code = Bch::new(6, 2); // (63, 51)
        let data: Vec<Vec<u8>> = (0..8)
            .map(|j| (0..51).map(|i| ((i + j) % 2) as u8).collect())
            .collect();
        let cws: Vec<Vec<u8>> = data.iter().map(|d| code.encode(d)).collect();
        let il = Interleaver::new(8, 63);
        let mut frame = il.interleave(&cws);
        for bit in frame.iter_mut().skip(100).take(16) {
            *bit ^= 1;
        }
        let received = il.deinterleave(&frame);
        for (j, cw) in received.iter().enumerate() {
            let (out, _fixed) = code.decode(cw).unwrap_or_else(|e| {
                panic!("codeword {j} failed: {e}");
            });
            assert_eq!(out, data[j], "codeword {j}");
        }
    }

    #[test]
    fn without_interleaving_the_same_burst_kills_a_codeword() {
        let code = Bch::new(6, 2);
        let data: Vec<u8> = (0..51).map(|i| (i % 2) as u8).collect();
        let mut cw = code.encode(&data);
        for bit in cw.iter_mut().skip(10).take(16) {
            *bit ^= 1;
        }
        // 16 errors >> t=2: must not silently return the original data.
        match code.decode(&cw) {
            Err(_) => {}
            Ok((out, _)) => assert_ne!(out, data, "16-bit burst cannot be transparently fixed"),
        }
    }

    #[test]
    #[should_panic(expected = "codeword count mismatch")]
    fn wrong_count_panics() {
        let il = Interleaver::new(4, 8);
        il.interleave(&codewords(3, 8));
    }
}
