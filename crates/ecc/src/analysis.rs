//! RBER → UBER analysis: reliability math for retention-aware ECC.
//!
//! Given a raw bit error rate `p` (from the device model's age/wear curves)
//! and a `t`-error-correcting code over `n`-bit codewords, the codeword
//! failure probability is the binomial tail `P[X > t]`, `X ~ Bin(n, p)`.
//! These functions compute that tail stably in log space, invert it to find
//! the `t` a target reliability requires, and produce the paper's two §4
//! curves:
//!
//! * **overhead vs. codeword size at iso-reliability** — the Dolinar effect:
//!   larger blocks need proportionally fewer check bits;
//! * **scrub interval vs. ECC strength** — how long data can age toward its
//!   retention target before the decoder can no longer keep up, which is
//!   what a retention-aware control plane schedules scrubs against.

/// Natural log of the binomial coefficient `C(n, k)` via `ln Γ`.
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)` by Stirling's series for large n, exact summation for small.
fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    let x = n as f64;
    // Stirling with 1/(12n) correction: plenty for probability work.
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
}

/// Probability that a codeword of `n` bits with raw bit error rate `p`
/// contains **more than** `t` errors — i.e. the probability the codeword is
/// uncorrectable by a t-error-correcting code.
///
/// Computed as the complement of the lower binomial CDF in log space for
/// numerical stability down to ~1e-300.
pub fn codeword_failure_prob(n: u64, t: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return if t < n { 1.0 } else { 0.0 };
    }
    let ln_p = p.ln();
    let ln_q = (1.0 - p).ln_1p_safe();
    // Sum the tail directly when it is the smaller side (p·n below t);
    // otherwise sum the head and subtract.
    let mean = n as f64 * p;
    if mean <= t as f64 {
        // Tail sum: k = t+1 ..= n. Terms decay geometrically; stop when
        // negligible.
        let mut total = 0.0f64;
        let mut k = t + 1;
        let mut last_term = f64::NEG_INFINITY;
        while k <= n {
            let ln_term = ln_choose(n, k) + k as f64 * ln_p + (n - k) as f64 * ln_q;
            total += ln_term.exp();
            // Convergence: terms shrinking and tiny relative to total.
            if ln_term < last_term && ln_term.exp() < total * 1e-16 {
                break;
            }
            last_term = ln_term;
            k += 1;
        }
        total.min(1.0)
    } else {
        // Head sum: k = 0 ..= t.
        let mut head = 0.0f64;
        for k in 0..=t.min(n) {
            let ln_term = ln_choose(n, k) + k as f64 * ln_p + (n - k) as f64 * ln_q;
            head += ln_term.exp();
        }
        (1.0 - head).clamp(0.0, 1.0)
    }
}

/// Extension trait: `ln(1+x)`-style safe log of `1-p` values near 1.
trait Ln1pSafe {
    fn ln_1p_safe(self) -> f64;
}

impl Ln1pSafe for f64 {
    fn ln_1p_safe(self) -> f64 {
        // self is ln argument (1-p) already computed; just ln with a floor.
        self.max(f64::MIN_POSITIVE).ln()
    }
}

/// Uncorrectable bit error rate delivered to the application: codeword
/// failure probability amortized over the data bits it carries.
pub fn uber(n: u64, k: u64, t: u64, rber: f64) -> f64 {
    codeword_failure_prob(n, t, rber) / k.max(1) as f64
}

/// The smallest `t` such that a t-error-correcting code over `n`-bit
/// codewords meets `target` codeword failure probability at raw bit error
/// rate `rber`. Returns `None` if even `t = n` cannot (i.e. target is 0).
pub fn required_t(n: u64, rber: f64, target: f64) -> Option<u64> {
    if target <= 0.0 {
        return None;
    }
    (0..=n).find(|&t| codeword_failure_prob(n, t, rber) <= target)
}

/// One row of the iso-reliability overhead curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadPoint {
    /// Data bits per codeword.
    pub data_bits: u64,
    /// Codeword bits (data + parity).
    pub codeword_bits: u64,
    /// Required correction capability.
    pub t: u64,
    /// Parity bits spent (BCH-style: `m·t` with `m = ⌈log2(n+1)⌉`).
    pub parity_bits: u64,
    /// Overhead fraction: parity / codeword.
    pub overhead: f64,
    /// Achieved codeword failure probability.
    pub achieved_cw_fail: f64,
}

/// Computes the overhead a BCH-style code needs at each data-block size to
/// hold codeword reliability at `target_cw_fail` under raw bit error rate
/// `rber` — the §4 "larger code words and less overhead" curve.
///
/// For each data size the code length is found self-consistently
/// (`n = data + m·t`, `m = ⌈log2(n+1)⌉`) by fixed-point iteration.
pub fn iso_reliability_overhead(
    rber: f64,
    target_cw_fail: f64,
    data_sizes_bits: &[u64],
) -> Vec<OverheadPoint> {
    data_sizes_bits
        .iter()
        .filter_map(|&data| {
            // Fixed point on (t, m): start from n = data.
            let mut n = data;
            for _ in 0..32 {
                let t = required_t(n, rber, target_cw_fail)?;
                let m = u64::from(64 - (n + 1).leading_zeros()); // ⌈log2(n+1)⌉
                let n_next = data + m * t;
                if n_next == n {
                    return Some(OverheadPoint {
                        data_bits: data,
                        codeword_bits: n,
                        t,
                        parity_bits: m * t,
                        overhead: (m * t) as f64 / n as f64,
                        achieved_cw_fail: codeword_failure_prob(n, t, rber),
                    });
                }
                n = n_next;
            }
            // Fixed point oscillated by ±1; accept the last iterate.
            let t = required_t(n, rber, target_cw_fail)?;
            let m = u64::from(64 - (n + 1).leading_zeros());
            Some(OverheadPoint {
                data_bits: data,
                codeword_bits: data + m * t,
                t,
                parity_bits: m * t,
                overhead: (m * t) as f64 / (data + m * t) as f64,
                achieved_cw_fail: codeword_failure_prob(data + m * t, t, rber),
            })
        })
        .collect()
}

/// Finds the longest data age (as a fraction of the retention target, in
/// `(0, max_fraction]`) at which a `t`-error-correcting code over `n`-bit
/// codewords still meets `target_cw_fail`, given a monotone `rber(age_frac)`
/// function. Binary search; returns 0.0 if even infinitesimal age fails.
///
/// This is the scrub-scheduling primitive: the control plane must rewrite
/// (scrub) or migrate data before its age crosses the returned fraction.
pub fn max_safe_age_fraction<F>(n: u64, t: u64, target_cw_fail: f64, rber_at: F) -> f64
where
    F: Fn(f64) -> f64,
{
    let ok = |frac: f64| codeword_failure_prob(n, t, rber_at(frac)) <= target_cw_fail;
    if !ok(1e-6) {
        return 0.0;
    }
    let max_fraction = 4.0; // allow exploring past the nominal target
    if ok(max_fraction) {
        return max_fraction;
    }
    let (mut lo, mut hi) = (1e-6, max_fraction);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2) - (10f64).ln()).abs() < 1e-9);
        assert!((ln_choose(10, 0)).abs() < 1e-9);
        assert_eq!(ln_choose(3, 5).to_bits(), f64::NEG_INFINITY.to_bits());
    }

    #[test]
    fn stirling_matches_exact() {
        // Compare exact summation and Stirling at the switchover.
        let exact: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        let stirling = ln_factorial(300);
        assert!((exact - stirling).abs() / exact < 1e-9);
    }

    #[test]
    fn failure_prob_edge_cases() {
        // The edge branches return the literals directly.
        assert!(codeword_failure_prob(100, 0, 0.0).abs() < f64::EPSILON);
        assert!((codeword_failure_prob(100, 99, 1.0) - 1.0).abs() < f64::EPSILON);
        assert!(codeword_failure_prob(100, 100, 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn failure_prob_matches_direct_computation() {
        // Small case computable directly: n=10, p=0.1, t=1.
        // P[X>1] = 1 - P[0] - P[1] = 1 - 0.9^10 - 10·0.1·0.9^9.
        let exact = 1.0 - 0.9f64.powi(10) - 10.0 * 0.1 * 0.9f64.powi(9);
        let got = codeword_failure_prob(10, 1, 0.1);
        assert!((got - exact).abs() < 1e-12, "{got} vs {exact}");
    }

    #[test]
    fn failure_prob_monotone_in_t_and_p() {
        let p = 1e-4;
        let mut last = 1.0;
        for t in 0..6 {
            let f = codeword_failure_prob(4096, t, p);
            assert!(f < last, "t={t}");
            last = f;
        }
        assert!(codeword_failure_prob(4096, 2, 1e-3) > codeword_failure_prob(4096, 2, 1e-5));
    }

    #[test]
    fn deep_tail_is_finite_and_positive() {
        let f = codeword_failure_prob(512, 8, 1e-6);
        assert!(f > 0.0 && f < 1e-30, "deep tail {f}");
    }

    #[test]
    fn uber_scales_by_data_bits() {
        let f = codeword_failure_prob(1024, 3, 1e-4);
        assert!((uber(1024, 512, 3, 1e-4) - f / 512.0).abs() < 1e-30);
    }

    #[test]
    fn required_t_inverts_failure_prob() {
        let n = 4096;
        let rber = 1e-4;
        let target = 1e-15;
        let t = required_t(n, rber, target).unwrap();
        assert!(codeword_failure_prob(n, t, rber) <= target);
        if t > 0 {
            assert!(codeword_failure_prob(n, t - 1, rber) > target);
        }
        assert_eq!(required_t(100, 0.0, 1e-15), Some(0));
        assert_eq!(required_t(100, 0.5, 0.0), None);
    }

    #[test]
    fn dolinar_overhead_falls_with_block_size() {
        // The paper's §4 claim: at equal delivered reliability, overhead
        // falls as code words grow.
        let rows = iso_reliability_overhead(1e-4, 1e-12, &[64, 512, 4096, 32768]);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(
                w[1].overhead < w[0].overhead,
                "overhead must fall: {} bits {} vs {} bits {}",
                w[0].data_bits,
                w[0].overhead,
                w[1].data_bits,
                w[1].overhead
            );
        }
        // Everyone met the target.
        for r in &rows {
            assert!(r.achieved_cw_fail <= 1e-12, "{r:?}");
        }
        // And the magnitude is material: 64-bit words pay >5x the overhead
        // of 32-kbit words.
        assert!(rows[0].overhead > 5.0 * rows[3].overhead);
    }

    #[test]
    fn max_safe_age_monotone_in_t() {
        // RBER grows quadratically in age fraction (Weibull β=2 regime).
        let rber_at = |f: f64| 1e-9 + 1e-3 * f * f;
        let weak = max_safe_age_fraction(4096, 2, 1e-12, rber_at);
        let strong = max_safe_age_fraction(4096, 8, 1e-12, rber_at);
        assert!(
            strong > weak,
            "stronger ECC must allow older data: {weak} vs {strong}"
        );
        assert!(weak > 0.0);
    }

    #[test]
    fn max_safe_age_zero_when_hopeless() {
        let rber_at = |_f: f64| 0.4;
        assert!(max_safe_age_fraction(1024, 1, 1e-12, rber_at).abs() < f64::EPSILON);
    }

    #[test]
    fn max_safe_age_caps_when_always_fine() {
        let rber_at = |_f: f64| 1e-12;
        let f = max_safe_age_fraction(512, 4, 1e-9, rber_at);
        assert!((f - 4.0).abs() < f64::EPSILON);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn failure_prob_is_a_probability(
            n in 1u64..10_000,
            t in 0u64..64,
            p in 0.0f64..0.5,
        ) {
            let f = codeword_failure_prob(n, t, p);
            prop_assert!((0.0..=1.0).contains(&f), "f={f}");
        }

        #[test]
        fn failure_prob_monotone_in_n(
            n in 64u64..4096,
            t in 0u64..8,
            p in 1e-6f64..1e-2,
        ) {
            let f1 = codeword_failure_prob(n, t, p);
            let f2 = codeword_failure_prob(n * 2, t, p);
            // More bits, same correction: can't be more reliable.
            prop_assert!(f2 >= f1 * 0.999999, "f1={f1} f2={f2}");
        }
    }
}
