//! SECDED extended Hamming codes — the DRAM-style ECC baseline.
//!
//! Commodity DRAM/HBM ECC protects small words: the classic (72,64) SECDED
//! code adds 8 check bits to every 64 data bits (12.5% overhead) and corrects
//! one error / detects two per word. The MRM paper's §4 argument is that
//! block-level interfaces allow much larger code words (BCH in [`crate::bch`])
//! with lower overhead at equal or better protection; this module provides
//! the small-word baseline for that comparison.
//!
//! Bits are represented one-per-`u8` (values 0/1) for clarity; the codec is
//! still fast enough to stream hundreds of MB/s in the benches.

/// Outcome of decoding one SECDED word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HammingOutcome {
    /// No error detected.
    Clean,
    /// A single-bit error was corrected at the given codeword position.
    Corrected(usize),
    /// The overall parity bit itself was wrong and was fixed.
    ParityCorrected,
    /// A double-bit error was detected; data is not trustworthy.
    DoubleError,
}

/// An extended Hamming (SECDED) code for a configurable data width.
///
/// # Examples
///
/// ```
/// use mrm_ecc::hamming::{Hamming, HammingOutcome};
///
/// let code = Hamming::secded_72_64();
/// let data: Vec<u8> = (0..64).map(|i| (i % 3 == 0) as u8).collect();
/// let mut cw = code.encode(&data);
/// cw[17] ^= 1; // inject a single-bit error
/// let (decoded, outcome) = code.decode(&cw);
/// assert_eq!(outcome, HammingOutcome::Corrected(17));
/// assert_eq!(decoded, data);
/// ```
#[derive(Clone, Debug)]
pub struct Hamming {
    /// Data bits per word.
    k: usize,
    /// Hamming parity bits (excluding the overall parity bit).
    r: usize,
}

impl Hamming {
    /// Creates a SECDED code for `k` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or needs more than 16 parity bits.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "data width must be positive");
        let mut r = 0usize;
        while (1usize << r) < r + k + 1 {
            r += 1;
            assert!(r <= 16, "data width too large");
        }
        Hamming { k, r }
    }

    /// The classic (72,64) DRAM SECDED geometry.
    pub fn secded_72_64() -> Self {
        let h = Hamming::new(64);
        debug_assert_eq!(h.codeword_len(), 72);
        h
    }

    /// Data bits per word.
    pub fn data_len(&self) -> usize {
        self.k
    }

    /// Total codeword bits: data + Hamming parity + overall parity.
    pub fn codeword_len(&self) -> usize {
        self.k + self.r + 1
    }

    /// Code-rate overhead: check bits / codeword bits.
    pub fn overhead(&self) -> f64 {
        (self.r + 1) as f64 / self.codeword_len() as f64
    }

    /// Encodes `data` (one bit per byte, values 0/1).
    ///
    /// Layout: index 0 holds the overall parity; indices `1..` hold the
    /// classic Hamming arrangement (powers of two are parity positions).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_len()` or any value is not 0/1.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "data length mismatch");
        let n = self.codeword_len();
        let mut cw = vec![0u8; n];
        // Place data bits at non-power-of-two positions ≥ 1.
        let mut di = 0;
        for (pos, slot) in cw.iter_mut().enumerate().skip(1) {
            if !pos.is_power_of_two() {
                let bit = data[di];
                assert!(bit <= 1, "bits must be 0 or 1");
                *slot = bit;
                di += 1;
            }
        }
        debug_assert_eq!(di, self.k);
        // Hamming parity bits: parity bit at position 2^j covers every
        // position with bit j set.
        for j in 0..self.r {
            let p = 1usize << j;
            let mut parity = 0u8;
            for (pos, cw_bit) in cw.iter().enumerate().skip(1) {
                if pos & p != 0 && pos != p {
                    parity ^= cw_bit;
                }
            }
            cw[p] = parity;
        }
        // Overall parity over everything else (even parity).
        cw[0] = cw[1..].iter().fold(0u8, |a, &b| a ^ b);
        cw
    }

    /// Decodes a codeword, correcting a single-bit error if present.
    ///
    /// Returns the recovered data bits and the [`HammingOutcome`]. On
    /// [`HammingOutcome::DoubleError`] the returned data is best-effort and
    /// must not be trusted.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != self.codeword_len()`.
    pub fn decode(&self, cw: &[u8]) -> (Vec<u8>, HammingOutcome) {
        assert_eq!(cw.len(), self.codeword_len(), "codeword length mismatch");
        let mut cw = cw.to_vec();
        // Syndrome: XOR of positions whose parity group fails.
        let mut syndrome = 0usize;
        for j in 0..self.r {
            let p = 1usize << j;
            let mut parity = 0u8;
            for (pos, cw_bit) in cw.iter().enumerate().skip(1) {
                if pos & p != 0 {
                    parity ^= cw_bit;
                }
            }
            if parity != 0 {
                syndrome |= p;
            }
        }
        let overall = cw.iter().fold(0u8, |a, &b| a ^ b);

        let outcome = match (syndrome, overall) {
            (0, 0) => HammingOutcome::Clean,
            (0, _) => {
                cw[0] ^= 1;
                HammingOutcome::ParityCorrected
            }
            (s, 1) if s < cw.len() => {
                cw[s] ^= 1;
                HammingOutcome::Corrected(s)
            }
            _ => HammingOutcome::DoubleError,
        };

        let mut data = Vec::with_capacity(self.k);
        for (pos, &b) in cw.iter().enumerate().skip(1) {
            if !pos.is_power_of_two() {
                data.push(b);
            }
        }
        (data, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(k: usize, seed: u64) -> Vec<u8> {
        (0..k)
            .map(|i| (((i as u64).wrapping_mul(seed + 7) >> 3) & 1) as u8)
            .collect()
    }

    #[test]
    fn geometry_72_64() {
        let h = Hamming::secded_72_64();
        assert_eq!(h.data_len(), 64);
        assert_eq!(h.codeword_len(), 72);
        assert!((h.overhead() - 8.0 / 72.0).abs() < 1e-12);
    }

    #[test]
    fn clean_roundtrip() {
        for k in [4usize, 11, 26, 57, 64, 120] {
            let h = Hamming::new(k);
            let data = pattern(k, k as u64);
            let cw = h.encode(&data);
            let (out, outcome) = h.decode(&cw);
            assert_eq!(outcome, HammingOutcome::Clean, "k={k}");
            assert_eq!(out, data, "k={k}");
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let h = Hamming::new(64);
        let data = pattern(64, 3);
        let cw = h.encode(&data);
        for i in 0..h.codeword_len() {
            let mut bad = cw.clone();
            bad[i] ^= 1;
            let (out, outcome) = h.decode(&bad);
            match outcome {
                HammingOutcome::Corrected(pos) => assert_eq!(pos, i),
                HammingOutcome::ParityCorrected => assert_eq!(i, 0),
                other => panic!("bit {i}: unexpected outcome {other:?}"),
            }
            assert_eq!(out, data, "bit {i} not corrected");
        }
    }

    #[test]
    fn every_double_bit_error_is_detected() {
        let h = Hamming::new(26);
        let data = pattern(26, 9);
        let cw = h.encode(&data);
        let n = h.codeword_len();
        for i in 0..n {
            for j in (i + 1)..n {
                let mut bad = cw.clone();
                bad[i] ^= 1;
                bad[j] ^= 1;
                let (_, outcome) = h.decode(&bad);
                assert_eq!(outcome, HammingOutcome::DoubleError, "bits {i},{j}");
            }
        }
    }

    #[test]
    fn all_zero_and_all_one_data() {
        let h = Hamming::secded_72_64();
        for bit in [0u8, 1] {
            let data = vec![bit; 64];
            let cw = h.encode(&data);
            let (out, outcome) = h.decode(&cw);
            assert_eq!(outcome, HammingOutcome::Clean);
            assert_eq!(out, data);
        }
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn wrong_data_length_panics() {
        Hamming::new(8).encode(&[1, 0, 1]);
    }

    #[test]
    fn overhead_shrinks_with_word_size() {
        // The Dolinar direction even within Hamming: bigger words,
        // proportionally fewer check bits.
        let small = Hamming::new(8).overhead();
        let medium = Hamming::new(64).overhead();
        let large = Hamming::new(512).overhead();
        assert!(small > medium && medium > large);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_any_data(data in proptest::collection::vec(0u8..=1, 64)) {
            let h = Hamming::secded_72_64();
            let cw = h.encode(&data);
            let (out, outcome) = h.decode(&cw);
            prop_assert_eq!(outcome, HammingOutcome::Clean);
            prop_assert_eq!(out, data);
        }

        #[test]
        fn single_error_always_corrected(
            data in proptest::collection::vec(0u8..=1, 64),
            pos in 0usize..72,
        ) {
            let h = Hamming::secded_72_64();
            let mut cw = h.encode(&data);
            cw[pos] ^= 1;
            let (out, outcome) = h.decode(&cw);
            prop_assert_ne!(outcome, HammingOutcome::DoubleError);
            prop_assert_ne!(outcome, HammingOutcome::Clean);
            prop_assert_eq!(out, data);
        }

        #[test]
        fn double_error_always_detected(
            data in proptest::collection::vec(0u8..=1, 64),
            a in 0usize..72,
            b in 0usize..72,
        ) {
            prop_assume!(a != b);
            let h = Hamming::secded_72_64();
            let mut cw = h.encode(&data);
            cw[a] ^= 1;
            cw[b] ^= 1;
            let (_, outcome) = h.decode(&cw);
            prop_assert_eq!(outcome, HammingOutcome::DoubleError);
        }
    }
}
