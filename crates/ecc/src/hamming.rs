//! SECDED extended Hamming codes — the DRAM-style ECC baseline.
//!
//! Commodity DRAM/HBM ECC protects small words: the classic (72,64) SECDED
//! code adds 8 check bits to every 64 data bits (12.5% overhead) and corrects
//! one error / detects two per word. The MRM paper's §4 argument is that
//! block-level interfaces allow much larger code words (BCH in [`crate::bch`])
//! with lower overhead at equal or better protection; this module provides
//! the small-word baseline for that comparison.
//!
//! Bits are represented one-per-`u8` (values 0/1) for clarity; the codec is
//! still fast enough to stream hundreds of MB/s in the benches.

/// Outcome of decoding one SECDED word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HammingOutcome {
    /// No error detected.
    Clean,
    /// A single-bit error was corrected at the given codeword position.
    Corrected(usize),
    /// The overall parity bit itself was wrong and was fixed.
    ParityCorrected,
    /// A double-bit error was detected; data is not trustworthy.
    DoubleError,
}

/// An extended Hamming (SECDED) code for a configurable data width.
///
/// # Examples
///
/// ```
/// use mrm_ecc::hamming::{Hamming, HammingOutcome};
///
/// let code = Hamming::secded_72_64();
/// let data: Vec<u8> = (0..64).map(|i| (i % 3 == 0) as u8).collect();
/// let mut cw = code.encode(&data);
/// cw[17] ^= 1; // inject a single-bit error
/// let (decoded, outcome) = code.decode(&cw);
/// assert_eq!(outcome, HammingOutcome::Corrected(17));
/// assert_eq!(decoded, data);
/// ```
#[derive(Clone, Debug)]
pub struct Hamming {
    /// Data bits per word.
    k: usize,
    /// Hamming parity bits (excluding the overall parity bit).
    r: usize,
}

impl Hamming {
    /// Creates a SECDED code for `k` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or needs more than 16 parity bits.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "data width must be positive");
        let mut r = 0usize;
        while (1usize << r) < r + k + 1 {
            r += 1;
            assert!(r <= 16, "data width too large");
        }
        Hamming { k, r }
    }

    /// The classic (72,64) DRAM SECDED geometry.
    pub fn secded_72_64() -> Self {
        let h = Hamming::new(64);
        debug_assert_eq!(h.codeword_len(), 72);
        h
    }

    /// Data bits per word.
    pub fn data_len(&self) -> usize {
        self.k
    }

    /// Total codeword bits: data + Hamming parity + overall parity.
    pub fn codeword_len(&self) -> usize {
        self.k + self.r + 1
    }

    /// Code-rate overhead: check bits / codeword bits.
    pub fn overhead(&self) -> f64 {
        (self.r + 1) as f64 / self.codeword_len() as f64
    }

    /// Encodes `data` (one bit per byte, values 0/1).
    ///
    /// Layout: index 0 holds the overall parity; indices `1..` hold the
    /// classic Hamming arrangement (powers of two are parity positions).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_len()` or any value is not 0/1.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "data length mismatch");
        let n = self.codeword_len();
        let mut cw = vec![0u8; n];
        // Place data bits at non-power-of-two positions ≥ 1.
        let mut di = 0;
        for (pos, slot) in cw.iter_mut().enumerate().skip(1) {
            if !pos.is_power_of_two() {
                let bit = data[di];
                assert!(bit <= 1, "bits must be 0 or 1");
                *slot = bit;
                di += 1;
            }
        }
        debug_assert_eq!(di, self.k);
        // Hamming parity bits: parity bit at position 2^j covers every
        // position with bit j set.
        for j in 0..self.r {
            let p = 1usize << j;
            let mut parity = 0u8;
            for (pos, cw_bit) in cw.iter().enumerate().skip(1) {
                if pos & p != 0 && pos != p {
                    parity ^= cw_bit;
                }
            }
            cw[p] = parity;
        }
        // Overall parity over everything else (even parity).
        cw[0] = cw[1..].iter().fold(0u8, |a, &b| a ^ b);
        cw
    }

    /// Decodes a codeword, correcting a single-bit error if present.
    ///
    /// Returns the recovered data bits and the [`HammingOutcome`]. On
    /// [`HammingOutcome::DoubleError`] the returned data is best-effort and
    /// must not be trusted.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != self.codeword_len()`.
    pub fn decode(&self, cw: &[u8]) -> (Vec<u8>, HammingOutcome) {
        assert_eq!(cw.len(), self.codeword_len(), "codeword length mismatch");
        let mut cw = cw.to_vec();
        // Syndrome: XOR of positions whose parity group fails.
        let mut syndrome = 0usize;
        for j in 0..self.r {
            let p = 1usize << j;
            let mut parity = 0u8;
            for (pos, cw_bit) in cw.iter().enumerate().skip(1) {
                if pos & p != 0 {
                    parity ^= cw_bit;
                }
            }
            if parity != 0 {
                syndrome |= p;
            }
        }
        let overall = cw.iter().fold(0u8, |a, &b| a ^ b);
        let outcome = self.apply_syndrome(&mut cw, syndrome, overall);
        (self.extract_data(&cw), outcome)
    }

    /// Decodes a batch of codewords, one `(data, outcome)` pair per lane —
    /// a convenience wrapper over [`Hamming::decode_batch_into`]. Results
    /// are bitwise identical to mapping [`Hamming::decode`] over the batch
    /// (asserted by the differential suite in `tests/batch_differential.rs`).
    ///
    /// # Panics
    ///
    /// Panics if any codeword's length differs from `codeword_len()`.
    pub fn decode_batch(&self, cws: &[&[u8]]) -> Vec<(Vec<u8>, HammingOutcome)> {
        let mut data = Vec::new();
        let mut outcomes = Vec::new();
        self.decode_batch_into(cws, &mut data, &mut outcomes);
        data.chunks_exact(self.k)
            .map(<[u8]>::to_vec)
            .zip(outcomes)
            .collect()
    }

    /// Flat-output core of [`Hamming::decode_batch`]: appends `data_len()`
    /// recovered bits per lane to `data` (one contiguous row per codeword)
    /// and one [`HammingOutcome`] per lane to `outcomes`. Reusing the two
    /// buffers across calls makes the decode cost purely per-batch — no
    /// per-lane allocation — which is how the fault-model decode ladders
    /// and the `ecc_batch_decode` perf scenario drive it.
    ///
    /// Syndromes are table-free and word-parallel: each lane's 0/1 bytes
    /// are gathered into `u64` bit words eight bytes per multiply (the
    /// gather constant places every byte's LSB at a distinct product
    /// exponent, so the multiply is carry-free and exact), every parity
    /// group folds to one bit via mask + popcount, and clean lanes copy
    /// data bits through a position table built once per batch — no
    /// per-bit branching, no codeword copy.
    ///
    /// # Panics
    ///
    /// Panics if any codeword's length differs from `codeword_len()`.
    pub fn decode_batch_into(
        &self,
        cws: &[&[u8]],
        data: &mut Vec<u8>,
        outcomes: &mut Vec<HammingOutcome>,
    ) {
        let n = self.codeword_len();
        let words = n.div_ceil(64);
        // Per-batch tables: parity-group masks (group j covers every
        // position with bit j set, exactly as in `decode`) and the
        // non-power-of-two data positions.
        let mut masks = vec![0u64; self.r * words];
        for pos in 1..n {
            for j in 0..self.r {
                if pos & (1usize << j) != 0 {
                    masks[j * words + (pos >> 6)] |= 1u64 << (pos & 63);
                }
            }
        }
        let data_pos: Vec<u32> = (1..n as u32).filter(|p| !p.is_power_of_two()).collect();
        data.reserve(self.k * cws.len());
        outcomes.reserve(cws.len());
        let mut w = vec![0u64; words];
        for cw in cws {
            assert_eq!(cw.len(), n, "codeword length mismatch");
            w.iter_mut().for_each(|x| *x = 0);
            // Gather the one-bit-per-byte codeword into packed bit words.
            let mut chunks = cw.chunks_exact(8);
            for (i, ch) in chunks.by_ref().enumerate() {
                let x = u64::from_le_bytes(ch.try_into().expect("chunk is 8 bytes"));
                debug_assert!(x & !0x0101_0101_0101_0101 == 0, "bits must be 0 or 1");
                let byte = x.wrapping_mul(0x0102_0408_1020_4080) >> 56;
                w[i >> 3] |= byte << ((i & 7) * 8);
            }
            let base = n & !7;
            for (i, &b) in chunks.remainder().iter().enumerate() {
                debug_assert!(b <= 1, "bits must be 0 or 1");
                let pos = base + i;
                w[pos >> 6] |= u64::from(b) << (pos & 63);
            }
            // Overall parity plus one mask-and-popcount fold per group.
            let overall = w.iter().fold(0u32, |a, x| a + x.count_ones()) & 1;
            let mut syndrome = 0usize;
            for j in 0..self.r {
                let m = &masks[j * words..(j + 1) * words];
                let par = w
                    .iter()
                    .zip(m)
                    .fold(0u32, |a, (x, mm)| a + (x & mm).count_ones())
                    & 1;
                syndrome |= (par as usize) << j;
            }
            if syndrome == 0 && overall == 0 {
                // Clean fast path: gather data bits straight off the input.
                data.extend(data_pos.iter().map(|&p| cw[p as usize]));
                outcomes.push(HammingOutcome::Clean);
                continue;
            }
            let mut cw = cw.to_vec();
            let outcome = self.apply_syndrome(&mut cw, syndrome, overall as u8);
            data.extend_from_slice(&self.extract_data(&cw));
            outcomes.push(outcome);
        }
    }

    /// Classifies a computed `(syndrome, overall)` pair and applies the
    /// single-bit fix in place — the shared back half of [`Hamming::decode`]
    /// and [`Hamming::decode_batch`].
    fn apply_syndrome(&self, cw: &mut [u8], syndrome: usize, overall: u8) -> HammingOutcome {
        match (syndrome, overall) {
            (0, 0) => HammingOutcome::Clean,
            (0, _) => {
                cw[0] ^= 1;
                HammingOutcome::ParityCorrected
            }
            (s, 1) if s < cw.len() => {
                cw[s] ^= 1;
                HammingOutcome::Corrected(s)
            }
            _ => HammingOutcome::DoubleError,
        }
    }

    /// Pulls the data bits out of a (possibly corrected) codeword.
    fn extract_data(&self, cw: &[u8]) -> Vec<u8> {
        let mut data = Vec::with_capacity(self.k);
        for (pos, &b) in cw.iter().enumerate().skip(1) {
            if !pos.is_power_of_two() {
                data.push(b);
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(k: usize, seed: u64) -> Vec<u8> {
        (0..k)
            .map(|i| (((i as u64).wrapping_mul(seed + 7) >> 3) & 1) as u8)
            .collect()
    }

    #[test]
    fn geometry_72_64() {
        let h = Hamming::secded_72_64();
        assert_eq!(h.data_len(), 64);
        assert_eq!(h.codeword_len(), 72);
        assert!((h.overhead() - 8.0 / 72.0).abs() < 1e-12);
    }

    #[test]
    fn clean_roundtrip() {
        for k in [4usize, 11, 26, 57, 64, 120] {
            let h = Hamming::new(k);
            let data = pattern(k, k as u64);
            let cw = h.encode(&data);
            let (out, outcome) = h.decode(&cw);
            assert_eq!(outcome, HammingOutcome::Clean, "k={k}");
            assert_eq!(out, data, "k={k}");
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let h = Hamming::new(64);
        let data = pattern(64, 3);
        let cw = h.encode(&data);
        for i in 0..h.codeword_len() {
            let mut bad = cw.clone();
            bad[i] ^= 1;
            let (out, outcome) = h.decode(&bad);
            match outcome {
                HammingOutcome::Corrected(pos) => assert_eq!(pos, i),
                HammingOutcome::ParityCorrected => assert_eq!(i, 0),
                other => panic!("bit {i}: unexpected outcome {other:?}"),
            }
            assert_eq!(out, data, "bit {i} not corrected");
        }
    }

    #[test]
    fn every_double_bit_error_is_detected() {
        let h = Hamming::new(26);
        let data = pattern(26, 9);
        let cw = h.encode(&data);
        let n = h.codeword_len();
        for i in 0..n {
            for j in (i + 1)..n {
                let mut bad = cw.clone();
                bad[i] ^= 1;
                bad[j] ^= 1;
                let (_, outcome) = h.decode(&bad);
                assert_eq!(outcome, HammingOutcome::DoubleError, "bits {i},{j}");
            }
        }
    }

    #[test]
    fn all_zero_and_all_one_data() {
        let h = Hamming::secded_72_64();
        for bit in [0u8, 1] {
            let data = vec![bit; 64];
            let cw = h.encode(&data);
            let (out, outcome) = h.decode(&cw);
            assert_eq!(outcome, HammingOutcome::Clean);
            assert_eq!(out, data);
        }
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn wrong_data_length_panics() {
        Hamming::new(8).encode(&[1, 0, 1]);
    }

    #[test]
    fn batch_decode_matches_scalar_across_chunks() {
        // 130 codewords (> 2 full lanes): clean, single-error, parity-error
        // and double-error lanes interleaved.
        let h = Hamming::secded_72_64();
        let mut cws: Vec<Vec<u8>> = Vec::new();
        for i in 0..130usize {
            let mut cw = h.encode(&pattern(64, i as u64));
            match i % 4 {
                1 => cw[(i * 7) % 72] ^= 1,
                2 => cw[0] ^= 1,
                3 => {
                    cw[5] ^= 1;
                    cw[(11 + i) % 72] ^= 1;
                }
                _ => {}
            }
            cws.push(cw);
        }
        let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
        let batch = h.decode_batch(&refs);
        assert_eq!(batch.len(), cws.len());
        for (i, cw) in cws.iter().enumerate() {
            assert_eq!(batch[i], h.decode(cw), "lane {i}");
        }
    }

    #[test]
    fn decode_batch_into_appends_flat_rows() {
        let h = Hamming::secded_72_64();
        let cw0 = h.encode(&pattern(64, 1));
        let mut cw1 = h.encode(&pattern(64, 2));
        cw1[9] ^= 1;
        // Pre-existing buffer contents must survive: the API appends.
        let mut data = vec![9u8];
        let mut outcomes = vec![HammingOutcome::DoubleError];
        h.decode_batch_into(&[&cw0, &cw1], &mut data, &mut outcomes);
        assert_eq!(data.len(), 1 + 2 * 64);
        assert_eq!(data[0], 9);
        assert_eq!(&data[1..65], &pattern(64, 1)[..]);
        assert_eq!(&data[65..], &pattern(64, 2)[..]);
        assert_eq!(
            outcomes,
            vec![
                HammingOutcome::DoubleError,
                HammingOutcome::Clean,
                HammingOutcome::Corrected(9),
            ]
        );
    }

    #[test]
    fn batch_decode_empty_and_partial_chunk() {
        let h = Hamming::new(26);
        assert!(h.decode_batch(&[]).is_empty());
        let cw = h.encode(&pattern(26, 5));
        let batch = h.decode_batch(&[cw.as_slice()]);
        assert_eq!(batch[0], h.decode(&cw));
    }

    #[test]
    fn overhead_shrinks_with_word_size() {
        // The Dolinar direction even within Hamming: bigger words,
        // proportionally fewer check bits.
        let small = Hamming::new(8).overhead();
        let medium = Hamming::new(64).overhead();
        let large = Hamming::new(512).overhead();
        assert!(small > medium && medium > large);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_any_data(data in proptest::collection::vec(0u8..=1, 64)) {
            let h = Hamming::secded_72_64();
            let cw = h.encode(&data);
            let (out, outcome) = h.decode(&cw);
            prop_assert_eq!(outcome, HammingOutcome::Clean);
            prop_assert_eq!(out, data);
        }

        #[test]
        fn single_error_always_corrected(
            data in proptest::collection::vec(0u8..=1, 64),
            pos in 0usize..72,
        ) {
            let h = Hamming::secded_72_64();
            let mut cw = h.encode(&data);
            cw[pos] ^= 1;
            let (out, outcome) = h.decode(&cw);
            prop_assert_ne!(outcome, HammingOutcome::DoubleError);
            prop_assert_ne!(outcome, HammingOutcome::Clean);
            prop_assert_eq!(out, data);
        }

        #[test]
        fn double_error_always_detected(
            data in proptest::collection::vec(0u8..=1, 64),
            a in 0usize..72,
            b in 0usize..72,
        ) {
            prop_assume!(a != b);
            let h = Hamming::secded_72_64();
            let mut cw = h.encode(&data);
            cw[a] ^= 1;
            cw[b] ^= 1;
            let (_, outcome) = h.decode(&cw);
            prop_assert_eq!(outcome, HammingOutcome::DoubleError);
        }
    }
}
