//! # `mrm-ecc` — retention-aware error correction
//!
//! §4 of the MRM paper ("Retention-aware error correction") observes that a
//! block-oriented MRM interface permits error-correcting codes over *larger
//! code words with less overhead* (citing Dolinar et al. on code performance
//! as a function of block size), and that the scrub/refresh schedule and the
//! ECC strength jointly determine how close to the retention target data can
//! safely be read.
//!
//! This crate provides the real machinery to evaluate that design space:
//!
//! * [`gf`] — GF(2^m) arithmetic via log/antilog tables.
//! * [`hamming`] — SECDED extended Hamming codes (the DRAM-style baseline,
//!   e.g. (72,64)).
//! * [`bch`] — binary BCH codes with Berlekamp–Massey decoding, including
//!   shortened codes, for the large-block MRM design points.
//! * [`analysis`] — RBER→UBER math (binomial tails), iso-reliability
//!   overhead curves across codeword sizes, and scrub-interval solving.
//! * [`interleave`] — burst-error interleaving across dies/channels.

pub mod analysis;
pub mod bch;
pub mod gf;
pub mod hamming;
pub mod interleave;

pub use bch::Bch;
pub use gf::Gf;
pub use hamming::{Hamming, HammingOutcome};
