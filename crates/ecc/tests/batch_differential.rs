//! Seeded differential oracle: batched decode vs the scalar path.
//!
//! `Hamming::decode_batch` (bit-sliced syndrome folds) and
//! `Bch::decode_batch` (packed Horner syndrome front-end) are pure
//! optimizations — for every input, data *and* outcome must be bitwise
//! identical to mapping the scalar decoder over the batch. This suite
//! replays seeded random error patterns from zero flips up to and past the
//! correction budget, across chunk boundaries (the SECDED bit-slicer works
//! in lanes of 64) and across code geometries, and asserts exact equality.

use mrm_ecc::bch::Bch;
use mrm_ecc::hamming::Hamming;
use mrm_sim::rng::SimRng;

/// Flips `flips` distinct positions of `cw`, chosen by `rng`.
fn flip(cw: &mut [u8], flips: usize, rng: &mut SimRng) {
    let mut chosen: Vec<usize> = Vec::with_capacity(flips);
    while chosen.len() < flips.min(cw.len()) {
        let i = rng.gen_range_u64(cw.len() as u64) as usize;
        if !chosen.contains(&i) {
            chosen.push(i);
            cw[i] ^= 1;
        }
    }
}

fn random_bits(n: usize, rng: &mut SimRng) -> Vec<u8> {
    (0..n).map(|_| u8::from(rng.gen_bool(0.5))).collect()
}

#[test]
fn secded_batch_is_bitwise_identical_to_scalar() {
    for (k, seed) in [(64usize, 11u64), (26, 12), (120, 13)] {
        let h = Hamming::new(k);
        let mut rng = SimRng::seed_from(seed);
        // 200 lanes: 3 full bit-slice chunks + a partial one. Error weight
        // cycles 0..=3 — clean, corrected, and past-budget double errors.
        let cws: Vec<Vec<u8>> = (0..200usize)
            .map(|i| {
                let mut cw = h.encode(&random_bits(k, &mut rng));
                flip(&mut cw, i % 4, &mut rng);
                cw
            })
            .collect();
        let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
        let batch = h.decode_batch(&refs);
        assert_eq!(batch.len(), cws.len());
        for (i, cw) in cws.iter().enumerate() {
            let scalar = h.decode(cw);
            assert_eq!(batch[i], scalar, "k={k} lane {i}");
        }
    }
}

#[test]
fn secded_batch_all_clean_chunk_early_exit_matches() {
    let h = Hamming::secded_72_64();
    let mut rng = SimRng::seed_from(99);
    let cws: Vec<Vec<u8>> = (0..128)
        .map(|_| h.encode(&random_bits(64, &mut rng)))
        .collect();
    let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
    for (i, got) in h.decode_batch(&refs).into_iter().enumerate() {
        assert_eq!(got, h.decode(&cws[i]), "clean lane {i}");
    }
}

#[test]
fn bch_batch_is_bitwise_identical_to_scalar() {
    // The fault model's production geometry (t=2 over 512 data bits,
    // GF(2^10)) plus a small and a high-t code.
    let codes = [
        Bch::with_data_len(10, 2, 512),
        Bch::new(6, 3),
        Bch::with_data_len(10, 4, 256),
    ];
    for (ci, code) in codes.iter().enumerate() {
        let mut rng = SimRng::seed_from(0xBC_u64 + ci as u64);
        // Error weight sweeps 0..=t+2: through the budget and past it,
        // where the decoder must fail identically on both paths.
        let cws: Vec<Vec<u8>> = (0..60usize)
            .map(|i| {
                let mut cw = code.encode(&random_bits(code.k(), &mut rng));
                flip(&mut cw, i % (code.t() + 3), &mut rng);
                cw
            })
            .collect();
        let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
        let batch = code.decode_batch(&refs);
        for (i, cw) in cws.iter().enumerate() {
            let scalar = code.decode(cw);
            assert_eq!(batch[i], scalar, "code {ci} lane {i}");
        }
    }
}

#[test]
fn bch_batch_clean_dominated_mix_matches() {
    // The shape `mrm-faults` decode ladders see: overwhelmingly clean reads
    // with a sparse sprinkle of dirty codewords.
    let code = Bch::with_data_len(10, 2, 512);
    let mut rng = SimRng::seed_from(7777);
    let cws: Vec<Vec<u8>> = (0..256usize)
        .map(|i| {
            let mut cw = code.encode(&random_bits(code.k(), &mut rng));
            if i % 32 == 5 {
                flip(&mut cw, 1 + i % 2, &mut rng);
            }
            cw
        })
        .collect();
    let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
    let batch = code.decode_batch(&refs);
    let mut clean = 0;
    for (i, cw) in cws.iter().enumerate() {
        let scalar = code.decode(cw);
        if matches!(&scalar, Ok((_, 0))) {
            clean += 1;
        }
        assert_eq!(batch[i], scalar, "lane {i}");
    }
    assert!(clean >= 240, "mix should be clean-dominated, got {clean}");
}

#[test]
fn empty_batch_is_a_noop_not_a_panic() {
    // Zero-length batches reach the decoders from drained fault ladders;
    // `decode_batch_into` must append nothing and leave reused buffers
    // untouched, and `decode_batch` must return an empty vec.
    use mrm_ecc::hamming::HammingOutcome;
    let h = Hamming::secded_72_64();
    let mut data = vec![7u8, 7, 7];
    let mut outcomes = vec![HammingOutcome::DoubleError];
    h.decode_batch_into(&[], &mut data, &mut outcomes);
    assert_eq!(
        data,
        vec![7u8, 7, 7],
        "reused data buffer must be preserved"
    );
    assert_eq!(outcomes, vec![HammingOutcome::DoubleError]);
    assert!(h.decode_batch(&[]).is_empty());

    let bch = Bch::with_data_len(10, 2, 256);
    assert!(bch.decode_batch(&[]).is_empty());
}
