//! Adversarial ECC coverage: encode → inject-k-errors → decode, across the
//! whole crate surface.
//!
//! The in-module proptests pin the happy paths; this suite attacks the
//! guarantees at their edges: correction exactly at the budget `t`,
//! behaviour one error *past* the budget (detect where the code guarantees
//! it, never silently hand back an invalid word where it does not), field
//! axioms in `gf` under random elements, and burst splitting through the
//! interleaver for arbitrary geometry.

use mrm_ecc::bch::Bch;
use mrm_ecc::gf::Gf;
use mrm_ecc::hamming::{Hamming, HammingOutcome};
use mrm_ecc::interleave::Interleaver;
use proptest::prelude::*;

/// Deterministic bit stream for dependent-size inputs (proptest strategies
/// here have fixed shapes, so variable-length payloads derive from a seed).
fn bits_from_seed(n: usize, mut seed: u64) -> Vec<u8> {
    (0..n)
        .map(|_| {
            seed = seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            ((seed >> 33) & 1) as u8
        })
        .collect()
}

fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // ---- Hamming SECDED at arbitrary data widths ------------------------

    #[test]
    fn hamming_corrects_one_error_at_any_width(
        width in 1usize..160,
        seed in 0u64..u64::MAX,
        pos_raw in 0u64..u64::MAX,
    ) {
        let code = Hamming::new(width);
        let data = bits_from_seed(width, seed);
        let mut cw = code.encode(&data);
        let pos = (pos_raw % cw.len() as u64) as usize;
        cw[pos] ^= 1;
        let (out, outcome) = code.decode(&cw);
        prop_assert_ne!(outcome, HammingOutcome::Clean);
        prop_assert_ne!(outcome, HammingOutcome::DoubleError);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn hamming_detects_two_errors_at_any_width(
        width in 1usize..160,
        seed in 0u64..u64::MAX,
        a_raw in 0u64..u64::MAX,
        b_raw in 0u64..u64::MAX,
    ) {
        let code = Hamming::new(width);
        let data = bits_from_seed(width, seed);
        let mut cw = code.encode(&data);
        let n = cw.len() as u64;
        let (a, b) = ((a_raw % n) as usize, (b_raw % n) as usize);
        prop_assume!(a != b);
        cw[a] ^= 1;
        cw[b] ^= 1;
        // t+1 = 2 errors: SECDED *guarantees* detection.
        let (_, outcome) = code.decode(&cw);
        prop_assert_eq!(outcome, HammingOutcome::DoubleError);
    }

    // ---- BCH at and past the correction budget --------------------------

    #[test]
    fn bch_corrects_exactly_t_errors_anywhere(
        seed in 0u64..u64::MAX,
        errs in proptest::collection::btree_set(0usize..255, 3),
    ) {
        // Exactly t errors (not "up to"): the decoder must run a full
        // Berlekamp–Massey + Chien pass at the edge of its budget.
        let code = Bch::new(8, 3);
        let data = bits_from_seed(code.k(), seed);
        let mut cw = code.encode(&data);
        for &p in &errs {
            cw[p] ^= 1;
        }
        let (out, fixed) = code.decode(&cw).unwrap();
        prop_assert_eq!(fixed, 3);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn shortened_bch_corrects_exactly_t_errors_anywhere(
        seed in 0u64..u64::MAX,
        errs in proptest::collection::btree_set(0usize..532, 2),
    ) {
        // The controller-facing geometry: BCH t=2 over 512 data bits
        // (n = 532 via GF(2^10)), exactly the code the fault layer models.
        let code = Bch::with_data_len(10, 2, 512);
        prop_assert_eq!(code.n(), 532);
        let data = bits_from_seed(512, seed);
        let mut cw = code.encode(&data);
        for &p in &errs {
            cw[p] ^= 1;
        }
        let (out, fixed) = code.decode(&cw).unwrap();
        prop_assert_eq!(fixed, 2);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn bch_is_sound_one_error_past_the_budget(
        seed in 0u64..u64::MAX,
        errs in proptest::collection::btree_set(0usize..255, 4),
    ) {
        // t+1 distinct errors exceed the guarantee. The decoder must either
        // report TooManyErrors, or miscorrect *soundly*: land on a valid
        // codeword within distance t of the received word — and since the
        // received word is distance t+1 > t from the original, a "success"
        // can never silently return the original data unchanged.
        let code = Bch::new(8, 3);
        let data = bits_from_seed(code.k(), seed);
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        for &p in &errs {
            bad[p] ^= 1;
        }
        match code.decode(&bad) {
            Err(_) => {} // detected: the common, desired outcome
            Ok((out, fixed)) => {
                prop_assert!(fixed <= code.t());
                prop_assert_ne!(out.clone(), data);
                // The word it decoded to is a real codeword near `bad`.
                let recoded = code.encode(&out);
                prop_assert_eq!(hamming_distance(&recoded, &bad), fixed);
                let (back, zero) = code.decode(&recoded).unwrap();
                prop_assert_eq!(zero, 0);
                prop_assert_eq!(back, out);
            }
        }
    }

    // ---- GF(2^m) field axioms under random elements ---------------------

    #[test]
    fn gf_axioms_hold_for_random_elements(
        m in 3u32..=12,
        a_raw in 0u32..u32::MAX,
        b_raw in 0u32..u32::MAX,
        c_raw in 0u32..u32::MAX,
    ) {
        let gf = Gf::new(m);
        let order = gf.order() as u32;
        let a = (a_raw % (order + 1)) as u16;
        let b = (b_raw % (order + 1)) as u16;
        let c = (c_raw % (order + 1)) as u16;
        // Commutativity and associativity of multiplication.
        prop_assert_eq!(gf.mul(a, b), gf.mul(b, a));
        prop_assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
        // Distributivity over XOR-addition.
        prop_assert_eq!(
            gf.mul(a, gf.add(b, c)),
            gf.add(gf.mul(a, b), gf.mul(a, c))
        );
        // Identities and the zero annihilator.
        prop_assert_eq!(gf.mul(a, 1), a);
        prop_assert_eq!(gf.mul(a, 0), 0);
        if a != 0 {
            // Inverse round-trips and division agrees with it.
            prop_assert_eq!(gf.mul(a, gf.inv(a)), 1);
            prop_assert_eq!(gf.div(b, a), gf.mul(b, gf.inv(a)));
            // log/exp consistency.
            prop_assert_eq!(gf.alpha_pow(gf.log_of(a) as i64), a);
        }
    }

    #[test]
    fn gf_pow_matches_repeated_multiplication(
        m in 3u32..=12,
        a_raw in 0u32..u32::MAX,
        e in 0i64..50,
    ) {
        let gf = Gf::new(m);
        let a = (a_raw % gf.order() as u32) as u16 + 1; // non-zero
        let mut acc = 1u16;
        for _ in 0..e {
            acc = gf.mul(acc, a);
        }
        prop_assert_eq!(gf.pow(a, e), acc);
        // Negative exponents are inverses of positive ones.
        prop_assert_eq!(gf.mul(gf.pow(a, e), gf.pow(a, -e)), 1);
        // α's multiplicative order is the full group order.
        prop_assert_eq!(gf.alpha_pow(gf.order() as i64), 1);
    }

    #[test]
    fn gf_poly_eval_matches_power_sum(
        m in 3u32..=10,
        coeffs in proptest::collection::vec(0u32..u32::MAX, 0..8),
        x_raw in 0u32..u32::MAX,
    ) {
        let gf = Gf::new(m);
        let order = gf.order() as u32;
        let coeffs: Vec<u16> =
            coeffs.iter().map(|&c| (c % (order + 1)) as u16).collect();
        let x = (x_raw % (order + 1)) as u16;
        // Naive Σ c_d · x^d against Horner.
        let mut expected = 0u16;
        for (d, &c) in coeffs.iter().enumerate() {
            expected = gf.add(expected, gf.mul(c, gf.pow(x, d as i64)));
        }
        prop_assert_eq!(gf.poly_eval(&coeffs, x), expected);
    }

    // ---- Interleaver burst splitting at arbitrary geometry --------------

    #[test]
    fn interleaver_roundtrips_any_geometry(
        depth in 1usize..9,
        len in 1usize..65,
        seed in 0u64..u64::MAX,
    ) {
        let il = Interleaver::new(depth, len);
        let cws: Vec<Vec<u8>> = (0..depth)
            .map(|j| bits_from_seed(len, seed.wrapping_add(j as u64)))
            .collect();
        let frame = il.interleave(&cws);
        prop_assert_eq!(frame.len(), depth * len);
        prop_assert_eq!(il.deinterleave(&frame), cws);
    }

    #[test]
    fn interleaver_bounds_burst_errors_per_codeword(
        depth in 1usize..9,
        len in 8usize..65,
        seed in 0u64..u64::MAX,
        start_raw in 0u64..u64::MAX,
        burst_raw in 0u64..u64::MAX,
    ) {
        let il = Interleaver::new(depth, len);
        let cws: Vec<Vec<u8>> = (0..depth)
            .map(|j| bits_from_seed(len, seed.wrapping_add(j as u64)))
            .collect();
        let mut frame = il.interleave(&cws);
        let total = frame.len() as u64;
        let burst = 1 + (burst_raw % total.min(24)) as usize;
        let start = (start_raw % (total - burst as u64 + 1)) as usize;
        for bit in frame.iter_mut().skip(start).take(burst) {
            *bit ^= 1;
        }
        let out = il.deinterleave(&frame);
        let bound = il.errors_per_codeword(burst);
        let mut spread = 0usize;
        for (j, cw) in out.iter().enumerate() {
            let errors = hamming_distance(cw, &cws[j]);
            prop_assert!(
                errors <= bound,
                "codeword {} took {} errors from a {}-bit burst (bound {})",
                j, errors, burst, bound
            );
            spread += errors;
        }
        // No error vanishes in transit: the burst lands somewhere.
        prop_assert_eq!(spread, burst);
    }

    #[test]
    fn interleaved_bch_survives_bursts_up_to_depth_times_t(
        seed in 0u64..u64::MAX,
        start_raw in 0u64..u64::MAX,
        burst_raw in 0u64..u64::MAX,
    ) {
        // depth·t is the design point the controller relies on: a burst of
        // that length leaves each t=2 codeword exactly at its budget.
        let code = Bch::new(6, 2);
        let depth = 8usize;
        let il = Interleaver::new(depth, code.n());
        let data: Vec<Vec<u8>> = (0..depth)
            .map(|j| bits_from_seed(code.k(), seed.wrapping_add(j as u64)))
            .collect();
        let cws: Vec<Vec<u8>> = data.iter().map(|d| code.encode(d)).collect();
        let mut frame = il.interleave(&cws);
        let burst = 1 + (burst_raw % (depth as u64 * code.t() as u64)) as usize;
        let start = (start_raw % (frame.len() - burst + 1) as u64) as usize;
        for bit in frame.iter_mut().skip(start).take(burst) {
            *bit ^= 1;
        }
        for (j, cw) in il.deinterleave(&frame).iter().enumerate() {
            let (out, _) = code.decode(cw).unwrap_or_else(|e| {
                panic!("codeword {j} failed under a {burst}-bit burst: {e}")
            });
            prop_assert_eq!(&out, &data[j], "codeword {} corrupted", j);
        }
    }
}
