//! The fuzzer's private random stream.
//!
//! A bare splitmix64 walk — deliberately *not* [`mrm_sim::rng::SimRng`]:
//! the simulation's xoshiro stream is a determinism-audited resource (lint
//! rules D3/D10 confine who may draw from it), while the fuzzer's stream
//! exists only to pick mutations and must never be entangled with
//! simulated randomness. splitmix64 is a bijective mix of a counter, so
//! every `(seed, iteration)` pair names one reproducible draw sequence —
//! the property crash artifacts rely on to replay.
//!
//! [`FuzzRng::lean_u64`] is the *extreme-value mutation pool*: instead of
//! uniform draws (which essentially never produce `0`, `u64::MAX`, or a
//! power-of-two boundary), a third of draws come from a table of the
//! values integer-arithmetic bugs live at — `0`, `1`, `u64::MAX`, the
//! `i64`/`u32` horizons, and off-by-one neighbours of each.

/// splitmix64 step (same constants as `mrm_core`'s deterministic treap
/// priorities — the standard Steele/Lea/Burak mix).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds two words into a fresh splitmix64 seed. Used to derive the
/// per-iteration stream from `(campaign_seed, iteration)`.
pub fn mix2(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(32) ^ 0x51AF_F00D_CAFE_D00D;
    splitmix64(&mut s)
}

/// Boundary values that integer bugs cluster around. Each entry is drawn
/// with its ±1 neighbours, so the pool covers both sides of every edge.
const EXTREMES: [u64; 12] = [
    0,
    1,
    2,
    7,
    63,
    64,
    0xFF,        // u8::MAX
    0xFFFF,      // u16::MAX
    0xFFFF_FFFF, // u32::MAX
    1 << 62,
    0x7FFF_FFFF_FFFF_FFFF, // i64::MAX
    u64::MAX,
];

/// A deterministic splitmix64 stream with an extreme-value bias.
#[derive(Clone, Debug)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform draw in `[0, bound)` via the multiply-shift reduction
    /// (bias is irrelevant for mutation choices; reproducibility is not).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is an empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli draw: true once per `denom` draws on average.
    pub fn one_in(&mut self, denom: u64) -> bool {
        self.below(denom.max(1)) == 0
    }

    /// A value from the extreme-value mutation pool: one third of draws
    /// come from [`EXTREMES`] (possibly nudged ±1 to land on both sides
    /// of each boundary), the rest are uniform. Targets route every
    /// magnitude-like operand through this so lengths, deadlines and ids
    /// visit `0`, `u64::MAX`, and the power-of-two horizons often.
    pub fn lean_u64(&mut self) -> u64 {
        if self.below(3) == 0 {
            let base = EXTREMES[self.index(EXTREMES.len())];
            match self.below(4) {
                0 => base.wrapping_add(1),
                1 => base.wrapping_sub(1),
                _ => base,
            }
        } else {
            self.next_u64()
        }
    }

    /// [`FuzzRng::lean_u64`] reduced into `[0, bound)` — keeps the
    /// boundary bias (0, 1, bound−1 are frequent) while staying in range.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn lean_below(&mut self, bound: u64) -> u64 {
        let v = self.lean_u64();
        if v < bound {
            v
        } else {
            // Wrap extremes onto the range edges rather than uniformly:
            // u64::MAX maps to bound−1, keeping the "largest legal value"
            // case hot.
            match self.below(2) {
                0 => bound - 1,
                _ => v % bound,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FuzzRng::new(0xF00D);
        let mut b = FuzzRng::new(0xF00D);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mix2_separates_iterations() {
        let a = mix2(42, 0);
        let b = mix2(42, 1);
        let c = mix2(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And is stable: artifacts depend on this mapping never changing.
        assert_eq!(mix2(42, 0), a);
    }

    #[test]
    fn lean_hits_extremes_often() {
        let mut r = FuzzRng::new(7);
        let mut zeros = 0;
        let mut maxes = 0;
        for _ in 0..10_000 {
            match r.lean_u64() {
                0 => zeros += 1,
                u64::MAX => maxes += 1,
                _ => {}
            }
        }
        // Uniform draws would essentially never produce either value.
        assert!(zeros > 20, "zeros {zeros}");
        assert!(maxes > 20, "maxes {maxes}");
    }

    #[test]
    fn lean_below_in_range_and_edge_heavy() {
        let mut r = FuzzRng::new(9);
        let bound = 100u64;
        let mut edge = 0;
        for _ in 0..10_000 {
            let v = r.lean_below(bound);
            assert!(v < bound);
            if v == 0 || v == bound - 1 {
                edge += 1;
            }
        }
        assert!(edge > 200, "edge draws {edge}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = FuzzRng::new(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }
}
