//! `mrm-fuzz` — run, list, and replay differential fuzz campaigns.
//!
//! ```text
//! mrm-fuzz list
//! mrm-fuzz run --target <name|all> [--seed N] [--iters N] [--artifacts DIR] [--sabotage]
//! mrm-fuzz replay <artifact.crash.txt> [--sabotage]
//! ```
//!
//! `run` exits 1 if any campaign produced a crash artifact; `replay`
//! exits 1 if the artifact fails to reproduce its recorded failure.
//! `--sabotage` enables each target's documented broken-model mode and
//! exists so the harness can be self-tested end to end (CI never sets
//! it).

use mrm_fuzz::targets::{campaign_by_name, replay_artifact, TARGET_NAMES};
use std::path::PathBuf;
use std::process::exit;

const DEFAULT_SEED: u64 = 0x4D52_4D00_2025_0001; // "MRM", fixed for CI
const DEFAULT_ITERS: u64 = 1_000;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_u64(text: &str, flag: &str) -> u64 {
    let parsed = if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: bad value {text:?} for {flag}: {e}");
            exit(2);
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: mrm-fuzz list");
    eprintln!(
        "       mrm-fuzz run --target <name|all> [--seed N] [--iters N] \
         [--artifacts DIR] [--sabotage]"
    );
    eprintln!("       mrm-fuzz replay <artifact.crash.txt> [--sabotage]");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sabotage = args.iter().any(|a| a == "--sabotage");
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in TARGET_NAMES {
                println!("{name}");
            }
        }
        Some("run") => {
            let which = flag_value(&args, "--target").unwrap_or_else(|| "all".to_string());
            let seed =
                flag_value(&args, "--seed").map_or(DEFAULT_SEED, |v| parse_u64(&v, "--seed"));
            let iters =
                flag_value(&args, "--iters").map_or(DEFAULT_ITERS, |v| parse_u64(&v, "--iters"));
            let artifacts = PathBuf::from(
                flag_value(&args, "--artifacts")
                    .unwrap_or_else(|| "target/fuzz-artifacts".to_string()),
            );
            let names: Vec<&str> = if which == "all" {
                TARGET_NAMES.to_vec()
            } else {
                vec![which.as_str()]
            };
            let mut failed = false;
            for name in names {
                print!("fuzz {name}: seed 0x{seed:016x}, {iters} iterations ... ");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                let mut progress = |_done: u64| {};
                match campaign_by_name(name, sabotage, seed, iters, &artifacts, &mut progress) {
                    Ok(outcome) => match outcome.artifact {
                        None => println!("clean"),
                        Some(path) => {
                            failed = true;
                            println!("FAILED");
                            println!("  failure: {}", outcome.failure.unwrap_or_default());
                            println!("  artifact: {}", path.display());
                            println!(
                                "  replay:   cargo run -p mrm-fuzz -- replay {}",
                                path.display()
                            );
                        }
                    },
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(2);
                    }
                }
            }
            exit(i32::from(failed));
        }
        Some("replay") => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                usage();
            };
            match replay_artifact(PathBuf::from(path).as_path(), sabotage) {
                Ok(outcome) => {
                    match &outcome.failure {
                        None => println!("did not reproduce: trace runs clean"),
                        Some(f) => println!("reproduced failure: {f}"),
                    }
                    if outcome.matches {
                        println!("matches recorded failure: yes");
                        exit(0);
                    }
                    println!("matches recorded failure: NO");
                    exit(1);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    exit(2);
                }
            }
        }
        _ => usage(),
    }
}
