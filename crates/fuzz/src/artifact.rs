//! Crash artifacts: a small text file that names a failure by its
//! derivation coordinates.
//!
//! Because every input is a pure function of `(target, seed, iteration)`
//! (see [`crate::engine::derive_input`]), the artifact does not need to
//! serialize the trace to be replayable — the header alone suffices. The
//! shrunk trace is still embedded (as `Debug` lines) so a human can read
//! the minimal failing script without running anything.
//!
//! Format (line-oriented, `key: value` header, first line is a magic):
//!
//! ```text
//! mrm-fuzz crash artifact v1
//! target: queue
//! seed: 0x00000000000000aa
//! iteration: 1234
//! failure: step 7: pop diverged ...
//! original-len: 96
//! shrunk-len: 3
//! --- shrunk trace ---
//! Schedule { at_nanos: 0 }
//! ...
//! ```
//!
//! Newlines inside the failure message are escaped as `\n` so the header
//! stays line-oriented.

use crate::engine::Finding;
use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MAGIC: &str = "mrm-fuzz crash artifact v1";

/// The replay coordinates recovered from an artifact file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactHeader {
    pub target: String,
    pub seed: u64,
    pub iteration: u64,
    pub failure: String,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// File name for a finding: `{target}-{seed:016x}-{iteration}.crash.txt`.
pub fn artifact_name(target: &str, seed: u64, iteration: u64) -> String {
    format!("{target}-{seed:016x}-{iteration}.crash.txt")
}

/// Writes a finding to `dir` (created if missing). Returns the full path.
pub fn write_artifact<Op: Debug>(
    dir: &Path,
    target: &str,
    finding: &Finding<Op>,
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(artifact_name(target, finding.seed, finding.iteration));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{MAGIC}")?;
    writeln!(f, "target: {target}")?;
    writeln!(f, "seed: 0x{:016x}", finding.seed)?;
    writeln!(f, "iteration: {}", finding.iteration)?;
    writeln!(f, "failure: {}", escape(&finding.failure))?;
    writeln!(f, "original-len: {}", finding.original_len)?;
    writeln!(f, "shrunk-len: {}", finding.shrunk.len())?;
    writeln!(f, "--- shrunk trace ---")?;
    for op in &finding.shrunk {
        writeln!(f, "{op:?}")?;
    }
    Ok(path)
}

/// Parses the header of an artifact file. The embedded trace is
/// informational only and is not parsed — replay re-derives it.
pub fn parse_artifact(path: &Path) -> Result<ArtifactHeader, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(format!(
            "{}: not an mrm-fuzz crash artifact",
            path.display()
        ));
    }
    let mut target = None;
    let mut seed = None;
    let mut iteration = None;
    let mut failure = None;
    for line in lines {
        if line == "--- shrunk trace ---" {
            break;
        }
        let Some((key, value)) = line.split_once(": ") else {
            continue;
        };
        match key {
            "target" => target = Some(value.to_string()),
            "seed" => {
                let hex = value.strip_prefix("0x").unwrap_or(value);
                seed = Some(
                    u64::from_str_radix(hex, 16).map_err(|e| format!("bad seed {value:?}: {e}"))?,
                );
            }
            "iteration" => {
                iteration = Some(
                    value
                        .parse::<u64>()
                        .map_err(|e| format!("bad iteration: {e}"))?,
                );
            }
            "failure" => failure = Some(unescape(value)),
            _ => {}
        }
    }
    Ok(ArtifactHeader {
        target: target.ok_or("missing target")?,
        seed: seed.ok_or("missing seed")?,
        iteration: iteration.ok_or("missing iteration")?,
        failure: failure.ok_or("missing failure")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_header() {
        let dir = std::env::temp_dir().join("mrm-fuzz-artifact-test");
        let finding = Finding {
            seed: 0xDEAD_BEEF,
            iteration: 77,
            failure: "line one\nline two: with colon".to_string(),
            shrunk: vec![1u64, 2, 3],
            original_len: 42,
        };
        let path = write_artifact(&dir, "toy", &finding).expect("write");
        let header = parse_artifact(&path).expect("parse");
        assert_eq!(header.target, "toy");
        assert_eq!(header.seed, 0xDEAD_BEEF);
        assert_eq!(header.iteration, 77);
        assert_eq!(header.failure, "line one\nline two: with colon");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escape_round_trip() {
        for s in ["plain", "a\nb", "back\\slash", "mix\\n\n\\"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }

    #[test]
    fn rejects_non_artifact() {
        let dir = std::env::temp_dir().join("mrm-fuzz-artifact-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("not-an-artifact.txt");
        std::fs::write(&path, "hello\n").expect("write");
        assert!(parse_artifact(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
