//! `mrm-fuzz` — in-tree differential fuzzing for the mrm workspace.
//!
//! The workspace ships its oracles next to its optimised code: the
//! calendar queue retains [`mrm_sim::event::LegacyHeapQueue`], the pool
//! retains `LegacyVecPool`, the batched ECC paths promise bit-equality
//! with their scalar forms, the FTL and zone controller have plain-map
//! models, and the control plane has the `AuditLog` safety scan. This
//! crate turns those one-shot conformance tests into a standing
//! adversary: a seeded structured-mutation engine drives open-ended op
//! traces through implementation and oracle side by side, shrinks any
//! divergence, and records it as a crash artifact that replays forever
//! from `(target, seed, iteration)` alone.
//!
//! No registry dependencies, no coverage instrumentation, no persisted
//! corpus: determinism is the design center, matching the rest of the
//! workspace (byte-identical reports across runs at the same seed).
//!
//! Layout:
//! - [`rng`] — splitmix64 stream + extreme-value mutation pool
//! - [`engine`] — `FuzzTarget` trait, input derivation, ddmin shrinking
//! - [`artifact`] — crash-artifact read/write
//! - [`targets`] — the five differential targets (ecc, pool, queue,
//!   chaos, control), each with a documented sabotage mode used by the
//!   harness's own end-to-end tests

pub mod artifact;
pub mod engine;
pub mod rng;
pub mod targets;
