//! Control-plane target: synthetic work-item streams vs the
//! [`AuditLog`] safety scan.
//!
//! The audit log is the control plane's flight recorder, and
//! `required_drop_violations` is the REQUIRED-DURABLE acceptance oracle
//! the chaos suite leans on — so the scan itself deserves an adversary.
//! This target generates arbitrary decision streams (every action ×
//! every class × lean-biased ids and times) and checks the scan against
//! an independent reimplementation kept deliberately dumb: a `BTreeSet`
//! of recovered `(class, id)` pairs and a linear walk. Two registries
//! are consulted — the serving default, and the empty registry (under
//! which *every* class is Required) — plus the log's structural
//! contract: dense sequence numbers, nondecreasing sim-time, and a
//! summary histogram that reconciles against the raw records.
//!
//! Sabotage mode credits recovery records to the wrong class in the
//! *model* — the scan and the model then disagree about which later
//! drops are violations.

use crate::engine::FuzzTarget;
use crate::rng::FuzzRng;
use mrm_control::{AuditAction, AuditLog, ControlClass, RetentionRegistry};
use mrm_sim::time::{SimDuration, SimTime, NANOS_PER_SEC};
use std::collections::BTreeSet;

/// One control fuzz operation.
#[derive(Clone, Debug)]
pub enum ControlOp {
    /// Advance the shared clock (saturating; `u64::MAX` parks it at the
    /// horizon, where every later record carries `SimTime::MAX`).
    Advance { secs: u64 },
    /// Append one decision record.
    Record {
        class_idx: u8,
        id: u64,
        action_idx: u8,
        bytes: u64,
    },
}

pub struct ControlTarget {
    sabotage: bool,
}

impl ControlTarget {
    pub fn new(sabotage: bool) -> Self {
        ControlTarget { sabotage }
    }
}

fn class_of(idx: u8) -> ControlClass {
    let all = ControlClass::all();
    all[usize::from(idx) % all.len()]
}

fn action_of(idx: u8) -> AuditAction {
    let all = AuditAction::all();
    all[usize::from(idx) % all.len()]
}

fn is_recovery(a: AuditAction) -> bool {
    matches!(a, AuditAction::Refetch | AuditAction::Recompute)
}

fn is_reclaim(a: AuditAction) -> bool {
    matches!(a, AuditAction::Drop | AuditAction::Evict)
}

/// Position of `a` in `AuditAction::all()` (the log's histogram order).
fn idx_of(a: AuditAction) -> usize {
    AuditAction::all()
        .iter()
        .position(|x| *x == a)
        .unwrap_or(usize::MAX)
}

impl FuzzTarget for ControlTarget {
    type Op = ControlOp;

    fn name(&self) -> &'static str {
        "control"
    }

    fn corpus(&self) -> Vec<Vec<ControlOp>> {
        let rec = |class_idx: u8, id: u64, action_idx: u8| ControlOp::Record {
            class_idx,
            id,
            action_idx,
            bytes: 4096,
        };
        vec![
            vec![],
            // A legal recovery-then-drop pair plus unrelated churn.
            vec![
                rec(0, 1, 7), // Weights/1 refetch
                ControlOp::Advance { secs: 5 },
                rec(0, 1, 3), // Weights/1 drop — recovered, legal
                rec(1, 2, 0), // KvPrefix/2 store
                rec(1, 2, 4), // KvPrefix/2 evict
            ],
            // Drops with no recovery across all classes.
            vec![
                rec(0, 9, 3),
                rec(1, 9, 3),
                rec(2, 9, 4),
                rec(3, 9, 3),
                rec(4, 9, 4),
            ],
            // Clock parked at the horizon.
            vec![
                ControlOp::Advance { secs: u64::MAX },
                rec(2, 5, 0),
                rec(2, 5, 3),
            ],
        ]
    }

    fn gen_op(&self, rng: &mut FuzzRng) -> ControlOp {
        if rng.one_in(4) {
            ControlOp::Advance {
                secs: rng.lean_below(10_000),
            }
        } else {
            ControlOp::Record {
                class_idx: (rng.below(5)) as u8,
                // Small id space so recovery/reclaim pairs actually collide.
                id: rng.lean_below(16),
                action_idx: (rng.below(9)) as u8,
                bytes: rng.lean_u64(),
            }
        }
    }

    fn mutate_op(&self, op: &ControlOp, rng: &mut FuzzRng) -> ControlOp {
        match op {
            ControlOp::Advance { .. } => ControlOp::Advance {
                secs: rng.lean_u64(),
            },
            ControlOp::Record {
                class_idx,
                id,
                action_idx,
                bytes,
            } => match rng.below(4) {
                0 => ControlOp::Record {
                    class_idx: (rng.below(5)) as u8,
                    id: *id,
                    action_idx: *action_idx,
                    bytes: *bytes,
                },
                1 => ControlOp::Record {
                    class_idx: *class_idx,
                    id: rng.lean_below(16),
                    action_idx: *action_idx,
                    bytes: *bytes,
                },
                2 => ControlOp::Record {
                    class_idx: *class_idx,
                    id: *id,
                    action_idx: (rng.below(9)) as u8,
                    bytes: *bytes,
                },
                _ => ControlOp::Record {
                    class_idx: *class_idx,
                    id: *id,
                    action_idx: *action_idx,
                    bytes: rng.lean_u64(),
                },
            },
        }
    }

    fn simplify_op(&self, op: &ControlOp) -> Option<ControlOp> {
        match op {
            ControlOp::Advance { secs } if *secs > 0 => Some(ControlOp::Advance { secs: secs / 2 }),
            ControlOp::Record {
                class_idx,
                id,
                action_idx,
                bytes,
            } => {
                if *bytes > 0 {
                    Some(ControlOp::Record {
                        class_idx: *class_idx,
                        id: *id,
                        action_idx: *action_idx,
                        bytes: bytes / 2,
                    })
                } else if *id > 0 {
                    Some(ControlOp::Record {
                        class_idx: *class_idx,
                        id: id / 2,
                        action_idx: *action_idx,
                        bytes: 0,
                    })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn run(&self, ops: &[ControlOp]) -> Result<(), String> {
        let serving = RetentionRegistry::serving_default(SimDuration::from_secs(20));
        let empty = RetentionRegistry::new();
        let mut log = AuditLog::new();
        let mut now = SimTime::ZERO;

        // The independent model: recovered pairs, expected violations per
        // registry, an action histogram, and the record timeline.
        let mut recovered: BTreeSet<(ControlClass, u64)> = BTreeSet::new();
        let mut expect_serving: Vec<u64> = Vec::new();
        let mut expect_empty: Vec<u64> = Vec::new();
        let mut histogram = [0u64; 9];
        let mut times: Vec<SimTime> = Vec::new();

        for op in ops {
            match op {
                ControlOp::Advance { secs } => {
                    // Saturate the secs→nanos conversion too: the corpus
                    // deliberately advances by `u64::MAX` seconds, which
                    // would overflow `from_secs`'s multiply in debug.
                    let d = SimDuration::from_nanos(secs.saturating_mul(NANOS_PER_SEC));
                    now = now.saturating_add(d);
                }
                ControlOp::Record {
                    class_idx,
                    id,
                    action_idx,
                    bytes,
                } => {
                    let class = class_of(*class_idx);
                    let action = action_of(*action_idx);
                    let seq = log.record(now, class, *id, action, "fuzz-stream", *bytes);
                    if is_recovery(action) {
                        let credit = if self.sabotage {
                            // Documented sabotage: the model credits the
                            // recovery to the wrong class.
                            class_of(class_idx.wrapping_add(1))
                        } else {
                            class
                        };
                        recovered.insert((credit, *id));
                    } else if is_reclaim(action) && !recovered.contains(&(class, *id)) {
                        if serving.is_required(class) {
                            expect_serving.push(seq);
                        }
                        // The empty registry treats everything as Required.
                        expect_empty.push(seq);
                    }
                    histogram[idx_of(action)] += 1;
                    times.push(now);
                }
            }
        }

        // The scan agrees with the dumb model under both registries.
        let got_serving = log.required_drop_violations(&serving);
        if got_serving != expect_serving {
            return Err(format!(
                "serving registry: scan found violations {got_serving:?}, \
                 model expects {expect_serving:?}"
            ));
        }
        let got_empty = log.required_drop_violations(&empty);
        if got_empty != expect_empty {
            return Err(format!(
                "empty registry: scan found violations {got_empty:?}, \
                 model expects {expect_empty:?}"
            ));
        }

        // Structural contract: dense seqs, the recorded (nondecreasing)
        // timeline, a reconciling histogram.
        if log.len() != times.len() {
            return Err(format!(
                "log has {} records, model counted {}",
                log.len(),
                times.len()
            ));
        }
        for (i, r) in log.records().iter().enumerate() {
            if r.seq != i as u64 {
                return Err(format!("record {i} carries seq {}", r.seq));
            }
            if r.at != times[i] {
                return Err(format!(
                    "record {i} at {:?}, model logged {:?}",
                    r.at, times[i]
                ));
            }
            if i > 0 && log.records()[i - 1].at > r.at {
                return Err(format!("audit time went backwards at seq {i}"));
            }
        }
        for action in AuditAction::all() {
            if log.count(action) != histogram[idx_of(action)] {
                return Err(format!(
                    "count({action:?}) = {}, model counted {}",
                    log.count(action),
                    histogram[idx_of(action)]
                ));
            }
        }
        Ok(())
    }
}
