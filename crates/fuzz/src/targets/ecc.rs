//! ECC differential target: error-budget oracle + scalar-vs-batch.
//!
//! Two codes under test, the same two ways each:
//!
//! * **Round-trip vs the error budget.** For a codeword with `e`
//!   *effective* bit flips (flip positions XOR, so repeated positions
//!   cancel), SECDED must report `Clean`/`Corrected`/`ParityCorrected`
//!   with exact data recovery for `e ≤ 1` and `DoubleError` for `e == 2`;
//!   BCH(m=10, t=2) must decode `e ≤ t` exactly (reporting `e` errors)
//!   and past the budget must either refuse or miscorrect *consistently*
//!   (`Ok` with `f ≤ t` and data ≠ original — the recheck contract).
//!   `e` past the budget must never panic.
//! * **Scalar vs batch.** Every decoded word is also pushed onto a
//!   pending batch; a `Flush` op runs `decode_batch_into` / `decode_batch`
//!   over the accumulated codewords and demands bit-identical agreement
//!   with the scalar results. Flushing an empty batch is the
//!   zero-length-batch probe: the `_into` buffers must come back
//!   untouched (a no-op, not a panic).
//!
//! Sabotage mode flips one extra bit in the batch copy of lane 0 before
//! flushing — scalar and batch then disagree, which is exactly the class
//! of bug the target exists to catch.

use crate::engine::FuzzTarget;
use crate::rng::FuzzRng;
use mrm_ecc::bch::{Bch, BchError};
use mrm_ecc::hamming::{Hamming, HammingOutcome};

/// One ECC fuzz operation.
#[derive(Clone, Debug)]
pub enum EccOp {
    /// Encode a SECDED(72,64) word derived from `seed`, flip `flips`
    /// positions (mod codeword length), decode, check the budget oracle,
    /// and enqueue for the next batch flush.
    Secded { seed: u64, flips: Vec<u16> },
    /// Same for BCH(m=10, t=2, 256 data bits).
    Bch { seed: u64, flips: Vec<u16> },
    /// Drain the pending SECDED batch through `decode_batch_into` and
    /// compare with the scalar decodes (an empty flush must be a no-op).
    FlushSecded,
    /// Drain the pending BCH batch through `decode_batch`.
    FlushBch,
}

pub struct EccTarget {
    hamming: Hamming,
    bch: Bch,
    sabotage: bool,
}

impl EccTarget {
    pub fn new(sabotage: bool) -> Self {
        EccTarget {
            hamming: Hamming::secded_72_64(),
            bch: Bch::with_data_len(10, 2, 256),
            sabotage,
        }
    }
}

/// Derives a one-bit-per-byte data word from a seed.
fn data_bits(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = FuzzRng::new(seed);
    let mut bits = Vec::with_capacity(len);
    let mut word = 0u64;
    for i in 0..len {
        if i % 64 == 0 {
            word = rng.next_u64();
        }
        bits.push(((word >> (i % 64)) & 1) as u8);
    }
    bits
}

impl FuzzTarget for EccTarget {
    type Op = EccOp;

    fn name(&self) -> &'static str {
        "ecc"
    }

    fn corpus(&self) -> Vec<Vec<EccOp>> {
        vec![
            vec![],
            // Clean round-trips of both codes plus flushes.
            vec![
                EccOp::Secded {
                    seed: 1,
                    flips: vec![],
                },
                EccOp::Bch {
                    seed: 2,
                    flips: vec![],
                },
                EccOp::FlushSecded,
                EccOp::FlushBch,
            ],
            // The budget ladder: 1 and 2 flips for SECDED, up to t+1 for BCH.
            vec![
                EccOp::Secded {
                    seed: 3,
                    flips: vec![17],
                },
                EccOp::Secded {
                    seed: 4,
                    flips: vec![0, 71],
                },
                EccOp::Bch {
                    seed: 5,
                    flips: vec![100, 700],
                },
                EccOp::Bch {
                    seed: 6,
                    flips: vec![1, 2, 3],
                },
                EccOp::FlushSecded,
                EccOp::FlushBch,
            ],
            // Empty flushes (the zero-length batch probe).
            vec![EccOp::FlushSecded, EccOp::FlushBch],
        ]
    }

    fn gen_op(&self, rng: &mut FuzzRng) -> EccOp {
        match rng.below(8) {
            0..=2 => EccOp::Secded {
                seed: rng.next_u64(),
                flips: gen_flips(rng),
            },
            3..=5 => EccOp::Bch {
                seed: rng.next_u64(),
                flips: gen_flips(rng),
            },
            6 => EccOp::FlushSecded,
            _ => EccOp::FlushBch,
        }
    }

    fn mutate_op(&self, op: &EccOp, rng: &mut FuzzRng) -> EccOp {
        match op {
            EccOp::Secded { seed, flips } => {
                let (seed, flips) = mutate_word(*seed, flips, rng);
                EccOp::Secded { seed, flips }
            }
            EccOp::Bch { seed, flips } => {
                let (seed, flips) = mutate_word(*seed, flips, rng);
                EccOp::Bch { seed, flips }
            }
            EccOp::FlushSecded => EccOp::FlushBch,
            EccOp::FlushBch => EccOp::FlushSecded,
        }
    }

    fn simplify_op(&self, op: &EccOp) -> Option<EccOp> {
        match op {
            EccOp::Secded { seed, flips } => {
                let (seed, flips) = simplify_word(*seed, flips)?;
                Some(EccOp::Secded { seed, flips })
            }
            EccOp::Bch { seed, flips } => {
                let (seed, flips) = simplify_word(*seed, flips)?;
                Some(EccOp::Bch { seed, flips })
            }
            EccOp::FlushSecded | EccOp::FlushBch => None,
        }
    }

    fn run(&self, ops: &[EccOp]) -> Result<(), String> {
        // Pending batches: (corrupted codeword, scalar result).
        type HamLane = (Vec<u8>, (Vec<u8>, HammingOutcome));
        type BchLane = (Vec<u8>, Result<(Vec<u8>, usize), BchError>);
        let mut ham_pend: Vec<HamLane> = Vec::new();
        let mut bch_pend: Vec<BchLane> = Vec::new();

        for (i, op) in ops.iter().enumerate() {
            match op {
                EccOp::Secded { seed, flips } => {
                    let data = data_bits(*seed, self.hamming.data_len());
                    let mut cw = self.hamming.encode(&data);
                    let e = effective_flips(&mut cw, flips);
                    let (decoded, outcome) = self.hamming.decode(&cw);
                    match e {
                        0 => {
                            if outcome != HammingOutcome::Clean {
                                return Err(format!("op {i}: clean word decoded as {outcome:?}"));
                            }
                            if decoded != data {
                                return Err(format!("op {i}: clean word data corrupted"));
                            }
                        }
                        1 => {
                            match outcome {
                                HammingOutcome::Corrected(_) | HammingOutcome::ParityCorrected => {}
                                other => {
                                    return Err(format!("op {i}: single flip decoded as {other:?}"))
                                }
                            }
                            if decoded != data {
                                return Err(format!(
                                    "op {i}: single flip not corrected to original data"
                                ));
                            }
                        }
                        2 if outcome != HammingOutcome::DoubleError => {
                            return Err(format!("op {i}: double flip decoded as {outcome:?}"));
                        }
                        // Past the budget: anything but a panic is legal.
                        _ => {}
                    }
                    ham_pend.push((cw, (decoded, outcome)));
                }
                EccOp::Bch { seed, flips } => {
                    let data = data_bits(*seed, self.bch.k());
                    let mut cw = self.bch.encode(&data);
                    let e = effective_flips(&mut cw, flips);
                    let res = self.bch.decode(&cw);
                    if e <= self.bch.t() {
                        match &res {
                            Ok((decoded, nerr)) => {
                                if decoded != &data {
                                    return Err(format!(
                                        "op {i}: BCH {e} flips decoded to wrong data"
                                    ));
                                }
                                if *nerr != e {
                                    return Err(format!(
                                        "op {i}: BCH corrected {nerr} errors, injected {e}"
                                    ));
                                }
                            }
                            Err(err) => {
                                return Err(format!("op {i}: BCH refused {e} <= t flips: {err}"))
                            }
                        }
                    } else if let Ok((decoded, nerr)) = &res {
                        // Miscorrection past the budget must still satisfy
                        // the recheck contract: claims ≤ t errors and does
                        // not silently return the original data.
                        if *nerr > self.bch.t() {
                            return Err(format!("op {i}: BCH claims {nerr} > t corrections"));
                        }
                        if decoded == &data {
                            return Err(format!(
                                "op {i}: BCH decoded {e} > t flips back to the original \
                                 data while reporting success"
                            ));
                        }
                    }
                    bch_pend.push((cw, res));
                }
                EccOp::FlushSecded => {
                    let mut cws: Vec<Vec<u8>> = ham_pend.iter().map(|(cw, _)| cw.clone()).collect();
                    if self.sabotage {
                        // Documented sabotage: corrupt the batch copy of
                        // lane 0 so scalar and batch disagree.
                        if let Some(first) = cws.first_mut() {
                            first[11] ^= 1;
                        }
                    }
                    let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
                    // Pre-populate the reusable buffers: `_into` appends,
                    // and must leave existing contents untouched.
                    let mut data_buf = vec![9u8, 9];
                    let mut out_buf = vec![HammingOutcome::DoubleError];
                    self.hamming
                        .decode_batch_into(&refs, &mut data_buf, &mut out_buf);
                    if data_buf[..2] != [9, 9] || out_buf[0] != HammingOutcome::DoubleError {
                        return Err(format!(
                            "op {i}: decode_batch_into clobbered existing buffer contents"
                        ));
                    }
                    let k = self.hamming.data_len();
                    if data_buf.len() != 2 + k * ham_pend.len()
                        || out_buf.len() != 1 + ham_pend.len()
                    {
                        return Err(format!(
                            "op {i}: decode_batch_into appended wrong lengths \
                             (data {} outcomes {} for {} words)",
                            data_buf.len(),
                            out_buf.len(),
                            ham_pend.len()
                        ));
                    }
                    for (lane, (_, (sdata, soutcome))) in ham_pend.iter().enumerate() {
                        let row = &data_buf[2 + lane * k..2 + (lane + 1) * k];
                        if row != sdata.as_slice() {
                            return Err(format!(
                                "op {i}: batch lane {lane} data differs from scalar decode"
                            ));
                        }
                        if out_buf[1 + lane] != *soutcome {
                            return Err(format!(
                                "op {i}: batch lane {lane} outcome {:?} vs scalar {:?}",
                                out_buf[1 + lane],
                                soutcome
                            ));
                        }
                    }
                    ham_pend.clear();
                }
                EccOp::FlushBch => {
                    let mut cws: Vec<Vec<u8>> = bch_pend.iter().map(|(cw, _)| cw.clone()).collect();
                    if self.sabotage {
                        if let Some(first) = cws.first_mut() {
                            first[23] ^= 1;
                        }
                    }
                    let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
                    let batch = self.bch.decode_batch(&refs);
                    if batch.len() != bch_pend.len() {
                        return Err(format!(
                            "op {i}: decode_batch returned {} results for {} words",
                            batch.len(),
                            bch_pend.len()
                        ));
                    }
                    for (lane, ((_, scalar), got)) in bch_pend.iter().zip(batch.iter()).enumerate()
                    {
                        if got != scalar {
                            return Err(format!(
                                "op {i}: BCH batch lane {lane} {got:?} vs scalar {scalar:?}"
                            ));
                        }
                    }
                    bch_pend.clear();
                }
            }
        }
        Ok(())
    }
}

/// Counts effective flips while applying them (XOR semantics: a position
/// listed an even number of times cancels out).
fn effective_flips(cw: &mut [u8], flips: &[u16]) -> usize {
    let before = cw.to_vec();
    for &f in flips {
        let pos = usize::from(f) % cw.len();
        cw[pos] ^= 1;
    }
    before.iter().zip(cw.iter()).filter(|(a, b)| a != b).count()
}

fn gen_flips(rng: &mut FuzzRng) -> Vec<u16> {
    // Mostly 0..=3 flips (inside both budgets ± 1), occasionally a storm.
    let n = if rng.one_in(8) {
        rng.index(24)
    } else {
        rng.index(4)
    };
    (0..n).map(|_| (rng.lean_u64() & 0xFFFF) as u16).collect()
}

fn mutate_word(seed: u64, flips: &[u16], rng: &mut FuzzRng) -> (u64, Vec<u16>) {
    let mut flips = flips.to_vec();
    match rng.below(4) {
        0 => return (rng.next_u64(), flips),
        1 => flips.push((rng.lean_u64() & 0xFFFF) as u16),
        2 => {
            if !flips.is_empty() {
                let at = rng.index(flips.len());
                flips.remove(at);
            }
        }
        _ => {
            if !flips.is_empty() {
                let at = rng.index(flips.len());
                flips[at] = flips[at].wrapping_add((rng.lean_u64() & 0xFF) as u16);
            }
        }
    }
    (seed, flips)
}

fn simplify_word(seed: u64, flips: &[u16]) -> Option<(u64, Vec<u16>)> {
    if !flips.is_empty() {
        // Drop the last flip first, then shrink the data seed.
        let mut f = flips.to_vec();
        f.pop();
        return Some((seed, f));
    }
    (seed != 0).then_some((seed / 2, Vec::new()))
}
