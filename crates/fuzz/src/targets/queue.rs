//! Event-queue differential target: calendar [`EventQueue`] vs
//! [`LegacyHeapQueue`].
//!
//! Open-ended mutation over the op language of
//! `crates/sim/tests/queue_conformance.rs`: schedules (absolute and
//! relative, clamped to `now` — scheduling in the past is a debug-assert
//! on both sides, not a behaviour to differentiate), same-instant FIFO
//! bursts, pops, clears, and full drains. Delays flow through the
//! extreme-value pool, so the far ladder, the post-clear rollover path,
//! and the `u64` time horizon (`SimTime::MAX` via saturating adds) are
//! all ordinary inputs. After every op the peek/clock/len triple must
//! agree; every pop must return the identical `(time, payload)` pair.
//!
//! Sabotage mode applies `Clear` to the calendar only — the heap keeps
//! its events, and the very next length check diverges.

use crate::engine::FuzzTarget;
use crate::rng::FuzzRng;
use mrm_sim::event::{EventQueue, LegacyHeapQueue};
use mrm_sim::time::{SimDuration, SimTime};

/// One queue fuzz operation.
#[derive(Clone, Debug)]
pub enum QueueOp {
    /// Schedule at `max(now, at_nanos)` (absolute, clamped to the clock).
    Schedule { at_nanos: u64 },
    /// Schedule at `now + delay` (saturating — `u64::MAX` lands exactly
    /// on the `SimTime::MAX` horizon).
    After { delay_nanos: u64 },
    /// A same-instant FIFO burst of `n` events at `now + delay`.
    Burst { delay_nanos: u64, n: u8 },
    /// Pop up to `n` events, comparing each.
    Pop { n: u8 },
    /// Clear both queues.
    Clear,
    /// Drain both queues to empty, comparing the full tails.
    Drain,
}

pub struct QueueTarget {
    sabotage: bool,
}

impl QueueTarget {
    pub fn new(sabotage: bool) -> Self {
        QueueTarget { sabotage }
    }
}

const DAY_NANOS: u64 = 86_400_000_000_000;

impl FuzzTarget for QueueTarget {
    type Op = QueueOp;

    fn name(&self) -> &'static str {
        "queue"
    }

    fn corpus(&self) -> Vec<Vec<QueueOp>> {
        vec![
            vec![],
            // Dense near-future steady state with pops.
            vec![
                QueueOp::After { delay_nanos: 10 },
                QueueOp::After { delay_nanos: 500 },
                QueueOp::Burst {
                    delay_nanos: 100,
                    n: 8,
                },
                QueueOp::Pop { n: 4 },
                QueueOp::After { delay_nanos: 3 },
                QueueOp::Drain,
            ],
            // The satellite-1 shape: clear, then a schedule far past the
            // old day horizon (post-clear rollover state).
            vec![
                QueueOp::After { delay_nanos: 1_000 },
                QueueOp::Pop { n: 1 },
                QueueOp::Clear,
                QueueOp::After {
                    delay_nanos: 3 * DAY_NANOS,
                },
                QueueOp::After { delay_nanos: 7 },
                QueueOp::Drain,
            ],
            // The u64 horizon.
            vec![
                QueueOp::After {
                    delay_nanos: u64::MAX,
                },
                QueueOp::Schedule { at_nanos: u64::MAX },
                QueueOp::Drain,
            ],
        ]
    }

    fn gen_op(&self, rng: &mut FuzzRng) -> QueueOp {
        match rng.below(12) {
            0..=2 => QueueOp::After {
                delay_nanos: rng.lean_below(10_000),
            },
            3 => QueueOp::After {
                delay_nanos: rng.lean_u64(),
            },
            4 => QueueOp::Schedule {
                at_nanos: rng.lean_u64(),
            },
            5..=6 => QueueOp::Burst {
                delay_nanos: rng.lean_below(1_000),
                n: (2 + rng.below(14)) as u8,
            },
            7..=9 => QueueOp::Pop {
                n: (1 + rng.below(5)) as u8,
            },
            10 => QueueOp::Clear,
            _ => QueueOp::Drain,
        }
    }

    fn mutate_op(&self, op: &QueueOp, rng: &mut FuzzRng) -> QueueOp {
        match op {
            QueueOp::Schedule { .. } => QueueOp::Schedule {
                at_nanos: rng.lean_u64(),
            },
            QueueOp::After { delay_nanos } => QueueOp::After {
                delay_nanos: delay_nanos.wrapping_add(rng.lean_u64()),
            },
            QueueOp::Burst { delay_nanos, n } => QueueOp::Burst {
                delay_nanos: delay_nanos.wrapping_add(rng.lean_below(1_000)),
                n: n.wrapping_add((rng.below(4)) as u8),
            },
            QueueOp::Pop { n } => QueueOp::Pop {
                n: n.wrapping_add(1),
            },
            QueueOp::Clear => QueueOp::Pop { n: 1 },
            QueueOp::Drain => QueueOp::Clear,
        }
    }

    fn simplify_op(&self, op: &QueueOp) -> Option<QueueOp> {
        match op {
            QueueOp::Schedule { at_nanos } if *at_nanos > 0 => Some(QueueOp::Schedule {
                at_nanos: at_nanos / 2,
            }),
            QueueOp::After { delay_nanos } if *delay_nanos > 0 => Some(QueueOp::After {
                delay_nanos: delay_nanos / 2,
            }),
            QueueOp::Burst { delay_nanos, n } if *n > 1 => Some(QueueOp::Burst {
                delay_nanos: *delay_nanos,
                n: n / 2,
            }),
            QueueOp::Burst { delay_nanos, .. } if *delay_nanos > 0 => Some(QueueOp::After {
                delay_nanos: *delay_nanos,
            }),
            QueueOp::Pop { n } if *n > 1 => Some(QueueOp::Pop { n: n / 2 }),
            QueueOp::Drain => Some(QueueOp::Pop { n: 1 }),
            _ => None,
        }
    }

    fn run(&self, ops: &[QueueOp]) -> Result<(), String> {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: LegacyHeapQueue<u64> = LegacyHeapQueue::new();
        let mut payload = 0u64;
        let sched = |cal: &mut EventQueue<u64>,
                     heap: &mut LegacyHeapQueue<u64>,
                     at: SimTime,
                     payload: &mut u64| {
            cal.schedule(at, *payload);
            heap.schedule(at, *payload);
            *payload += 1;
        };
        for (i, op) in ops.iter().enumerate() {
            match op {
                QueueOp::Schedule { at_nanos } => {
                    let at = SimTime::from_nanos(*at_nanos).max(cal.now());
                    sched(&mut cal, &mut heap, at, &mut payload);
                }
                QueueOp::After { delay_nanos } => {
                    let at = cal
                        .now()
                        .saturating_add(SimDuration::from_nanos(*delay_nanos));
                    sched(&mut cal, &mut heap, at, &mut payload);
                }
                QueueOp::Burst { delay_nanos, n } => {
                    let at = cal
                        .now()
                        .saturating_add(SimDuration::from_nanos(*delay_nanos));
                    for _ in 0..*n {
                        sched(&mut cal, &mut heap, at, &mut payload);
                    }
                }
                QueueOp::Pop { n } => {
                    for _ in 0..*n {
                        let (a, b) = (cal.pop(), heap.pop());
                        if a != b {
                            return Err(format!(
                                "op {i}: pop diverged: calendar {a:?} vs heap {b:?}"
                            ));
                        }
                    }
                }
                QueueOp::Clear => {
                    cal.clear();
                    if !self.sabotage {
                        // Documented sabotage: the heap skips the clear,
                        // so the next len/peek check diverges.
                        heap.clear();
                    }
                }
                QueueOp::Drain => loop {
                    let (a, b) = (cal.pop(), heap.pop());
                    if a != b {
                        return Err(format!(
                            "op {i}: drain diverged: calendar {a:?} vs heap {b:?}"
                        ));
                    }
                    if a.is_none() {
                        break;
                    }
                },
            }
            if cal.len() != heap.len() {
                return Err(format!("op {i}: len {} vs heap {}", cal.len(), heap.len()));
            }
            if cal.now() != heap.now() {
                return Err(format!(
                    "op {i}: now {:?} vs heap {:?}",
                    cal.now(),
                    heap.now()
                ));
            }
            if cal.peek_time() != heap.peek_time() {
                return Err(format!(
                    "op {i}: peek {:?} vs heap {:?}",
                    cal.peek_time(),
                    heap.peek_time()
                ));
            }
            if cal.is_empty() != heap.is_empty() {
                return Err(format!("op {i}: is_empty diverged"));
            }
        }
        // Always finish with a full drain: tails must agree to the end.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            if a != b {
                return Err(format!(
                    "final drain diverged: calendar {a:?} vs heap {b:?}"
                ));
            }
            if a.is_none() {
                break;
            }
        }
        if cal.now() != heap.now() {
            return Err(format!(
                "final clocks diverged: {:?} vs {:?}",
                cal.now(),
                heap.now()
            ));
        }
        Ok(())
    }
}
