//! Pool differential target: treap-backed [`Pool`] vs [`LegacyVecPool`].
//!
//! The allocator swap (FreeTree + LiveMap over the flat-`Vec` first-fit)
//! promised *observational identity* — same addresses, same fragment
//! lists, same errors. This target replays open-ended alloc/free traces
//! through both and compares every observable after every op: results,
//! `used_bytes`, `free_bytes`, `free_fragments`, and the full sorted
//! `free_ranges` list.
//!
//! `Reset { capacity }` re-creates both pools at an arbitrary (lean-
//! biased) capacity, so zero-capacity and one-byte pools are first-class
//! inputs, as are double frees, bogus frees, and zero-size allocations.
//!
//! Sabotage mode rounds every allocation the *oracle* sees up to the
//! next even size — the injected-mutation self-test: accounting diverges
//! on the first odd-sized allocation.

use crate::engine::FuzzTarget;
use crate::rng::FuzzRng;
use mrm_core::pool::{Allocation, LegacyVecPool, Pool};
use mrm_device::device::MemoryDevice;
use mrm_device::tech::presets;
use mrm_sim::units::MIB;

/// Capacities stay small enough to fragment quickly but allow multi-KiB
/// allocation storms: [0, 1 MiB].
const MAX_CAPACITY: u64 = MIB;

/// One pool fuzz operation.
#[derive(Clone, Debug)]
pub enum PoolOp {
    /// Tear both pools down and restart at this capacity (mod 1 MiB + 1).
    Reset { capacity: u64 },
    /// Allocate `len` bytes (0 probes the ZeroSize error path).
    Alloc { len: u64 },
    /// Free the `pick % live`-th live allocation.
    Free { pick: u64 },
    /// Free the `pick % live`-th live allocation *twice* (second must be
    /// InvalidFree on both sides).
    DoubleFree { pick: u64 },
    /// Free a fabricated allocation that was never handed out.
    BogusFree { addr: u64, len: u64 },
}

pub struct PoolTarget {
    sabotage: bool,
}

impl PoolTarget {
    pub fn new(sabotage: bool) -> Self {
        PoolTarget { sabotage }
    }

    fn build(&self, capacity: u64) -> (Pool, LegacyVecPool) {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = capacity;
        (
            Pool::new(MemoryDevice::new(tech)),
            LegacyVecPool::new(capacity),
        )
    }
}

fn compare(step: usize, p: &Pool, oracle: &LegacyVecPool) -> Result<(), String> {
    if p.used_bytes() != oracle.used_bytes() {
        return Err(format!(
            "op {step}: used_bytes {} vs oracle {}",
            p.used_bytes(),
            oracle.used_bytes()
        ));
    }
    if p.free_bytes() != oracle.free_bytes() {
        return Err(format!(
            "op {step}: free_bytes {} vs oracle {}",
            p.free_bytes(),
            oracle.free_bytes()
        ));
    }
    if p.free_fragments() != oracle.free_fragments() {
        return Err(format!(
            "op {step}: free_fragments {} vs oracle {}",
            p.free_fragments(),
            oracle.free_fragments()
        ));
    }
    let (a, b) = (p.free_ranges(), oracle.free_ranges());
    if a != b {
        return Err(format!("op {step}: free_ranges {a:?} vs oracle {b:?}"));
    }
    Ok(())
}

impl FuzzTarget for PoolTarget {
    type Op = PoolOp;

    fn name(&self) -> &'static str {
        "pool"
    }

    fn corpus(&self) -> Vec<Vec<PoolOp>> {
        vec![
            vec![],
            // Steady-state churn at a mid capacity.
            vec![
                PoolOp::Reset {
                    capacity: 64 * 1024,
                },
                PoolOp::Alloc { len: 4096 },
                PoolOp::Alloc { len: 4096 },
                PoolOp::Alloc { len: 4096 },
                PoolOp::Free { pick: 1 },
                PoolOp::Alloc { len: 8192 },
                PoolOp::Free { pick: 0 },
                PoolOp::Free { pick: 0 },
            ],
            // Degenerate capacities (the satellite-3 probe).
            vec![
                PoolOp::Reset { capacity: 0 },
                PoolOp::Alloc { len: 1 },
                PoolOp::Alloc { len: 0 },
                PoolOp::Reset { capacity: 1 },
                PoolOp::Alloc { len: 1 },
                PoolOp::Alloc { len: 1 },
                PoolOp::Free { pick: 0 },
            ],
            // Error paths.
            vec![
                PoolOp::Reset { capacity: 4096 },
                PoolOp::Alloc { len: 4096 },
                PoolOp::DoubleFree { pick: 0 },
                PoolOp::BogusFree { addr: 17, len: 12 },
                PoolOp::Alloc { len: u64::MAX },
            ],
        ]
    }

    fn gen_op(&self, rng: &mut FuzzRng) -> PoolOp {
        match rng.below(12) {
            0 => PoolOp::Reset {
                capacity: rng.lean_below(MAX_CAPACITY + 1),
            },
            // Allocation-heavy mix: sizes lean-biased across 0..2 MiB so
            // OutOfMemory and ZeroSize both stay hot.
            1..=6 => PoolOp::Alloc {
                len: rng.lean_below(2 * MAX_CAPACITY),
            },
            7..=9 => PoolOp::Free {
                pick: rng.next_u64(),
            },
            10 => PoolOp::DoubleFree {
                pick: rng.next_u64(),
            },
            _ => PoolOp::BogusFree {
                addr: rng.lean_u64(),
                len: rng.lean_u64(),
            },
        }
    }

    fn mutate_op(&self, op: &PoolOp, rng: &mut FuzzRng) -> PoolOp {
        match op {
            PoolOp::Reset { .. } => PoolOp::Reset {
                capacity: rng.lean_below(MAX_CAPACITY + 1),
            },
            PoolOp::Alloc { len } => PoolOp::Alloc {
                len: len.wrapping_add(rng.lean_below(8192)),
            },
            PoolOp::Free { .. } => PoolOp::Free {
                pick: rng.next_u64(),
            },
            PoolOp::DoubleFree { .. } => PoolOp::DoubleFree {
                pick: rng.next_u64(),
            },
            PoolOp::BogusFree { addr, len } => PoolOp::BogusFree {
                addr: addr.wrapping_add(rng.lean_below(64)),
                len: *len,
            },
        }
    }

    fn simplify_op(&self, op: &PoolOp) -> Option<PoolOp> {
        match op {
            PoolOp::Reset { capacity } if *capacity > 0 => Some(PoolOp::Reset {
                capacity: capacity / 2,
            }),
            PoolOp::Alloc { len } if *len > 0 => Some(PoolOp::Alloc { len: len / 2 }),
            PoolOp::Free { pick } if *pick > 0 => Some(PoolOp::Free { pick: pick / 2 }),
            PoolOp::DoubleFree { pick } if *pick > 0 => Some(PoolOp::DoubleFree { pick: pick / 2 }),
            PoolOp::BogusFree { addr, len } if *addr > 0 || *len > 0 => Some(PoolOp::BogusFree {
                addr: addr / 2,
                len: len / 2,
            }),
            _ => None,
        }
    }

    fn run(&self, ops: &[PoolOp]) -> Result<(), String> {
        let (mut p, mut oracle) = self.build(64 * 1024);
        let mut live: Vec<Allocation> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                PoolOp::Reset { capacity } => {
                    let cap = capacity % (MAX_CAPACITY + 1);
                    let (np, no) = self.build(cap);
                    p = np;
                    oracle = no;
                    live.clear();
                }
                PoolOp::Alloc { len } => {
                    let oracle_len = if self.sabotage {
                        // Documented sabotage: the oracle allocates a
                        // rounded-up size — accounting diverges on the
                        // first odd-sized allocation.
                        len.div_ceil(2).saturating_mul(2)
                    } else {
                        *len
                    };
                    let got = p.alloc(*len);
                    let want = oracle.alloc(oracle_len);
                    if !self.sabotage && got != want {
                        return Err(format!(
                            "op {i}: alloc({len}) => {got:?} vs oracle {want:?}"
                        ));
                    }
                    if let Ok(a) = got {
                        live.push(a);
                    }
                }
                PoolOp::Free { pick } => {
                    if !live.is_empty() {
                        let a = live.remove((pick % live.len() as u64) as usize);
                        let (got, want) = (p.free(a), oracle.free(a));
                        if got != want {
                            return Err(format!(
                                "op {i}: free({a:?}) => {got:?} vs oracle {want:?}"
                            ));
                        }
                    }
                }
                PoolOp::DoubleFree { pick } => {
                    if !live.is_empty() {
                        let a = live.remove((pick % live.len() as u64) as usize);
                        let (got, want) = (p.free(a), oracle.free(a));
                        if got != want {
                            return Err(format!(
                                "op {i}: free({a:?}) => {got:?} vs oracle {want:?}"
                            ));
                        }
                        let (got2, want2) = (p.free(a), oracle.free(a));
                        if got2 != want2 || got2.is_ok() {
                            return Err(format!(
                                "op {i}: double free({a:?}) => {got2:?} vs oracle {want2:?}"
                            ));
                        }
                    }
                }
                PoolOp::BogusFree { addr, len } => {
                    // Only bogus if it doesn't collide with a live
                    // allocation's exact (addr, len); skip if it does.
                    let a = Allocation {
                        addr: *addr,
                        len: *len,
                    };
                    if !live.contains(&a) {
                        let (got, want) = (p.free(a), oracle.free(a));
                        if got != want {
                            return Err(format!(
                                "op {i}: bogus free({a:?}) => {got:?} vs oracle {want:?}"
                            ));
                        }
                    }
                }
            }
            compare(i, &p, &oracle)?;
        }
        Ok(())
    }
}
