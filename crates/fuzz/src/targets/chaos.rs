//! Chaos target: FTL + MRM zone controller under fault scripts, checked
//! against the plain-map oracles from `tests/fault_invariants.rs`.
//!
//! One trace drives both components (they share nothing, so interleaving
//! costs nothing and doubles coverage per iteration):
//!
//! * the **FTL** oracle is a `BTreeSet` of live logical pages — the
//!   forward map must agree with it exactly, `check_invariants` must
//!   hold, and nothing live may resolve to a retired block;
//! * the **zone controller** oracle is a `Vec<ZoneState>` — every state
//!   transition (open, append-to-full, read-escalation retirement,
//!   reset, finish, explicit retire) is mirrored, and retired zones must
//!   reject every operation forever.
//!
//! Fault injection needs a seed, and `run` must be a pure function of
//! the ops alone — so the fault seed is part of the trace: components
//! start from a fixed base seed and a `Reseed` op rebuilds them (and
//! resets the oracles) with a seed mixed from its salt. The full
//! 819-page FTL scan runs every [`SCAN_PERIOD`] ops and at the end;
//! in between, only the touched page is checked (plus the structural
//! invariants, which are cheap).
//!
//! Sabotage mode skips the oracle update on `ZoneRetire` — the very next
//! state comparison diverges.

use crate::engine::FuzzTarget;
use crate::rng::{mix2, FuzzRng};
use mrm_controller::ftl::{Ftl, FtlConfig};
use mrm_controller::mrm_block::{MrmBlockController, ZoneError, ZoneId, ZoneState};
use mrm_device::device::MemoryDevice;
use mrm_device::tech::presets;
use mrm_faults::{FaultConfig, FaultModel, RecoveryAction};
use mrm_sim::time::{SimDuration, SimTime};
use mrm_sim::units::MIB;
use std::collections::BTreeSet;

const SCAN_PERIOD: usize = 32;
/// Base fault seed; `Reseed { salt }` mixes this with the salt.
const BASE_SEED: u64 = 0x00C0_FFEE_0B1E_55ED;

/// One chaos fuzz operation.
#[derive(Clone, Debug)]
pub enum ChaosOp {
    /// Rebuild FTL + controller with a new fault seed; oracles reset.
    Reseed {
        salt: u64,
    },
    FtlWrite {
        lpn: u64,
    },
    FtlTrim {
        lpn: u64,
    },
    /// Checked read at one of three RBER points (clean/marginal/hot).
    FtlRead {
        lpn: u64,
        rber_idx: u8,
    },
    FtlRetire {
        block: u64,
    },
    ZoneOpen,
    /// Append 256 KiB with short (2 s) or long (1 h) retention.
    ZoneAppend {
        z: u64,
        short_ttl: bool,
    },
    ZoneRead {
        z: u64,
    },
    ZoneReset {
        z: u64,
    },
    ZoneFinish {
        z: u64,
    },
    ZoneRetire {
        z: u64,
    },
    /// Advance the zone clock (saturating) — ages short-TTL data past
    /// its retention class so reads hit the recovery ladder.
    Advance {
        secs: u64,
    },
}

pub struct ChaosTarget {
    sabotage: bool,
}

impl ChaosTarget {
    pub fn new(sabotage: bool) -> Self {
        ChaosTarget { sabotage }
    }
}

struct World {
    ftl: Ftl,
    /// Oracle: the set of live logical pages.
    live: BTreeSet<u64>,
    /// The FTL hit an unrecoverable error; remaining FTL ops are skipped
    /// (mirrors the `break` in the original proptest script).
    ftl_dead: bool,
    ctrl: MrmBlockController,
    /// Oracle: per-zone lifecycle state.
    zones: Vec<ZoneState>,
    now: SimTime,
}

fn build_world(seed: u64) -> World {
    let cfg = FtlConfig {
        blocks: 64,
        pages_per_block: 16,
        page_bytes: 4096,
        logical_fraction: 0.8,
        gc_threshold_blocks: 4,
        ue_retire_threshold: 3,
        ..FtlConfig::small()
    };
    let mut ftl = Ftl::new(cfg);
    ftl.attach_faults(FaultModel::new(FaultConfig::mrm(), seed));

    let mut tech = presets::mrm_hours();
    tech.capacity_bytes = 64 * MIB;
    let mut ctrl = MrmBlockController::new(MemoryDevice::new(tech), 4 * MIB);
    ctrl.attach_faults(FaultModel::new(FaultConfig::mrm(), seed.wrapping_add(1)));
    let zones = vec![ZoneState::Empty; ctrl.zone_count()];

    World {
        ftl,
        live: BTreeSet::new(),
        ftl_dead: false,
        ctrl,
        zones,
        now: SimTime::ZERO,
    }
}

/// Full differential scan: forward map vs live set, plus structural
/// invariants (which include "nothing live resolves to a retired block").
fn scan_ftl(step: usize, w: &World) -> Result<(), String> {
    w.ftl
        .check_invariants()
        .map_err(|e| format!("op {step}: FTL structural invariant broken: {e}"))?;
    let pages = w.ftl.config().logical_pages();
    let mut mapped = 0u64;
    for lpn in 0..pages {
        let is_mapped = w.ftl.read(lpn).is_some();
        if is_mapped != w.live.contains(&lpn) {
            return Err(format!(
                "op {step}: lpn {lpn} mapped={is_mapped} but oracle says {}",
                w.live.contains(&lpn)
            ));
        }
        mapped += u64::from(is_mapped);
    }
    if mapped != w.live.len() as u64 {
        return Err(format!(
            "op {step}: {mapped} pages mapped, oracle has {}",
            w.live.len()
        ));
    }
    Ok(())
}

/// Spot check of one logical page plus the cheap structural invariants.
fn spot_ftl(step: usize, w: &World, lpn: u64) -> Result<(), String> {
    w.ftl
        .check_invariants()
        .map_err(|e| format!("op {step}: FTL structural invariant broken: {e}"))?;
    let is_mapped = w.ftl.read(lpn).is_some();
    if is_mapped != w.live.contains(&lpn) {
        return Err(format!(
            "op {step}: lpn {lpn} mapped={is_mapped} but oracle says {}",
            w.live.contains(&lpn)
        ));
    }
    Ok(())
}

/// Zone-state differential: every zone, the retired count, and the
/// expiry work list (must never offer retired/empty zones).
fn scan_zones(step: usize, w: &World) -> Result<(), String> {
    let mut retired = 0u64;
    for (zi, &expect) in w.zones.iter().enumerate() {
        let z = ZoneId(zi as u32);
        let got = w
            .ctrl
            .zone_state(z)
            .map_err(|e| format!("op {step}: zone_state({zi}) errored: {e:?}"))?;
        if got != expect {
            return Err(format!(
                "op {step}: zone {zi} state {got:?} but oracle says {expect:?}"
            ));
        }
        retired += u64::from(expect == ZoneState::Retired);
    }
    if w.ctrl.zones_retired() != retired {
        return Err(format!(
            "op {step}: zones_retired {} but oracle counts {retired}",
            w.ctrl.zones_retired()
        ));
    }
    for (z, _) in w.ctrl.zones_expiring_before(SimTime::MAX) {
        let st = w.zones[z.0 as usize];
        if st != ZoneState::Open && st != ZoneState::Full {
            return Err(format!(
                "op {step}: zone {} in expiry list while {st:?}",
                z.0
            ));
        }
    }
    Ok(())
}

impl FuzzTarget for ChaosTarget {
    type Op = ChaosOp;

    fn name(&self) -> &'static str {
        "chaos"
    }

    fn corpus(&self) -> Vec<Vec<ChaosOp>> {
        vec![
            vec![],
            // FTL-heavy: writes, reads across the RBER ladder, a trim.
            vec![
                ChaosOp::FtlWrite { lpn: 1 },
                ChaosOp::FtlWrite { lpn: 2 },
                ChaosOp::FtlRead {
                    lpn: 1,
                    rber_idx: 0,
                },
                ChaosOp::FtlRead {
                    lpn: 2,
                    rber_idx: 2,
                },
                ChaosOp::FtlTrim { lpn: 1 },
                ChaosOp::FtlWrite { lpn: 1 },
                ChaosOp::FtlRetire { block: 3 },
            ],
            // Zone lifecycle with aging between appends and reads.
            vec![
                ChaosOp::ZoneOpen,
                ChaosOp::ZoneAppend {
                    z: 0,
                    short_ttl: true,
                },
                ChaosOp::Advance { secs: 10 },
                ChaosOp::ZoneRead { z: 0 },
                ChaosOp::ZoneFinish { z: 0 },
                ChaosOp::ZoneReset { z: 0 },
                ChaosOp::ZoneRetire { z: 1 },
            ],
            // A reseed mid-trace.
            vec![
                ChaosOp::FtlWrite { lpn: 7 },
                ChaosOp::Reseed { salt: 1 },
                ChaosOp::FtlWrite { lpn: 7 },
                ChaosOp::ZoneOpen,
                ChaosOp::ZoneAppend {
                    z: 0,
                    short_ttl: false,
                },
            ],
        ]
    }

    fn gen_op(&self, rng: &mut FuzzRng) -> ChaosOp {
        match rng.below(16) {
            0 => ChaosOp::Reseed {
                salt: rng.below(1 << 16),
            },
            1..=4 => ChaosOp::FtlWrite {
                lpn: rng.lean_u64(),
            },
            5 => ChaosOp::FtlTrim {
                lpn: rng.lean_u64(),
            },
            6..=7 => ChaosOp::FtlRead {
                lpn: rng.lean_u64(),
                rber_idx: (rng.below(3)) as u8,
            },
            8 => ChaosOp::FtlRetire {
                block: rng.lean_u64(),
            },
            9 => ChaosOp::ZoneOpen,
            10..=11 => ChaosOp::ZoneAppend {
                z: rng.lean_u64(),
                short_ttl: rng.one_in(2),
            },
            12 => ChaosOp::ZoneRead { z: rng.lean_u64() },
            13 => match rng.below(3) {
                0 => ChaosOp::ZoneReset { z: rng.lean_u64() },
                1 => ChaosOp::ZoneFinish { z: rng.lean_u64() },
                _ => ChaosOp::ZoneRetire { z: rng.lean_u64() },
            },
            _ => ChaosOp::Advance {
                secs: rng.lean_below(600),
            },
        }
    }

    fn mutate_op(&self, op: &ChaosOp, rng: &mut FuzzRng) -> ChaosOp {
        match op {
            ChaosOp::Reseed { salt } => ChaosOp::Reseed {
                salt: salt.wrapping_add(1 + rng.below(64)),
            },
            ChaosOp::FtlWrite { .. } => ChaosOp::FtlWrite {
                lpn: rng.lean_u64(),
            },
            ChaosOp::FtlTrim { .. } => ChaosOp::FtlTrim {
                lpn: rng.lean_u64(),
            },
            ChaosOp::FtlRead { lpn, .. } => ChaosOp::FtlRead {
                lpn: *lpn,
                rber_idx: (rng.below(3)) as u8,
            },
            ChaosOp::FtlRetire { .. } => ChaosOp::FtlRetire {
                block: rng.lean_u64(),
            },
            ChaosOp::ZoneOpen => ChaosOp::ZoneOpen,
            ChaosOp::ZoneAppend { z, short_ttl } => ChaosOp::ZoneAppend {
                z: z.wrapping_add(rng.below(4)),
                short_ttl: !short_ttl,
            },
            ChaosOp::ZoneRead { z } => ChaosOp::ZoneRead {
                z: z.wrapping_add(rng.below(4)),
            },
            ChaosOp::ZoneReset { z } => ChaosOp::ZoneFinish { z: *z },
            ChaosOp::ZoneFinish { z } => ChaosOp::ZoneRetire { z: *z },
            ChaosOp::ZoneRetire { z } => ChaosOp::ZoneReset { z: *z },
            ChaosOp::Advance { .. } => ChaosOp::Advance {
                secs: rng.lean_below(3600),
            },
        }
    }

    fn simplify_op(&self, op: &ChaosOp) -> Option<ChaosOp> {
        match op {
            ChaosOp::Reseed { salt } if *salt > 0 => Some(ChaosOp::Reseed { salt: salt / 2 }),
            ChaosOp::FtlWrite { lpn } if *lpn > 0 => Some(ChaosOp::FtlWrite { lpn: lpn / 2 }),
            ChaosOp::FtlTrim { lpn } if *lpn > 0 => Some(ChaosOp::FtlTrim { lpn: lpn / 2 }),
            ChaosOp::FtlRead { lpn, rber_idx } if *lpn > 0 => Some(ChaosOp::FtlRead {
                lpn: lpn / 2,
                rber_idx: *rber_idx,
            }),
            ChaosOp::FtlRetire { block } if *block > 0 => {
                Some(ChaosOp::FtlRetire { block: block / 2 })
            }
            ChaosOp::ZoneAppend { z, short_ttl: true } => Some(ChaosOp::ZoneAppend {
                z: *z,
                short_ttl: false,
            }),
            ChaosOp::ZoneRead { z } if *z > 0 => Some(ChaosOp::ZoneRead { z: z / 2 }),
            ChaosOp::ZoneReset { z } if *z > 0 => Some(ChaosOp::ZoneReset { z: z / 2 }),
            ChaosOp::ZoneFinish { z } if *z > 0 => Some(ChaosOp::ZoneFinish { z: z / 2 }),
            ChaosOp::ZoneRetire { z } if *z > 0 => Some(ChaosOp::ZoneRetire { z: z / 2 }),
            ChaosOp::Advance { secs } if *secs > 0 => Some(ChaosOp::Advance { secs: secs / 2 }),
            _ => None,
        }
    }

    fn run(&self, ops: &[ChaosOp]) -> Result<(), String> {
        let mut w = build_world(mix2(BASE_SEED, 0));
        let pages = w.ftl.config().logical_pages();
        let zone_count = w.zones.len() as u64;
        for (i, op) in ops.iter().enumerate() {
            let mut touched_lpn = None;
            match op {
                ChaosOp::Reseed { salt } => {
                    w = build_world(mix2(BASE_SEED, *salt));
                }
                ChaosOp::FtlWrite { lpn } if !w.ftl_dead => {
                    let lpn = lpn % pages;
                    if w.ftl.write(lpn).is_err() {
                        // Data lost mid-program: the page is gone and the
                        // script treats the FTL as failed from here on.
                        w.live.remove(&lpn);
                        w.ftl_dead = true;
                    } else {
                        w.live.insert(lpn);
                    }
                    touched_lpn = Some(lpn);
                }
                ChaosOp::FtlTrim { lpn } if !w.ftl_dead => {
                    let lpn = lpn % pages;
                    w.ftl
                        .trim(lpn)
                        .map_err(|e| format!("op {i}: trim({lpn}) errored: {e:?}"))?;
                    w.live.remove(&lpn);
                    touched_lpn = Some(lpn);
                }
                ChaosOp::FtlRead { lpn, rber_idx } if !w.ftl_dead => {
                    let lpn = lpn % pages;
                    let rber = [1e-6, 7e-4, 3e-3][usize::from(*rber_idx) % 3];
                    if w.ftl.read_checked(lpn, rber).is_err() {
                        w.live.remove(&lpn);
                        w.ftl_dead = true;
                    }
                    touched_lpn = Some(lpn);
                }
                ChaosOp::FtlRetire { block } if !w.ftl_dead => {
                    // Cap retirements like the original script: past 8 the
                    // spare pool is too thin to guarantee remapping.
                    if w.ftl.blocks_retired() < 8 {
                        let block = (block % 64) as u32;
                        if w.ftl.retire_block(block).is_err() {
                            w.ftl_dead = true;
                        }
                    }
                }
                ChaosOp::FtlWrite { .. }
                | ChaosOp::FtlTrim { .. }
                | ChaosOp::FtlRead { .. }
                | ChaosOp::FtlRetire { .. } => {} // FTL is dead; skip.
                ChaosOp::ZoneOpen => {
                    if let Ok(opened) = w.ctrl.open_zone() {
                        let zi = opened.0 as usize;
                        if w.zones[zi] != ZoneState::Empty {
                            return Err(format!(
                                "op {i}: controller opened zone {zi} which oracle has {:?}",
                                w.zones[zi]
                            ));
                        }
                        w.zones[zi] = ZoneState::Open;
                    }
                }
                ChaosOp::ZoneAppend { z, short_ttl } => {
                    let zi = (z % zone_count) as usize;
                    let zid = ZoneId(zi as u32);
                    let retention = if *short_ttl {
                        SimDuration::from_secs(2)
                    } else {
                        SimDuration::from_hours(1)
                    };
                    let res = w.ctrl.append(w.now, zid, 256 * 1024, retention);
                    match w.zones[zi] {
                        ZoneState::Retired => {
                            if res != Err(ZoneError::ZoneRetired) {
                                return Err(format!(
                                    "op {i}: append to retired zone {zi} => {res:?}"
                                ));
                            }
                        }
                        ZoneState::Open => {
                            let wp = w.ctrl.write_pointer(zid).map_err(|e| {
                                format!("op {i}: write_pointer({zi}) errored: {e:?}")
                            })?;
                            if res.is_ok() && wp == w.ctrl.zone_bytes() {
                                w.zones[zi] = ZoneState::Full;
                            }
                        }
                        _ => {
                            if res.is_ok() {
                                return Err(format!(
                                    "op {i}: append to {:?} zone {zi} succeeded",
                                    w.zones[zi]
                                ));
                            }
                        }
                    }
                }
                ChaosOp::ZoneRead { z } => {
                    let zi = (z % zone_count) as usize;
                    let zid = ZoneId(zi as u32);
                    if w.zones[zi] == ZoneState::Retired {
                        let res = w
                            .ctrl
                            .read_checked(w.now, zid, 0, 1, SimDuration::from_hours(1));
                        if res.as_ref().err() != Some(&ZoneError::ZoneRetired) {
                            return Err(format!("op {i}: read of retired zone {zi} => {res:?}"));
                        }
                    } else {
                        let wp = w.ctrl.write_pointer(zid).unwrap_or(0);
                        if wp > 0 && w.zones[zi] != ZoneState::Empty {
                            let len = wp.min(64 * 1024);
                            let res = w
                                .ctrl
                                .read_checked(w.now, zid, 0, len, SimDuration::from_hours(1))
                                .map_err(|e| {
                                    format!("op {i}: read_checked({zi}) errored: {e:?}")
                                })?;
                            if res.action == RecoveryAction::Retired {
                                w.zones[zi] = ZoneState::Retired;
                            }
                        }
                    }
                }
                ChaosOp::ZoneReset { z } => {
                    let zi = (z % zone_count) as usize;
                    let res = w.ctrl.reset_zone(ZoneId(zi as u32));
                    if w.zones[zi] == ZoneState::Retired {
                        if res != Err(ZoneError::ZoneRetired) {
                            return Err(format!("op {i}: reset of retired zone {zi} => {res:?}"));
                        }
                    } else {
                        res.map_err(|e| format!("op {i}: reset_zone({zi}) errored: {e:?}"))?;
                        w.zones[zi] = ZoneState::Empty;
                    }
                }
                ChaosOp::ZoneFinish { z } => {
                    let zi = (z % zone_count) as usize;
                    let res = w.ctrl.finish_zone(ZoneId(zi as u32));
                    if w.zones[zi] == ZoneState::Open {
                        res.map_err(|e| format!("op {i}: finish_zone({zi}) errored: {e:?}"))?;
                        w.zones[zi] = ZoneState::Full;
                    } else if res.is_ok() {
                        return Err(format!(
                            "op {i}: finish of {:?} zone {zi} succeeded",
                            w.zones[zi]
                        ));
                    }
                }
                ChaosOp::ZoneRetire { z } => {
                    let zi = (z % zone_count) as usize;
                    w.ctrl
                        .retire_zone(ZoneId(zi as u32))
                        .map_err(|e| format!("op {i}: retire_zone({zi}) errored: {e:?}"))?;
                    if !self.sabotage {
                        // Documented sabotage: forget to mirror the
                        // retirement — the next zone scan diverges.
                        w.zones[zi] = ZoneState::Retired;
                    }
                }
                ChaosOp::Advance { secs } => {
                    w.now = w.now.saturating_add(SimDuration::from_secs(*secs));
                }
            }
            if let Some(lpn) = touched_lpn {
                spot_ftl(i, &w, lpn)?;
            }
            if i % SCAN_PERIOD == SCAN_PERIOD - 1 {
                scan_ftl(i, &w)?;
            }
            scan_zones(i, &w)?;
        }
        scan_ftl(ops.len(), &w)?;
        scan_zones(ops.len(), &w)
    }
}
