//! The five differential fuzz targets and the by-name dispatcher.
//!
//! Each target owns a small op language, a corpus of seed traces, and a
//! `run` that replays a trace through the real implementation and its
//! retained oracle side by side. Each also carries a **sabotage mode**
//! (`Target::new(true)`): a deliberately wrong model wired in behind a
//! flag, used by the harness's own end-to-end tests (and the
//! `--sabotage` CLI flag) to prove the whole pipeline — detect, shrink,
//! artifact, replay — actually fires when the differential breaks.
//! Sabotage is never enabled in CI smoke runs.

pub mod chaos;
pub mod control;
pub mod ecc;
pub mod pool;
pub mod queue;

use crate::artifact::{parse_artifact, write_artifact, ArtifactHeader};
use crate::engine::{campaign, derive_input, run_caught, shrink, FuzzTarget};
use std::path::{Path, PathBuf};

/// Stable CLI names of all targets, in the order `run --target all` uses.
pub const TARGET_NAMES: [&str; 5] = ["ecc", "pool", "queue", "chaos", "control"];

/// Result of one campaign: where the artifact landed, if anything broke.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Path of the written crash artifact, `None` if the run was clean.
    pub artifact: Option<PathBuf>,
    /// The (shrunk) failure message, `None` if the run was clean.
    pub failure: Option<String>,
}

fn drive<T: FuzzTarget>(
    target: &T,
    seed: u64,
    iters: u64,
    artifacts_dir: &Path,
    progress: &mut dyn FnMut(u64),
) -> Result<CampaignOutcome, String> {
    match campaign(target, seed, iters, progress) {
        None => Ok(CampaignOutcome {
            artifact: None,
            failure: None,
        }),
        Some(finding) => {
            let path = write_artifact(artifacts_dir, target.name(), &finding)
                .map_err(|e| format!("writing artifact: {e}"))?;
            Ok(CampaignOutcome {
                artifact: Some(path),
                failure: Some(finding.failure),
            })
        }
    }
}

/// Runs a campaign for the named target. `sabotage` enables the target's
/// documented broken-model mode (self-test only).
pub fn campaign_by_name(
    name: &str,
    sabotage: bool,
    seed: u64,
    iters: u64,
    artifacts_dir: &Path,
    progress: &mut dyn FnMut(u64),
) -> Result<CampaignOutcome, String> {
    match name {
        "ecc" => drive(
            &ecc::EccTarget::new(sabotage),
            seed,
            iters,
            artifacts_dir,
            progress,
        ),
        "pool" => drive(
            &pool::PoolTarget::new(sabotage),
            seed,
            iters,
            artifacts_dir,
            progress,
        ),
        "queue" => drive(
            &queue::QueueTarget::new(sabotage),
            seed,
            iters,
            artifacts_dir,
            progress,
        ),
        "chaos" => drive(
            &chaos::ChaosTarget::new(sabotage),
            seed,
            iters,
            artifacts_dir,
            progress,
        ),
        "control" => drive(
            &control::ControlTarget::new(sabotage),
            seed,
            iters,
            artifacts_dir,
            progress,
        ),
        other => Err(format!(
            "unknown target {other:?} (expected one of {TARGET_NAMES:?})"
        )),
    }
}

/// Result of replaying a crash artifact.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The failure the re-derived trace produced, after re-shrinking.
    pub failure: Option<String>,
    /// True if that failure message equals the one recorded in the
    /// artifact — i.e. the artifact replays to the same failure.
    pub matches: bool,
}

fn replay_one<T: FuzzTarget>(target: &T, header: &ArtifactHeader) -> ReplayOutcome {
    let ops = derive_input(target, header.seed, header.iteration);
    if run_caught(target, &ops).is_ok() {
        return ReplayOutcome {
            failure: None,
            matches: false,
        };
    }
    // Shrinking is deterministic, so a faithful replay reproduces not
    // just *a* failure but the exact recorded (shrunk) failure message.
    let (_, failure) = shrink(target, &ops);
    let matches = failure == header.failure;
    ReplayOutcome {
        failure: Some(failure),
        matches,
    }
}

/// Replays the artifact at `path`: re-derives the trace from the recorded
/// `(target, seed, iteration)`, re-runs, re-shrinks, and compares the
/// failure message against the recorded one.
pub fn replay_artifact(path: &Path, sabotage: bool) -> Result<ReplayOutcome, String> {
    let header = parse_artifact(path)?;
    match header.target.as_str() {
        "ecc" => Ok(replay_one(&ecc::EccTarget::new(sabotage), &header)),
        "pool" => Ok(replay_one(&pool::PoolTarget::new(sabotage), &header)),
        "queue" => Ok(replay_one(&queue::QueueTarget::new(sabotage), &header)),
        "chaos" => Ok(replay_one(&chaos::ChaosTarget::new(sabotage), &header)),
        "control" => Ok(replay_one(&control::ControlTarget::new(sabotage), &header)),
        other => Err(format!("artifact names unknown target {other:?}")),
    }
}
