//! The campaign engine: derive → run → shrink.
//!
//! Every fuzz input is a *trace* — a `Vec<Op>` for some target-specific
//! `Op` — and is a pure function of `(campaign_seed, iteration)`:
//!
//! 1. seed the per-iteration stream with `mix2(campaign_seed, iteration)`,
//! 2. pick one of the target's corpus traces,
//! 3. apply 1..=8 structural mutations (insert / delete / duplicate /
//!    replace / swap / truncate / append-run), each drawing fresh ops
//!    from the target's generator.
//!
//! There is no coverage feedback and no on-disk corpus evolution — the
//! corpus is the target's hand-written seed traces, and novelty comes
//! entirely from the mutation walk. That trade buys the property the
//! whole harness is built around: a crash artifact needs to record only
//! `(target, seed, iteration)` to replay byte-identically, forever.
//!
//! Shrinking is bounded ddmin: remove chunks of halving size while the
//! failure reproduces, then ask the target to simplify surviving ops one
//! at a time (`simplify_op`), capped at [`SHRINK_BUDGET`] executions so a
//! slow target cannot stall a campaign.

use crate::rng::{mix2, FuzzRng};
use std::fmt::Debug;

/// Upper bound on trace length after mutation. Long traces slow every
/// iteration and rarely fail for reasons short ones can't express.
pub const MAX_TRACE_LEN: usize = 256;

/// Maximum failing-trace re-executions spent shrinking one finding.
pub const SHRINK_BUDGET: usize = 2_000;

/// A differential fuzz target: a domain of operations, seed traces, and
/// an executor that runs a trace against implementation + oracle and
/// reports the first divergence.
pub trait FuzzTarget {
    /// One operation in this target's trace language.
    type Op: Clone + Debug;

    /// Stable target name (CLI selector and artifact header field).
    fn name(&self) -> &'static str;

    /// Hand-written seed traces; mutation starts from one of these.
    /// Must be non-empty (an empty trace is a valid corpus entry).
    fn corpus(&self) -> Vec<Vec<Self::Op>>;

    /// Draw a fresh random op.
    fn gen_op(&self, rng: &mut FuzzRng) -> Self::Op;

    /// Mutate one op in place-ish (value-level tweak, not structural).
    fn mutate_op(&self, op: &Self::Op, rng: &mut FuzzRng) -> Self::Op;

    /// Propose a strictly simpler version of `op` for shrinking, or
    /// `None` if it is already minimal. "Simpler" must be well-founded
    /// (repeated application terminates).
    fn simplify_op(&self, op: &Self::Op) -> Option<Self::Op>;

    /// Execute the trace against implementation and oracle. `Ok(())`
    /// means every observable agreed; `Err` carries the first divergence.
    /// Must be deterministic in `ops` alone.
    fn run(&self, ops: &[Self::Op]) -> Result<(), String>;
}

/// Runs the target, converting a panic in either the implementation or
/// the oracle into an `Err` finding — a panic is a crash, not a reason
/// to lose the campaign. The payload message is folded into the failure
/// string so panics shrink and replay like any divergence.
pub fn run_caught<T: FuzzTarget>(target: &T, ops: &[T::Op]) -> Result<(), String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| target.run(ops))).unwrap_or_else(
        |payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("panic: {msg}"))
        },
    )
}

/// Derives the fuzz input for `(campaign_seed, iteration)`. Public so
/// artifact replay and tests can reproduce the exact trace the campaign
/// executed.
pub fn derive_input<T: FuzzTarget>(target: &T, seed: u64, iteration: u64) -> Vec<T::Op> {
    let mut rng = FuzzRng::new(mix2(seed, iteration));
    let corpus = target.corpus();
    assert!(
        !corpus.is_empty(),
        "target {} has an empty corpus",
        target.name()
    );
    let mut trace = corpus[rng.index(corpus.len())].clone();
    let rounds = 1 + rng.index(8);
    for _ in 0..rounds {
        mutate_trace(target, &mut trace, &mut rng);
    }
    trace.truncate(MAX_TRACE_LEN);
    trace
}

/// One structural mutation round.
fn mutate_trace<T: FuzzTarget>(target: &T, trace: &mut Vec<T::Op>, rng: &mut FuzzRng) {
    match rng.below(7) {
        // Insert a fresh op at a random position.
        0 => {
            let at = rng.index(trace.len() + 1);
            let op = target.gen_op(rng);
            trace.insert(at, op);
        }
        // Delete one op.
        1 => {
            if !trace.is_empty() {
                let at = rng.index(trace.len());
                trace.remove(at);
            }
        }
        // Duplicate one op in place (double-free / double-pop probes).
        2 => {
            if !trace.is_empty() {
                let at = rng.index(trace.len());
                let op = trace[at].clone();
                trace.insert(at, op);
            }
        }
        // Value-mutate one op.
        3 => {
            if !trace.is_empty() {
                let at = rng.index(trace.len());
                trace[at] = target.mutate_op(&trace[at], rng);
            }
        }
        // Swap two ops (reorder probes).
        4 => {
            if trace.len() >= 2 {
                let a = rng.index(trace.len());
                let b = rng.index(trace.len());
                trace.swap(a, b);
            }
        }
        // Truncate the tail.
        5 => {
            if !trace.is_empty() {
                let keep = rng.index(trace.len());
                trace.truncate(keep);
            }
        }
        // Append a run of fresh ops (burst probes).
        _ => {
            let n = 1 + rng.index(16);
            for _ in 0..n {
                let op = target.gen_op(rng);
                trace.push(op);
            }
        }
    }
}

/// A confirmed finding: the original derivation coordinates, the failure
/// message, and the shrunk trace.
#[derive(Debug)]
pub struct Finding<Op> {
    pub seed: u64,
    pub iteration: u64,
    pub failure: String,
    pub shrunk: Vec<Op>,
    pub original_len: usize,
}

/// Bounded ddmin + per-op simplification. `failure` is the message the
/// unshrunk trace produced; a candidate only replaces the current trace
/// if it fails at all (any message — divergence messages embed indices,
/// so insisting on message equality would block most size reductions).
pub fn shrink<T: FuzzTarget>(target: &T, ops: &[T::Op]) -> (Vec<T::Op>, String) {
    let mut best: Vec<T::Op> = ops.to_vec();
    let mut message = match run_caught(target, &best) {
        Err(m) => m,
        Ok(()) => return (best, String::from("failure did not reproduce")),
    };
    let mut budget = SHRINK_BUDGET;

    // Phase 1: chunk removal with halving chunk sizes.
    let mut chunk = best.len().div_ceil(2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut start = 0;
        let mut removed_any = false;
        while start < best.len() && budget > 0 {
            let end = (start + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len() - (end - start));
            candidate.extend_from_slice(&best[..start]);
            candidate.extend_from_slice(&best[end..]);
            budget -= 1;
            if let Err(m) = run_caught(target, &candidate) {
                best = candidate;
                message = m;
                removed_any = true;
                // Retry the same start: the window now holds new ops.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }

    // Phase 2: per-op simplification to fixpoint.
    let mut progress = true;
    while progress && budget > 0 {
        progress = false;
        for i in 0..best.len() {
            let mut current = best[i].clone();
            while let Some(simpler) = target.simplify_op(&current) {
                if budget == 0 {
                    break;
                }
                let mut candidate = best.clone();
                candidate[i] = simpler.clone();
                budget -= 1;
                if let Err(m) = run_caught(target, &candidate) {
                    best = candidate;
                    message = m;
                    current = simpler;
                    progress = true;
                } else {
                    break;
                }
            }
        }
    }

    (best, message)
}

/// Runs `iters` derived inputs for `(target, seed)`, stopping at the
/// first failure. Returns the shrunk finding, or `None` if the campaign
/// ran clean. `progress` is called every few hundred iterations with the
/// count done so far (the CLI uses it; tests pass a no-op).
pub fn campaign<T: FuzzTarget>(
    target: &T,
    seed: u64,
    iters: u64,
    mut progress: impl FnMut(u64),
) -> Option<Finding<T::Op>> {
    for iteration in 0..iters {
        if iteration != 0 && iteration % 500 == 0 {
            progress(iteration);
        }
        let ops = derive_input(target, seed, iteration);
        if let Err(first_failure) = run_caught(target, &ops) {
            let original_len = ops.len();
            let (shrunk, failure) = shrink(target, &ops);
            // Prefer the shrunk message, but a shrink that somehow lost
            // the failure falls back to the original trace + message.
            if failure == "failure did not reproduce" {
                return Some(Finding {
                    seed,
                    iteration,
                    failure: first_failure,
                    shrunk: ops,
                    original_len,
                });
            }
            return Some(Finding {
                seed,
                iteration,
                failure,
                shrunk,
                original_len,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy target: ops are u64s, the "implementation" fails whenever a
    /// trace contains a value that is ≡ 3 (mod 7) and ≥ 10.
    struct Toy;

    impl FuzzTarget for Toy {
        type Op = u64;
        fn name(&self) -> &'static str {
            "toy"
        }
        fn corpus(&self) -> Vec<Vec<u64>> {
            vec![vec![], vec![1, 2, 3]]
        }
        fn gen_op(&self, rng: &mut FuzzRng) -> u64 {
            // mrm-lint: allow(U1) toy-op value bound, not a byte capacity
            rng.lean_below(1 << 20)
        }
        fn mutate_op(&self, op: &u64, rng: &mut FuzzRng) -> u64 {
            op.wrapping_add(rng.lean_below(100))
        }
        fn simplify_op(&self, op: &u64) -> Option<u64> {
            (*op >= 10).then_some(op / 2)
        }
        fn run(&self, ops: &[u64]) -> Result<(), String> {
            for (i, &v) in ops.iter().enumerate() {
                if v >= 10 && v % 7 == 3 {
                    return Err(format!("op {i}: bad value {v}"));
                }
            }
            Ok(())
        }
    }

    #[test]
    fn derive_is_deterministic() {
        let t = Toy;
        for iter in 0..50 {
            assert_eq!(derive_input(&t, 99, iter), derive_input(&t, 99, iter));
        }
        // Different iterations produce different traces at least sometimes.
        let distinct = (0..50)
            .map(|i| derive_input(&t, 99, i))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn campaign_finds_and_shrinks() {
        let t = Toy;
        let finding = campaign(&t, 0xABCD, 10_000, |_| {}).expect("toy bug should be found");
        // The shrunk trace still fails…
        assert!(t.run(&finding.shrunk).is_err());
        // …and is minimal: a single op, itself unsimplifiable-while-failing.
        assert_eq!(finding.shrunk.len(), 1, "shrunk: {:?}", finding.shrunk);
        let v = finding.shrunk[0];
        assert!(v >= 10 && v % 7 == 3);
        if let Some(simpler) = t.simplify_op(&v) {
            assert!(t.run(&[simpler]).is_ok(), "shrinker left slack: {v}");
        }
    }

    #[test]
    fn campaign_replays_to_same_finding() {
        let t = Toy;
        let a = campaign(&t, 0xABCD, 10_000, |_| {}).expect("find");
        let b = campaign(&t, 0xABCD, 10_000, |_| {}).expect("find");
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.failure, b.failure);
        assert_eq!(a.shrunk, b.shrunk);
    }

    #[test]
    fn clean_target_runs_clean() {
        struct Clean;
        impl FuzzTarget for Clean {
            type Op = u8;
            fn name(&self) -> &'static str {
                "clean"
            }
            fn corpus(&self) -> Vec<Vec<u8>> {
                vec![vec![0]]
            }
            fn gen_op(&self, rng: &mut FuzzRng) -> u8 {
                (rng.next_u64() & 0xFF) as u8
            }
            fn mutate_op(&self, op: &u8, _rng: &mut FuzzRng) -> u8 {
                op.wrapping_add(1)
            }
            fn simplify_op(&self, _op: &u8) -> Option<u8> {
                None
            }
            fn run(&self, _ops: &[u8]) -> Result<(), String> {
                Ok(())
            }
        }
        assert!(campaign(&Clean, 1, 2_000, |_| {}).is_none());
    }
}
