//! `mrm-faults`: deterministic fault injection for the MRM simulator.
//!
//! MRM's core bet (PAPER.md §4) is memory that is *allowed* to fail in
//! managed ways: retention is relaxed to data lifetime and the residual
//! raw bit errors are absorbed by retention-aware ECC, scrubbing, and
//! placement. This crate supplies the failure half of that loop:
//!
//! * [`FaultModel`] maps a device operating point (its raw bit error rate
//!   from the `mrm-device` age/wear curves) to sampled error counts and
//!   pushes representative codewords through the real `mrm-ecc` decoders,
//!   yielding corrected / detected-uncorrectable / silent outcomes;
//! * [`FaultRng`] is the dedicated randomness stream those samples come
//!   from — never the scheduling stream (`mrm-lint` rule D6), so the same
//!   seed flips the same bits at any thread count;
//! * [`FaultStats`] accumulates the taxonomy for telemetry;
//! * [`RecoveryAction`] names what the controller recovery state machines
//!   (retry → scrub escalation → retirement, in `mrm-controller`) did.

pub mod model;
pub mod rng;
pub mod stats;

pub use model::{CodecKind, FaultConfig, FaultModel, ReadFaults, RecoveryAction};
pub use rng::FaultRng;
pub use stats::FaultStats;
