//! The dedicated fault-randomness stream.
//!
//! Determinism contract (DESIGN.md §9): every random decision the fault
//! layer makes — how many bits flip, which codewords fail, what data a
//! decoder probe sees — comes from a [`FaultRng`], a stream derived from
//! the simulation seed but *separate* from the scheduling stream. The
//! scheduling RNG is never consulted, so enabling injection cannot perturb
//! arrival times or event order, and the no-faults run of a simulation is
//! byte-identical to a disabled-faults run.
//!
//! This module is the only place in the crate allowed to name the
//! underlying generator type; `mrm-lint` rule D6 enforces that everything
//! else draws through [`FaultRng`].

use mrm_sim::rng::SimRng;

/// Fixed salt XORed into the simulation seed so the fault stream and the
/// scheduling stream never alias even though both derive from one seed.
const FAULT_STREAM_SALT: u64 = 0xFA17_5EED_0DD0_BA11;

/// A deterministic random stream reserved for fault injection.
///
/// Wraps the workspace generator behind a narrower API; see the module
/// docs for why the wrapper exists.
#[derive(Clone, Debug)]
pub struct FaultRng {
    inner: SimRng,
}

impl FaultRng {
    /// Derives the fault stream for a simulation seeded with `sim_seed`.
    pub fn for_seed(sim_seed: u64) -> Self {
        FaultRng {
            inner: SimRng::seed_from(sim_seed ^ FAULT_STREAM_SALT),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Uniform integer in `[0, bound)` (0 when `bound` is 0).
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        self.inner.gen_range_u64(bound)
    }

    /// Uniform index into a collection of `len` elements.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.inner.gen_index(len)
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultRng::for_seed(42);
        let mut b = FaultRng::for_seed(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_is_salted_away_from_the_scheduler() {
        // The fault stream seeded from X must not replay the scheduling
        // stream seeded from X: identical prefixes would correlate "which
        // bits flip" with "when requests arrive".
        let mut fault = FaultRng::for_seed(7);
        let mut sched = SimRng::seed_from(7);
        let distinct = (0..16).any(|_| fault.next_u64() != sched.next_u64());
        assert!(distinct, "fault stream aliases the scheduling stream");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultRng::for_seed(1);
        let mut b = FaultRng::for_seed(2);
        let distinct = (0..16).any(|_| a.next_u64() != b.next_u64());
        assert!(distinct);
    }
}
