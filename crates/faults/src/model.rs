//! The fault model: device operating point → raw BER → decode outcomes.
//!
//! A read of `len` bytes at raw bit error rate `p` (the device model's
//! age/wear curve output, see `mrm_device::cell`) is decomposed into ECC
//! codewords. The *number* of raw flips and the per-codeword outcome
//! classes are sampled exactly from their binomial laws using
//! `mrm_ecc::analysis::codeword_failure_prob`, and a bounded number of
//! uncorrectable candidates are pushed through the *real* decoder
//! (`mrm_ecc::Bch` or `mrm_ecc::Hamming`) on adversarially flipped
//! codewords, so detected-vs-miscorrected is decided by actual decoder
//! behaviour, not by an assumed rate.
//!
//! Outcome taxonomy (DESIGN.md §9):
//!
//! * **corrected** — the decoder returned the written data;
//! * **detected UE** — the decoder flagged the codeword uncorrectable
//!   (recovery machinery takes over);
//! * **miscorrected** — the decoder returned *wrong* data believing it
//!   corrected; with an outer CRC configured this is caught and demoted to
//!   a detected UE, otherwise it is **silent** data corruption.
//!
//! Every sample draws from the dedicated [`FaultRng`] stream with a
//! bounded number of draws per read, so the stream stays aligned across
//! runs and thread counts (the hard-determinism contract).

use mrm_ecc::analysis::codeword_failure_prob;
use mrm_ecc::{Bch, Hamming, HammingOutcome};

use crate::rng::FaultRng;
use crate::stats::FaultStats;

/// Which inner code guards a controller's reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecKind {
    /// DRAM-style SECDED(72,64): corrects 1 bit per word, detects 2.
    Secded72,
    /// Shortened binary BCH correcting `t` errors over `data_bits` data
    /// bits (field size is chosen automatically).
    Bch { data_bits: u32, t: u32 },
}

/// Fault-injection configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Master switch. When false no fault layer is built at all.
    pub enabled: bool,
    /// Multiplier on the device-model RBER (0 disables injection while
    /// keeping the layer constructed — used by the differential tests).
    pub ber_scale: f64,
    /// Inner code the injected errors are decoded against.
    pub codec: CodecKind,
    /// Uncorrectable-candidate codewords per read classified by a real
    /// decoder probe; candidates beyond the cap count as detected.
    pub decoder_probes: u32,
    /// Whether an outer CRC catches decoder miscorrections, demoting
    /// silent corruption to a detected UE (standard storage practice).
    pub outer_crc: bool,
    /// Cluster knob: when set, KV data is provisioned at
    /// `margin × followup_window` retention instead of the tier-native
    /// class — the `e11_faults` sweep axis (margin 1 = retention exactly
    /// equal to data lifetime).
    pub provision_margin: Option<f64>,
}

impl FaultConfig {
    /// Injection off; the read path behaves exactly as if the fault layer
    /// did not exist.
    pub fn disabled() -> Self {
        FaultConfig {
            enabled: false,
            ber_scale: 1.0,
            codec: CodecKind::Bch {
                data_bits: 512,
                t: 2,
            },
            decoder_probes: 4,
            outer_crc: true,
            provision_margin: None,
        }
    }

    /// The standard MRM read-path configuration: BCH t=2 over 512-bit
    /// data words behind an outer CRC.
    pub fn mrm() -> Self {
        FaultConfig {
            enabled: true,
            ..FaultConfig::disabled()
        }
    }

    /// The standard DRAM configuration: SECDED(72,64) per word.
    pub fn dram() -> Self {
        FaultConfig {
            enabled: true,
            codec: CodecKind::Secded72,
            ..FaultConfig::disabled()
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

/// Outcome of one injected read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadFaults {
    /// ECC codewords the read spanned.
    pub codewords: u64,
    /// Total bits scanned (data + parity).
    pub bits: u64,
    /// Raw bit flips injected.
    pub raw_flips: u64,
    /// Codewords corrected by the inner code.
    pub corrected: u64,
    /// Codewords flagged uncorrectable by the decoder.
    pub detected_ue: u64,
    /// Codewords miscorrected but caught by the outer CRC.
    pub miscorrected: u64,
    /// Codewords silently corrupted (escaped every layer).
    pub silent: u64,
}

impl ReadFaults {
    /// Whether recovery machinery must engage: any outcome the inner code
    /// could not transparently fix.
    pub fn uncorrectable(&self) -> bool {
        self.detected_ue > 0 || self.miscorrected > 0
    }

    /// Field-wise accumulation (used when a recovery sequence re-reads).
    pub fn merge(&mut self, o: &ReadFaults) {
        self.codewords += o.codewords;
        self.bits += o.bits;
        self.raw_flips += o.raw_flips;
        self.corrected += o.corrected;
        self.detected_ue += o.detected_ue;
        self.miscorrected += o.miscorrected;
        self.silent += o.silent;
    }
}

/// What the recovery state machine did about a read (DESIGN.md §9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Clean or corrected inline; nothing to recover.
    #[default]
    None,
    /// A retry re-read cleared the uncorrectable outcome.
    Retried,
    /// Scrub escalation (rewrite in place, then re-read) cleared it.
    Scrubbed,
    /// Scrubbing did not clear it (or the region wore out): retired.
    Retired,
}

#[derive(Clone, Debug)]
enum Codec {
    Secded(Hamming),
    Bch(Bch),
}

enum Probe {
    Corrected,
    Detected,
    Miscorrected,
}

/// Pre-drawn input for one decoder probe: the written data and the
/// adversarially flipped codeword.
struct ProbeInput {
    data: Vec<u8>,
    cw: Vec<u8>,
}

/// The deterministic fault injector for one controller or tier.
#[derive(Clone, Debug)]
pub struct FaultModel {
    cfg: FaultConfig,
    codec: Codec,
    /// Codeword bits (data + parity).
    n: u64,
    /// Data bits per codeword.
    k: u64,
    /// Correction capability of the inner code.
    t: u64,
    rng: FaultRng,
    stats: FaultStats,
}

impl FaultModel {
    /// Builds the model; `sim_seed` is the *simulation* seed (the fault
    /// stream is salted away from the scheduling stream internally).
    pub fn new(cfg: FaultConfig, sim_seed: u64) -> Self {
        let codec = match cfg.codec {
            CodecKind::Secded72 => Codec::Secded(Hamming::secded_72_64()),
            CodecKind::Bch { data_bits, t } => {
                let data = data_bits.max(1) as usize;
                let t = t.max(1) as usize;
                // Smallest field with room for data + parity: 2^m - 1 >= k + m t.
                let mut m = 4u32;
                while (1u64 << m) - 1 < data as u64 + u64::from(m) * t as u64 {
                    m += 1;
                }
                Codec::Bch(Bch::with_data_len(m, t, data))
            }
        };
        let (n, k, t) = match &codec {
            Codec::Secded(h) => (h.codeword_len() as u64, h.data_len() as u64, 1),
            Codec::Bch(c) => (c.n() as u64, c.k() as u64, c.t() as u64),
        };
        FaultModel {
            cfg,
            codec,
            n,
            k,
            t,
            rng: FaultRng::for_seed(sim_seed),
            stats: FaultStats::default(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Cumulative outcome totals.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Codeword bits of the inner code (data + parity).
    pub fn codeword_bits(&self) -> u64 {
        self.n
    }

    /// Data bits per codeword.
    pub fn data_bits(&self) -> u64 {
        self.k
    }

    /// Correction capability of the inner code.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// The RBER injection actually uses: device RBER × `ber_scale`,
    /// clamped to the physical `[0, 0.5]` range.
    pub fn effective_rber(&self, rber: f64) -> f64 {
        (rber * self.cfg.ber_scale).clamp(0.0, 0.5)
    }

    /// Injects faults into a read of `len_bytes` at device raw bit error
    /// rate `rber` and decodes them through the inner code.
    ///
    /// At zero effective RBER this is a **true no-op**: no RNG draw, no
    /// stats mutation — the guarantee behind the differential chaos test
    /// (enabled-at-rate-0 ≡ disabled, byte for byte).
    pub fn inject_read(&mut self, len_bytes: u64, rber: f64) -> ReadFaults {
        let mut out = ReadFaults::default();
        let p = self.effective_rber(rber);
        if len_bytes == 0 || p <= 0.0 {
            return out;
        }
        self.stats.reads += 1;
        let data_bits = len_bytes.saturating_mul(8);
        out.codewords = data_bits.div_ceil(self.k);
        out.bits = out.codewords.saturating_mul(self.n);
        out.raw_flips = sample_binomial(&mut self.rng, out.bits, p);
        if out.raw_flips > 0 {
            // Exact per-codeword class split: P[any error] and
            // P[uncorrectable] from the binomial law, the correctable
            // class conditioned on not-UE.
            let nf = self.n as f64;
            let p_any = -(nf * (-p).ln_1p()).exp_m1();
            let p_ue = codeword_failure_prob(self.n, self.t, p);
            let ue = sample_binomial(&mut self.rng, out.codewords, p_ue);
            let p_corr = if p_ue < 1.0 {
                ((p_any - p_ue) / (1.0 - p_ue)).clamp(0.0, 1.0)
            } else {
                0.0
            };
            out.corrected = sample_binomial(&mut self.rng, out.codewords - ue, p_corr);
            // Raw flips landed somewhere: at least one codeword saw an
            // error even if the class sampler rounded both classes to 0.
            if ue == 0 && out.corrected == 0 {
                out.corrected = 1;
            }
            // Classify UE candidates through the real decoder on
            // adversarially flipped codewords (t+1 distinct positions).
            // Inputs are drawn sequentially (decoding consumes no RNG, so
            // the stream is identical to a draw/decode interleave) and the
            // whole ladder is decoded in one batch.
            let probes = ue.min(u64::from(self.cfg.decoder_probes));
            out.detected_ue = ue - probes;
            let inputs: Vec<ProbeInput> =
                (0..probes).map(|_| self.probe_input(self.t + 1)).collect();
            for p in self.classify_batch(&inputs) {
                match p {
                    Probe::Detected => out.detected_ue += 1,
                    Probe::Corrected => out.corrected += 1,
                    Probe::Miscorrected => {
                        if self.cfg.outer_crc {
                            out.miscorrected += 1;
                        } else {
                            out.silent += 1;
                        }
                    }
                }
            }
            // Exercise the corrected path with one real ≤t decode; a
            // failure here is an ECC bug and is surfaced, not hidden.
            if out.corrected > 0 {
                let e = 1 + self.rng.gen_range_u64(self.t);
                let input = self.probe_input(e);
                match self.classify_batch(std::slice::from_ref(&input))[0] {
                    Probe::Corrected => {}
                    Probe::Detected => {
                        out.corrected -= 1;
                        out.detected_ue += 1;
                    }
                    Probe::Miscorrected => {
                        out.corrected -= 1;
                        out.silent += 1;
                    }
                }
            }
        }
        self.stats.absorb(&out);
        out
    }

    /// Draws one probe's input: encodes random data and flips `errors`
    /// distinct bits. This is the *only* RNG-consuming half of a probe —
    /// classification is pure, so inputs can be drawn up front and decoded
    /// as one batch without moving a single draw.
    fn probe_input(&mut self, errors: u64) -> ProbeInput {
        let n = self.n as usize;
        let mut data = vec![0u8; self.k as usize];
        for chunk in data.chunks_mut(64) {
            let mut w = self.rng.next_u64();
            for b in chunk.iter_mut() {
                *b = (w & 1) as u8;
                w >>= 1;
            }
        }
        let mut cw = match &self.codec {
            Codec::Secded(h) => h.encode(&data),
            Codec::Bch(c) => c.encode(&data),
        };
        let mut flipped: Vec<usize> = Vec::with_capacity(errors as usize);
        while (flipped.len() as u64) < errors.min(self.n) {
            let i = self.rng.gen_index(n);
            if !flipped.contains(&i) {
                flipped.push(i);
                cw[i] ^= 1;
            }
        }
        ProbeInput { data, cw }
    }

    /// Decodes a slice of probe inputs through the batched inner decoder
    /// and classifies each outcome. RNG-free.
    fn classify_batch(&self, inputs: &[ProbeInput]) -> Vec<Probe> {
        let refs: Vec<&[u8]> = inputs.iter().map(|p| p.cw.as_slice()).collect();
        match &self.codec {
            Codec::Secded(h) => h
                .decode_batch(&refs)
                .into_iter()
                .zip(inputs)
                .map(|((out, outcome), p)| match outcome {
                    HammingOutcome::DoubleError => Probe::Detected,
                    _ if out == p.data => Probe::Corrected,
                    _ => Probe::Miscorrected,
                })
                .collect(),
            Codec::Bch(c) => c
                .decode_batch(&refs)
                .into_iter()
                .zip(inputs)
                .map(|(res, p)| match res {
                    Err(_) => Probe::Detected,
                    Ok((out, _)) if out == p.data => Probe::Corrected,
                    Ok(_) => Probe::Miscorrected,
                })
                .collect(),
        }
    }
}

/// Exact-law binomial sampler with a bounded, deterministic number of RNG
/// draws per call:
///
/// * `n ≤ 64` — exact Bernoulli counting (`n` draws);
/// * small mean — BINV inversion of a single uniform through the CDF;
/// * large mean — normal approximation via the inverse CDF of a single
///   uniform (deterministic, no rejection loop).
fn sample_binomial(rng: &mut FaultRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - sample_binomial(rng, n, 1.0 - p);
    }
    if n <= 64 {
        let mut k = 0u64;
        for _ in 0..n {
            if rng.gen_bool(p) {
                k += 1;
            }
        }
        return k;
    }
    let mean = n as f64 * p;
    if mean < 32.0 {
        // BINV: P(0) = (1-p)^n, then the recurrence
        // P(k+1) = P(k) · (n-k)/(k+1) · p/(1-p).
        let q = 1.0 - p;
        let s = p / q;
        let mut f = (n as f64 * q.ln()).exp();
        let mut u = rng.next_f64();
        let mut k = 0u64;
        while u > f {
            u -= f;
            k += 1;
            if k > n || f < f64::MIN_POSITIVE {
                // Far-tail underflow guard; probability mass ~0 here.
                return k.min(n);
            }
            f *= s * ((n - k + 1) as f64) / k as f64;
        }
        return k;
    }
    // Normal approximation (np and n(1-p) both > 30 in this branch since
    // p ≤ 0.5 and mean ≥ 32).
    let sd = (mean * (1.0 - p)).sqrt();
    let z = inverse_normal_cdf(rng.next_f64());
    let draw = (mean + z * sd).round();
    if draw < 0.0 {
        0
    } else {
        (draw as u64).min(n)
    }
}

/// Acklam's rational approximation to the standard normal inverse CDF
/// (|relative error| < 1.2e-9) — deterministic, branch-stable, one call
/// per large-mean binomial sample.
fn inverse_normal_cdf(u: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let u = u.clamp(1e-12, 1.0 - 1e-12);
    if u < P_LOW {
        let q = (-2.0 * u.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if u <= 1.0 - P_LOW {
        let q = u - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - u).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::units::MIB;

    #[test]
    fn zero_rate_is_a_true_noop() {
        let mut m = FaultModel::new(FaultConfig::mrm(), 1);
        let before = m.rng.clone();
        let r = m.inject_read(MIB, 0.0);
        assert_eq!(r, ReadFaults::default());
        assert_eq!(m.stats(), &FaultStats::default());
        // Not a single RNG draw happened.
        let mut a = before;
        let mut b = m.rng.clone();
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ber_scale_zero_is_a_true_noop() {
        let mut cfg = FaultConfig::mrm();
        cfg.ber_scale = 0.0;
        let mut m = FaultModel::new(cfg, 1);
        let r = m.inject_read(MIB, 1e-3);
        assert_eq!(r, ReadFaults::default());
        assert_eq!(m.stats().reads, 0);
    }

    #[test]
    fn bch_geometry_matches_config() {
        let m = FaultModel::new(FaultConfig::mrm(), 0);
        assert_eq!(m.data_bits(), 512);
        assert_eq!(m.t(), 2);
        // GF(2^10): 512 data + 10·2 parity = 532 bits.
        assert_eq!(m.codeword_bits(), 532);
    }

    #[test]
    fn secded_geometry() {
        let m = FaultModel::new(FaultConfig::dram(), 0);
        assert_eq!(m.codeword_bits(), 72);
        assert_eq!(m.data_bits(), 64);
        assert_eq!(m.t(), 1);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = FaultModel::new(FaultConfig::mrm(), seed);
            let mut rs = Vec::new();
            for i in 0..32u64 {
                rs.push(m.inject_read(4096 + i * 128, 1e-4));
            }
            (rs, *m.stats())
        };
        let (a, sa) = run(7);
        let (b, sb) = run(7);
        assert_eq!(a, b, "same seed must flip the same bits");
        assert_eq!(sa, sb);
        let (c, _) = run(8);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn low_rber_corrects_high_rber_breaks_through() {
        let mut m = FaultModel::new(FaultConfig::mrm(), 3);
        // 64 MiB at fresh RBER: everything the code sees is correctable.
        let fresh = m.inject_read(64 * MIB, 1e-9);
        assert_eq!(fresh.detected_ue + fresh.miscorrected + fresh.silent, 0);
        // Same read at end-of-retention RBER: t=2 over 532 bits cannot
        // absorb 1e-4 on ~1M codewords without uncorrectables.
        let aged = m.inject_read(64 * MIB, 1e-4);
        assert!(aged.raw_flips > fresh.raw_flips);
        assert!(aged.corrected > 0);
        assert!(aged.uncorrectable(), "{aged:?}");
        // The outer CRC demotes every miscorrection: nothing silent.
        assert_eq!(aged.silent, 0);
    }

    #[test]
    fn without_outer_crc_miscorrections_go_silent() {
        let mut cfg = FaultConfig::mrm();
        cfg.outer_crc = false;
        cfg.decoder_probes = 64;
        let mut m = FaultModel::new(cfg, 11);
        let mut silent = 0;
        let mut caught = 0;
        for _ in 0..200 {
            let r = m.inject_read(8 * MIB, 1e-4);
            silent += r.silent;
            caught += r.miscorrected;
        }
        assert_eq!(caught, 0, "no CRC, nothing to catch");
        // BCH t=2 miscorrects some t+1 patterns onto other codewords;
        // without the CRC those are SDC.
        assert!(silent > 0, "expected some silent corruption");
    }

    #[test]
    fn secded_detects_double_errors() {
        let mut cfg = FaultConfig::dram();
        cfg.decoder_probes = 32;
        let mut m = FaultModel::new(cfg, 5);
        let mut ue = 0;
        for _ in 0..100 {
            let r = m.inject_read(MIB, 1e-3);
            ue += r.detected_ue + r.miscorrected;
            assert_eq!(r.silent, 0, "SECDED guarantees double detection");
        }
        assert!(ue > 0);
    }

    #[test]
    fn binomial_sampler_tracks_the_mean() {
        let mut rng = FaultRng::for_seed(1);
        for &(n, p) in &[
            (50u64, 0.3f64),
            (10_000, 1e-3),
            (1_000_000, 1e-4),
            (500_000, 0.4),
        ] {
            let rounds = 300;
            let mut total = 0u64;
            for _ in 0..rounds {
                let k = sample_binomial(&mut rng, n, p);
                assert!(k <= n);
                total += k;
            }
            let mean = total as f64 / f64::from(rounds);
            let expect = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            let tol = 5.0 * sd / f64::from(rounds).sqrt() + 1e-9;
            assert!(
                (mean - expect).abs() < tol,
                "n={n} p={p}: mean {mean} vs {expect} (tol {tol})"
            );
        }
    }

    #[test]
    fn inverse_normal_cdf_matches_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.001) + 3.090232).abs() < 1e-4);
        // Extremes stay finite.
        assert!(inverse_normal_cdf(0.0).is_finite());
        assert!(inverse_normal_cdf(1.0).is_finite());
    }

    #[test]
    fn outcome_classes_are_consistent() {
        let mut m = FaultModel::new(FaultConfig::mrm(), 9);
        for i in 0..100u64 {
            let r = m.inject_read(1 + i * 4096, 5e-5);
            assert!(r.corrected + r.detected_ue + r.miscorrected + r.silent <= r.codewords);
            assert_eq!(r.bits, r.codewords * 532);
            if r.raw_flips > 0 {
                assert!(
                    r.corrected + r.detected_ue + r.miscorrected + r.silent > 0,
                    "flips must land in some class: {r:?}"
                );
            }
        }
    }
}
