//! Cumulative fault-layer accounting.

use crate::model::ReadFaults;

/// Running totals over every injected read, in the corrected / detected-UE
/// / silent taxonomy of DESIGN.md §9.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads that went through injection (a read at zero effective RBER is
    /// a no-op and is not counted).
    pub reads: u64,
    /// Codewords scanned.
    pub codewords: u64,
    /// Total bits scanned, data plus parity.
    pub bits: u64,
    /// Raw bit flips injected before any correction.
    pub raw_flips: u64,
    /// Codewords the ECC decoder corrected.
    pub corrected: u64,
    /// Codewords the decoder flagged uncorrectable (detected UE).
    pub detected_ue: u64,
    /// Codewords the decoder miscorrected but an outer CRC caught.
    pub miscorrected: u64,
    /// Codewords whose corruption escaped every layer (SDC).
    pub silent: u64,
}

impl FaultStats {
    /// Folds one read's outcome into the totals.
    pub fn absorb(&mut self, r: &ReadFaults) {
        self.codewords += r.codewords;
        self.bits += r.bits;
        self.raw_flips += r.raw_flips;
        self.corrected += r.corrected;
        self.detected_ue += r.detected_ue;
        self.miscorrected += r.miscorrected;
        self.silent += r.silent;
    }

    /// Merges another accumulator (e.g. per-controller totals).
    pub fn merge(&mut self, o: &FaultStats) {
        self.reads += o.reads;
        self.codewords += o.codewords;
        self.bits += o.bits;
        self.raw_flips += o.raw_flips;
        self.corrected += o.corrected;
        self.detected_ue += o.detected_ue;
        self.miscorrected += o.miscorrected;
        self.silent += o.silent;
    }

    /// Observed raw bit error rate: flips per scanned bit.
    pub fn raw_ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.raw_flips as f64 / self.bits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_and_merge_accumulate() {
        let r = ReadFaults {
            codewords: 4,
            bits: 4 * 532,
            raw_flips: 3,
            corrected: 2,
            detected_ue: 1,
            miscorrected: 0,
            silent: 0,
        };
        let mut a = FaultStats {
            reads: 1,
            ..FaultStats::default()
        };
        a.absorb(&r);
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.reads, 2);
        assert_eq!(b.raw_flips, 6);
        assert_eq!(b.corrected, 4);
        assert!((a.raw_ber() - 3.0 / (4.0 * 532.0)).abs() < 1e-15);
    }

    #[test]
    fn empty_raw_ber_is_zero() {
        assert!(FaultStats::default().raw_ber().abs() < f64::EPSILON);
    }
}
