//! Declared retention policies.
//!
//! A policy states, per data class, what the system has *promised*: whether
//! the object must survive until its need lapses (`Required`) or may be
//! reclaimed and recomputed (`Ephemeral`), how long an unused object is
//! kept, which retention class an escalation moves it to, and above what
//! occupancy memory pressure may evict it. The reconciler and the audit
//! oracle both read these promises; nothing in the data path re-derives
//! them inline.

use mrm_sim::time::SimDuration;

/// Whether loss of the object is a correctness event or a cost event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Durability {
    /// Must never be dropped while needed; loss demands a recorded
    /// recovery (refetch or recompute) before any drop is legal.
    Required,
    /// Soft state: may lapse or be evicted under pressure; recomputable.
    Ephemeral,
}

/// The declared retention policy for one [`crate::class::ControlClass`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetentionPolicy {
    /// Correctness class of the data.
    pub durability: Durability,
    /// How long an object is kept after its last use before it lapses
    /// (`None`: kept until explicitly retired).
    pub ttl: Option<SimDuration>,
    /// Retention class an escalation (failed refresh, long remaining need)
    /// migrates the object to (`None`: escalation not available — the
    /// reconciler must refresh in place or refetch).
    pub escalation_class: Option<SimDuration>,
    /// Memory-pressure eviction is permitted once tier occupancy reaches
    /// this fraction. `1.0` means "only when allocation actually fails";
    /// anything above is "never".
    pub pressure_threshold: f64,
}

impl RetentionPolicy {
    /// A `Required` policy: no TTL, never pressure-evicted.
    pub fn required() -> Self {
        RetentionPolicy {
            durability: Durability::Required,
            ttl: None,
            escalation_class: None,
            pressure_threshold: f64::INFINITY,
        }
    }

    /// An `Ephemeral` policy with a use-based TTL, evictable at full
    /// occupancy.
    pub fn ephemeral(ttl: SimDuration) -> Self {
        RetentionPolicy {
            durability: Durability::Ephemeral,
            ttl: Some(ttl),
            escalation_class: None,
            pressure_threshold: 1.0,
        }
    }

    /// Sets the escalation retention class.
    pub fn with_escalation(mut self, class: SimDuration) -> Self {
        self.escalation_class = Some(class);
        self
    }

    /// Sets the pressure-eviction threshold.
    pub fn with_pressure_threshold(mut self, threshold: f64) -> Self {
        self.pressure_threshold = threshold;
        self
    }

    /// True if memory pressure at `occupancy` (fraction of tier capacity)
    /// permits evicting this class.
    pub fn evictable_at(&self, occupancy: f64) -> bool {
        self.durability == Durability::Ephemeral && occupancy >= self.pressure_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_is_never_pressure_evictable() {
        let p = RetentionPolicy::required();
        assert!(!p.evictable_at(1.0));
        assert!(!p.evictable_at(f64::MAX));
    }

    #[test]
    fn ephemeral_evicts_only_at_threshold() {
        let p = RetentionPolicy::ephemeral(SimDuration::from_mins(10)).with_pressure_threshold(0.9);
        assert!(!p.evictable_at(0.5));
        assert!(p.evictable_at(0.9));
        assert!(p.evictable_at(1.0));
    }
}
