//! The reconciler: desired vs. observed placement, as typed work items.
//!
//! Mayastor-style control loop: the data path *observes* state into the
//! reconciler (stores, releases, extended needs); each maintenance tick
//! the reconciler diffs that observed state against the declared policies
//! and emits the work items — migrate / refresh / recompute-drop / retire
//! / refetch — that the executor (the simulated cluster) carries out and
//! the audit log records.
//!
//! Determinism contract: the reconciler draws no `SimRng` and reads no
//! clock but the sim-time its caller passes in; identical observations in
//! identical order produce identical work lists.

use mrm_sim::time::{SimDuration, SimTime};

use crate::class::ControlClass;
use crate::expiry::{ExpiryAction, ExpiryTracker};
use crate::policy::Durability;
use crate::registry::RetentionRegistry;

/// What a work item asks the executor to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkKind {
    /// Rewrite in place at the current retention class.
    Refresh,
    /// Move to the given retention class.
    Migrate {
        /// Target retention period.
        to: SimDuration,
    },
    /// Reclaim now; recompute from inputs later if a need reappears.
    RecomputeDrop,
    /// Release: the declared need has ended.
    Retire,
    /// Re-materialize from the authoritative source after loss.
    Refetch,
}

/// One unit of reconciliation work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Object identity within the class.
    pub id: u64,
    /// The data class the work applies to.
    pub class: ControlClass,
    /// What to do.
    pub kind: WorkKind,
    /// Why the reconciler emitted it (static, machine-greppable).
    pub reason: &'static str,
}

/// Reconciles one class of tracked objects against declared policy.
///
/// Owns the [`ExpiryTracker`] that used to be embedded in the simulated
/// accelerator: the data path reports placements in, the plan step turns
/// deadlines plus policy into work out.
#[derive(Clone, Debug)]
pub struct Reconciler {
    class: ControlClass,
    tracker: ExpiryTracker,
    planned: u64,
}

impl Reconciler {
    /// A reconciler for one data class.
    pub fn new(class: ControlClass) -> Self {
        Reconciler {
            class,
            tracker: ExpiryTracker::new(),
            planned: 0,
        }
    }

    /// The class this reconciler manages.
    pub fn class(&self) -> ControlClass {
        self.class
    }

    /// Observes a store: the object now sits at `deadline` with the given
    /// retention period, needed until `needed_until`.
    pub fn observe_store(
        &mut self,
        id: u64,
        deadline: SimTime,
        needed_until: SimTime,
        retention: SimDuration,
    ) {
        self.tracker.register(id, deadline, needed_until, retention);
    }

    /// Observes a release: the object left the tier (retired, dropped,
    /// consumed by a follow-up).
    pub fn observe_release(&mut self, id: u64) {
        self.tracker.remove(id);
    }

    /// Observes an extended need (a follow-up arrived).
    pub fn observe_extended_need(&mut self, id: u64, needed_until: SimTime) {
        self.tracker.extend_need(id, needed_until);
    }

    /// Observes a completed refresh: the deadline re-arms from `now`.
    pub fn observe_refreshed(&mut self, id: u64, now: SimTime) {
        self.tracker.refreshed(id, now);
    }

    /// The current retention deadline of an object.
    pub fn deadline(&self, id: u64) -> Option<SimTime> {
        self.tracker.deadline(id)
    }

    /// Number of objects under reconciliation.
    pub fn len(&self) -> usize {
        self.tracker.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.tracker.is_empty()
    }

    /// Total work items emitted over the reconciler's lifetime.
    pub fn planned(&self) -> u64 {
        self.planned
    }

    /// One reconciliation tick: diff every object whose deadline falls at
    /// or before `horizon` against the declared policy and emit work.
    ///
    /// * still needed for a few periods → [`WorkKind::Refresh`];
    /// * needed for many periods → [`WorkKind::Migrate`] to the policy's
    ///   escalation class (or stay-and-refresh when none is declared);
    /// * need lapsed, `Ephemeral` → [`WorkKind::RecomputeDrop`];
    /// * need lapsed, `Required` → [`WorkKind::Retire`] only — a
    ///   `Required` object is never emitted as a drop.
    ///
    /// Items are emitted soonest-deadline-first (id-ascending within a
    /// tie); the executor must process them in order.
    pub fn plan(
        &mut self,
        now: SimTime,
        horizon: SimTime,
        registry: &RetentionRegistry,
    ) -> Vec<WorkItem> {
        let escalation = registry
            .policy(self.class)
            .ok()
            .and_then(|p| p.escalation_class);
        let required = registry.is_required(self.class);
        let mut items = Vec::new();
        for id in self.tracker.due_before(horizon) {
            let kind = match self.tracker.decide(id, now) {
                Some(ExpiryAction::Refresh) => WorkKind::Refresh,
                Some(ExpiryAction::Migrate) => match escalation {
                    Some(to) => WorkKind::Migrate { to },
                    None => WorkKind::Refresh,
                },
                Some(ExpiryAction::Drop) | None => {
                    if required {
                        WorkKind::Retire
                    } else {
                        WorkKind::RecomputeDrop
                    }
                }
            };
            let reason = match kind {
                WorkKind::Refresh => "deadline-refresh",
                WorkKind::Migrate { .. } => "long-remaining-need",
                WorkKind::RecomputeDrop => "need-lapsed",
                WorkKind::Retire => "need-ended",
                WorkKind::Refetch => unreachable!("plan never emits refetch"),
            };
            items.push(WorkItem {
                id,
                class: self.class,
                kind,
                reason,
            });
        }
        self.planned += items.len() as u64;
        items
    }

    /// The recovery work item for an uncorrectable-read fault on `id`:
    /// `Required` weights refetch from the model store; everything else
    /// recomputes from inputs (and the corrupted copy drops).
    pub fn fault_recovery(&self, id: u64, registry: &RetentionRegistry) -> WorkItem {
        let durability = registry
            .policy(self.class)
            .map(|p| p.durability)
            .unwrap_or(Durability::Required);
        let kind = match (self.class, durability) {
            // Weights have an authoritative copy in the model store.
            (ControlClass::Weights, _) => WorkKind::Refetch,
            // KV (tail or prefix) re-materializes by prefill; the corrupt
            // copy is dropped — legally, because the recompute is recorded
            // first. Ephemeral classes recompute lazily for the same reason.
            _ => WorkKind::RecomputeDrop,
        };
        WorkItem {
            id,
            class: self.class,
            kind,
            reason: "uncorrectable-read",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RetentionPolicy;

    fn t(mins: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(mins)
    }

    fn serving() -> RetentionRegistry {
        RetentionRegistry::serving_default(SimDuration::from_mins(10))
    }

    #[test]
    fn plan_is_empty_with_nothing_due() {
        let mut r = Reconciler::new(ControlClass::KvPrefix);
        r.observe_store(1, t(30), t(40), SimDuration::from_mins(30));
        assert!(r.plan(t(5), t(10), &serving()).is_empty());
        assert_eq!(r.planned(), 0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ephemeral_lapse_is_recompute_drop() {
        let mut r = Reconciler::new(ControlClass::KvPrefix);
        // Needed until before the deadline: the need lapsed.
        r.observe_store(1, t(30), t(20), SimDuration::from_mins(30));
        let items = r.plan(t(29), t(31), &serving());
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, WorkKind::RecomputeDrop);
        assert_eq!(items[0].class, ControlClass::KvPrefix);
    }

    #[test]
    fn required_lapse_is_retire_never_drop() {
        let mut r = Reconciler::new(ControlClass::KvTail);
        r.observe_store(3, t(30), t(20), SimDuration::from_mins(30));
        let items = r.plan(t(29), t(31), &serving());
        assert_eq!(items[0].kind, WorkKind::Retire);
    }

    #[test]
    fn short_need_refreshes_long_need_migrates_to_escalation_class() {
        let mut r = Reconciler::new(ControlClass::KvPrefix);
        let ret = SimDuration::from_mins(10);
        r.observe_store(1, t(10), t(30), ret); // 2 periods → refresh
        r.observe_store(2, t(10), t(600), ret); // 60 periods → migrate
        let items = r.plan(t(9), t(10), &serving());
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].id, 1);
        assert_eq!(items[0].kind, WorkKind::Refresh);
        assert_eq!(
            items[1].kind,
            WorkKind::Migrate {
                to: SimDuration::from_days(7)
            }
        );
        assert_eq!(r.planned(), 2);
    }

    #[test]
    fn migrate_falls_back_to_refresh_without_escalation_class() {
        let mut reg = RetentionRegistry::new();
        reg.declare(
            ControlClass::KvPrefix,
            RetentionPolicy::ephemeral(SimDuration::from_mins(10)),
        );
        let mut r = Reconciler::new(ControlClass::KvPrefix);
        r.observe_store(2, t(10), t(600), SimDuration::from_mins(10));
        let items = r.plan(t(9), t(10), &reg);
        assert_eq!(items[0].kind, WorkKind::Refresh);
    }

    #[test]
    fn observed_release_and_refresh_update_the_plan() {
        let mut r = Reconciler::new(ControlClass::KvPrefix);
        let ret = SimDuration::from_mins(10);
        r.observe_store(1, t(10), t(30), ret);
        r.observe_store(2, t(10), t(30), ret);
        r.observe_release(1);
        r.observe_refreshed(2, t(9));
        assert!(r.plan(t(9), t(12), &serving()).is_empty());
        assert_eq!(r.deadline(2), Some(t(19)));
        // A follow-up extends the need past the deadline: back to refresh.
        r.observe_extended_need(2, t(40));
        let items = r.plan(t(18), t(19), &serving());
        assert_eq!(items[0].kind, WorkKind::Refresh);
    }

    #[test]
    fn fault_recovery_refetches_weights_recomputes_kv() {
        let reg = serving();
        let w = Reconciler::new(ControlClass::Weights);
        assert_eq!(w.fault_recovery(0, &reg).kind, WorkKind::Refetch);
        let kv = Reconciler::new(ControlClass::KvTail);
        assert_eq!(kv.fault_recovery(5, &reg).kind, WorkKind::RecomputeDrop);
        let pre = Reconciler::new(ControlClass::KvPrefix);
        assert_eq!(pre.fault_recovery(5, &reg).kind, WorkKind::RecomputeDrop);
    }
}
