//! The retention registry: declared policy per data class.
//!
//! ROADMAP item 2 / §4: software owns retention, so every class the system
//! stores must have a *declared* policy before the data path may touch it.
//! The registry is the single source of truth the reconciler, the audit
//! oracle, and the placement shim all read; a class without a declaration
//! is a [`ControlError::Unclassified`] error, not a silent default.

use std::collections::BTreeMap;

use mrm_controller::dcm::RetentionClass;
use mrm_sim::time::SimDuration;

use crate::class::ControlClass;
use crate::policy::{Durability, RetentionPolicy};

/// Control-plane errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlError {
    /// The data path asked about a class nobody declared a policy for.
    Unclassified(ControlClass),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::Unclassified(c) => {
                write!(f, "no retention policy declared for class {}", c.label())
            }
        }
    }
}

impl std::error::Error for ControlError {}

/// The per-write retention target, as declared policy rather than inline
/// tier logic: self-refreshing tiers (and fixed-retention MRM) use the
/// tier's native interval; a managed tier running DCM quantizes the
/// lifetime hint onto the retention-class ladder with the declared margin.
///
/// This is *the* placement decision that used to live in
/// `PlacementPolicy::retention_for`; `mrm-tiering` now shims to it (lint
/// rule D7 confines callers to this crate and that shim).
pub fn retention_decision(
    managed_tier: bool,
    dcm: bool,
    lifetime_hint: SimDuration,
    native_retention: SimDuration,
    margin: f64,
) -> SimDuration {
    if managed_tier && dcm {
        RetentionClass::for_lifetime(lifetime_hint, margin).duration()
    } else {
        native_retention
    }
}

/// Maps each [`ControlClass`] to its declared [`RetentionPolicy`].
#[derive(Clone, Debug, Default)]
pub struct RetentionRegistry {
    policies: BTreeMap<ControlClass, RetentionPolicy>,
}

impl RetentionRegistry {
    /// An empty registry: every lookup is `Unclassified` until declared.
    pub fn new() -> Self {
        RetentionRegistry::default()
    }

    /// Declares (or replaces) the policy for a class.
    pub fn declare(&mut self, class: ControlClass, policy: RetentionPolicy) {
        self.policies.insert(class, policy);
    }

    /// The declared policy for a class.
    pub fn policy(&self, class: ControlClass) -> Result<RetentionPolicy, ControlError> {
        self.policies
            .get(&class)
            .copied()
            .ok_or(ControlError::Unclassified(class))
    }

    /// True if the class is declared `Required` (undeclared classes are
    /// treated as `Required` — the conservative direction for an oracle
    /// that hunts illegal drops).
    pub fn is_required(&self, class: ControlClass) -> bool {
        self.policies
            .get(&class)
            .map(|p| p.durability == Durability::Required)
            .unwrap_or(true)
    }

    /// True once every [`ControlClass`] has a declared policy
    /// (INV-CPR-CLASSIFIED: no data class reaches the data path
    /// unclassified).
    pub fn fully_classified(&self) -> bool {
        ControlClass::all()
            .iter()
            .all(|c| self.policies.contains_key(c))
    }

    /// Number of declared classes.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// The default declaration set for the LLM-serving cluster model:
    ///
    /// * weights — `Required`, refetchable from the model store;
    /// * KV prefix (parked contexts) — `Ephemeral` with the follow-up
    ///   window as TTL, escalation to the 7-day class on failed refresh,
    ///   pressure-evictable only when allocation fails;
    /// * KV tail (running requests) — `Required` until completion,
    ///   recomputable from the prompt;
    /// * activations — `Ephemeral`, one forward pass;
    /// * session state — `Required`, tiny, outlives its KV.
    pub fn serving_default(followup_window: SimDuration) -> Self {
        let mut reg = RetentionRegistry::new();
        reg.declare(ControlClass::Weights, RetentionPolicy::required());
        reg.declare(
            ControlClass::KvPrefix,
            RetentionPolicy::ephemeral(followup_window).with_escalation(SimDuration::from_days(7)),
        );
        reg.declare(ControlClass::KvTail, RetentionPolicy::required());
        reg.declare(
            ControlClass::Activation,
            RetentionPolicy::ephemeral(SimDuration::from_millis(50)),
        );
        reg.declare(ControlClass::SessionState, RetentionPolicy::required());
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undeclared_class_is_an_error_and_conservatively_required() {
        let reg = RetentionRegistry::new();
        assert_eq!(
            reg.policy(ControlClass::Weights),
            Err(ControlError::Unclassified(ControlClass::Weights))
        );
        assert!(reg.is_required(ControlClass::KvPrefix));
        assert!(!reg.fully_classified());
    }

    #[test]
    fn serving_default_is_fully_classified() {
        let reg = RetentionRegistry::serving_default(SimDuration::from_mins(10));
        assert!(reg.fully_classified());
        assert_eq!(reg.len(), 5);
        assert!(reg.is_required(ControlClass::Weights));
        assert!(reg.is_required(ControlClass::KvTail));
        assert!(!reg.is_required(ControlClass::KvPrefix));
        let prefix = reg.policy(ControlClass::KvPrefix).unwrap();
        assert_eq!(prefix.ttl, Some(SimDuration::from_mins(10)));
        assert_eq!(prefix.escalation_class, Some(SimDuration::from_days(7)));
    }

    #[test]
    fn retention_decision_matches_tier_semantics() {
        let native = SimDuration::from_hours(12);
        let hint = SimDuration::from_mins(5);
        // Self-refreshing tier: native interval regardless of DCM flag.
        assert_eq!(retention_decision(false, true, hint, native, 1.25), native);
        // Fixed-retention MRM: native.
        assert_eq!(retention_decision(true, false, hint, native, 1.25), native);
        // DCM: quantized onto the ladder (5 min × 1.25 margin → 10-min class).
        assert_eq!(
            retention_decision(true, true, hint, native, 1.25),
            SimDuration::from_mins(10)
        );
    }

    #[test]
    fn declare_replaces_and_len_tracks() {
        let mut reg = RetentionRegistry::new();
        reg.declare(ControlClass::Weights, RetentionPolicy::required());
        reg.declare(
            ControlClass::Weights,
            RetentionPolicy::ephemeral(SimDuration::from_secs(30)),
        );
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_required(ControlClass::Weights));
        assert!(!reg.is_empty());
    }
}
