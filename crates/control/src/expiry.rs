//! The expiration tracker and the refresh / migrate / drop decision.
//!
//! §4: "The scheduler will need to track the data expiration times, and
//! decide whether to refresh it or move it to another tier based on the
//! state of the requests that depend on that data." [`ExpiryTracker`] is
//! that registry: items carry a retention deadline and a *needed-until*
//! time (from the request state); [`ExpiryTracker::decide`] turns the two
//! into the action the control plane executes.
//!
//! Deadline arithmetic here is *checked*: a deadline that silently
//! saturates converts "already expired" into "expires at the end of time",
//! which masks expiry. [`rearm_deadline`] and [`consumed_age`] assert the
//! arithmetic stays in range in debug builds and saturate (observably, via
//! the caller's audit trail) in release builds.

use std::collections::{BTreeMap, BTreeSet};

use mrm_sim::time::{SimDuration, SimTime};

/// Re-arms a retention deadline one retention period from `now`.
///
/// # Panics
///
/// Panics in debug builds if `now + retention` overflows sim time: a
/// saturated deadline would silently mean "never expires", hiding the
/// expiry of an item that in truth lapsed long ago.
pub fn rearm_deadline(now: SimTime, retention: SimDuration) -> SimTime {
    debug_assert!(
        now.checked_add(retention).is_some(),
        "rearm_deadline overflow: now={now:?} + retention={retention:?} would saturate, \
         turning an expired item into one that never expires"
    );
    now.saturating_add(retention)
}

/// How much of a retention period has been consumed when `remaining` of it
/// is left (`retention - remaining`).
///
/// # Panics
///
/// Panics in debug builds if `remaining > retention`: a saturated zero age
/// would mis-model an item as freshly written when its deadline
/// bookkeeping is inconsistent.
pub fn consumed_age(retention: SimDuration, remaining: SimDuration) -> SimDuration {
    debug_assert!(
        remaining <= retention,
        "consumed_age underflow: remaining={remaining:?} exceeds retention={retention:?}"
    );
    retention.saturating_sub(remaining)
}

/// What to do about an item approaching its retention deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpiryAction {
    /// Rewrite in place at the same retention class (cheap, repeatable).
    Refresh,
    /// Move to a longer-retention class/tier (one-time cost; right when
    /// the remaining need spans many refresh periods).
    Migrate,
    /// Let it lapse: nothing depends on it any more (soft state, §4).
    Drop,
}

/// One tracked item.
#[derive(Clone, Copy, Debug)]
struct Item {
    deadline: SimTime,
    needed_until: SimTime,
    retention: SimDuration,
}

/// A deadline registry over opaque `u64` item ids.
///
/// # Examples
///
/// ```
/// use mrm_sim::time::{SimDuration, SimTime};
/// use mrm_control::expiry::{ExpiryAction, ExpiryTracker};
///
/// let mut tr = ExpiryTracker::new();
/// let t0 = SimTime::ZERO;
/// let retention = SimDuration::from_mins(10);
/// tr.register(1, t0 + retention, t0 + SimDuration::from_mins(25), retention);
/// let due = tr.due_before(t0 + SimDuration::from_mins(12));
/// assert_eq!(due, vec![1]);
/// assert_eq!(tr.decide(1, t0 + SimDuration::from_mins(9)), Some(ExpiryAction::Refresh));
/// ```
/// Items are held twice: by id for lookups, and in a `(deadline, id)`
/// index so [`ExpiryTracker::due_before`] is a range scan that emits ids
/// already in deadline order (soonest first, id-ascending within a tie) —
/// the order the old implementation produced by sorting the full item set
/// on every poll. The maintenance sweep polls every period, so the
/// O(n log n) scan-and-sort is replaced by O(due · log n).
#[derive(Clone, Debug, Default)]
pub struct ExpiryTracker {
    items: BTreeMap<u64, Item>,
    by_deadline: BTreeSet<(SimTime, u64)>,
}

impl ExpiryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ExpiryTracker::default()
    }

    /// Registers (or re-registers) an item with its current retention
    /// deadline, the time until which some request needs it, and the
    /// retention period of its current class.
    pub fn register(
        &mut self,
        id: u64,
        deadline: SimTime,
        needed_until: SimTime,
        retention: SimDuration,
    ) {
        if let Some(old) = self.items.insert(
            id,
            Item {
                deadline,
                needed_until,
                retention,
            },
        ) {
            self.by_deadline.remove(&(old.deadline, id));
        }
        self.by_deadline.insert((deadline, id));
    }

    /// Extends the needed-until time (e.g. a follow-up arrived).
    pub fn extend_need(&mut self, id: u64, needed_until: SimTime) {
        if let Some(it) = self.items.get_mut(&id) {
            it.needed_until = it.needed_until.max(needed_until);
        }
    }

    /// Records a completed refresh: deadline re-arms one retention period
    /// from `now` ([`rearm_deadline`]: checked, not silently saturating).
    pub fn refreshed(&mut self, id: u64, now: SimTime) {
        if let Some(it) = self.items.get_mut(&id) {
            let old = it.deadline;
            it.deadline = rearm_deadline(now, it.retention);
            let new = it.deadline;
            self.by_deadline.remove(&(old, id));
            self.by_deadline.insert((new, id));
        }
    }

    /// Removes an item (dropped or migrated away).
    pub fn remove(&mut self, id: u64) {
        if let Some(it) = self.items.remove(&id) {
            self.by_deadline.remove(&(it.deadline, id));
        }
    }

    /// Number of tracked items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Ids whose deadline falls at or before `horizon`, soonest first
    /// (id-ascending within a deadline tie).
    ///
    /// A bounded range scan over the `(deadline, id)` index: the ids come
    /// out already sorted, so no per-poll scan-and-sort of the whole
    /// registry.
    pub fn due_before(&self, horizon: SimTime) -> Vec<u64> {
        self.by_deadline
            .range(..=(horizon, u64::MAX))
            .map(|&(_, id)| id)
            .collect()
    }

    /// The deadline of an item.
    pub fn deadline(&self, id: u64) -> Option<SimTime> {
        self.items.get(&id).map(|it| it.deadline)
    }

    /// Decides what to do with an item at time `now` (§4's refresh-or-move
    /// decision):
    ///
    /// * nothing needs it past its deadline → [`ExpiryAction::Drop`];
    /// * it is needed for at most a few more retention periods →
    ///   [`ExpiryAction::Refresh`] (repeat as needed);
    /// * it is needed for many retention periods → [`ExpiryAction::Migrate`]
    ///   to a longer class (refreshing that many times would cost more
    ///   rewrites than one move).
    ///
    /// Returns `None` for unknown ids.
    pub fn decide(&self, id: u64, now: SimTime) -> Option<ExpiryAction> {
        let it = self.items.get(&id)?;
        if it.needed_until <= it.deadline {
            return Some(ExpiryAction::Drop);
        }
        let remaining_need = it.needed_until.duration_since(now.min(it.needed_until));
        let periods = if it.retention.is_zero() {
            u64::MAX
        } else {
            remaining_need
                .as_nanos()
                .div_ceil(it.retention.as_nanos().max(1))
        };
        if periods > 4 {
            Some(ExpiryAction::Migrate)
        } else {
            Some(ExpiryAction::Refresh)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(mins)
    }

    #[test]
    fn due_ordering() {
        let mut tr = ExpiryTracker::new();
        tr.register(1, t(30), t(60), SimDuration::from_mins(30));
        tr.register(2, t(10), t(60), SimDuration::from_mins(10));
        tr.register(3, t(50), t(60), SimDuration::from_mins(50));
        assert_eq!(tr.due_before(t(35)), vec![2, 1]);
        assert_eq!(tr.due_before(t(5)), Vec::<u64>::new());
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn due_emission_order_is_deadline_then_id() {
        // The emission order is load-bearing: the maintenance sweep
        // processes ids in exactly this order, and reordering would change
        // simulated results. Pin it: soonest deadline first, id-ascending
        // within a deadline tie — identical to the old sort of
        // `(deadline, id)` pairs.
        let mut tr = ExpiryTracker::new();
        let ret = SimDuration::from_mins(10);
        tr.register(7, t(20), t(60), ret);
        tr.register(3, t(10), t(60), ret);
        tr.register(9, t(10), t(60), ret); // same deadline as 3: id breaks tie
        tr.register(1, t(30), t(60), ret);
        assert_eq!(tr.due_before(t(30)), vec![3, 9, 7, 1]);
        // Re-registering moves an id's position, never duplicates it.
        tr.register(7, t(5), t(60), ret);
        assert_eq!(tr.due_before(t(30)), vec![7, 3, 9, 1]);
        // Refresh re-arms the deadline and the index follows.
        tr.refreshed(3, t(25));
        assert_eq!(tr.due_before(t(30)), vec![7, 9, 1]);
        assert_eq!(tr.due_before(t(35)), vec![7, 9, 1, 3]);
        tr.remove(9);
        assert_eq!(tr.due_before(t(35)), vec![7, 1, 3]);
    }

    #[test]
    fn drop_when_not_needed() {
        let mut tr = ExpiryTracker::new();
        // Needed until before the deadline: nothing to do but drop.
        tr.register(1, t(30), t(20), SimDuration::from_mins(30));
        assert_eq!(tr.decide(1, t(25)), Some(ExpiryAction::Drop));
    }

    #[test]
    fn refresh_for_short_remaining_need() {
        let mut tr = ExpiryTracker::new();
        // Needed 20 minutes past a 10-minute class: 2 refresh periods.
        tr.register(1, t(10), t(30), SimDuration::from_mins(10));
        assert_eq!(tr.decide(1, t(9)), Some(ExpiryAction::Refresh));
    }

    #[test]
    fn migrate_for_long_remaining_need() {
        let mut tr = ExpiryTracker::new();
        // Needed 10 hours past a 10-minute class: 60 refresh periods.
        tr.register(1, t(10), t(600), SimDuration::from_mins(10));
        assert_eq!(tr.decide(1, t(9)), Some(ExpiryAction::Migrate));
    }

    #[test]
    fn refresh_rearms_deadline() {
        let mut tr = ExpiryTracker::new();
        tr.register(1, t(10), t(40), SimDuration::from_mins(10));
        tr.refreshed(1, t(9));
        assert_eq!(tr.deadline(1), Some(t(19)));
        assert!(tr.due_before(t(15)).is_empty());
    }

    #[test]
    fn extend_need_flips_drop_to_refresh() {
        let mut tr = ExpiryTracker::new();
        tr.register(1, t(10), t(5), SimDuration::from_mins(10));
        assert_eq!(tr.decide(1, t(4)), Some(ExpiryAction::Drop));
        tr.extend_need(1, t(25));
        assert_eq!(tr.decide(1, t(4)), Some(ExpiryAction::Refresh));
    }

    #[test]
    fn remove_and_unknown() {
        let mut tr = ExpiryTracker::new();
        tr.register(1, t(10), t(20), SimDuration::from_mins(10));
        tr.remove(1);
        assert!(tr.is_empty());
        assert_eq!(tr.decide(1, t(0)), None);
        assert_eq!(tr.deadline(1), None);
    }

    #[test]
    fn rearm_deadline_in_range() {
        let now = t(100);
        let ret = SimDuration::from_mins(10);
        assert_eq!(rearm_deadline(now, ret), t(110));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "rearm_deadline overflow")]
    fn rearm_deadline_panics_at_sim_time_boundary() {
        // One nanosecond before the end of sim time plus any nonzero
        // retention overflows; the old saturating arithmetic would have
        // silently pinned the deadline at SimTime::MAX ("never expires").
        let _ = rearm_deadline(SimTime::MAX, SimDuration::from_nanos(1));
    }

    #[test]
    fn consumed_age_in_range() {
        let ret = SimDuration::from_mins(10);
        let remaining = SimDuration::from_mins(4);
        assert_eq!(consumed_age(ret, remaining), SimDuration::from_mins(6));
        assert_eq!(consumed_age(ret, ret), SimDuration::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "consumed_age underflow")]
    fn consumed_age_panics_when_remaining_exceeds_retention() {
        let _ = consumed_age(SimDuration::from_mins(1), SimDuration::from_mins(2));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "rearm_deadline overflow")]
    fn refreshed_panics_instead_of_saturating_at_boundary() {
        // Regression for the silent `saturating_add` that used to live in
        // `refreshed`: an item refreshed at the sim-time boundary must not
        // quietly become immortal.
        let mut tr = ExpiryTracker::new();
        tr.register(1, t(10), SimTime::MAX, SimDuration::MAX);
        tr.refreshed(1, t(9));
    }

    #[test]
    fn rearm_exactly_at_the_horizon_is_legal() {
        // `now + retention == SimTime::MAX` exactly: in range, not an
        // overflow — the deadline lands on the horizon, and an item parked
        // there re-arms without tripping the checked arithmetic.
        let now = SimTime::from_nanos(u64::MAX - 10);
        let ret = SimDuration::from_nanos(10);
        assert_eq!(rearm_deadline(now, ret), SimTime::MAX);
        let mut tr = ExpiryTracker::new();
        tr.register(1, t(1), SimTime::MAX, ret);
        tr.refreshed(1, now);
        assert_eq!(tr.deadline(1), Some(SimTime::MAX));
    }

    #[test]
    fn deadline_parked_at_the_horizon_is_due_only_at_the_horizon() {
        let mut tr = ExpiryTracker::new();
        tr.register(1, SimTime::MAX, SimTime::MAX, SimDuration::from_secs(1));
        assert_eq!(
            tr.due_before(SimTime::from_nanos(u64::MAX - 1)),
            Vec::<u64>::new()
        );
        assert_eq!(tr.due_before(SimTime::MAX), vec![1]);
        // Nothing needs it past its (horizon) deadline: a legal drop.
        assert_eq!(tr.decide(1, SimTime::MAX), Some(ExpiryAction::Drop));
    }

    #[test]
    fn zero_ttl_class_boundaries() {
        // A zero-retention class: the deadline re-arms to `now` itself and
        // the age arithmetic degenerates without panicking.
        let now = t(5);
        assert_eq!(rearm_deadline(now, SimDuration::ZERO), now);
        assert_eq!(
            consumed_age(SimDuration::ZERO, SimDuration::ZERO),
            SimDuration::ZERO
        );

        let mut tr = ExpiryTracker::new();
        // Needed no further than the deadline: drop.
        tr.register(1, now, now, SimDuration::ZERO);
        assert_eq!(tr.decide(1, now), Some(ExpiryAction::Drop));
        // Needed *past* a zero-TTL deadline: refreshing a zero-retention
        // class can never cover the need, so the decision must escalate to
        // a migration, not loop on refreshes.
        tr.register(2, now, now + SimDuration::from_nanos(1), SimDuration::ZERO);
        assert_eq!(tr.decide(2, now), Some(ExpiryAction::Migrate));
        // Zero-TTL items are due immediately.
        assert_eq!(tr.due_before(now), vec![1, 2]);
    }
}
