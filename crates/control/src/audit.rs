//! The append-only retention audit log.
//!
//! Every store / refresh / migrate / drop / retire / escalate decision the
//! control plane makes is recorded with its class, action, reason, and
//! sim-time. The log is the oracle the chaos tests interrogate: under
//! fault injection at full recovery-ladder depth, *no `Required`-class
//! object may be dropped without a preceding re-fetch/recompute record*
//! (REQUIRED-DURABLE). It also flows through `mrm-telemetry` as `control_*`
//! counters and `audit_*` events — observe-only, so a run with or without
//! a sink attached is byte-identical.

use std::collections::BTreeSet;

use mrm_sim::time::SimTime;
use mrm_telemetry::sink::TelemetrySink;
use serde::{Deserialize, Serialize};

use crate::class::ControlClass;
use crate::registry::RetentionRegistry;

/// A decision the control plane recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AuditAction {
    /// Data admitted to a tier (new write, cache park, redeploy).
    Store,
    /// In-place rewrite at the same retention class.
    Refresh,
    /// Moved to a longer retention class.
    Migrate,
    /// Reclaimed while a future need *could* have existed (TTL lapse,
    /// recompute-drop). The oracle checks these against durability.
    Drop,
    /// Evicted under memory pressure (a policy-authorized drop).
    Evict,
    /// Released because its declared need ended (request completed,
    /// deployment superseded). Always legal, even for `Required` classes.
    Retire,
    /// Escalated to the policy's longer retention class after a failed
    /// refresh.
    Escalate,
    /// Re-fetched from an authoritative source (model store) after loss.
    Refetch,
    /// Recomputed from inputs (prompt prefill) after loss.
    Recompute,
}

impl AuditAction {
    /// All actions, in record order.
    pub fn all() -> [AuditAction; 9] {
        [
            AuditAction::Store,
            AuditAction::Refresh,
            AuditAction::Migrate,
            AuditAction::Drop,
            AuditAction::Evict,
            AuditAction::Retire,
            AuditAction::Escalate,
            AuditAction::Refetch,
            AuditAction::Recompute,
        ]
    }

    /// Stable label (also the suffix of the `control_*` counter and
    /// `audit_*` event names).
    pub fn label(self) -> &'static str {
        match self {
            AuditAction::Store => "store",
            AuditAction::Refresh => "refresh",
            AuditAction::Migrate => "migrate",
            AuditAction::Drop => "drop",
            AuditAction::Evict => "evict",
            AuditAction::Retire => "retire",
            AuditAction::Escalate => "escalate",
            AuditAction::Refetch => "refetch",
            AuditAction::Recompute => "recompute",
        }
    }

    /// Telemetry event name (static, one per action).
    fn event_name(self) -> &'static str {
        match self {
            AuditAction::Store => "audit_store",
            AuditAction::Refresh => "audit_refresh",
            AuditAction::Migrate => "audit_migrate",
            AuditAction::Drop => "audit_drop",
            AuditAction::Evict => "audit_evict",
            AuditAction::Retire => "audit_retire",
            AuditAction::Escalate => "audit_escalate",
            AuditAction::Refetch => "audit_refetch",
            AuditAction::Recompute => "audit_recompute",
        }
    }

    /// Telemetry counter name (static, one per action).
    fn counter_name(self) -> &'static str {
        match self {
            AuditAction::Store => "control_store",
            AuditAction::Refresh => "control_refresh",
            AuditAction::Migrate => "control_migrate",
            AuditAction::Drop => "control_drop",
            AuditAction::Evict => "control_evict",
            AuditAction::Retire => "control_retire",
            AuditAction::Escalate => "control_escalate",
            AuditAction::Refetch => "control_refetch",
            AuditAction::Recompute => "control_recompute",
        }
    }

    /// Actions the oracle treats as reclaiming the object.
    fn is_reclaim(self) -> bool {
        matches!(self, AuditAction::Drop | AuditAction::Evict)
    }

    /// Actions the oracle treats as a recovery (the object was or can be
    /// re-materialized, so a subsequent drop is legal).
    fn is_recovery(self) -> bool {
        matches!(self, AuditAction::Refetch | AuditAction::Recompute)
    }

    fn index(self) -> usize {
        match self {
            AuditAction::Store => 0,
            AuditAction::Refresh => 1,
            AuditAction::Migrate => 2,
            AuditAction::Drop => 3,
            AuditAction::Evict => 4,
            AuditAction::Retire => 5,
            AuditAction::Escalate => 6,
            AuditAction::Refetch => 7,
            AuditAction::Recompute => 8,
        }
    }
}

/// One appended decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// Dense, monotonically increasing sequence number.
    pub seq: u64,
    /// Sim-time of the decision.
    pub at: SimTime,
    /// The data class the decision is about.
    pub class: ControlClass,
    /// Object identity within the class (context id, accelerator id, …).
    pub id: u64,
    /// What was decided.
    pub action: AuditAction,
    /// Why (static, machine-greppable).
    pub reason: &'static str,
    /// Bytes affected.
    pub bytes: u64,
}

/// Append-only decision log with per-action counts and a telemetry cursor.
#[derive(Clone, Debug, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
    counts: [u64; 9],
    emitted: usize,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends a record; returns its sequence number. Sim-time must be
    /// nondecreasing (decisions are appended as the simulation advances).
    pub fn record(
        &mut self,
        at: SimTime,
        class: ControlClass,
        id: u64,
        action: AuditAction,
        reason: &'static str,
        bytes: u64,
    ) -> u64 {
        debug_assert!(
            self.records.last().is_none_or(|r| r.at <= at),
            "audit log must be appended in sim-time order"
        );
        let seq = self.records.len() as u64;
        self.counts[action.index()] += 1;
        self.records.push(AuditRecord {
            seq,
            at,
            class,
            id,
            action,
            reason,
            bytes,
        });
        seq
    }

    /// All records, in append order.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many records carry `action`.
    pub fn count(&self, action: AuditAction) -> u64 {
        self.counts[action.index()]
    }

    /// REQUIRED-DURABLE oracle: sequence numbers of every reclaim
    /// (drop/evict) of a class the registry declares `Required` that is
    /// *not* preceded by a recovery record (refetch/recompute) for the
    /// same `(class, id)`. An empty result is the invariant the chaos
    /// suite asserts. `Retire` (need ended) is always legal.
    pub fn required_drop_violations(&self, registry: &RetentionRegistry) -> Vec<u64> {
        let mut recovered: BTreeSet<(ControlClass, u64)> = BTreeSet::new();
        let mut violations = Vec::new();
        for r in &self.records {
            if r.action.is_recovery() {
                recovered.insert((r.class, r.id));
            } else if r.action.is_reclaim()
                && registry.is_required(r.class)
                && !recovered.contains(&(r.class, r.id))
            {
                violations.push(r.seq);
            }
        }
        violations
    }

    /// Emits `control_*` counters (monotone totals) plus one `audit_*`
    /// event per record appended since the previous call. Observe-only:
    /// with no sink attached the cursor simply never advances and
    /// simulation state is untouched.
    pub fn emit_telemetry(&mut self, sink: &mut dyn TelemetrySink) {
        sink.count_to("control_audit_records", self.records.len() as u64);
        for action in AuditAction::all() {
            sink.count_to(action.counter_name(), self.count(action));
        }
        for r in &self.records[self.emitted..] {
            sink.event(r.at, r.action.event_name(), r.bytes as f64);
        }
        self.emitted = self.records.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RetentionPolicy;
    use mrm_sim::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn serving() -> RetentionRegistry {
        RetentionRegistry::serving_default(SimDuration::from_mins(10))
    }

    #[test]
    fn seqs_are_dense_and_counts_track() {
        let mut log = AuditLog::new();
        let s0 = log.record(
            t(1),
            ControlClass::Weights,
            0,
            AuditAction::Store,
            "admit",
            10,
        );
        let s1 = log.record(
            t(2),
            ControlClass::KvPrefix,
            7,
            AuditAction::Store,
            "park",
            5,
        );
        let s2 = log.record(t(3), ControlClass::KvPrefix, 7, AuditAction::Drop, "ttl", 5);
        assert_eq!((s0, s1, s2), (0, 1, 2));
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(AuditAction::Store), 2);
        assert_eq!(log.count(AuditAction::Drop), 1);
        assert_eq!(log.records()[2].reason, "ttl");
    }

    #[test]
    fn ephemeral_drop_is_not_a_violation() {
        let mut log = AuditLog::new();
        log.record(
            t(1),
            ControlClass::KvPrefix,
            1,
            AuditAction::Store,
            "park",
            5,
        );
        log.record(t(2), ControlClass::KvPrefix, 1, AuditAction::Drop, "ttl", 5);
        assert!(log.required_drop_violations(&serving()).is_empty());
    }

    #[test]
    fn required_drop_without_recovery_is_flagged() {
        let mut log = AuditLog::new();
        log.record(
            t(1),
            ControlClass::KvTail,
            3,
            AuditAction::Store,
            "admit",
            5,
        );
        log.record(t(2), ControlClass::KvTail, 3, AuditAction::Drop, "bug", 5);
        assert_eq!(log.required_drop_violations(&serving()), vec![1]);
    }

    #[test]
    fn required_drop_after_recompute_is_legal() {
        let mut log = AuditLog::new();
        log.record(
            t(1),
            ControlClass::KvTail,
            3,
            AuditAction::Store,
            "admit",
            5,
        );
        log.record(
            t(2),
            ControlClass::KvTail,
            3,
            AuditAction::Recompute,
            "fault",
            5,
        );
        log.record(t(2), ControlClass::KvTail, 3, AuditAction::Drop, "fault", 5);
        assert!(log.required_drop_violations(&serving()).is_empty());
        // …but only for the recovered id: another id still violates.
        log.record(t(3), ControlClass::KvTail, 4, AuditAction::Drop, "bug", 5);
        assert_eq!(log.required_drop_violations(&serving()), vec![3]);
    }

    #[test]
    fn retire_of_required_is_always_legal() {
        let mut log = AuditLog::new();
        log.record(
            t(1),
            ControlClass::Weights,
            0,
            AuditAction::Store,
            "deploy",
            10,
        );
        log.record(
            t(2),
            ControlClass::Weights,
            0,
            AuditAction::Retire,
            "redeploy",
            10,
        );
        assert!(log.required_drop_violations(&serving()).is_empty());
    }

    #[test]
    fn unclassified_classes_are_conservatively_required() {
        let mut log = AuditLog::new();
        log.record(
            t(1),
            ControlClass::SessionState,
            9,
            AuditAction::Evict,
            "pressure",
            1,
        );
        // Empty registry: everything is treated as Required.
        assert_eq!(
            log.required_drop_violations(&RetentionRegistry::new()),
            vec![0]
        );
    }

    #[test]
    fn telemetry_counters_and_events_flow() {
        use mrm_telemetry::sink::SimTelemetry;

        fn counter(sink: &mut SimTelemetry, at: SimTime, name: &str) -> Option<u64> {
            sink.snapshot(at);
            let snap = sink.snapshots().last().unwrap();
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        }

        let mut log = AuditLog::new();
        log.record(
            t(1),
            ControlClass::KvPrefix,
            1,
            AuditAction::Store,
            "park",
            64,
        );
        log.record(
            t(2),
            ControlClass::KvPrefix,
            1,
            AuditAction::Refresh,
            "scrub",
            64,
        );
        let mut sink = SimTelemetry::new(SimDuration::from_secs(1));
        log.emit_telemetry(&mut sink);
        assert_eq!(counter(&mut sink, t(2), "control_audit_records"), Some(2));
        assert_eq!(counter(&mut sink, t(2), "control_store"), Some(1));
        assert_eq!(counter(&mut sink, t(2), "control_refresh"), Some(1));
        assert_eq!(counter(&mut sink, t(2), "control_drop"), Some(0));
        assert_eq!(sink.events().total_pushed(), 2);
        // Cursor: a second emit adds only new records' events.
        log.record(
            t(3),
            ControlClass::KvPrefix,
            1,
            AuditAction::Drop,
            "ttl",
            64,
        );
        log.emit_telemetry(&mut sink);
        assert_eq!(counter(&mut sink, t(3), "control_audit_records"), Some(3));
        assert_eq!(counter(&mut sink, t(3), "control_drop"), Some(1));
        assert_eq!(sink.events().total_pushed(), 3);
    }

    #[test]
    fn pressure_policy_consulted_for_evictions() {
        // Evict of an Ephemeral class under its threshold is fine; the
        // oracle only hunts Required reclaims.
        let mut reg = RetentionRegistry::new();
        reg.declare(
            ControlClass::KvPrefix,
            RetentionPolicy::ephemeral(SimDuration::from_mins(10)),
        );
        let mut log = AuditLog::new();
        log.record(
            t(1),
            ControlClass::KvPrefix,
            2,
            AuditAction::Evict,
            "pressure",
            64,
        );
        assert!(log.required_drop_violations(&reg).is_empty());
    }
}
