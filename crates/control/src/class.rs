//! Control-plane data classes.
//!
//! §4 of the paper enumerates the data the serving stack places in memory —
//! weights, KV caches (the reused prefix and the live decode tail behave
//! differently), activations, and session state — and argues each needs a
//! *declared* lifetime policy rather than an implicit one. [`ControlClass`]
//! is that declaration key: finer-grained than the workload-side
//! [`DataClass`], because the control plane treats a completed context's
//! cached prefix (droppable, recomputable) differently from the KV tail of
//! a running request (dropping it aborts the request).

use mrm_workload::access::DataClass;
use serde::{Deserialize, Serialize};

/// A data class as the retention control plane sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ControlClass {
    /// Model weights: read every token, refetched from the model store on
    /// loss, redeployed on a fixed cadence.
    Weights,
    /// KV cache of a *completed* context kept for follow-up turns: soft
    /// state, recomputable from the prompt at a known cost.
    KvPrefix,
    /// KV cache of a *running* request (the decode tail): dropping it
    /// aborts the request, so it must survive until completion.
    KvTail,
    /// Transient activations: lifetime of one forward pass.
    Activation,
    /// Session metadata (conversation state, routing hints): tiny, but must
    /// outlive the KV it describes.
    SessionState,
}

impl ControlClass {
    /// All classes, in declaration order.
    pub fn all() -> [ControlClass; 5] {
        [
            ControlClass::Weights,
            ControlClass::KvPrefix,
            ControlClass::KvTail,
            ControlClass::Activation,
            ControlClass::SessionState,
        ]
    }

    /// Stable label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            ControlClass::Weights => "weights",
            ControlClass::KvPrefix => "kv_prefix",
            ControlClass::KvTail => "kv_tail",
            ControlClass::Activation => "activation",
            ControlClass::SessionState => "session_state",
        }
    }

    /// The control class a workload-side write maps to. `KvCache` maps to
    /// the live tail; the prefix class is entered explicitly when a
    /// completed context is parked for follow-ups.
    pub fn from_data_class(class: DataClass) -> ControlClass {
        match class {
            DataClass::Weights => ControlClass::Weights,
            DataClass::KvCache => ControlClass::KvTail,
            DataClass::Activation => ControlClass::Activation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = ControlClass::all().iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn data_class_mapping_covers_all_workload_classes() {
        assert_eq!(
            ControlClass::from_data_class(DataClass::Weights),
            ControlClass::Weights
        );
        assert_eq!(
            ControlClass::from_data_class(DataClass::KvCache),
            ControlClass::KvTail
        );
        assert_eq!(
            ControlClass::from_data_class(DataClass::Activation),
            ControlClass::Activation
        );
    }
}
