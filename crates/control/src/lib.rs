//! # `mrm-control` — the retention control plane
//!
//! The paper's §4 thesis operationalized: *software owns retention*. Every
//! data class the serving stack stores (weights, KV prefix, KV tail,
//! activations, session state) is declared in a [`RetentionRegistry`]
//! with an explicit policy — `Required` or `Ephemeral`, TTL, escalation
//! class, pressure threshold. A [`Reconciler`] diffs observed placement
//! against those declarations each maintenance tick and emits typed
//! [`WorkItem`]s (migrate / refresh / recompute-drop / retire / refetch)
//! for the data path to execute; an append-only [`AuditLog`] records every
//! decision with its class, action, reason, and sim-time.
//!
//! The log doubles as a correctness oracle for the chaos suite: under
//! fault injection, no `Required` object may ever be reclaimed without a
//! recorded re-fetch/recompute (REQUIRED-DURABLE). Telemetry export is
//! observe-only and the reconciler draws no `SimRng`, so attaching the
//! control plane never perturbs simulated results.

pub mod audit;
pub mod class;
pub mod expiry;
pub mod policy;
pub mod reconcile;
pub mod registry;

pub use audit::{AuditAction, AuditLog, AuditRecord};
pub use class::ControlClass;
pub use expiry::{ExpiryAction, ExpiryTracker};
pub use policy::{Durability, RetentionPolicy};
pub use reconcile::{Reconciler, WorkItem, WorkKind};
pub use registry::{ControlError, RetentionRegistry};

use mrm_sim::time::{SimDuration, SimTime};
use mrm_telemetry::sink::TelemetrySink;
use serde::{Deserialize, Serialize};

/// Registry + audit log, wired together: the object the data path holds.
#[derive(Clone, Debug)]
pub struct ControlPlane {
    /// Declared policy per class.
    pub registry: RetentionRegistry,
    /// Every decision, in order.
    pub audit: AuditLog,
}

impl ControlPlane {
    /// A control plane over an explicit registry.
    pub fn new(registry: RetentionRegistry) -> Self {
        ControlPlane {
            registry,
            audit: AuditLog::new(),
        }
    }

    /// The serving-cluster default declarations
    /// ([`RetentionRegistry::serving_default`]).
    pub fn serving_default(followup_window: SimDuration) -> Self {
        ControlPlane::new(RetentionRegistry::serving_default(followup_window))
    }

    /// Records a decision (sugar for [`AuditLog::record`]).
    pub fn record(
        &mut self,
        at: SimTime,
        class: ControlClass,
        id: u64,
        action: AuditAction,
        reason: &'static str,
        bytes: u64,
    ) -> u64 {
        self.audit.record(at, class, id, action, reason, bytes)
    }

    /// Records the execution of a reconciler work item as its audit
    /// action(s). A `RecomputeDrop` writes the recovery record *before*
    /// the drop so the REQUIRED-DURABLE oracle sees them in order.
    pub fn record_work(&mut self, at: SimTime, item: &WorkItem, bytes: u64) {
        match item.kind {
            WorkKind::Refresh => {
                self.record(
                    at,
                    item.class,
                    item.id,
                    AuditAction::Refresh,
                    item.reason,
                    bytes,
                );
            }
            WorkKind::Migrate { .. } => {
                self.record(
                    at,
                    item.class,
                    item.id,
                    AuditAction::Migrate,
                    item.reason,
                    bytes,
                );
            }
            WorkKind::RecomputeDrop => {
                self.record(
                    at,
                    item.class,
                    item.id,
                    AuditAction::Recompute,
                    item.reason,
                    bytes,
                );
                self.record(
                    at,
                    item.class,
                    item.id,
                    AuditAction::Drop,
                    item.reason,
                    bytes,
                );
            }
            WorkKind::Retire => {
                self.record(
                    at,
                    item.class,
                    item.id,
                    AuditAction::Retire,
                    item.reason,
                    bytes,
                );
            }
            WorkKind::Refetch => {
                self.record(
                    at,
                    item.class,
                    item.id,
                    AuditAction::Refetch,
                    item.reason,
                    bytes,
                );
            }
        }
    }

    /// The recovery work item the fault ladder prescribes for a persistent
    /// uncorrectable read: weights re-fetch from the authoritative model
    /// store; KV and other recomputable state recompute-drops. Execute the
    /// item, then [`ControlPlane::record_work`] it so the oracle sees the
    /// recovery before any drop.
    pub fn plan_fault_recovery(&self, class: ControlClass, id: u64) -> WorkItem {
        let kind = match class {
            ControlClass::Weights => WorkKind::Refetch,
            _ => WorkKind::RecomputeDrop,
        };
        WorkItem {
            id,
            class,
            kind,
            reason: "uncorrectable-read",
        }
    }

    /// Whether declared policy authorizes a memory-pressure eviction of
    /// `class` at the given occupancy.
    pub fn may_evict(&self, class: ControlClass, occupancy: f64) -> bool {
        self.registry
            .policy(class)
            .map(|p| p.evictable_at(occupancy))
            .unwrap_or(false)
    }

    /// Emits `control_*` counters and `audit_*` events into a sink.
    pub fn emit_telemetry(&mut self, sink: &mut dyn TelemetrySink) {
        sink.gauge(
            "control_required_drop_violations",
            self.audit.required_drop_violations(&self.registry).len() as f64,
        );
        self.audit.emit_telemetry(sink);
    }

    /// Aggregated decision counts for reports.
    pub fn summary(&self) -> ControlSummary {
        ControlSummary {
            audit_records: self.audit.len() as u64,
            stores: self.audit.count(AuditAction::Store),
            refreshes: self.audit.count(AuditAction::Refresh),
            migrations: self.audit.count(AuditAction::Migrate),
            drops: self.audit.count(AuditAction::Drop),
            evictions: self.audit.count(AuditAction::Evict),
            retires: self.audit.count(AuditAction::Retire),
            escalations: self.audit.count(AuditAction::Escalate),
            refetches: self.audit.count(AuditAction::Refetch),
            recomputes: self.audit.count(AuditAction::Recompute),
            required_drop_violations: self.audit.required_drop_violations(&self.registry).len()
                as u64,
        }
    }
}

/// Decision counts from one run's audit log (for reports; the invariant
/// field `required_drop_violations` must be zero on any healthy run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlSummary {
    /// Total records appended.
    pub audit_records: u64,
    /// `Store` decisions.
    pub stores: u64,
    /// `Refresh` decisions.
    pub refreshes: u64,
    /// `Migrate` decisions.
    pub migrations: u64,
    /// `Drop` decisions.
    pub drops: u64,
    /// `Evict` decisions.
    pub evictions: u64,
    /// `Retire` decisions.
    pub retires: u64,
    /// `Escalate` decisions.
    pub escalations: u64,
    /// `Refetch` decisions.
    pub refetches: u64,
    /// `Recompute` decisions.
    pub recomputes: u64,
    /// Reclaims of `Required` classes with no preceding recovery record.
    pub required_drop_violations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn record_work_orders_recompute_before_drop() {
        let mut cp = ControlPlane::serving_default(SimDuration::from_mins(10));
        let item = WorkItem {
            id: 3,
            class: ControlClass::KvTail,
            kind: WorkKind::RecomputeDrop,
            reason: "uncorrectable-read",
        };
        cp.record_work(t(1), &item, 64);
        let recs = cp.audit.records();
        assert_eq!(recs[0].action, AuditAction::Recompute);
        assert_eq!(recs[1].action, AuditAction::Drop);
        // The drop of a Required class is legal because the recompute
        // precedes it.
        assert!(cp.audit.required_drop_violations(&cp.registry).is_empty());
        assert_eq!(cp.summary().recomputes, 1);
        assert_eq!(cp.summary().required_drop_violations, 0);
    }

    #[test]
    fn may_evict_honors_durability_and_threshold() {
        let cp = ControlPlane::serving_default(SimDuration::from_mins(10));
        assert!(!cp.may_evict(ControlClass::Weights, 1.0));
        assert!(!cp.may_evict(ControlClass::KvTail, 1.0));
        assert!(!cp.may_evict(ControlClass::KvPrefix, 0.5));
        assert!(cp.may_evict(ControlClass::KvPrefix, 1.0));
    }

    #[test]
    fn summary_round_trips_through_serde() {
        let mut cp = ControlPlane::serving_default(SimDuration::from_mins(10));
        cp.record(
            t(1),
            ControlClass::Weights,
            0,
            AuditAction::Store,
            "deploy",
            70,
        );
        let s = cp.summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: ControlSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
