//! The per-token memory-traffic engine.
//!
//! §2.2's arithmetic, made executable: "each token generated during decode
//! requires reading all the weights, and the entire KV cache, for one
//! self-attention vector write ... which impl\[ies\] read:write ratios of over
//! 1000:1." Batching "allows weight reuse across requests" but "is limited
//! by latency requirements" — the engine models both.

use serde::{Deserialize, Serialize};

use mrm_sim::time::SimDuration;

use crate::access::{DataClass, MemOp};
use crate::model::{ModelConfig, Quantization};
use crate::request::{InferenceRequest, RequestId};

/// Memory traffic for generating one token for one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TokenCost {
    /// Weight bytes read (after batch amortization).
    pub weights_read: u64,
    /// KV-cache bytes read (the entire context's cache).
    pub kv_read: u64,
    /// KV-cache bytes appended (one self-attention vector).
    pub kv_write: u64,
    /// Activation bytes written then read back within the pass.
    pub activation_rw: u64,
}

impl TokenCost {
    /// Total bytes read.
    pub fn reads(&self) -> u64 {
        self.weights_read + self.kv_read + self.activation_rw
    }

    /// Total bytes written.
    pub fn writes(&self) -> u64 {
        self.kv_write + self.activation_rw
    }

    /// Read:write ratio.
    pub fn read_write_ratio(&self) -> f64 {
        self.reads() as f64 / self.writes().max(1) as f64
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &TokenCost) -> TokenCost {
        TokenCost {
            weights_read: self.weights_read + other.weights_read,
            kv_read: self.kv_read + other.kv_read,
            kv_write: self.kv_write + other.kv_write,
            activation_rw: self.activation_rw + other.activation_rw,
        }
    }
}

/// Memory traffic for one batched decode iteration (one token for each of
/// `batch` requests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchTokenCost {
    /// Requests in the batch.
    pub batch: u32,
    /// Weight bytes read once for the whole iteration.
    pub weights_read: u64,
    /// Sum of all requests' KV-cache reads.
    pub kv_read: u64,
    /// Sum of all requests' KV appends.
    pub kv_write: u64,
    /// Activation traffic for the batch.
    pub activation_rw: u64,
}

impl BatchTokenCost {
    /// Per-token average cost across the batch.
    pub fn per_token(&self) -> TokenCost {
        let b = u64::from(self.batch.max(1));
        TokenCost {
            weights_read: self.weights_read / b,
            kv_read: self.kv_read / b,
            kv_write: self.kv_write / b,
            activation_rw: self.activation_rw / b,
        }
    }

    /// Read:write ratio of the whole iteration.
    pub fn read_write_ratio(&self) -> f64 {
        let reads = self.weights_read + self.kv_read + self.activation_rw;
        let writes = self.kv_write + self.activation_rw;
        reads as f64 / writes.max(1) as f64
    }
}

/// The per-token memory-traffic engine for one model deployment.
#[derive(Clone, Debug)]
pub struct DecodeEngine {
    model: ModelConfig,
    quant: Quantization,
}

impl DecodeEngine {
    /// Creates an engine for `model` served at quantization `quant`.
    pub fn new(model: ModelConfig, quant: Quantization) -> Self {
        DecodeEngine { model, quant }
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The serving quantization.
    pub fn quant(&self) -> Quantization {
        self.quant
    }

    /// Traffic to decode one token for a single (unbatched) request whose
    /// context currently holds `context_tokens` tokens.
    pub fn token_cost(&self, context_tokens: u32) -> TokenCost {
        TokenCost {
            weights_read: self.model.weights_bytes(self.quant),
            kv_read: self
                .model
                .kv_cache_bytes(u64::from(context_tokens), self.quant),
            kv_write: self.model.kv_bytes_per_token(self.quant),
            activation_rw: self.model.activation_bytes(1, self.quant),
        }
    }

    /// Traffic for one batched decode iteration over requests with the
    /// given context sizes: weights are read **once** and amortized (§2.2
    /// "batching allows weight reuse across requests").
    pub fn batch_cost(&self, context_tokens: &[u32]) -> BatchTokenCost {
        let batch = context_tokens.len() as u32;
        let kv_read: u64 = context_tokens
            .iter()
            .map(|&c| self.model.kv_cache_bytes(u64::from(c), self.quant))
            .sum();
        BatchTokenCost {
            batch,
            weights_read: self.model.weights_bytes(self.quant),
            kv_read,
            kv_write: u64::from(batch) * self.model.kv_bytes_per_token(self.quant),
            activation_rw: self.model.activation_bytes(batch.max(1), self.quant),
        }
    }

    /// Traffic for the prefill pass of a prompt of `prompt_tokens` tokens:
    /// one pass over the weights, one pass over the (growing) KV cache
    /// modelled as a single full read, and the whole prompt's KV vectors
    /// appended.
    pub fn prefill_cost(&self, prompt_tokens: u32) -> TokenCost {
        TokenCost {
            weights_read: self.model.weights_bytes(self.quant),
            kv_read: self
                .model
                .kv_cache_bytes(u64::from(prompt_tokens), self.quant),
            kv_write: self
                .model
                .kv_cache_bytes(u64::from(prompt_tokens), self.quant),
            activation_rw: self
                .model
                .activation_bytes(prompt_tokens.max(1), self.quant),
        }
    }

    /// Emits the [`MemOp`] stream for one decode iteration of `request`,
    /// with `lifetime_hint` carrying the expected remaining lifetime of the
    /// appended KV vector (the §4 DCM input).
    pub fn decode_ops(&self, request: &InferenceRequest, lifetime_hint: SimDuration) -> Vec<MemOp> {
        self.decode_ops_for(request.id, request.context_tokens, lifetime_hint)
    }

    /// As [`DecodeEngine::decode_ops`], from raw fields.
    pub fn decode_ops_for(
        &self,
        id: RequestId,
        context_tokens: u32,
        lifetime_hint: SimDuration,
    ) -> Vec<MemOp> {
        let c = self.token_cost(context_tokens);
        vec![
            MemOp::read(DataClass::Weights, c.weights_read),
            MemOp::read(DataClass::KvCache, c.kv_read),
            MemOp::append(DataClass::KvCache, id, c.kv_write, lifetime_hint),
            MemOp::write(
                DataClass::Activation,
                c.activation_rw,
                SimDuration::from_millis(100),
            ),
        ]
    }

    /// The bulk weight-load op stream for a model (re)deployment (§2: "When
    /// a new model is deployed, the cluster ... loads weights for the new
    /// model"), with the expected deployment lifetime as the hint.
    pub fn weight_load_ops(&self, deployment_lifetime: SimDuration) -> Vec<MemOp> {
        vec![MemOp::write(
            DataClass::Weights,
            self.model.weights_bytes(self.quant),
            deployment_lifetime,
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::TraceKind;
    use mrm_sim::time::SimTime;
    use mrm_sim::units::GB;

    fn engine() -> DecodeEngine {
        DecodeEngine::new(ModelConfig::llama2_70b(), Quantization::Fp16)
    }

    #[test]
    fn unbatched_ratio_exceeds_1000_to_1() {
        // §2.2: "read:write ratios of over 1000:1."
        let c = engine().token_cost(2048);
        assert!(
            c.read_write_ratio() > 1000.0,
            "ratio {}",
            c.read_write_ratio()
        );
    }

    #[test]
    fn weights_dominate_unbatched_reads() {
        let c = engine().token_cost(2048);
        assert!(c.weights_read > c.kv_read);
        assert_eq!(c.weights_read, 140 * GB);
    }

    #[test]
    fn batching_amortizes_weights_only() {
        let e = engine();
        let contexts = vec![2048u32; 32];
        let b = e.batch_cost(&contexts);
        let per = b.per_token();
        let solo = e.token_cost(2048);
        // Weights amortize 32x; KV reads do not amortize at all.
        assert_eq!(per.weights_read, solo.weights_read / 32);
        assert_eq!(per.kv_read, solo.kv_read);
        assert_eq!(per.kv_write, solo.kv_write);
    }

    #[test]
    fn batched_workload_is_still_read_dominated() {
        // Even at batch 64, the ratio stays far above storage-like levels —
        // §2.2: batching "do[es] not fundamentally change the heavily
        // read-dominated nature."
        let e = engine();
        let b = e.batch_cost(&vec![2048u32; 64]);
        assert!(
            b.read_write_ratio() > 100.0,
            "ratio {}",
            b.read_write_ratio()
        );
    }

    #[test]
    fn kv_read_grows_with_context() {
        let e = engine();
        assert!(e.token_cost(4096).kv_read > e.token_cost(1024).kv_read);
        assert_eq!(e.token_cost(0).kv_read, 0);
    }

    #[test]
    fn prefill_writes_whole_prompt_kv() {
        let e = engine();
        let p = e.prefill_cost(1020);
        assert_eq!(
            p.kv_write,
            e.model().kv_cache_bytes(1020, Quantization::Fp16)
        );
        assert!(p.weights_read > 0);
    }

    #[test]
    fn decode_ops_cover_all_classes() {
        let e = engine();
        let mut r = InferenceRequest::new(
            RequestId(9),
            TraceKind::Conversation,
            SimTime::ZERO,
            100,
            10,
        );
        r.begin_prefill();
        r.begin_decode();
        let ops = e.decode_ops(&r, SimDuration::from_mins(5));
        assert_eq!(ops.len(), 4);
        let classes: Vec<DataClass> = ops.iter().map(|o| o.class).collect();
        assert!(classes.contains(&DataClass::Weights));
        assert!(classes.contains(&DataClass::KvCache));
        assert!(classes.contains(&DataClass::Activation));
        let append = ops
            .iter()
            .find(|o| o.kind == crate::access::MemOpKind::Append)
            .unwrap();
        assert_eq!(append.lifetime_hint, SimDuration::from_mins(5));
        assert_eq!(append.request, Some(RequestId(9)));
    }

    #[test]
    fn weight_load_is_one_bulk_write() {
        let e = engine();
        let ops = e.weight_load_ops(SimDuration::from_hours(1));
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].bytes, 140 * GB);
        assert!(ops[0].is_write());
    }

    #[test]
    fn merged_costs_add() {
        let e = engine();
        let a = e.token_cost(100);
        let b = e.token_cost(200);
        let m = a.merged(&b);
        assert_eq!(m.kv_read, a.kv_read + b.kv_read);
        assert_eq!(m.weights_read, a.weights_read + b.weights_read);
    }

    #[test]
    fn quantization_cuts_traffic() {
        let fp16 = DecodeEngine::new(ModelConfig::llama2_70b(), Quantization::Fp16);
        let int4 = DecodeEngine::new(ModelConfig::llama2_70b(), Quantization::Int4);
        assert_eq!(
            int4.token_cost(1024).weights_read * 4,
            fp16.token_cost(1024).weights_read
        );
    }
}
