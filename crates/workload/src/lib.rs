//! # `mrm-workload` — foundation-model inference as a memory workload
//!
//! §2 of the MRM paper characterizes foundation-model inference by its three
//! in-memory data structures — **model weights** (non-mutable, read every
//! token), the **KV cache** (append-only, read entirely every decode step),
//! and **activations** (transient, an order of magnitude smaller) — and by
//! its access pattern: "very large, predictable memory reads, while writes
//! are smaller and mostly append only."
//!
//! This crate turns that characterization into an executable workload:
//!
//! * [`model`] — transformer configurations and their derived memory
//!   footprints (weights bytes, KV bytes/token, activation bytes).
//! * [`traces`] — request populations with the published Splitwise
//!   distribution parameters (conversation and coding medians) and Poisson
//!   arrivals.
//! * [`replay`] — request-trace recording and CSV replay (drop-in for real
//!   production traces when available).
//! * [`request`] — inference request/context state through prefill & decode.
//! * [`sessions`] — multi-turn conversation sessions with think-time gaps
//!   (the intervals KV retention must cover).
//! * [`engine`] — the per-token memory-traffic generator: what is read,
//!   appended and written for every generated token, with batching.
//! * [`access`] — the emitted [`access::MemOp`] stream with data-lifetime
//!   hints, consumed by the tiering control plane and the analysis layer.

pub mod access;
pub mod engine;
pub mod model;
pub mod replay;
pub mod request;
pub mod sessions;
pub mod traces;

pub use access::{DataClass, MemOp, MemOpKind};
pub use engine::{BatchTokenCost, DecodeEngine, TokenCost};
pub use model::{ModelConfig, Quantization};
pub use replay::{RequestTrace, TraceEntry};
pub use request::{InferenceRequest, Phase, RequestId};
pub use traces::{RequestSampler, TraceKind, TraceMix};
