//! Trace recording and replay.
//!
//! The substitution rule (DESIGN.md §2) replaces the Azure production
//! traces with samplers fitted to the published statistics — but a serious
//! memory-systems artifact must also accept *real* traces when a user has
//! them. This module defines a minimal request-trace format
//! (`arrival_s,kind,prompt_tokens,output_tokens` CSV), a recorder that
//! captures generated traffic into it, and a replayer that feeds it back —
//! so any experiment can run from either a sampler or a file.

use mrm_sim::rng::SimRng;
use mrm_sim::time::{SimDuration, SimTime};

use crate::traces::{TraceKind, TraceMix};

/// One recorded request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEntry {
    /// Arrival time since trace start.
    pub arrival: SimDuration,
    /// Population label.
    pub kind: TraceKind,
    /// Prompt tokens.
    pub prompt_tokens: u32,
    /// Output tokens.
    pub output_tokens: u32,
}

/// Errors from trace parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// Wrong number of fields on a line.
    FieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// Arrivals are not non-decreasing.
    OutOfOrder {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::FieldCount { line } => write!(f, "line {line}: expected 4 fields"),
            TraceParseError::BadField { line, field } => {
                write!(f, "line {line}: cannot parse field `{field}`")
            }
            TraceParseError::OutOfOrder { line } => {
                write!(f, "line {line}: arrivals must be non-decreasing")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// A recorded (or loaded) request trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RequestTrace {
    entries: Vec<TraceEntry>,
}

impl RequestTrace {
    /// An empty trace.
    pub fn new() -> Self {
        RequestTrace::default()
    }

    /// Records a trace by sampling `n` requests from a [`TraceMix`].
    pub fn record(mix: &TraceMix, n: usize, rng: &mut SimRng) -> Self {
        let mut entries = Vec::with_capacity(n);
        let mut t = SimDuration::ZERO;
        for _ in 0..n {
            t += mix.next_interarrival(rng);
            let (kind, prompt, output) = mix.sample_request(rng);
            entries.push(TraceEntry {
                arrival: t,
                kind,
                prompt_tokens: prompt,
                output_tokens: output,
            });
        }
        RequestTrace { entries }
    }

    /// The entries, arrival-ordered.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Trace duration (arrival of the last request).
    pub fn duration(&self) -> SimDuration {
        self.entries
            .last()
            .map(|e| e.arrival)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Mean arrival rate, requests/second.
    pub fn arrival_rate(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d <= 0.0 {
            return 0.0;
        }
        self.entries.len() as f64 / d
    }

    /// Serializes to the CSV format (`arrival_s,kind,prompt,output`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("arrival_s,kind,prompt_tokens,output_tokens\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{:.6},{},{},{}\n",
                e.arrival.as_secs_f64(),
                e.kind.label(),
                e.prompt_tokens,
                e.output_tokens
            ));
        }
        out
    }

    /// Parses the CSV format (header line optional).
    pub fn from_csv(csv: &str) -> Result<Self, TraceParseError> {
        let mut entries = Vec::new();
        let mut last = SimDuration::ZERO;
        for (i, raw) in csv.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with("arrival_s") {
                continue;
            }
            let fields: Vec<&str> = trimmed.split(',').collect();
            if fields.len() != 4 {
                return Err(TraceParseError::FieldCount { line });
            }
            let secs: f64 = fields[0].parse().map_err(|_| TraceParseError::BadField {
                line,
                field: "arrival_s",
            })?;
            let kind = match fields[1] {
                "conversation" => TraceKind::Conversation,
                "coding" => TraceKind::Coding,
                _ => {
                    return Err(TraceParseError::BadField {
                        line,
                        field: "kind",
                    })
                }
            };
            let prompt: u32 = fields[2].parse().map_err(|_| TraceParseError::BadField {
                line,
                field: "prompt_tokens",
            })?;
            let output: u32 = fields[3].parse().map_err(|_| TraceParseError::BadField {
                line,
                field: "output_tokens",
            })?;
            let arrival = SimDuration::from_secs_f64(secs);
            if arrival < last {
                return Err(TraceParseError::OutOfOrder { line });
            }
            last = arrival;
            entries.push(TraceEntry {
                arrival,
                kind,
                prompt_tokens: prompt,
                output_tokens: output,
            });
        }
        Ok(RequestTrace { entries })
    }

    /// Iterates `(absolute arrival time, entry)` from a given start time —
    /// the replay interface a simulation consumes.
    pub fn replay_from(&self, start: SimTime) -> impl Iterator<Item = (SimTime, TraceEntry)> + '_ {
        self.entries.iter().map(move |e| (start + e.arrival, *e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(n: usize) -> RequestTrace {
        let mix = TraceMix::splitwise_default(4096, 10.0);
        let mut rng = SimRng::seed_from(77);
        RequestTrace::record(&mix, n, &mut rng)
    }

    #[test]
    fn record_produces_ordered_arrivals() {
        let t = sample_trace(500);
        assert_eq!(t.len(), 500);
        for w in t.entries().windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // Rate is near the configured 10/s.
        assert!(
            (t.arrival_rate() - 10.0).abs() < 1.5,
            "rate {}",
            t.arrival_rate()
        );
    }

    #[test]
    fn csv_roundtrip_is_lossless_to_microseconds() {
        let t = sample_trace(200);
        let csv = t.to_csv();
        let back = RequestTrace::from_csv(&csv).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.entries().iter().zip(back.entries()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.prompt_tokens, b.prompt_tokens);
            assert_eq!(a.output_tokens, b.output_tokens);
            let da = a.arrival.as_secs_f64();
            let db = b.arrival.as_secs_f64();
            assert!((da - db).abs() < 1e-5, "{da} vs {db}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert_eq!(
            RequestTrace::from_csv("1.0,conversation,100").unwrap_err(),
            TraceParseError::FieldCount { line: 1 }
        );
        assert_eq!(
            RequestTrace::from_csv("x,conversation,100,10").unwrap_err(),
            TraceParseError::BadField {
                line: 1,
                field: "arrival_s"
            }
        );
        assert_eq!(
            RequestTrace::from_csv("1.0,email,100,10").unwrap_err(),
            TraceParseError::BadField {
                line: 1,
                field: "kind"
            }
        );
        assert_eq!(
            RequestTrace::from_csv("2.0,coding,100,10\n1.0,coding,100,10").unwrap_err(),
            TraceParseError::OutOfOrder { line: 2 }
        );
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let csv = "arrival_s,kind,prompt_tokens,output_tokens\n\n0.5,coding,1930,13\n";
        let t = RequestTrace::from_csv(csv).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].kind, TraceKind::Coding);
    }

    #[test]
    fn replay_offsets_arrivals() {
        let t = sample_trace(10);
        let start = SimTime::from_secs(100);
        let replayed: Vec<_> = t.replay_from(start).collect();
        assert_eq!(replayed.len(), 10);
        for ((at, e), orig) in replayed.iter().zip(t.entries()) {
            assert_eq!(*at, start + orig.arrival);
            assert_eq!(e.prompt_tokens, orig.prompt_tokens);
        }
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = RequestTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimDuration::ZERO);
        assert!(t.arrival_rate().abs() < f64::EPSILON);
        assert_eq!(RequestTrace::from_csv("").unwrap(), t);
    }
}
