//! Inference requests and their lifecycle.
//!
//! §2: "An inference query is a sequence of input tokens, in response to
//! which the foundation model generates a sequence of output tokens. A
//! context is composed of all the tokens from the user and the corresponding
//! responses." The KV cache "is created during the prefill phase"; "in the
//! decode phase the model iteratively generates response tokens", reading
//! the entire KV cache and appending one vector per token.

use serde::{Deserialize, Serialize};

use mrm_sim::time::SimTime;

use crate::traces::TraceKind;

/// Opaque request identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// Lifecycle phase of an inference request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Waiting to be scheduled.
    Queued,
    /// Prefill: ingesting the prompt, building the KV cache.
    Prefill,
    /// Decode: autoregressive generation, one token per iteration.
    Decode,
    /// All output tokens generated.
    Complete,
}

/// One inference request and its context state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Identifier.
    pub id: RequestId,
    /// Workload population the request was drawn from.
    pub kind: TraceKind,
    /// Arrival time.
    pub arrival: SimTime,
    /// Prompt length, tokens.
    pub prompt_tokens: u32,
    /// Output length to generate, tokens.
    pub output_tokens: u32,
    /// Tokens currently in the context (prompt ingested + generated so far).
    pub context_tokens: u32,
    /// Output tokens generated so far.
    pub generated: u32,
    /// Current phase.
    pub phase: Phase,
}

impl InferenceRequest {
    /// Creates a queued request.
    pub fn new(
        id: RequestId,
        kind: TraceKind,
        arrival: SimTime,
        prompt_tokens: u32,
        output_tokens: u32,
    ) -> Self {
        InferenceRequest {
            id,
            kind,
            arrival,
            prompt_tokens: prompt_tokens.max(1),
            output_tokens: output_tokens.max(1),
            context_tokens: 0,
            generated: 0,
            phase: Phase::Queued,
        }
    }

    /// Final context size when the request completes, tokens.
    pub fn final_context_tokens(&self) -> u32 {
        self.prompt_tokens + self.output_tokens
    }

    /// Starts prefill: the whole prompt enters the context (chunked
    /// prefill is modelled as instantaneous occupancy for memory purposes).
    pub fn begin_prefill(&mut self) {
        debug_assert_eq!(self.phase, Phase::Queued);
        self.phase = Phase::Prefill;
        self.context_tokens = self.prompt_tokens;
    }

    /// Completes prefill and enters decode.
    pub fn begin_decode(&mut self) {
        debug_assert_eq!(self.phase, Phase::Prefill);
        self.phase = Phase::Decode;
    }

    /// Generates one token. Returns `true` when the request completes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if called outside the decode phase.
    pub fn decode_step(&mut self) -> bool {
        debug_assert_eq!(self.phase, Phase::Decode);
        self.generated += 1;
        self.context_tokens += 1;
        if self.generated >= self.output_tokens {
            self.phase = Phase::Complete;
            true
        } else {
            false
        }
    }

    /// Remaining output tokens.
    pub fn remaining_tokens(&self) -> u32 {
        self.output_tokens.saturating_sub(self.generated)
    }

    /// Whether the request has finished.
    pub fn is_complete(&self) -> bool {
        self.phase == Phase::Complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> InferenceRequest {
        InferenceRequest::new(RequestId(1), TraceKind::Conversation, SimTime::ZERO, 100, 3)
    }

    #[test]
    fn lifecycle() {
        let mut r = req();
        assert_eq!(r.phase, Phase::Queued);
        assert_eq!(r.context_tokens, 0);

        r.begin_prefill();
        assert_eq!(r.phase, Phase::Prefill);
        assert_eq!(r.context_tokens, 100);

        r.begin_decode();
        assert!(!r.decode_step());
        assert!(!r.decode_step());
        assert_eq!(r.remaining_tokens(), 1);
        assert!(r.decode_step());
        assert!(r.is_complete());
        assert_eq!(r.context_tokens, 103);
        assert_eq!(r.final_context_tokens(), 103);
    }

    #[test]
    fn zero_lengths_are_clamped() {
        let r = InferenceRequest::new(RequestId(2), TraceKind::Coding, SimTime::ZERO, 0, 0);
        assert_eq!(r.prompt_tokens, 1);
        assert_eq!(r.output_tokens, 1);
    }

    #[test]
    fn context_grows_by_one_per_decode() {
        let mut r = req();
        r.begin_prefill();
        r.begin_decode();
        let before = r.context_tokens;
        r.decode_step();
        assert_eq!(r.context_tokens, before + 1);
    }
}
