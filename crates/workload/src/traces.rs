//! Request populations with published Splitwise trace statistics.
//!
//! The paper's Figure-1 KV-cache endurance line "use\[s\] the throughputs and
//! median context lengths reported for the Llama2-70B model in Splitwise
//! \[37\]". We do not have the raw production traces (they are Azure
//! internal); per the substitution rule, the samplers here reproduce the
//! *published* distribution parameters of those traces:
//!
//! * **Conversation** trace: median prompt ≈ 1020 tokens, median output
//!   ≈ 129 tokens (Splitwise §3, Table/Fig. characterization).
//! * **Coding** trace: median prompt ≈ 1930 tokens, median output ≈ 13
//!   tokens.
//! * Context lengths are heavy-tailed; we model them log-normal around the
//!   published medians with a spread chosen to match the reported
//!   P90/median ratios (≈ 3–4× for prompts), truncated to the model's
//!   context limit.
//! * Splitwise-reported machine throughputs for Llama2-70B on DGX-A100:
//!   prefill ≈ several thousand tokens/s, batched decode ≈ low thousands —
//!   [`SplitwiseThroughput`] carries the values used by the endurance math.

use serde::{Deserialize, Serialize};

use mrm_sim::dist::{Distribution, Exponential, LogNormal};
use mrm_sim::rng::SimRng;
use mrm_sim::time::SimDuration;

/// Which published workload population a request is drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// Interactive chat: long-ish prompts, long outputs.
    Conversation,
    /// Code completion: long prompts, very short outputs.
    Coding,
}

impl TraceKind {
    /// Published median prompt length, tokens.
    pub fn median_prompt_tokens(self) -> u32 {
        match self {
            TraceKind::Conversation => 1020,
            TraceKind::Coding => 1930,
        }
    }

    /// Published median output length, tokens.
    pub fn median_output_tokens(self) -> u32 {
        match self {
            TraceKind::Conversation => 129,
            TraceKind::Coding => 13,
        }
    }

    /// Log-normal sigma fitted to the reported spread.
    fn sigma(self) -> (f64, f64) {
        match self {
            // (prompt sigma, output sigma)
            TraceKind::Conversation => (0.9, 0.9),
            TraceKind::Coding => (0.8, 1.1),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Conversation => "conversation",
            TraceKind::Coding => "coding",
        }
    }
}

/// Splitwise-reported machine-level token throughputs for Llama2-70B,
/// used by the Figure-1 endurance requirement computation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SplitwiseThroughput {
    /// Prefill (prompt) tokens per second per machine.
    pub prefill_tokens_per_s: f64,
    /// Decode (generation) tokens per second per machine (batched).
    pub decode_tokens_per_s: f64,
}

impl SplitwiseThroughput {
    /// The values used throughout the workspace (Splitwise, ISCA'24,
    /// Llama2-70B on DGX-A100-class machines; prefill saturates several
    /// thousand tokens/s, batched decode sustains on the order of a
    /// thousand).
    pub fn llama2_70b() -> Self {
        SplitwiseThroughput {
            prefill_tokens_per_s: 7000.0,
            decode_tokens_per_s: 1500.0,
        }
    }

    /// Aggregate token write rate (every prefill and decode token appends
    /// one KV vector), tokens/s.
    pub fn total_tokens_per_s(&self) -> f64 {
        self.prefill_tokens_per_s + self.decode_tokens_per_s
    }
}

/// Samples `(prompt_tokens, output_tokens)` pairs for one population.
#[derive(Clone, Debug)]
pub struct RequestSampler {
    kind: TraceKind,
    prompt: LogNormal,
    output: LogNormal,
    max_context: u32,
}

impl RequestSampler {
    /// Creates a sampler for `kind`, truncating contexts to `max_context`.
    pub fn new(kind: TraceKind, max_context: u32) -> Self {
        let (ps, os) = kind.sigma();
        RequestSampler {
            kind,
            prompt: LogNormal::from_median(f64::from(kind.median_prompt_tokens()), ps),
            output: LogNormal::from_median(f64::from(kind.median_output_tokens()), os),
            max_context,
        }
    }

    /// The population this sampler draws from.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// Draws one `(prompt_tokens, output_tokens)` pair. Both are at least 1
    /// and the pair is truncated so the final context fits `max_context`.
    pub fn sample(&self, rng: &mut SimRng) -> (u32, u32) {
        let p = self.prompt.sample(rng).round().max(1.0);
        let o = self.output.sample(rng).round().max(1.0);
        let p = (p as u32).min(self.max_context.saturating_sub(1)).max(1);
        let o = (o as u32).min(self.max_context - p).max(1);
        (p, o)
    }
}

/// A mixture of trace populations with Poisson arrivals.
#[derive(Clone, Debug)]
pub struct TraceMix {
    samplers: Vec<(f64, RequestSampler)>,
    total_weight: f64,
    interarrival: Option<Exponential>,
}

impl TraceMix {
    /// Creates a mixture from `(weight, sampler)` components and an
    /// aggregate arrival rate (requests/second). A zero rate is legal and
    /// models a drained system: the mixture never produces an arrival.
    ///
    /// # Panics
    ///
    /// Panics if no components are given, weights are non-positive, or the
    /// rate is negative or non-finite.
    pub fn new(components: Vec<(f64, RequestSampler)>, arrivals_per_s: f64) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        let total_weight: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0.0, "weights must be positive");
        for (w, _) in &components {
            assert!(*w > 0.0, "weights must be positive");
        }
        assert!(
            arrivals_per_s.is_finite() && arrivals_per_s >= 0.0,
            "arrival rate must be finite and non-negative"
        );
        TraceMix {
            samplers: components,
            total_weight,
            interarrival: (arrivals_per_s > 0.0).then(|| Exponential::new(arrivals_per_s)),
        }
    }

    /// The Splitwise-style default: 70% conversation, 30% coding.
    pub fn splitwise_default(max_context: u32, arrivals_per_s: f64) -> Self {
        TraceMix::new(
            vec![
                (
                    0.7,
                    RequestSampler::new(TraceKind::Conversation, max_context),
                ),
                (0.3, RequestSampler::new(TraceKind::Coding, max_context)),
            ],
            arrivals_per_s,
        )
    }

    /// True when the mixture has a positive arrival rate. A zero-rate mix
    /// never produces an arrival, so callers must not draw gaps from it.
    pub fn has_arrivals(&self) -> bool {
        self.interarrival.is_some()
    }

    /// Draws the next inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if the mixture was built with a zero arrival rate; gate on
    /// [`TraceMix::has_arrivals`] first.
    pub fn next_interarrival(&self, rng: &mut SimRng) -> SimDuration {
        let exp = self
            .interarrival
            .expect("next_interarrival drawn from a zero-rate mix");
        SimDuration::from_secs_f64(exp.sample(rng))
    }

    /// Draws one request: `(kind, prompt_tokens, output_tokens)`.
    pub fn sample_request(&self, rng: &mut SimRng) -> (TraceKind, u32, u32) {
        let mut pick = rng.next_f64() * self.total_weight;
        for (w, s) in &self.samplers {
            if pick < *w {
                let (p, o) = s.sample(rng);
                return (s.kind(), p, o);
            }
            pick -= w;
        }
        let s = &self
            .samplers
            .last()
            .expect("TraceMix has at least one sampler")
            .1;
        let (p, o) = s.sample(rng);
        (s.kind(), p, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median(mut xs: Vec<u32>) -> u32 {
        xs.sort_unstable();
        xs[xs.len() / 2]
    }

    #[test]
    fn medians_match_published_values() {
        let mut rng = SimRng::seed_from(1);
        for kind in [TraceKind::Conversation, TraceKind::Coding] {
            // mrm-lint: allow(U1) token-count truncation bound, not a byte capacity
            let s = RequestSampler::new(kind, 1 << 20); // effectively untruncated
            let (prompts, outputs): (Vec<u32>, Vec<u32>) =
                (0..40_001).map(|_| s.sample(&mut rng)).unzip();
            let pm = median(prompts);
            let om = median(outputs);
            let p_target = kind.median_prompt_tokens();
            let o_target = kind.median_output_tokens();
            assert!(
                (f64::from(pm) / f64::from(p_target) - 1.0).abs() < 0.06,
                "{kind:?} prompt median {pm} vs {p_target}"
            );
            assert!(
                (f64::from(om) / f64::from(o_target) - 1.0).abs() < 0.12,
                "{kind:?} output median {om} vs {o_target}"
            );
        }
    }

    #[test]
    fn contexts_fit_limit() {
        let mut rng = SimRng::seed_from(7);
        let s = RequestSampler::new(TraceKind::Coding, 4096);
        for _ in 0..20_000 {
            let (p, o) = s.sample(&mut rng);
            assert!(p >= 1 && o >= 1);
            assert!(p + o <= 4096, "context {} over limit", p + o);
        }
    }

    #[test]
    fn coding_outputs_shorter_than_conversation() {
        let mut rng = SimRng::seed_from(2);
        let conv = RequestSampler::new(TraceKind::Conversation, 4096);
        let code = RequestSampler::new(TraceKind::Coding, 4096);
        let conv_out: u64 = (0..5000).map(|_| u64::from(conv.sample(&mut rng).1)).sum();
        let code_out: u64 = (0..5000).map(|_| u64::from(code.sample(&mut rng).1)).sum();
        assert!(
            conv_out > 3 * code_out,
            "conv {conv_out} vs code {code_out}"
        );
    }

    #[test]
    fn mixture_respects_weights() {
        let mut rng = SimRng::seed_from(3);
        let mix = TraceMix::splitwise_default(4096, 10.0);
        let n = 20_000;
        let conv = (0..n)
            .filter(|_| matches!(mix.sample_request(&mut rng).0, TraceKind::Conversation))
            .count();
        let frac = conv as f64 / f64::from(n);
        assert!((frac - 0.7).abs() < 0.02, "conversation fraction {frac}");
    }

    #[test]
    fn poisson_arrivals_have_right_mean() {
        let mut rng = SimRng::seed_from(4);
        let mix = TraceMix::splitwise_default(4096, 50.0);
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| mix.next_interarrival(&mut rng).as_secs_f64())
            .sum();
        let mean = total / f64::from(n);
        assert!((mean - 0.02).abs() < 0.001, "mean gap {mean}");
    }

    #[test]
    fn throughput_totals() {
        let t = SplitwiseThroughput::llama2_70b();
        assert!(
            t.prefill_tokens_per_s > t.decode_tokens_per_s,
            "prefill is higher throughput (§3)"
        );
        assert!((t.total_tokens_per_s() - 8500.0).abs() < f64::EPSILON);
    }
}
