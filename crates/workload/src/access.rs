//! The memory-operation stream emitted by the workload engine.
//!
//! Tiering policies and analysis consume a flat stream of [`MemOp`]s. Each
//! op carries the *data class* it touches and — crucially for MRM — an
//! expected-lifetime hint: §4's "fine-grained understanding of lifetime and
//! access patterns of the data will be required to lay out the data."

use serde::{Deserialize, Serialize};

use mrm_sim::time::SimDuration;
use mrm_sim::trace::TraceRecord;

use crate::request::RequestId;

/// Which §2 data structure an operation touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataClass {
    /// Model weights: non-mutable, persisted elsewhere, read every token.
    Weights,
    /// KV cache of one context: append-only soft state, read every decode
    /// step, lifetime ≈ the context's remaining lifetime.
    KvCache,
    /// Transient activations: lifetime ≈ one forward pass.
    Activation,
}

impl DataClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DataClass::Weights => "weights",
            DataClass::KvCache => "kv-cache",
            DataClass::Activation => "activation",
        }
    }

    /// Whether losing this data is recoverable without user-visible failure
    /// (§4: weights are durably stored elsewhere; KV caches are soft state
    /// that can be recomputed; activations are regenerated every pass).
    pub fn is_soft_state(self) -> bool {
        true // every inference data class is reconstructible
    }

    /// Whether the data is ever overwritten in place (§2.2: "There are no
    /// in-place updates for weights or KV caches").
    pub fn in_place_updates(self) -> bool {
        matches!(self, DataClass::Activation)
    }
}

/// Operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOpKind {
    /// Sequential read.
    Read,
    /// Append to the end of a stream (KV-cache vector append).
    Append,
    /// Write (bulk weight load, activation store).
    Write,
}

/// One memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemOp {
    /// Operation kind.
    pub kind: MemOpKind,
    /// Data class touched.
    pub class: DataClass,
    /// Owning request (None for shared structures like weights).
    pub request: Option<RequestId>,
    /// Bytes moved.
    pub bytes: u64,
    /// Expected remaining lifetime of the data at the time of the write
    /// (the §4 DCM hint); `SimDuration::MAX` for reads.
    pub lifetime_hint: SimDuration,
}

impl MemOp {
    /// A sequential read of a shared structure.
    pub fn read(class: DataClass, bytes: u64) -> Self {
        MemOp {
            kind: MemOpKind::Read,
            class,
            request: None,
            bytes,
            lifetime_hint: SimDuration::MAX,
        }
    }

    /// An append on behalf of a request, with a lifetime hint.
    pub fn append(class: DataClass, request: RequestId, bytes: u64, lifetime: SimDuration) -> Self {
        MemOp {
            kind: MemOpKind::Append,
            class,
            request: Some(request),
            bytes,
            lifetime_hint: lifetime,
        }
    }

    /// A bulk write with a lifetime hint.
    pub fn write(class: DataClass, bytes: u64, lifetime: SimDuration) -> Self {
        MemOp {
            kind: MemOpKind::Write,
            class,
            request: None,
            bytes,
            lifetime_hint: lifetime,
        }
    }

    /// True for `Append` and `Write`.
    pub fn is_write(&self) -> bool {
        !matches!(self.kind, MemOpKind::Read)
    }
}

impl TraceRecord for MemOp {
    fn csv_header() -> &'static str {
        "kind,class,request,bytes,lifetime_ns"
    }

    fn csv_row(&self) -> String {
        format!(
            "{:?},{},{},{},{}",
            self.kind,
            self.class.label(),
            self.request.map(|r| r.0.to_string()).unwrap_or_default(),
            self.bytes,
            self.lifetime_hint.as_nanos()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::units::GIB;

    #[test]
    fn constructors_set_kinds() {
        let r = MemOp::read(DataClass::Weights, 100);
        assert!(!r.is_write());
        assert_eq!(r.lifetime_hint, SimDuration::MAX);

        let a = MemOp::append(
            DataClass::KvCache,
            RequestId(3),
            64,
            SimDuration::from_mins(5),
        );
        assert!(a.is_write());
        assert_eq!(a.request, Some(RequestId(3)));

        let w = MemOp::write(DataClass::Weights, GIB, SimDuration::from_days(30));
        assert!(w.is_write());
        assert_eq!(w.kind, MemOpKind::Write);
    }

    #[test]
    fn data_class_properties() {
        assert!(DataClass::Weights.is_soft_state());
        assert!(!DataClass::Weights.in_place_updates());
        assert!(!DataClass::KvCache.in_place_updates());
        assert!(DataClass::Activation.in_place_updates());
        assert_eq!(DataClass::KvCache.label(), "kv-cache");
    }

    #[test]
    fn csv_rendering() {
        let op = MemOp::append(
            DataClass::KvCache,
            RequestId(7),
            320,
            SimDuration::from_nanos(42),
        );
        assert_eq!(op.csv_row(), "Append,kv-cache,7,320,42");
        let op = MemOp::read(DataClass::Weights, 5);
        assert!(op.csv_row().starts_with("Read,weights,,5,"));
    }
}
