//! Transformer model configurations and derived memory footprints.
//!
//! The paper's §2 quantities all derive from a handful of architecture
//! parameters: "large models have (well) over 500 billion weights,
//! representing between 250 GB and over 1 TB of data depending on the weight
//! quantization"; "each [self-attention] vector is typically a few MBs, so
//! the KV cache usually grows to a few tens of GBs"; activations are "an
//! order of magnitude smaller than both". [`ModelConfig`] computes each from
//! first principles so the analysis crate can regenerate the claims.

use serde::{Deserialize, Serialize};

/// Weight/KV quantization formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quantization {
    /// 16-bit floating point (2 bytes per value).
    Fp16,
    /// 8-bit formats (1 byte per value).
    Int8,
    /// 4-bit formats (half a byte per value).
    Int4,
}

impl Quantization {
    /// Bytes per stored value.
    pub fn bytes_per_value(self) -> f64 {
        match self {
            Quantization::Fp16 => 2.0,
            Quantization::Int8 => 1.0,
            Quantization::Int4 => 0.5,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Quantization::Fp16 => "fp16",
            Quantization::Int8 => "int8",
            Quantization::Int4 => "int4",
        }
    }

    /// All supported formats.
    pub fn all() -> [Quantization; 3] {
        [Quantization::Fp16, Quantization::Int8, Quantization::Int4]
    }
}

/// A decoder-only transformer architecture.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name, e.g. `"Llama2-70B"`.
    pub name: String,
    /// Total parameter count.
    pub n_params: u64,
    /// Transformer layers.
    pub n_layers: u32,
    /// Model (embedding) dimension.
    pub d_model: u32,
    /// Attention heads.
    pub n_heads: u32,
    /// KV heads (< `n_heads` under grouped-query attention).
    pub n_kv_heads: u32,
    /// Maximum supported context length, tokens.
    pub max_context: u32,
}

impl ModelConfig {
    /// Head dimension (`d_model / n_heads`).
    pub fn head_dim(&self) -> u32 {
        self.d_model / self.n_heads
    }

    /// Total weight bytes at the given quantization.
    pub fn weights_bytes(&self, q: Quantization) -> u64 {
        (self.n_params as f64 * q.bytes_per_value()) as u64
    }

    /// Bytes appended to the KV cache per generated token (the paper's
    /// "self-attention vector"): K and V, per layer, per KV head, per head
    /// dimension.
    pub fn kv_bytes_per_token(&self, q: Quantization) -> u64 {
        let values = 2u64 // K and V
            * u64::from(self.n_layers)
            * u64::from(self.n_kv_heads)
            * u64::from(self.head_dim());
        (values as f64 * q.bytes_per_value()) as u64
    }

    /// KV cache size for a context of `tokens` tokens.
    pub fn kv_cache_bytes(&self, tokens: u64, q: Quantization) -> u64 {
        tokens * self.kv_bytes_per_token(q)
    }

    /// Peak transient activation bytes for one forward pass at the given
    /// batch size: the live working set between layers (hidden states plus
    /// the MLP intermediate, which dominates at ~4× d_model), not the sum
    /// over layers — activations are freed as the pass proceeds (§2:
    /// "only stored during the forward pass computation").
    pub fn activation_bytes(&self, batch: u32, q: Quantization) -> u64 {
        let per_token = (1 + 4) * u64::from(self.d_model); // hidden + MLP intermediate
        (u64::from(batch) * per_token) * 2 // fp16 accumulation regardless of weight q
            + (u64::from(batch) * u64::from(self.d_model) * q.bytes_per_value() as u64)
    }

    /// Llama2-7B.
    pub fn llama2_7b() -> Self {
        ModelConfig {
            name: "Llama2-7B".into(),
            n_params: 7_000_000_000,
            n_layers: 32,
            d_model: 4096,
            n_heads: 32,
            n_kv_heads: 32,
            max_context: 4096,
        }
    }

    /// Llama2-13B.
    pub fn llama2_13b() -> Self {
        ModelConfig {
            name: "Llama2-13B".into(),
            n_params: 13_000_000_000,
            n_layers: 40,
            d_model: 5120,
            n_heads: 40,
            n_kv_heads: 40,
            max_context: 4096,
        }
    }

    /// Llama2-70B — the model Splitwise (paper ref \[37\]) reports, and the
    /// model the paper's Figure-1 KV-cache endurance line is computed for.
    /// Uses grouped-query attention with 8 KV heads.
    pub fn llama2_70b() -> Self {
        ModelConfig {
            name: "Llama2-70B".into(),
            n_params: 70_000_000_000,
            n_layers: 80,
            d_model: 8192,
            n_heads: 64,
            n_kv_heads: 8,
            max_context: 4096,
        }
    }

    /// GPT-3-175B-class dense model with full multi-head attention — the
    /// "few MBs" self-attention-vector regime.
    pub fn gpt3_175b() -> Self {
        ModelConfig {
            name: "GPT3-175B".into(),
            n_params: 175_000_000_000,
            n_layers: 96,
            d_model: 12288,
            n_heads: 96,
            n_kv_heads: 96,
            max_context: 8192,
        }
    }

    /// A frontier-class model at the paper's "well over 500 billion
    /// weights" scale.
    pub fn frontier_500b() -> Self {
        ModelConfig {
            name: "Frontier-500B".into(),
            n_params: 500_000_000_000,
            n_layers: 120,
            d_model: 16384,
            n_heads: 128,
            n_kv_heads: 16,
            max_context: 32768,
        }
    }

    /// A 1-trillion-parameter frontier model (the "over 1 TB" end of the
    /// paper's weight-footprint range at fp16).
    pub fn frontier_1t() -> Self {
        ModelConfig {
            name: "Frontier-1T".into(),
            n_params: 1_000_000_000_000,
            n_layers: 140,
            d_model: 20480,
            n_heads: 160,
            n_kv_heads: 16,
            max_context: 65536,
        }
    }

    /// The standard model zoo used across experiments.
    pub fn zoo() -> Vec<ModelConfig> {
        vec![
            Self::llama2_7b(),
            Self::llama2_13b(),
            Self::llama2_70b(),
            Self::gpt3_175b(),
            Self::frontier_500b(),
            Self::frontier_1t(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::units::{GB, MB, TB};

    #[test]
    fn paper_weight_range_holds() {
        // §2: 500B+ weights are 250 GB (int4) to over 1 TB (fp16).
        let m = ModelConfig::frontier_500b();
        assert_eq!(m.weights_bytes(Quantization::Int4), 250 * GB);
        assert_eq!(m.weights_bytes(Quantization::Fp16), TB);
        let big = ModelConfig::frontier_1t();
        assert!(big.weights_bytes(Quantization::Fp16) > TB);
    }

    #[test]
    fn llama70b_kv_vector_size() {
        // GQA: 2 × 80 layers × 8 KV heads × 128 dims × 2 B = 320 KiB/token.
        let m = ModelConfig::llama2_70b();
        assert_eq!(m.head_dim(), 128);
        assert_eq!(m.kv_bytes_per_token(Quantization::Fp16), 327_680);
    }

    #[test]
    fn mha_kv_vector_is_a_few_mb() {
        // §2.2: "self-attention vector size is usually at most a few MBs" —
        // that is the full-MHA regime.
        let m = ModelConfig::gpt3_175b();
        let v = m.kv_bytes_per_token(Quantization::Fp16);
        assert!(v > 4 * MB && v < 5 * MB, "vector {v} bytes");
    }

    #[test]
    fn kv_cache_grows_to_tens_of_gb() {
        // §2: "the KV cache usually grows to a few tens of GBs until the
        // context size limit is reached."
        let m = ModelConfig::gpt3_175b();
        let cache = m.kv_cache_bytes(8192, Quantization::Fp16);
        assert!(cache > 30 * GB && cache < 50 * GB, "cache {cache}");
    }

    #[test]
    fn activations_order_of_magnitude_smaller() {
        // §2: activations "are typically an order of magnitude smaller than
        // both the weights and the KV cache."
        let m = ModelConfig::llama2_70b();
        let act = m.activation_bytes(32, Quantization::Fp16);
        let kv = m.kv_cache_bytes(2048, Quantization::Fp16);
        let w = m.weights_bytes(Quantization::Fp16);
        assert!(act * 10 < kv, "act {act} vs kv {kv}");
        assert!(act * 10 < w);
    }

    #[test]
    fn quantization_scales_linearly() {
        let m = ModelConfig::llama2_70b();
        let fp16 = m.weights_bytes(Quantization::Fp16);
        let int8 = m.weights_bytes(Quantization::Int8);
        let int4 = m.weights_bytes(Quantization::Int4);
        assert_eq!(fp16, 2 * int8);
        assert_eq!(int8, 2 * int4);
    }

    #[test]
    fn gqa_shrinks_kv_versus_mha() {
        let gqa = ModelConfig::llama2_70b();
        let mut mha = gqa.clone();
        mha.n_kv_heads = mha.n_heads;
        assert_eq!(
            mha.kv_bytes_per_token(Quantization::Fp16),
            8 * gqa.kv_bytes_per_token(Quantization::Fp16)
        );
    }

    #[test]
    fn zoo_is_ordered_by_size() {
        let zoo = ModelConfig::zoo();
        for w in zoo.windows(2) {
            assert!(w[0].n_params < w[1].n_params);
        }
        assert_eq!(zoo.len(), 6);
    }
}
