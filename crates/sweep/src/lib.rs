//! Deterministic parallel sweep engine for cluster experiments.
//!
//! A *sweep* evaluates one job over every point of a parameter grid. Points
//! are independent, so they can fan out across a thread pool — but experiment
//! output must not depend on the thread count, or results stop being
//! reproducible and regressions become impossible to bisect. This crate
//! guarantees bit-identical output for any `n_threads`:
//!
//! - every grid point gets its own [`SimRng`], derived with
//!   [`SimRng::split`] from a single base seed *in grid order*, before any
//!   thread starts — so the randomness a job sees depends only on its grid
//!   index, never on which worker picks it up;
//! - results are written into a slot keyed by grid index and returned in grid
//!   order, so the merged output is independent of completion order.
//!
//! Cross-point aggregation reuses the parallel-merge primitives from
//! `mrm-sim` ([`StreamingStats::merge`], [`LogHistogram::merge`]) via
//! [`merge_stats`] / [`merge_histograms`], which fold in grid order.
//!
//! # Examples
//!
//! ```
//! use mrm_sweep::{Grid, Sweep};
//!
//! let grid = Grid::axis([4.0, 8.0, 16.0]).cross(["hbm", "mrm"]);
//! let sweep = Sweep::new(grid, |&(load, tier), mut rng| {
//!     // Run a (toy) experiment at this grid point.
//!     (load * rng.next_f64(), tier)
//! });
//! let serial = sweep.run_parallel(1);
//! let parallel = sweep.run_parallel(8);
//! assert_eq!(serial.len(), 6);
//! assert_eq!(serial, parallel); // bit-identical, any thread count
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mrm_sim::rng::SimRng;
use mrm_sim::stats::{LogHistogram, StreamingStats};

/// The default base seed for sweeps that don't set one explicitly.
pub const DEFAULT_SEED: u64 = 0x4D52_4D53_5745_4550; // "MRMSWEEP"

/// An ordered list of parameter points, built by crossing axes.
///
/// The grid fixes the canonical result order: point `i` of the grid produces
/// result `i` of the sweep, whatever the thread count. `cross` nests in
/// row-major order — the later axis varies fastest — matching the nested
/// `for` loops the sweep replaces.
#[derive(Clone, Debug)]
pub struct Grid<P> {
    points: Vec<P>,
}

impl<P> Grid<P> {
    /// A one-axis grid over `values`.
    pub fn axis(values: impl IntoIterator<Item = P>) -> Self {
        Grid {
            points: values.into_iter().collect(),
        }
    }

    /// A grid from pre-built points (when the product structure doesn't fit
    /// a cartesian cross, e.g. a tornado of one-factor-at-a-time variants).
    pub fn from_points(points: Vec<P>) -> Self {
        Grid { points }
    }

    /// Crosses this grid with another axis; the new axis varies fastest.
    pub fn cross<Q>(self, values: impl IntoIterator<Item = Q>) -> Grid<(P, Q)>
    where
        P: Clone,
        Q: Clone,
    {
        let vs: Vec<Q> = values.into_iter().collect();
        let points = self
            .points
            .into_iter()
            .flat_map(|p| vs.iter().cloned().map(move |q| (p.clone(), q)))
            .collect();
        Grid { points }
    }

    /// Maps every point, e.g. from a parameter tuple to a full config.
    pub fn map<Q>(self, f: impl FnMut(P) -> Q) -> Grid<Q> {
        Grid {
            points: self.points.into_iter().map(f).collect(),
        }
    }

    /// Pairs every point with its grid index, so jobs can key side outputs
    /// (e.g. per-point telemetry) by index without threading a counter.
    pub fn enumerate(self) -> Grid<(usize, P)> {
        Grid {
            points: self.points.into_iter().enumerate().collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points in grid order.
    pub fn points(&self) -> &[P] {
        &self.points
    }
}

/// A job fanned over a [`Grid`] with deterministic, order-preserving results.
///
/// The job receives the grid point and a private [`SimRng`] whose stream
/// depends only on the sweep seed and the point's grid index.
pub struct Sweep<P, R, F> {
    grid: Grid<P>,
    job: F,
    seed: u64,
    _result: std::marker::PhantomData<fn() -> R>,
}

impl<P, R, F> Sweep<P, R, F>
where
    P: Sync,
    R: Send,
    F: Fn(&P, SimRng) -> R + Sync,
{
    /// Creates a sweep of `job` over `grid` with the default seed.
    pub fn new(grid: Grid<P>, job: F) -> Self {
        Sweep {
            grid,
            job,
            seed: DEFAULT_SEED,
            _result: std::marker::PhantomData,
        }
    }

    /// Sets the base seed all per-point generators derive from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The grid being swept.
    pub fn grid(&self) -> &Grid<P> {
        &self.grid
    }

    /// Runs every point on the calling thread, in grid order.
    pub fn run(&self) -> Vec<R> {
        self.run_parallel(1)
    }

    /// Runs every point across `n_threads` workers and returns results in
    /// grid order.
    ///
    /// Output is bit-identical for every `n_threads >= 1`: per-point RNGs are
    /// split from the base seed in grid order before any worker starts, and
    /// each result lands in the slot of its grid index. Workers pull indices
    /// from a shared counter, so an expensive point never serializes the
    /// points behind it.
    ///
    /// # Panics
    ///
    /// Panics if any job panics (the panic is propagated).
    pub fn run_parallel(&self, n_threads: usize) -> Vec<R> {
        let n = self.grid.len();
        // Derive all per-point generators up front, in grid order. This is
        // the determinism keystone: the split sequence consumes the parent
        // stream, so it must not race with job scheduling.
        let mut base = SimRng::seed_from(self.seed);
        let rngs: Vec<SimRng> = (0..n).map(|_| base.split()).collect();

        let workers = n_threads.max(1).min(n.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = (self.job)(&self.grid.points()[i], rngs[i].clone());
                    *slots[i]
                        .lock()
                        .expect("a sweep worker panicked while holding a result slot") = Some(r);
                });
            }
        });

        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("a sweep worker panicked while holding a result slot")
                    .expect("every grid point ran to completion")
            })
            .collect()
    }
}

/// Folds per-point statistics into one accumulator via parallel Welford
/// merge, in the order given (use grid order for reproducibility).
pub fn merge_stats<'a>(parts: impl IntoIterator<Item = &'a StreamingStats>) -> StreamingStats {
    let mut acc = StreamingStats::new();
    for s in parts {
        acc.merge(s);
    }
    acc
}

/// Folds per-point histograms (identical bucketing) into one, in the order
/// given. Returns `None` for an empty input.
///
/// # Panics
///
/// Panics if the histograms' sub-bucket counts differ.
pub fn merge_histograms<'a>(
    parts: impl IntoIterator<Item = &'a LogHistogram>,
) -> Option<LogHistogram> {
    let mut it = parts.into_iter();
    let mut acc = it.next()?.clone();
    for h in it {
        acc.merge(h);
    }
    Some(acc)
}

/// Reads the worker count from CLI args: `--threads N` or `--threads=N`.
///
/// Defaults to the machine's available parallelism when the flag is absent
/// or malformed. Bench binaries share this so CI can pin `--threads 2`.
pub fn threads_from_args() -> usize {
    threads_from(std::env::args().skip(1))
}

fn threads_from(args: impl IntoIterator<Item = String>) -> usize {
    flag_value("--threads", args)
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Reads the value of `--flag VALUE` or `--flag=VALUE` from the process
/// arguments (`None` when absent). Bench binaries share this for optional
/// outputs like `--telemetry <path>`.
pub fn flag_value_from_args(flag: &str) -> Option<String> {
    flag_value(flag, std::env::args().skip(1))
}

fn flag_value(flag: &str, args: impl IntoIterator<Item = String>) -> Option<String> {
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(rest) = a.strip_prefix(flag) {
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_cross_is_row_major() {
        let g = Grid::axis([1, 2]).cross(["a", "b", "c"]);
        let pts: Vec<_> = g.points().to_vec();
        assert_eq!(
            pts,
            vec![(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (2, "c")]
        );
    }

    #[test]
    fn grid_map_preserves_order() {
        let g = Grid::axis([1u64, 2, 3]).map(|x| x * 10);
        assert_eq!(g.points(), &[10, 20, 30]);
    }

    #[test]
    fn empty_grid_runs() {
        let s = Sweep::new(Grid::<u32>::from_points(vec![]), |&p, _| p);
        assert!(s.run_parallel(4).is_empty());
    }

    #[test]
    fn results_in_grid_order_any_thread_count() {
        // Jobs finish out of order (later points are cheaper), yet results
        // must come back in grid order.
        let grid = Grid::axis((0..32u64).collect::<Vec<_>>());
        let sweep = Sweep::new(grid, |&i, _| {
            std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
            i * 2
        });
        for threads in [1, 3, 8] {
            let out = sweep.run_parallel(threads);
            assert_eq!(out, (0..32u64).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn rng_streams_depend_on_index_not_schedule() {
        let grid = Grid::axis((0..16u32).collect::<Vec<_>>());
        let sweep = Sweep::new(grid, |_, mut rng| {
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        })
        .seed(42);
        let one = sweep.run_parallel(1);
        let many = sweep.run_parallel(7);
        assert_eq!(one, many);
        // Distinct points see distinct streams.
        assert_ne!(one[0], one[1]);
    }

    #[test]
    fn seed_changes_streams() {
        let mk = |seed| {
            Sweep::new(Grid::axis([0u8]), |_, mut rng| rng.next_u64())
                .seed(seed)
                .run()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn merge_stats_matches_single_stream() {
        let mut whole = StreamingStats::new();
        let mut parts = vec![StreamingStats::new(); 4];
        for i in 0..100 {
            let x = (i as f64).cos() * 3.0;
            whole.record(x);
            parts[i % 4].record(x);
        }
        let merged = merge_stats(parts.iter());
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-12);
        assert!((merged.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(merged.min().to_bits(), whole.min().to_bits());
        assert_eq!(merged.max().to_bits(), whole.max().to_bits());
    }

    #[test]
    fn merge_histograms_matches_single_stream() {
        let mut whole = LogHistogram::new(16);
        let mut parts = vec![LogHistogram::new(16); 3];
        for i in 1..=300u64 {
            whole.record(i as f64);
            parts[(i % 3) as usize].record(i as f64);
        }
        let merged = merge_histograms(parts.iter()).unwrap();
        assert_eq!(merged.count(), whole.count());
        // Histogram merge is pure counter addition: exact equality.
        assert_eq!(
            merged.percentile(50.0).to_bits(),
            whole.percentile(50.0).to_bits()
        );
        assert_eq!(
            merged.percentile(99.0).to_bits(),
            whole.percentile(99.0).to_bits()
        );
        assert!(merge_histograms([].into_iter()).is_none());
    }

    #[test]
    fn grid_enumerate_keys_by_index() {
        let g = Grid::axis(["a", "b"]).cross([1, 2]).enumerate();
        let pts: Vec<_> = g.points().to_vec();
        assert_eq!(
            pts,
            vec![(0, ("a", 1)), (1, ("a", 2)), (2, ("b", 1)), (3, ("b", 2))]
        );
    }

    #[test]
    fn flag_value_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            flag_value("--telemetry", args(&["--telemetry", "/tmp/t.jsonl"])),
            Some("/tmp/t.jsonl".to_string())
        );
        assert_eq!(
            flag_value("--telemetry", args(&["--threads", "2", "--telemetry=x"])),
            Some("x".to_string())
        );
        assert_eq!(flag_value("--telemetry", args(&["--threads", "2"])), None);
        // A flag that merely prefixes another name must not match.
        assert_eq!(flag_value("--tele", args(&["--telemetry=x"])), None);
        // Trailing flag with no value.
        assert_eq!(flag_value("--telemetry", args(&["--telemetry"])), None);
    }

    #[test]
    fn threads_flag_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(threads_from(args(&["--threads", "2"])), 2);
        assert_eq!(threads_from(args(&["--threads=5"])), 5);
        assert_eq!(threads_from(args(&["--threads", "0"])), 1);
        // Absent or malformed flags fall back to available parallelism (>=1).
        assert!(threads_from(args(&[])) >= 1);
        assert!(threads_from(args(&["--threads", "zebra"])) >= 1);
    }
}
