//! Byte, energy, and rate units shared across the workspace.
//!
//! Device datasheets mix units freely (GB vs GiB, pJ/bit vs mW, GB/s vs
//! GT/s); this module pins the workspace conventions:
//!
//! * Capacities are **bytes** (`u64`), with binary constants for powers of
//!   two and decimal constants for vendor-style capacities.
//! * Energy is **joules** (`f64`), with picojoule helpers since per-bit
//!   access energies are quoted in pJ/bit.
//! * Bandwidth is **bytes per second** (`f64`).

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;
/// One tebibyte (2^40 bytes).
pub const TIB: u64 = 1 << 40;

/// One decimal kilobyte.
pub const KB: u64 = 1_000;
/// One decimal megabyte.
pub const MB: u64 = 1_000_000;
/// One decimal gigabyte (vendor capacity convention).
pub const GB: u64 = 1_000_000_000;
/// One decimal terabyte.
pub const TB: u64 = 1_000_000_000_000;

/// Joules in one picojoule.
pub const PJ: f64 = 1e-12;
/// Joules in one nanojoule.
pub const NJ: f64 = 1e-9;
/// Joules in one microjoule.
pub const UJ: f64 = 1e-6;
/// Joules in one millijoule.
pub const MJ: f64 = 1e-3;

/// Converts an energy-per-bit figure in pJ/bit to joules per byte.
pub fn pj_per_bit_to_j_per_byte(pj_per_bit: f64) -> f64 {
    pj_per_bit * PJ * 8.0
}

/// Converts joules per byte back to pJ/bit.
pub fn j_per_byte_to_pj_per_bit(j_per_byte: f64) -> f64 {
    j_per_byte / (PJ * 8.0)
}

/// Formats a byte count with a binary suffix (`KiB`, `MiB`, ...).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [(&str, u64); 4] = [("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)];
    for (name, size) in UNITS {
        if bytes >= size {
            return format!("{:.2}{name}", bytes as f64 / size as f64);
        }
    }
    format!("{bytes}B")
}

/// Formats a quantity with an SI suffix (`k`, `M`, `G`, `T`, `P`, `E`).
pub fn format_si(x: f64) -> String {
    let ax = x.abs();
    let (scaled, suffix) = if ax >= 1e18 {
        (x / 1e18, "E")
    } else if ax >= 1e15 {
        (x / 1e15, "P")
    } else if ax >= 1e12 {
        (x / 1e12, "T")
    } else if ax >= 1e9 {
        (x / 1e9, "G")
    } else if ax >= 1e6 {
        (x / 1e6, "M")
    } else if ax >= 1e3 {
        (x / 1e3, "k")
    } else {
        (x, "")
    };
    if suffix.is_empty() {
        format!("{x:.3}")
    } else {
        format!("{scaled:.2}{suffix}")
    }
}

/// Formats a quantity in scientific notation with two significant decimals,
/// the convention for endurance counts (e.g. `1.0e15`).
pub fn format_sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    format!("{x:.1e}")
}

/// Bytes per second from GB/s (decimal, vendor convention).
pub fn gb_per_s(gb: f64) -> f64 {
    gb * 1e9
}

/// Bytes per second from TB/s (decimal, vendor convention).
pub fn tb_per_s(tb: f64) -> f64 {
    tb * 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_and_decimal_sizes_differ() {
        assert_eq!(GIB, 1_073_741_824);
        assert_eq!(GB, 1_000_000_000);
    }

    #[test]
    fn pj_per_bit_round_trip() {
        let j = pj_per_bit_to_j_per_byte(3.5);
        assert!((j - 3.5e-12 * 8.0).abs() < 1e-24);
        assert!((j_per_byte_to_pj_per_bit(j) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(2 * KIB), "2.00KiB");
        assert_eq!(format_bytes(3 * GIB + GIB / 2), "3.50GiB");
        assert_eq!(format_bytes(TIB), "1.00TiB");
    }

    #[test]
    fn si_formatting() {
        assert_eq!(format_si(1_500.0), "1.50k");
        assert_eq!(format_si(8e12), "8.00T");
        assert_eq!(format_si(2.0), "2.000");
        assert_eq!(format_si(1e15), "1.00P");
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(format_sci(0.0), "0");
        assert_eq!(format_sci(1e15), "1.0e15");
        assert_eq!(format_sci(4.38e4), "4.4e4");
    }

    #[test]
    fn bandwidth_helpers() {
        // Pure scaling by a power-of-ten constant: exact in f64.
        assert_eq!(gb_per_s(8.0).to_bits(), 8e9f64.to_bits());
        assert_eq!(tb_per_s(8.0).to_bits(), 8e12f64.to_bits()); // B200-class HBM bandwidth
    }
}
