//! Deterministic event queue and simulation driver.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time
//! with FIFO tie-breaking, so two events scheduled for the same instant pop in
//! the order they were scheduled — a requirement for reproducible simulations.
//!
//! Higher layers own their event loop: they define an event enum, pop events,
//! and mutate their own state. This keeps borrow-checker friction low compared
//! with a callback-based kernel, and lets each simulation choose its own state
//! shape.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: ordering key is `(time, seq)` — earliest first, then FIFO.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use mrm_sim::event::EventQueue;
/// use mrm_sim::time::SimTime;
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick, Tock }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(10), Ev::Tock);
/// q.schedule(SimTime::from_nanos(10), Ev::Tick); // same instant: FIFO
/// q.schedule(SimTime::from_nanos(5), Ev::Tick);
/// assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(5), Ev::Tick));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(10), Ev::Tock));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(10), Ev::Tick));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for about `n` pending events, so
    /// steady-state simulations never reallocate the heap mid-run. Purely a
    /// wall-clock hint: behaviour is identical to [`EventQueue::new`].
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// The current simulation time: the timestamp of the last popped event,
    /// or [`SimTime::ZERO`] before any event has been popped.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// tolerates it (the event pops immediately) but debug builds assert.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling event in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` `delay` after the current simulation time.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule(at, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "time went backwards");
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3u32);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        for i in 0..1000u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.pop();
        q.schedule_after(SimDuration::from_secs(2), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(3));
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(1024);
        for i in 0..100u32 {
            let t = SimTime::from_nanos(u64::from(i % 7));
            a.schedule(t, i);
            b.schedule(t, i);
        }
        b.reserve(4096);
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y, "capacity hints must not change pop order");
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two identical runs produce identical sequences.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(SimTime::from_nanos(1), 0u64);
            let mut k = 1u64;
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
                if k < 50 {
                    q.schedule(t + SimDuration::from_nanos(k % 3), k);
                    q.schedule(t + SimDuration::from_nanos(k % 5), k + 100);
                    k += 1;
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
